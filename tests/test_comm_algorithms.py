"""Tests for the executable collective algorithms.

Each algorithm must compute the exact elementwise sum across ranks — the
arithmetic that gradient allreduce relies on — for the communication
pattern the cost model prices.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.algorithms import (
    hierarchical_allreduce,
    ring_allgather,
    ring_allreduce,
    ring_reduce_scatter,
)
from repro.comm.spmd import run_spmd
from repro.comm.topology import contiguous_placement


def per_rank_values(p, n, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.normal(size=n) for _ in range(p)]


@pytest.mark.parametrize("p,n", [(1, 8), (2, 10), (4, 16), (4, 17), (8, 5)])
def test_ring_allreduce_matches_sum(p, n):
    values = per_rank_values(p, n)
    expected = np.sum(values, axis=0)

    def prog(comm):
        return ring_allreduce(comm, values[comm.rank])

    results = run_spmd(p, prog, timeout=30)
    for r in results:
        np.testing.assert_allclose(r, expected, rtol=1e-12)


@pytest.mark.parametrize("p", [2, 3, 4, 6])
def test_ring_reduce_scatter_chunks(p):
    n = 24
    values = per_rank_values(p, n, seed=1)
    expected = np.sum(values, axis=0)
    bounds = np.linspace(0, n, p + 1).astype(int)

    def prog(comm):
        return ring_reduce_scatter(comm, values[comm.rank])

    results = run_spmd(p, prog, timeout=30)
    for r, chunk in enumerate(results):
        np.testing.assert_allclose(
            chunk, expected[bounds[r] : bounds[r + 1]], rtol=1e-12
        )


def test_ring_allgather_concatenates():
    p, n = 4, 12
    bounds = np.linspace(0, n, p + 1).astype(int)
    full = np.arange(n, dtype=np.float64)

    def prog(comm):
        mine = full[bounds[comm.rank] : bounds[comm.rank + 1]]
        return ring_allgather(comm, mine, n)

    for r in run_spmd(p, prog, timeout=30):
        np.testing.assert_array_equal(r, full)


@pytest.mark.parametrize(
    "ranks,per_node", [(4, 4), (4, 1), (8, 4), (6, 2), (8, 2)]
)
def test_hierarchical_allreduce_matches_sum(ranks, per_node):
    placement = contiguous_placement(ranks, per_node)
    values = per_rank_values(ranks, 9, seed=2)
    expected = np.sum(values, axis=0)

    def prog(comm):
        return hierarchical_allreduce(comm, values[comm.rank], placement)

    for r in run_spmd(ranks, prog, timeout=30):
        np.testing.assert_allclose(r, expected, rtol=1e-12)


def test_hierarchical_placement_mismatch():
    placement = contiguous_placement(4, 2)

    def prog(comm):
        return hierarchical_allreduce(comm, np.ones(3), placement)

    with pytest.raises(ValueError):
        run_spmd(2, prog, timeout=10)


def test_ring_rejects_2d():
    def prog(comm):
        return ring_reduce_scatter(comm, np.ones((2, 2)))

    with pytest.raises(ValueError):
        run_spmd(2, prog, timeout=10)


@given(st.integers(2, 6), st.integers(1, 40), st.integers(0, 1000))
@settings(max_examples=15, deadline=None)
def test_ring_allreduce_property(p, n, seed):
    """Property: ring allreduce == numpy sum for any sizes (including
    chunks smaller than ranks)."""
    values = per_rank_values(p, n, seed=seed)
    expected = np.sum(values, axis=0)

    def prog(comm):
        return ring_allreduce(comm, values[comm.rank])

    for r in run_spmd(p, prog, timeout=30):
        np.testing.assert_allclose(r, expected, rtol=1e-10, atol=1e-10)


def test_ring_and_hierarchical_agree():
    p = 8
    placement = contiguous_placement(p, 4)
    values = per_rank_values(p, 33, seed=3)

    def prog(comm):
        a = ring_allreduce(comm, values[comm.rank])
        b = hierarchical_allreduce(comm, values[comm.rank], placement)
        return a, b

    for a, b in run_spmd(p, prog, timeout=30):
        np.testing.assert_allclose(a, b, rtol=1e-10)
