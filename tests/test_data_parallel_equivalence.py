"""Data-parallel equivalence: the mathematical identity the trainer's
single-process execution relies on.

The functional trainer computes one step on the global mini-batch; the
performance model prices a 16-GPU data-parallel version.  These agree
because sum-reduced losses make the global gradient equal the average of
per-shard gradients — verified here for the actual models, including the
full GAN step executed shard-wise with a simulated allreduce (the SPMD
ring allreduce from :mod:`repro.comm.algorithms`).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.algorithms import ring_allreduce
from repro.comm.spmd import run_spmd
from repro.tensorlib import losses
from repro.tensorlib.model import mlp
from repro.utils.rng import RngFactory


def build_model(seed=0):
    return mlp("net", RngFactory(seed), input_dim=6, hidden=[16, 16], output_dim=3)


def grads_of(model, x, t):
    model.zero_grad()
    out = model.forward({"in": x}, outputs=["out"])["out"]
    _, g = losses.mean_squared_error(out, t)
    model.backward({"out": g})
    return {w.name: w.grad.copy() for w in model.trainable_weights}


@pytest.mark.parametrize("shards", [2, 4, 8])
def test_shard_average_equals_global_gradient(shards):
    """MSE is a mean over elements, so grad(global batch) equals the
    average of grads over equal shards."""
    rng = np.random.default_rng(1)
    n = 32
    x = rng.normal(size=(n, 6)).astype(np.float32)
    t = rng.normal(size=(n, 3)).astype(np.float32)
    model = build_model()
    global_grads = grads_of(model, x, t)

    accum = {k: np.zeros_like(v) for k, v in global_grads.items()}
    for shard_x, shard_t in zip(np.split(x, shards), np.split(t, shards)):
        shard_grads = grads_of(model, shard_x, shard_t)
        for k in accum:
            accum[k] += shard_grads[k] / shards
    for k in global_grads:
        np.testing.assert_allclose(accum[k], global_grads[k], rtol=1e-4, atol=1e-6)


def test_data_parallel_sgd_step_via_ring_allreduce():
    """A full data-parallel SGD step over the SPMD fabric equals the
    single-process step on the global batch."""
    rng = np.random.default_rng(2)
    p, n = 4, 16
    x = rng.normal(size=(n, 6)).astype(np.float32)
    t = rng.normal(size=(n, 3)).astype(np.float32)
    lr = 0.1

    # Reference: single-process step.
    ref = build_model(seed=7)
    ref_grads = grads_of(ref, x, t)
    expected = {
        w.name: w.value - lr * ref_grads[w.name] for w in ref.trainable_weights
    }

    # Data-parallel: each rank grads its shard, ring-allreduces, averages.
    xs, ts = np.split(x, p), np.split(t, p)

    def rank_program(comm):
        model = build_model(seed=7)  # replicated weights
        shard_grads = grads_of(model, xs[comm.rank], ts[comm.rank])
        names = sorted(shard_grads)
        flat = np.concatenate([shard_grads[k].ravel() for k in names])
        total = ring_allreduce(comm, flat)
        avg = total / p
        out = {}
        offset = 0
        for k in names:
            shape = shard_grads[k].shape
            size = int(np.prod(shape))
            value = model.weight(k).value - lr * avg[
                offset : offset + size
            ].reshape(shape).astype(np.float32)
            out[k] = value
            offset += size
        return out

    results = run_spmd(p, rank_program, timeout=30)
    for rank_result in results:
        for k, v in expected.items():
            np.testing.assert_allclose(rank_result[k], v, rtol=1e-4, atol=1e-6)


def test_bce_loss_also_shard_averages():
    """The GAN's discriminator loss reduces by mean too."""
    rng = np.random.default_rng(3)
    z = rng.normal(size=(24, 1)).astype(np.float32)
    t = (rng.random((24, 1)) > 0.5).astype(np.float32)
    _, g_full = losses.bce_with_logits(z, t)
    parts = [
        losses.bce_with_logits(zs, ts)[1]
        for zs, ts in zip(np.split(z, 4), np.split(t, 4))
    ]
    np.testing.assert_allclose(
        np.concatenate(parts) / 4, g_full, rtol=1e-5, atol=1e-8
    )
