"""Tests for the evicting (partial-caching) data store and non-blocking
SPMD requests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.filesystem import SimulatedFilesystem
from repro.comm.spmd import run_spmd
from repro.datastore.bundle import write_bundles
from repro.datastore.reader import StoreReader
from repro.datastore.store import DistributedDataStore, InsufficientMemoryError


def sample_of(value: int, nbytes: int = 400):
    return {"x": np.full(nbytes // 4, value, dtype=np.float32)}


class TestEvictingStore:
    def test_lru_eviction_order(self):
        store = DistributedDataStore(1, bytes_per_rank=1200, evicting=True)
        for sid in range(3):  # fills the budget exactly
            store.cache_sample(0, sid, sample_of(sid))
        store.fetch_batch([0])  # touch 0: now 1 is the LRU victim
        store.cache_sample(0, 3, sample_of(3))
        assert 1 not in store
        assert 0 in store and 2 in store and 3 in store
        assert store.stats.evictions == 1

    def test_non_evicting_still_raises(self):
        store = DistributedDataStore(1, bytes_per_rank=800, evicting=False)
        store.cache_sample(0, 0, sample_of(0))
        store.cache_sample(0, 1, sample_of(1))
        with pytest.raises(InsufficientMemoryError):
            store.cache_sample(0, 2, sample_of(2))

    def test_oversized_sample_rejected_even_when_evicting(self):
        store = DistributedDataStore(1, bytes_per_rank=100, evicting=True)
        with pytest.raises(InsufficientMemoryError):
            store.cache_sample(0, 0, sample_of(0, nbytes=400))

    def test_budget_respected_under_churn(self):
        store = DistributedDataStore(2, bytes_per_rank=2000, evicting=True)
        for sid in range(40):
            store.cache_sample(sid % 2, sid, sample_of(sid))
        assert store.shard_bytes(0) <= 2000
        assert store.shard_bytes(1) <= 2000
        assert store.num_cached < 40

    def test_preload_with_eviction_is_config_error(self):
        fs = SimulatedFilesystem()
        paths = write_bundles(
            fs, {"x": np.zeros((20, 4), dtype=np.float32)}, samples_per_bundle=10
        )
        store = DistributedDataStore(1, bytes_per_rank=10**6, evicting=True)
        with pytest.raises(ValueError):
            store.preload(fs, paths)

    def test_dynamic_reader_partial_caching_rereads_misses(self):
        """Over-capacity dynamic store keeps training: evicted samples are
        re-read from the file system on later epochs (partial caching)."""
        fs = SimulatedFilesystem()
        n = 100
        fields = {"x": np.arange(n, dtype=np.float32).reshape(n, 1)}
        paths = write_bundles(fs, fields, samples_per_bundle=10)
        # Budget holds ~40 of the 100 samples.
        per_sample = 4  # one float32 each
        store = DistributedDataStore(
            2, bytes_per_rank=20 * per_sample, evicting=True
        )
        reader = StoreReader(
            fs, paths, 10, np.arange(n), np.random.default_rng(0), store, "dynamic"
        )
        for _ in reader.epoch(10):
            pass
        opens_epoch0 = fs.stats.opens
        for mb in reader.epoch(10):
            np.testing.assert_array_equal(
                mb.feeds["x"][:, 0], mb.sample_ids.astype(np.float32)
            )
        # Unlike the fully cached store, later epochs still read files.
        assert fs.stats.opens > opens_epoch0
        assert store.stats.evictions > 0

    def test_fetch_rereads_hits_evicted_by_same_batch(self):
        """Caching a batch's misses can evict that very batch's hits; the
        ``still_missing`` second file pass in ``StoreReader._fetch`` must
        re-read the casualties so the batch always assembles."""
        fs = SimulatedFilesystem()
        n = 4
        fields = {"x": np.arange(n, dtype=np.float32).reshape(n, 1)}
        paths = write_bundles(fs, fields, samples_per_bundle=n)
        # One rank, budget of exactly two one-float32 samples.
        store = DistributedDataStore(1, bytes_per_rank=8, evicting=True)
        reader = StoreReader(
            fs, paths, n, np.arange(n), np.random.default_rng(0), store,
            "dynamic",
        )
        feeds = reader._fetch(np.array([0, 1]))
        np.testing.assert_array_equal(feeds["x"][:, 0], [0.0, 1.0])
        assert 0 in store and 1 in store
        opens_before = fs.stats.opens
        # Misses 2 and 3 fill the shard, evicting hits 0 and 1 mid-batch.
        feeds = reader._fetch(np.array([0, 1, 2, 3]))
        np.testing.assert_array_equal(feeds["x"][:, 0], [0.0, 1.0, 2.0, 3.0])
        assert store.stats.evictions == 2
        assert 0 not in store and 1 not in store
        assert 2 in store and 3 in store
        # Both file passes ran: misses first, then the evicted casualties.
        assert fs.stats.opens >= opens_before + 2


class TestNonBlockingRequests:
    def test_isend_irecv_roundtrip(self):
        def prog(comm):
            if comm.rank == 0:
                req = comm.isend({"v": 7}, dest=1)
                req.wait()
                return None
            req = comm.irecv(source=0)
            return req.wait()

        out = run_spmd(2, prog, timeout=10)
        assert out[1] == {"v": 7}

    def test_irecv_test_polls(self):
        def prog(comm):
            if comm.rank == 0:
                comm.barrier()  # make rank 1 post irecv first
                comm.send("late", dest=1)
                return None
            req = comm.irecv(source=0)
            done_early, _ = req.test()
            comm.barrier()
            value = req.wait()
            done_late, value2 = req.test()
            return done_early, value, done_late, value2

        out = run_spmd(2, prog, timeout=10)
        done_early, value, done_late, value2 = out[1]
        assert done_early is False
        assert value == "late" and done_late is True and value2 == "late"

    def test_overlapped_exchange(self):
        """The data-store idiom: post receives, compute, then wait."""

        def prog(comm):
            peer = 1 - comm.rank
            req = comm.irecv(source=peer, tag=5)
            comm.send(np.full(4, comm.rank), dest=peer, tag=5)
            local = float(np.sum(np.arange(10)))  # "compute"
            remote = req.wait()
            return local + float(remote.sum())

        out = run_spmd(2, prog, timeout=10)
        assert out[0] == 45.0 + 4.0  # received rank 1's ones
        assert out[1] == 45.0 + 0.0
