"""Tests for span tracing (:mod:`repro.telemetry.spans`): the Tracer
unit behaviour, driver/trainer/pipeline instrumentation, cross-process
relay alignment, and the Chrome ``trace_event`` export.
"""

from __future__ import annotations

import dataclasses
import json
import threading

import numpy as np
import pytest

from repro.core import LtfbConfig, LtfbDriver, build_population
from repro.exec import ProcessBackend, ThreadBackend
from repro.telemetry import (
    SPAN,
    JsonlTraceWriter,
    TelemetryHub,
    Tracer,
    export_chrome_trace,
    load_trace,
    load_trace_header,
)
from repro.utils.rng import RngFactory


class Sink:
    """Minimal emit() target for tracer unit tests; also usable as a hub
    subscriber (handle)."""

    def __init__(self) -> None:
        self.events: list[tuple[str, dict]] = []

    def emit(self, event_type: str, /, **payload) -> None:
        self.events.append((event_type, payload))

    def handle(self, event) -> None:
        self.events.append((event.type, dict(event.payload)))

    def on_run_begin(self, driver) -> None:
        pass

    def on_run_end(self, driver, history) -> None:
        pass

    def spans(self) -> list[dict]:
        return [p for t, p in self.events if t == SPAN]


def _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=4):
    spec = dataclasses.replace(tiny_spec, k=k)
    return build_population(
        tiny_dataset,
        np.arange(tiny_dataset.n_samples - 64),
        RngFactory(31).child("spans"),
        spec,
        tiny_autoencoder,
    )


def _driver(tiny_dataset, tiny_spec, tiny_autoencoder, backend=None, **cfg):
    trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
    val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    config = LtfbConfig(**{"steps_per_round": 2, "rounds": 2, **cfg})
    return LtfbDriver(
        trainers,
        np.random.default_rng(5),
        config,
        eval_batch={k: v[val_ids] for k, v in tiny_dataset.fields.items()},
        backend=backend,
    )


class TestTracer:
    def test_nesting_assigns_parent_and_inherits_track(self):
        sink = Sink()
        tracer = Tracer(sink)
        with tracer.span("outer", cat="run", track="driver"):
            with tracer.span("inner", cat="round"):
                pass
        inner, outer = sink.spans()  # emitted on exit: inner first
        assert inner["parent"] == outer["id"]
        assert "parent" not in outer
        assert inner["track"] == "driver"  # inherited from the parent
        assert inner["t0_s"] >= outer["t0_s"]
        assert inner["dur_s"] <= outer["dur_s"]

    def test_top_level_track_defaults_to_main(self):
        sink = Sink()
        with Tracer(sink).span("solo"):
            pass
        assert sink.spans()[0]["track"] == "main"

    def test_attrs_mutable_while_open(self):
        sink = Sink()
        tracer = Tracer(sink)
        with tracer.span("fetch", hits=0) as sp:
            sp.attrs["hits"] = 3
        assert sink.spans()[0]["attrs"] == {"hits": 3}

    def test_record_uses_measured_interval(self):
        sink = Sink()
        tracer = Tracer(sink, epoch=100.0)
        tracer.record("x", cat="exchange", t0=101.0, end=101.5, nbytes=8)
        payload = sink.spans()[0]
        assert payload["t0_s"] == pytest.approx(1.0)
        assert payload["dur_s"] == pytest.approx(0.5)
        assert payload["attrs"] == {"nbytes": 8}

    def test_record_parents_under_open_span(self):
        sink = Sink()
        tracer = Tracer(sink)
        with tracer.span("phase", track="driver"):
            tracer.record("exchange", t0=0.0, end=0.0)
        exchange, phase = sink.spans()
        assert exchange["parent"] == phase["id"]
        assert exchange["track"] == "driver"

    def test_child_shares_clock_origin(self):
        base = Tracer(None, epoch=5.0)
        sink = Sink()
        child = base.child(sink)
        assert child.epoch == base.epoch
        assert child.wall_origin == base.wall_origin
        assert child.sink is sink

    def test_none_sink_drops_spans(self):
        tracer = Tracer(None)
        with tracer.span("dropped"):
            pass
        tracer.record("also dropped", t0=0.0, end=1.0)

    def test_span_ids_unique(self):
        sink = Sink()
        tracer = Tracer(sink)
        for _ in range(5):
            with tracer.span("s"):
                pass
        ids = [p["id"] for p in sink.spans()]
        assert len(set(ids)) == 5

    def test_parent_stacks_are_per_thread(self):
        sink = Sink()
        tracer = Tracer(sink)
        seen = {}

        def worker():
            with tracer.span("bg"):
                pass
            seen["done"] = True

        with tracer.span("fg", track="driver"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["done"]
        bg = next(p for p in sink.spans() if p["name"] == "bg")
        # The other thread's open span is not this thread's parent.
        assert "parent" not in bg
        assert bg["track"] == "main"


class TestHubTracing:
    def test_start_tracing_is_idempotent(self):
        hub = TelemetryHub()
        assert hub.tracer is None
        tracer = hub.start_tracing()
        assert hub.start_tracing() is tracer
        assert hub.tracer is tracer
        assert tracer.epoch == hub._t0
        assert tracer.wall_origin == hub.wall_origin

    def test_untraced_run_emits_no_spans(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        driver = _driver(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver.run(callbacks=[JsonlTraceWriter(trace)])  # spans=False
        assert driver.telemetry.tracer is None
        assert all(e.type != SPAN for e in load_trace(trace))

    def test_traced_serial_run_hierarchy(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        driver = _driver(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver.run(callbacks=[JsonlTraceWriter(trace, spans=True)])
        assert driver.telemetry.tracer is not None
        spans = [e.payload for e in load_trace(trace) if e.type == SPAN]
        by_id = {p["id"]: p for p in spans}
        names = {p["name"] for p in spans}
        assert {
            "run", "round", "phase:train", "phase:tournament", "phase:eval",
            "train_interval", "train_step", "materialize", "exchange",
        } <= names

        runs = [p for p in spans if p["name"] == "run"]
        assert len(runs) == 1 and runs[0]["track"] == "driver"
        for p in spans:
            if p["name"] == "round":
                assert by_id[p["parent"]]["name"] == "run"
            if p["name"].startswith("phase:"):
                assert by_id[p["parent"]]["name"] == "round"
            if p["name"] == "train_step":
                assert by_id[p["parent"]]["name"] == "train_interval"
                assert p["track"].startswith("serial:w0/")
            if p["name"] == "materialize":
                assert by_id[p["parent"]]["name"] == "train_step"

    def test_store_fetch_span_nests_and_annotates(self):
        from repro.datastore.store import DistributedDataStore

        hub = TelemetryHub()
        sink = Sink()
        hub.subscribe(sink)
        hub.start_tracing()
        store = DistributedDataStore(
            num_ranks=2, bytes_per_rank=1 << 20, telemetry=hub
        )
        sample = {"x": np.ones(4, dtype=np.float32)}
        for sid in range(4):
            store.cache_sample(sid % 2, sid, sample)
        with hub.tracer.span("materialize", cat="data", track="t"):
            store.fetch_batch([0, 1, 2, 3])
        spans = {p["name"]: p for p in sink.spans()}
        fetch, outer = spans["store_fetch"], spans["materialize"]
        assert fetch["parent"] == outer["id"]
        assert fetch["track"] == "t"
        attrs = fetch["attrs"]
        assert attrs["batch_size"] == 4
        assert attrs["local_fetches"] + attrs["remote_fetches"] == 4

    def test_untraced_store_fetch_emits_no_span(self):
        from repro.datastore.store import DistributedDataStore

        hub = TelemetryHub()
        sink = Sink()
        hub.subscribe(sink)
        store = DistributedDataStore(
            num_ranks=2, bytes_per_rank=1 << 20, telemetry=hub
        )
        sample = {"x": np.ones(4, dtype=np.float32)}
        for sid in range(2):
            store.cache_sample(sid, sid, sample)
        store.fetch_batch([0, 1])
        types = [t for t, _ in sink.events]
        assert SPAN not in types and "datastore_fetch" in types

    def test_thread_backend_spans_share_hub_clock(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        driver = _driver(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            backend=ThreadBackend(max_workers=2),
        )
        driver.run(callbacks=[JsonlTraceWriter(trace, spans=True)])
        spans = [e.payload for e in load_trace(trace) if e.type == SPAN]
        tracks = {p["track"] for p in spans if p["name"] == "train_interval"}
        assert tracks == {
            "thread:w0/trainer00", "thread:w1/trainer01",
            "thread:w0/trainer02", "thread:w1/trainer03",
        }
        run = next(p for p in spans if p["name"] == "run")
        run_end = run["t0_s"] + run["dur_s"]
        for p in spans:
            assert -0.001 <= p["t0_s"] <= run_end + 0.001


class TestProcessBackendTracing:
    """The ISSUE acceptance scenario: a traced process-backend run with
    prefetch enabled whose exported Chrome trace shows prefetch fills
    overlapping trainer steps on distinct tracks."""

    @pytest.fixture()
    def traced(self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path):
        trace = tmp_path / "trace.jsonl"
        driver = _driver(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            backend=ProcessBackend(max_workers=2, prefetch_depth=2),
            steps_per_round=4,
        )
        driver.run(callbacks=[JsonlTraceWriter(trace, spans=True)])
        return trace, [
            e.payload for e in load_trace(trace) if e.type == SPAN
        ]

    def test_worker_spans_relayed_and_aligned(self, traced):
        trace, spans = traced
        run = next(p for p in spans if p["name"] == "run")
        steps = [p for p in spans if p["name"] == "train_step"]
        assert steps, "worker train_step spans must be relayed"
        assert {p["track"].split("/")[0] for p in steps} == {
            "process:w0", "process:w1",
        }
        # Clock-offset alignment: every relayed worker span must land
        # inside the driver's run span (generous slack for wall-clock
        # disagreement between processes on one host).
        run_end = run["t0_s"] + run["dur_s"]
        for p in steps:
            assert run["t0_s"] - 0.25 <= p["t0_s"] <= run_end + 0.25

    def test_prefetch_fill_overlaps_train_steps(self, traced):
        _, spans = traced
        fills = [p for p in spans if p["name"] == "prefetch_fill"]
        steps = [p for p in spans if p["name"] == "train_step"]
        assert fills and steps
        assert all(p["track"].endswith("/prefetch") for p in fills)
        overlaps = any(
            f["track"] != s["track"]
            and max(f["t0_s"], s["t0_s"])
            < min(f["t0_s"] + f["dur_s"], s["t0_s"] + s["dur_s"])
            for f in fills
            for s in steps
        )
        assert overlaps, "prefetch fills must overlap trainer steps"

    def test_chrome_export(self, traced, tmp_path):
        trace, spans = traced
        out = tmp_path / "chrome.json"
        doc = export_chrome_trace(trace, out)
        with open(out, encoding="utf-8") as fh:
            assert json.load(fh) == doc
        events = doc["traceEvents"]
        complete = [e for e in events if e.get("ph") == "X"]
        assert len(complete) == len(spans)
        # One tid per track; driver first.
        meta = {
            e["args"]["name"]: e["tid"]
            for e in events
            if e.get("ph") == "M" and e["name"] == "thread_name"
        }
        assert meta["driver"] == 1
        assert len(set(meta.values())) == len(meta)
        assert any(t.endswith("/prefetch") for t in meta)
        assert doc["otherData"]["run"]["backend"] == "process"

    def test_export_refuses_spanless_trace(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        trace = tmp_path / "plain.jsonl"
        driver = _driver(tiny_dataset, tiny_spec, tiny_autoencoder, rounds=1)
        driver.run(callbacks=[JsonlTraceWriter(trace)])
        with pytest.raises(ValueError, match="no span records"):
            export_chrome_trace(trace, tmp_path / "out.json")


class TestTraceHeader:
    def test_header_written_first_with_run_metadata(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        driver = _driver(tiny_dataset, tiny_spec, tiny_autoencoder)
        writer = JsonlTraceWriter(trace, metadata={"experiment": "unit"})
        driver.run(callbacks=[writer])
        with open(trace, encoding="utf-8") as fh:
            first = json.loads(fh.readline())
        assert first["type"] == "trace_header"
        assert first["version"] == JsonlTraceWriter.SCHEMA_VERSION
        header = load_trace_header(trace)
        assert header["run"]["driver"] == "LtfbDriver"
        assert header["run"]["backend"] == "serial"
        assert header["run"]["experiment"] == "unit"
        assert header["clock_origin_unix"] == pytest.approx(
            driver.telemetry.wall_origin
        )

    def test_headerless_trace_still_loads(self, tmp_path):
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text('{"type": "round_end", "round": 0}\n')
        assert load_trace_header(legacy) is None
        events = load_trace(legacy)
        assert [e.type for e in events] == ["round_end"]

    def test_header_only_legal_on_line_one(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            '{"type": "round_end", "round": 0}\n'
            '{"type": "trace_header", "version": 2}\n'
        )
        with pytest.raises(
            ValueError, match="only valid as the first record"
        ):
            load_trace(bad)

    def test_unsupported_version_rejected(self, tmp_path):
        future = tmp_path / "future.jsonl"
        future.write_text('{"type": "trace_header", "version": 99}\n')
        with pytest.raises(ValueError, match="version 99"):
            load_trace(future)

    def test_context_manager_flushes_header_even_without_events(
        self, tmp_path
    ):
        trace = tmp_path / "empty.jsonl"
        with JsonlTraceWriter(trace):
            pass
        header = load_trace_header(trace)
        assert header is not None
        assert header["version"] == JsonlTraceWriter.SCHEMA_VERSION
        assert load_trace(trace) == []


class TestTraceExportCli:
    def test_exports_a_real_trace(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path, capsys
    ):
        from repro.experiments.__main__ import main

        trace = tmp_path / "trace.jsonl"
        driver = _driver(tiny_dataset, tiny_spec, tiny_autoencoder, rounds=1)
        driver.run(callbacks=[JsonlTraceWriter(trace, spans=True)])
        out = tmp_path / "exported.json"
        assert main(["trace-export", str(trace), "-o", str(out)]) == 0
        assert "trace-export: wrote" in capsys.readouterr().out
        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_default_output_is_json_suffix(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        from repro.experiments.__main__ import main

        trace = tmp_path / "trace.jsonl"
        driver = _driver(tiny_dataset, tiny_spec, tiny_autoencoder, rounds=1)
        driver.run(callbacks=[JsonlTraceWriter(trace, spans=True)])
        assert main(["trace-export", str(trace)]) == 0
        assert (tmp_path / "trace.json").exists()

    def test_spanless_trace_fails_cleanly(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        trace = tmp_path / "trace.jsonl"
        trace.write_text('{"type": "round_end", "round": 0}\n')
        assert main(["trace-export", str(trace)]) == 1
        assert "no span records" in capsys.readouterr().err

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["trace-export", str(tmp_path / "nope.jsonl")]) == 1
        assert "trace-export:" in capsys.readouterr().err
