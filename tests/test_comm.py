"""Tests for the communication substrate: topology, cost models, SPMD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm.costmodel import CollectiveCostModel, LinkParams
from repro.comm.spmd import SpmdError, run_spmd
from repro.comm.topology import RankPlacement, contiguous_placement

INTRA = LinkParams(latency=1e-6, bandwidth=75e9)
INTER = LinkParams(latency=2e-6, bandwidth=25e9)
MODEL = CollectiveCostModel(INTRA, INTER)


class TestPlacement:
    def test_contiguous_packing(self):
        p = contiguous_placement(16, 4)
        assert p.num_ranks == 16 and p.num_nodes == 4
        assert p.ranks_on_node(0) == [0, 1, 2, 3]
        assert p.node_of[15] == 3

    def test_one_rank_per_node(self):
        p = contiguous_placement(8, 1)
        assert p.num_nodes == 8
        assert p.max_ranks_per_node == 1

    def test_same_node(self):
        p = contiguous_placement(8, 4)
        assert p.same_node(0, 3)
        assert not p.same_node(3, 4)

    def test_remote_fraction(self):
        p = contiguous_placement(16, 4)
        assert p.remote_fraction(0) == pytest.approx(12 / 15)
        single = contiguous_placement(1, 1)
        assert single.remote_fraction(0) == 0.0
        flat = contiguous_placement(4, 1)
        assert flat.remote_fraction(2) == 1.0

    def test_dense_node_ids_enforced(self):
        with pytest.raises(ValueError):
            RankPlacement((0, 2))

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            contiguous_placement(0, 4)
        with pytest.raises(ValueError):
            contiguous_placement(4, 0)


class TestLinkParams:
    def test_transfer_time(self):
        assert INTER.transfer_time(25e9) == pytest.approx(1.0 + 2e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkParams(-1, 1)
        with pytest.raises(ValueError):
            LinkParams(0, 0)
        with pytest.raises(ValueError):
            INTER.transfer_time(-5)


class TestAllreduceModel:
    def test_single_rank_free(self):
        assert MODEL.allreduce_time(1e9, contiguous_placement(1, 1)) == 0.0

    def test_zero_bytes_free(self):
        assert MODEL.allreduce_time(0, contiguous_placement(8, 4)) == 0.0

    def test_single_node_ring(self):
        p = contiguous_placement(4, 4)
        b = 400e6
        expected = 2 * 3 * INTRA.latency + 2 * (3 / 4) * b / INTRA.bandwidth
        assert MODEL.allreduce_time(b, p) == pytest.approx(expected)

    def test_flat_internode_ring(self):
        p = contiguous_placement(16, 1)
        b = 400e6
        expected = 2 * 15 * INTER.latency + 2 * (15 / 16) * b / INTER.bandwidth
        assert MODEL.allreduce_time(b, p) == pytest.approx(expected)

    def test_hierarchical_combines_both_levels(self):
        p = contiguous_placement(16, 4)
        b = 400e6
        intra = 2 * 3 * INTRA.latency + 2 * (3 / 4) * b / INTRA.bandwidth
        inter = 2 * 3 * INTER.latency + 2 * (3 / 4) * b / INTER.bandwidth
        assert MODEL.allreduce_time(b, p) == pytest.approx(intra + inter)

    def test_nvlink_cheaper_than_ib_for_same_ranks(self):
        b = 100e6
        one_node = MODEL.allreduce_time(b, contiguous_placement(4, 4))
        four_nodes = MODEL.allreduce_time(b, contiguous_placement(4, 1))
        assert one_node < four_nodes

    @given(st.integers(2, 64), st.floats(1e3, 1e9))
    @settings(max_examples=30, deadline=None)
    def test_monotone_in_bytes(self, ranks, nbytes):
        p = contiguous_placement(ranks, min(4, ranks))
        assert MODEL.allreduce_time(nbytes * 2, p) >= MODEL.allreduce_time(nbytes, p)


class TestOtherCollectives:
    def test_bcast_log_scaling(self):
        b = 1e6
        t4 = MODEL.bcast_time(b, contiguous_placement(4, 1))
        t16 = MODEL.bcast_time(b, contiguous_placement(16, 1))
        # log2(16)/log2(4) = 2x stages
        assert t16 == pytest.approx(2 * t4)

    def test_shuffle_zero_cases(self):
        assert MODEL.shuffle_time(0, contiguous_placement(8, 4)) == 0.0
        assert MODEL.shuffle_time(1e6, contiguous_placement(1, 1)) == 0.0

    def test_shuffle_nic_sharing(self):
        """More ranks per node -> more bytes through the shared NIC."""
        recv = 10e6
        t_packed = MODEL.shuffle_time(recv, contiguous_placement(16, 4))
        t_spread = MODEL.shuffle_time(recv, contiguous_placement(16, 1))
        assert t_packed > t_spread

    def test_model_exchange(self):
        assert MODEL.model_exchange_time(0) == 0.0
        assert MODEL.model_exchange_time(25e9) == pytest.approx(1.0 + 2e-6)
        with pytest.raises(ValueError):
            MODEL.model_exchange_time(-1)


class TestSpmd:
    def test_rank_and_size(self):
        out = run_spmd(5, lambda c: (c.rank, c.size), timeout=10)
        assert out == [(r, 5) for r in range(5)]

    def test_send_recv(self):
        def prog(c):
            if c.rank == 0:
                c.send({"payload": 42}, dest=1)
                return None
            if c.rank == 1:
                return c.recv(source=0)

        out = run_spmd(2, prog, timeout=10)
        assert out[1] == {"payload": 42}

    def test_sendrecv_swap(self):
        out = run_spmd(2, lambda c: c.sendrecv(c.rank, peer=1 - c.rank), timeout=10)
        assert out == [1, 0]

    def test_bcast(self):
        out = run_spmd(
            4, lambda c: c.bcast("hello" if c.rank == 2 else None, root=2), timeout=10
        )
        assert out == ["hello"] * 4

    def test_scatter_gather_roundtrip(self):
        def prog(c):
            part = c.scatter([i * i for i in range(c.size)] if c.rank == 0 else None)
            return c.gather(part, root=0)

        out = run_spmd(4, prog, timeout=10)
        assert out[0] == [0, 1, 4, 9]
        assert out[1] is None

    def test_allgather(self):
        out = run_spmd(3, lambda c: c.allgather(c.rank * 10), timeout=10)
        assert out == [[0, 10, 20]] * 3

    def test_allreduce_numpy(self):
        def prog(c):
            return c.allreduce(np.full(3, c.rank, dtype=np.float64))

        out = run_spmd(4, prog, timeout=10)
        for arr in out:
            np.testing.assert_array_equal(arr, [6.0, 6.0, 6.0])

    def test_allreduce_custom_op(self):
        out = run_spmd(4, lambda c: c.allreduce(c.rank + 1, op=max), timeout=10)
        assert out == [4, 4, 4, 4]

    def test_alltoall_personalized(self):
        def prog(c):
            return c.alltoall([f"{c.rank}->{d}" for d in range(c.size)])

        out = run_spmd(3, prog, timeout=10)
        assert out[1] == ["0->1", "1->1", "2->1"]

    def test_consecutive_collectives_do_not_interfere(self):
        def prog(c):
            a = c.allgather(c.rank)
            b = c.allgather(-c.rank)
            return a, b

        out = run_spmd(3, prog, timeout=10)
        assert out[0] == ([0, 1, 2], [0, -1, -2])

    def test_barrier(self):
        def prog(c):
            c.barrier()
            return True

        assert run_spmd(4, prog, timeout=10) == [True] * 4

    def test_exception_propagates(self):
        def prog(c):
            if c.rank == 1:
                raise RuntimeError("boom")
            c.barrier()

        with pytest.raises((RuntimeError, SpmdError)):
            run_spmd(3, prog, timeout=5)

    def test_invalid_peer(self):
        def prog(c):
            c.send(1, dest=99)

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=5)

    def test_scatter_wrong_length(self):
        def prog(c):
            c.scatter([1] if c.rank == 0 else None, root=0)

        with pytest.raises(SpmdError):
            run_spmd(2, prog, timeout=5)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_spmd(0, lambda c: None)
