"""Tests for the command-line experiment runner."""

from __future__ import annotations

import pytest

from repro.experiments.__main__ import main


def test_all_perf_runs_and_passes(capsys):
    assert main(["--all-perf"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out and "Figure 10" in out and "Figure 11" in out
    assert "DIVERGES" not in out


def test_single_figure(capsys):
    assert main(["fig09"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out and "Figure 10" not in out


def test_no_figures_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        main(["fig99"])
