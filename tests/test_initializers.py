"""Tests for weight initializers: distributions, fans, determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensorlib.initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    NormalInit,
    UniformInit,
    Zeros,
    _fans,
)

RNG = lambda: np.random.default_rng(0)  # noqa: E731

ALL_INITS = [
    Constant(0.5),
    Zeros(),
    NormalInit(0.0, 0.1),
    UniformInit(-0.2, 0.2),
    GlorotUniform(),
    GlorotNormal(),
    HeNormal(),
    HeUniform(),
]


@pytest.mark.parametrize("init", ALL_INITS, ids=lambda i: type(i).__name__)
def test_shape_and_dtype(init):
    out = init((64, 32), RNG())
    assert out.shape == (64, 32)
    assert out.dtype == np.float32


@pytest.mark.parametrize("init", ALL_INITS, ids=lambda i: type(i).__name__)
def test_deterministic_given_rng(init):
    a = init((16, 16), np.random.default_rng(7))
    b = init((16, 16), np.random.default_rng(7))
    assert np.array_equal(a, b)


def test_fans():
    assert _fans((10, 20)) == (10, 20)
    assert _fans((5,)) == (5, 5)
    assert _fans(()) == (1, 1)


def test_constant_and_zeros():
    assert np.all(Constant(3.5)((4,), RNG()) == 3.5)
    assert np.all(Zeros()((4, 4), RNG()) == 0.0)


def test_glorot_uniform_bounds_and_scale():
    w = GlorotUniform()((400, 200), RNG())
    limit = np.sqrt(6.0 / 600)
    assert np.all(np.abs(w) <= limit)
    # Uniform on [-L, L] has std L/sqrt(3).
    assert w.std() == pytest.approx(limit / np.sqrt(3), rel=0.05)


def test_glorot_normal_std():
    w = GlorotNormal()((500, 300), RNG())
    assert w.std() == pytest.approx(np.sqrt(2.0 / 800), rel=0.05)


def test_he_normal_std_uses_fan_in():
    w = HeNormal()((500, 100), RNG())
    assert w.std() == pytest.approx(np.sqrt(2.0 / 500), rel=0.05)


def test_he_uniform_bounds():
    w = HeUniform()((300, 50), RNG())
    assert np.all(np.abs(w) <= np.sqrt(6.0 / 300))


def test_normal_init_params():
    w = NormalInit(mean=2.0, stddev=0.01)((1000,), RNG())
    assert w.mean() == pytest.approx(2.0, abs=0.01)
    with pytest.raises(ValueError):
        NormalInit(stddev=-1)


def test_uniform_init_bounds():
    w = UniformInit(0.1, 0.3)((1000,), RNG())
    assert np.all((w >= 0.1) & (w < 0.3))
    with pytest.raises(ValueError):
        UniformInit(1.0, 0.0)
