"""Tests for the machine specs, compute model, and filesystem models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.compute import ComputeModel
from repro.cluster.filesystem import PfsCostModel, SimulatedFilesystem
from repro.cluster.machine import (
    FilesystemSpec,
    GpuSpec,
    MachineSpec,
    NodeSpec,
    PerfCalibration,
    lassen,
)


class TestMachineSpecs:
    def test_lassen_defaults(self):
        m = lassen()
        assert m.node.gpus_per_node == 4
        assert m.num_nodes == 795
        assert m.total_gpus == 3180
        # Dual-rail EDR and NVLink2-class numbers.
        assert m.node.inter_node.bandwidth == pytest.approx(25e9)
        assert m.node.intra_node.bandwidth == pytest.approx(75e9)

    def test_with_override(self):
        m = lassen().with_(num_nodes=10)
        assert m.num_nodes == 10
        assert lassen().num_nodes == 795  # original untouched

    def test_datastore_bytes_per_rank_default_resource_set(self):
        node = NodeSpec()
        quarter = node.memory_bytes * node.usable_memory_fraction / 4
        assert node.datastore_bytes_per_rank() == pytest.approx(quarter, rel=1e-6)

    def test_datastore_bytes_per_rank_full_node(self):
        node = NodeSpec()
        full = node.memory_bytes * node.usable_memory_fraction
        assert node.datastore_bytes_per_rank(ranks_per_node=1) == pytest.approx(
            full, rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            GpuSpec(peak_flops=0)
        with pytest.raises(ValueError):
            NodeSpec(gpus_per_node=0)
        with pytest.raises(ValueError):
            FilesystemSpec(aggregate_bandwidth=-1)
        with pytest.raises(ValueError):
            MachineSpec(num_nodes=0)

    def test_cache_pressure_penalty_shape(self):
        cal = PerfCalibration()
        assert cal.cache_pressure_penalty(0.0) == 1.0
        assert cal.cache_pressure_penalty(cal.cache_pressure_knee) == 1.0
        p_mid = cal.cache_pressure_penalty(0.6)
        p_high = cal.cache_pressure_penalty(0.9)
        assert 1.0 < p_mid < p_high
        with pytest.raises(ValueError):
            cal.cache_pressure_penalty(-0.1)


class TestComputeModel:
    def setup_method(self):
        self.model = ComputeModel(lassen())

    def test_sustained_below_peak(self):
        gpu = lassen().gpu
        assert self.model.sustained_flops(128) < gpu.peak_flops * gpu.gemm_efficiency

    def test_small_batch_rolloff(self):
        assert self.model.sustained_flops(8) < self.model.sustained_flops(128)

    def test_per_sample_time_grows_as_batch_shrinks(self):
        flops = 1e9
        t128 = self.model.step_compute_time(flops, 128) / 128
        t8 = self.model.step_compute_time(flops, 8) / 8
        assert t8 > t128

    def test_linear_in_flops(self):
        t1 = self.model.step_compute_time(1e9, 64)
        t2 = self.model.step_compute_time(2e9, 64)
        assert t2 == pytest.approx(2 * t1)

    def test_inference_cheaper_than_training(self):
        assert self.model.inference_time(1e9, 32) < self.model.step_compute_time(
            3e9, 32
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            self.model.step_compute_time(1e9, 0)
        with pytest.raises(ValueError):
            self.model.step_compute_time(-1, 8)


class TestSimulatedFilesystem:
    def test_write_read_and_accounting(self):
        fs = SimulatedFilesystem()
        fs.write("a/b.npz", {"x": 1}, nbytes=1000)
        assert fs.exists("a/b.npz")
        assert fs.nbytes("a/b.npz") == 1000
        assert fs.read_file("a/b.npz") == {"x": 1}
        assert fs.stats.opens == 1
        assert fs.stats.reads == 1
        assert fs.stats.bytes_read == 1000

    def test_opens_per_file_counted(self):
        fs = SimulatedFilesystem()
        fs.write("f", "payload", 10)
        for _ in range(3):
            fs.read_file("f")
        assert fs.stats.opens_per_file["f"] == 3

    def test_missing_file(self):
        with pytest.raises(FileNotFoundError):
            SimulatedFilesystem().open("ghost")

    def test_closed_handle_rejects_read(self):
        fs = SimulatedFilesystem()
        fs.write("f", 1, 1)
        h = fs.open("f")
        h.close()
        with pytest.raises(ValueError):
            h.read()

    def test_total_bytes_and_paths_sorted(self):
        fs = SimulatedFilesystem()
        fs.write("b", 0, 5)
        fs.write("a", 0, 7)
        assert fs.total_bytes == 12
        assert list(fs.paths()) == ["a", "b"]

    def test_overwrite_replaces(self):
        fs = SimulatedFilesystem()
        fs.write("f", 1, 10)
        fs.write("f", 2, 20)
        assert fs.nbytes("f") == 20 and len(fs) == 1

    def test_stats_snapshot_and_reset(self):
        fs = SimulatedFilesystem()
        fs.write("f", 1, 10)
        fs.read_file("f")
        snap = fs.stats.snapshot()
        fs.stats.reset()
        assert snap.opens == 1 and fs.stats.opens == 0

    def test_validation(self):
        fs = SimulatedFilesystem()
        with pytest.raises(ValueError):
            fs.write("", 1, 1)
        with pytest.raises(ValueError):
            fs.write("f", 1, -1)


class TestPfsCostModel:
    def setup_method(self):
        self.pfs = PfsCostModel(FilesystemSpec())

    def test_open_contention_random_vs_bulk(self):
        """Shared-pool random opens degrade far earlier than disjoint
        bulk opens — the preload-vs-naive asymmetry."""
        t_rand = self.pfs.open_time(64, access="random")
        t_bulk = self.pfs.open_time(64, access="bulk")
        assert t_rand > 2 * t_bulk

    def test_open_monotone_in_clients(self):
        assert self.pfs.open_time(100) > self.pfs.open_time(1)

    def test_open_invalid(self):
        with pytest.raises(ValueError):
            self.pfs.open_time(0)
        with pytest.raises(ValueError):
            self.pfs.open_time(1, access="weird")

    def test_stream_bandwidth_caps(self):
        spec = self.pfs.spec
        assert self.pfs.stream_bandwidth(1) == spec.per_stream_bandwidth
        many = self.pfs.stream_bandwidth(1000)
        assert many < spec.per_stream_bandwidth
        assert many <= spec.aggregate_bandwidth / 1000

    def test_aggregate_degradation_kicks_in(self):
        """Effective aggregate at 1024 clients is visibly below spec —
        the Fig.-11 preload degradation mechanism."""
        full = self.pfs.effective_aggregate_bandwidth(16)
        storm = self.pfs.effective_aggregate_bandwidth(1024)
        assert storm < 0.5 * full

    def test_random_reads_much_slower_than_stream(self):
        sample = 200_000
        t_rand = self.pfs.random_sample_read_time(sample, 4)
        t_seq = self.pfs.sequential_read_time(sample, 4)
        assert t_rand > 10 * t_seq

    def test_bulk_preload_combines_open_and_stream(self):
        t = self.pfs.bulk_preload_time(1e9, 10, 16)
        assert t > self.pfs.sequential_read_time(1e9, 16)

    @given(st.integers(1, 2048))
    @settings(max_examples=30, deadline=None)
    def test_total_delivered_bandwidth_monotone_decreasing_per_client(self, n):
        assert self.pfs.stream_bandwidth(n) >= self.pfs.stream_bandwidth(n + 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.pfs.sequential_read_time(-1, 4)
        with pytest.raises(ValueError):
            self.pfs.random_sample_read_time(-1, 4)
        with pytest.raises(ValueError):
            self.pfs.bulk_preload_time(-1, 1, 1)
