"""Tests for the synthetic JAG stack: params, simulator, postprocess,
sampling designs, and dataset generation.

Beyond mechanics, these check the *structural* properties the reproduction
depends on: determinism, smooth-but-nonlinear drive response, asymmetry
degrading compression, view/channel image structure, and the
exploration-ordered (non-IID) sample layout.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jag.dataset import (
    JagDataset,
    JagDatasetConfig,
    JagSchema,
    generate_dataset,
    paper_schema,
    small_schema,
)
from repro.jag.params import NUM_PARAMS, PARAMETER_NAMES, ParameterSpace
from repro.jag.postprocess import NUM_SCALARS, SCALAR_NAMES, derive_scalars
from repro.jag.sampling import design_points, rank1_lattice
from repro.jag.simulator import JagSimulator


class TestParams:
    def test_names_and_dim(self):
        assert NUM_PARAMS == 5
        assert len(PARAMETER_NAMES) == 5

    def test_validate_accepts_unit_cube(self):
        x = np.random.default_rng(0).random((10, 5))
        out = ParameterSpace.validate(x)
        assert out.shape == (10, 5) and out.dtype == np.float32

    def test_validate_promotes_1d(self):
        assert ParameterSpace.validate(np.zeros(5)).shape == (1, 5)

    def test_validate_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ParameterSpace.validate(np.full((1, 5), 1.5))

    def test_validate_rejects_wrong_width(self):
        with pytest.raises(ValueError):
            ParameterSpace.validate(np.zeros((3, 4)))

    def test_column_access(self):
        x = np.arange(10, dtype=np.float32).reshape(2, 5) / 10
        np.testing.assert_array_equal(
            ParameterSpace.column(x, "laser_drive"), x[:, 0]
        )
        with pytest.raises(KeyError):
            ParameterSpace.column(x, "bogus")


class TestSimulator:
    def setup_method(self):
        self.sim = JagSimulator(image_size=12, views=3, channels=4)

    def test_deterministic(self):
        x = np.random.default_rng(1).random((8, 5)).astype(np.float32)
        s1, s2 = self.sim.run(x), self.sim.run(x)
        np.testing.assert_array_equal(s1.fusion_yield, s2.fusion_yield)
        np.testing.assert_array_equal(
            self.sim.render_images(s1), self.sim.render_images(s2)
        )

    def test_drive_monotonically_heats(self):
        """More laser drive -> faster implosion, hotter hot spot."""
        base = np.full((20, 5), 0.5, dtype=np.float32)
        base[:, 0] = np.linspace(0, 1, 20)
        s = self.sim.run(base)
        assert np.all(np.diff(s.velocity) > 0)
        assert np.all(np.diff(s.temperature) > 0)
        assert np.all(np.diff(s.hot_spot_radius) < 0)  # smaller hot spot

    def test_yield_strongly_nonlinear_in_drive(self):
        """Arrhenius reactivity: yield is monotone in drive and spans
        orders of magnitude over the range — the regime where a model
        trained on a low-drive silo cannot extrapolate."""
        x = np.full((5, 5), 0.5, dtype=np.float32)
        x[:, 0] = np.linspace(0, 1, 5)
        y = self.sim.run(x).fusion_yield
        assert np.all(np.diff(y) > 0)
        assert y[-1] / y[0] > 50
        # Relative gains are steeper at the cold end (Arrhenius curvature).
        assert y[1] / y[0] > y[-1] / y[-2]

    def test_asymmetry_degrades_compression(self):
        sym = np.full((1, 5), 0.5, dtype=np.float32)
        asym = sym.copy()
        asym[0, 1] = 1.0  # max P2
        s_sym, s_asym = self.sim.run(sym), self.sim.run(asym)
        assert s_asym.temperature[0] < s_sym.temperature[0]
        assert s_asym.convergence[0] < s_sym.convergence[0]
        assert s_asym.fusion_yield[0] < s_sym.fusion_yield[0]

    def test_images_shape_and_range(self):
        x = np.random.default_rng(2).random((6, 5)).astype(np.float32)
        img = self.sim.render_images(self.sim.run(x))
        assert img.shape == (6, 3, 4, 12, 12)
        assert img.dtype == np.float32
        assert np.all((img >= 0) & (img < 1))

    def test_shape_modes_change_images(self):
        sym = np.full((1, 5), 0.5, dtype=np.float32)
        asym = sym.copy()
        asym[0, 1] = 0.9
        img_sym = self.sim.render_images(self.sim.run(sym))
        img_asym = self.sim.render_images(self.sim.run(asym))
        assert np.abs(img_sym - img_asym).max() > 0.05

    def test_views_differ(self):
        x = np.array([[0.5, 0.9, 0.2, 0.3, 0.5]], dtype=np.float32)
        img = self.sim.render_images(self.sim.run(x))
        assert np.abs(img[0, 0] - img[0, 2]).max() > 0.01

    def test_channels_differ_softer_apparently_larger(self):
        """Soft channels (low index) see a larger apparent hot spot."""
        x = np.full((4, 5), 0.5, dtype=np.float32)
        img = self.sim.render_images(self.sim.run(x))
        soft = (img[:, 0, 0] > 0.05).sum()
        hard = (img[:, 0, -1] > 0.05).sum()
        assert soft > hard

    def test_hotter_is_brighter_in_hard_channels(self):
        """Peak hard-channel intensity rises with temperature (the hot
        spot also shrinks, so compare peaks, not a fixed pixel)."""
        x = np.full((2, 5), 0.5, dtype=np.float32)
        x[1, 0] = 1.0  # hotter
        img = self.sim.render_images(self.sim.run(x))
        assert img[1, 0, 3].max() > img[0, 0, 3].max()

    def test_flat_dim(self):
        assert self.sim.images_flat_dim() == 3 * 4 * 12 * 12

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            JagSimulator(image_size=2)
        with pytest.raises(ValueError):
            JagSimulator(image_size=8, views=0)


class TestPostprocess:
    def test_scalar_block_shape_and_names(self):
        sim = JagSimulator(image_size=8)
        x = np.random.default_rng(3).random((10, 5)).astype(np.float32)
        state = sim.run(x)
        scal = derive_scalars(state, sim.render_images(state))
        assert scal.shape == (10, NUM_SCALARS)
        assert len(SCALAR_NAMES) == 15
        assert np.all(np.isfinite(scal))

    def test_brightness_scalars_come_from_images(self):
        sim = JagSimulator(image_size=8)
        x = np.random.default_rng(4).random((5, 5)).astype(np.float32)
        state = sim.run(x)
        img = sim.render_images(state)
        scal = derive_scalars(state, img)
        idx = SCALAR_NAMES.index("xray_brightness_v0")
        np.testing.assert_allclose(
            scal[:, idx], img.mean(axis=(2, 3, 4))[:, 0], rtol=1e-5
        )

    def test_rejects_bad_image_shape(self):
        sim = JagSimulator(image_size=8)
        state = sim.run(np.zeros((2, 5), dtype=np.float32))
        with pytest.raises(ValueError):
            derive_scalars(state, np.zeros((3, 3, 4, 8, 8)))


class TestSampling:
    @pytest.mark.parametrize("method", ["uniform", "lhs", "sobol", "lattice"])
    def test_in_unit_cube(self, method):
        pts = design_points(64, 5, method=method, seed=1)
        assert pts.shape == (64, 5)
        assert np.all((pts >= 0) & (pts <= 1))

    @pytest.mark.parametrize("method", ["uniform", "lhs", "sobol", "lattice"])
    def test_seeded_reproducible(self, method):
        a = design_points(32, 3, method=method, seed=5)
        b = design_points(32, 3, method=method, seed=5)
        np.testing.assert_array_equal(a, b)

    def test_lattice_low_discrepancy_beats_uniform(self):
        """Rank-1 lattice covers 1-D projections far more evenly."""

        def max_gap(pts):
            return max(np.diff(np.sort(np.concatenate([[0], pts[:, d], [1]]))).max() for d in range(pts.shape[1]))

        lat = design_points(256, 5, method="lattice", seed=0)
        uni = design_points(256, 5, method="uniform", seed=0)
        assert max_gap(lat) < max_gap(uni)

    def test_lhs_marginals_stratified(self):
        pts = design_points(100, 2, method="lhs", seed=0)
        counts, _ = np.histogram(pts[:, 0], bins=10, range=(0, 1))
        assert np.all(counts == 10)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            design_points(8, 2, method="magic")

    def test_rank1_lattice_validation(self):
        with pytest.raises(ValueError):
            rank1_lattice(0, 3)


class TestSchema:
    def test_paper_schema_matches_paper_numbers(self):
        s = paper_schema()
        assert s.image_size == 64 and s.n_images == 12
        # ~190 KB/sample => 10M samples ~ 2 TB, the paper's database size.
        assert s.sample_nbytes == pytest.approx(196_688, abs=100)
        assert 10_000_000 * s.sample_nbytes == pytest.approx(2e12, rel=0.05)

    def test_small_schema(self):
        s = small_schema(16)
        assert s.image_flat_dim == 3 * 4 * 16 * 16

    def test_invalid(self):
        with pytest.raises(ValueError):
            JagSchema(image_size=0)


class TestDatasetGeneration:
    @pytest.fixture(scope="class")
    def ds(self) -> JagDataset:
        return generate_dataset(
            JagDatasetConfig(
                n_samples=400, schema=small_schema(8), seed=11, chunk=128
            )
        )

    def test_shapes(self, ds):
        assert ds.params.shape == (400, 5)
        assert ds.scalars.shape == (400, 15)
        assert ds.images.shape == (400, ds.schema.image_flat_dim)

    def test_scalars_zscored(self, ds):
        np.testing.assert_allclose(ds.scalars.mean(axis=0), 0, atol=1e-3)
        np.testing.assert_allclose(ds.scalars.std(axis=0), 1, atol=1e-2)

    def test_denormalize_roundtrip(self, ds):
        raw = ds.denormalize_scalars(ds.scalars)
        re_z = (raw - ds.scalar_mean) / ds.scalar_std
        np.testing.assert_allclose(re_z, ds.scalars, atol=1e-5)

    def test_sweep_order_is_drive_sorted(self, ds):
        """Exploration order: early samples low drive, late samples high."""
        drive = ds.params[:, 0]
        assert drive[:100].mean() < 0.25
        assert drive[-100:].mean() > 0.75

    def test_design_order_not_sorted(self):
        ds2 = generate_dataset(
            JagDatasetConfig(
                n_samples=400, schema=small_schema(8), seed=11, order="design"
            )
        )
        drive = ds2.params[:, 0]
        assert abs(drive[:100].mean() - drive[-100:].mean()) < 0.2

    def test_chunking_invariant(self):
        cfg_a = JagDatasetConfig(n_samples=100, schema=small_schema(8), seed=5, chunk=16)
        cfg_b = JagDatasetConfig(n_samples=100, schema=small_schema(8), seed=5, chunk=100)
        a, b = generate_dataset(cfg_a), generate_dataset(cfg_b)
        np.testing.assert_array_equal(a.images, b.images)
        np.testing.assert_array_equal(a.scalars, b.scalars)

    def test_train_val_split_strided_disjoint(self, ds):
        tr, va = ds.train_val_split(0.1, mode="strided")
        assert np.intersect1d(tr, va).size == 0
        assert tr.size + va.size == 400
        # Strided validation spans the sweep.
        assert ds.params[va, 0].max() - ds.params[va, 0].min() > 0.8

    def test_train_val_split_tail(self, ds):
        tr, va = ds.train_val_split(0.25, mode="tail")
        assert va.size == 100 and va[0] == 300

    def test_split_validation(self, ds):
        with pytest.raises(ValueError):
            ds.train_val_split(0.0)
        with pytest.raises(ValueError):
            ds.train_val_split(0.1, mode="bogus")

    def test_image_tensor_roundtrip(self, ds):
        t = ds.image_tensor([0, 1])
        s = ds.schema
        assert t.shape == (2, s.views, s.channels, s.image_size, s.image_size)
        np.testing.assert_array_equal(t.reshape(2, -1), ds.images[:2])

    def test_reader_integration(self, ds):
        reader = ds.reader(np.arange(100), np.random.default_rng(0))
        mb = next(iter(reader.epoch(10)))
        assert set(mb.feeds) == {"images", "params", "scalars"}

    def test_internal_consistency_scalars_vs_images(self, ds):
        """Brightness scalars must match the stored images (joint modality)."""
        idx = SCALAR_NAMES.index("xray_brightness_v1")
        raw = ds.denormalize_scalars(ds.scalars)[:, idx]
        img = ds.image_tensor(np.arange(400))
        np.testing.assert_allclose(raw, img.mean(axis=(2, 3, 4))[:, 1], atol=1e-4)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=5, deadline=None)
    def test_generation_deterministic_property(self, seed):
        cfg = JagDatasetConfig(n_samples=32, schema=small_schema(8), seed=seed)
        a, b = generate_dataset(cfg), generate_dataset(cfg)
        np.testing.assert_array_equal(a.images, b.images)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            JagDatasetConfig(n_samples=0)
        with pytest.raises(ValueError):
            JagDatasetConfig(order="sorted")
