"""Tests for the layer DAG and the Model wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensorlib import losses
from repro.tensorlib.graph import GraphError, LayerGraph
from repro.tensorlib.layers import (
    Activation,
    Concatenation,
    FullyConnected,
    Identity,
    Input,
    Slice,
    Sum,
)
from repro.tensorlib.model import mlp
from repro.utils.rng import RngFactory

RNGS = lambda s=0: RngFactory(s)  # noqa: E731


def simple_graph():
    g = LayerGraph()
    g.add(Input("x", shape=(4,)))
    g.add(FullyConnected("fc", units=3), parents=["x"])
    g.add(Activation("act", "tanh"), parents=["fc"])
    return g


class TestGraphStructure:
    def test_duplicate_name_rejected(self):
        g = LayerGraph()
        g.add(Input("x", shape=(2,)))
        with pytest.raises(GraphError):
            g.add(Input("x", shape=(3,)))

    def test_unknown_parent_rejected(self):
        g = LayerGraph()
        with pytest.raises(GraphError):
            g.add(Identity("i"), parents=["nope"])

    def test_add_after_build_rejected(self):
        g = simple_graph()
        g.build(RNGS())
        with pytest.raises(GraphError):
            g.add(Identity("late"), parents=["act"])

    def test_double_build_rejected(self):
        g = simple_graph()
        g.build(RNGS())
        with pytest.raises(GraphError):
            g.build(RNGS())

    def test_topological_order_respects_edges(self):
        g = simple_graph()
        g.build(RNGS())
        order = g.topological_order()
        assert order.index("x") < order.index("fc") < order.index("act")

    def test_deterministic_build_independent_of_insertion(self):
        def build_one(reverse: bool):
            g = LayerGraph()
            g.add(Input("x", shape=(3,)))
            names = ["fc_b", "fc_a"] if reverse else ["fc_a", "fc_b"]
            for n in names:
                g.add(FullyConnected(n, units=2), parents=["x"])
            g.build(RNGS(1))
            return {w.name: w.value.copy() for L in g.layers.values() for w in L.weights}

        w1, w2 = build_one(False), build_one(True)
        assert all(np.array_equal(w1[k], w2[k]) for k in w1)


class TestGraphExecution:
    def test_forward_shapes_and_default_outputs(self):
        g = simple_graph()
        g.build(RNGS())
        out = g.forward({"x": np.zeros((5, 4))})
        assert set(out) == {"act"}  # only sink layers by default
        assert out["act"].shape == (5, 3)

    def test_missing_feed_rejected(self):
        g = simple_graph()
        g.build(RNGS())
        with pytest.raises(GraphError):
            g.forward({})

    def test_unknown_feed_rejected(self):
        g = simple_graph()
        g.build(RNGS())
        with pytest.raises(GraphError):
            g.forward({"x": np.zeros((2, 4)), "bogus": np.zeros((2, 1))})

    def test_inconsistent_batch_rejected(self):
        g = LayerGraph()
        g.add(Input("a", shape=(2,)))
        g.add(Input("b", shape=(2,)))
        g.add(Concatenation("c"), parents=["a", "b"])
        g.build(RNGS())
        with pytest.raises(GraphError):
            g.forward({"a": np.zeros((2, 2)), "b": np.zeros((3, 2))})

    def test_backward_without_forward_rejected(self):
        g = simple_graph()
        g.build(RNGS())
        with pytest.raises(GraphError):
            g.backward({"act": np.zeros((5, 3))})

    def test_backward_shape_mismatch_rejected(self):
        g = simple_graph()
        g.build(RNGS())
        g.forward({"x": np.zeros((5, 4))})
        with pytest.raises(GraphError):
            g.backward({"act": np.zeros((5, 99))})

    def test_diamond_fan_out_gradient_accumulates(self):
        # x -> a and x -> b, both summed: d/dx = grad_a + grad_b.
        g = LayerGraph()
        g.add(Input("x", shape=(3,)))
        g.add(Identity("a"), parents=["x"])
        g.add(Identity("b"), parents=["x"])
        g.add(Sum("s"), parents=["a", "b"])
        g.build(RNGS())
        x = np.ones((2, 3), dtype=np.float32)
        g.forward({"x": x})
        dx = g.backward({"s": np.ones((2, 3), dtype=np.float32)})["x"]
        np.testing.assert_array_equal(dx, 2 * np.ones((2, 3)))

    def test_multi_output_backward(self):
        g = LayerGraph()
        g.add(Input("x", shape=(4,)))
        g.add(Slice("lo", 0, 2), parents=["x"])
        g.add(Slice("hi", 2, 4), parents=["x"])
        g.build(RNGS())
        g.forward({"x": np.zeros((1, 4))}, outputs=["lo", "hi"])
        dx = g.backward(
            {
                "lo": np.full((1, 2), 1.0, dtype=np.float32),
                "hi": np.full((1, 2), 2.0, dtype=np.float32),
            }
        )["x"]
        np.testing.assert_array_equal(dx, [[1, 1, 2, 2]])

    def test_flops_sum(self):
        g = simple_graph()
        g.build(RNGS())
        assert g.flops_per_sample() == 2 * 4 * 3 + 4 * 3


class TestModel:
    def test_weight_names_qualified_and_unique(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        names = [w.name for w in m.weights]
        assert all(n.startswith("net/") for n in names)
        assert len(set(names)) == len(names)

    def test_weight_lookup_by_suffix(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        assert m.weight("fc0/kernel") is m.weight("net/fc0/kernel")

    def test_state_roundtrip_bytes(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        state = m.get_state()
        payload = m.serialize_state()
        # Perturb, then restore.
        for w in m.weights:
            w.value += 1.0
        m.load_state_bytes(payload)
        for k, v in m.get_state().items():
            np.testing.assert_array_equal(v, state[k])

    def test_set_state_strict(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        state = m.get_state()
        state.pop(next(iter(state)))
        with pytest.raises(ValueError):
            m.set_state(state)

    def test_set_state_shape_checked(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        state = m.get_state()
        k = next(iter(state))
        state[k] = np.zeros((1, 1), dtype=np.float32)
        with pytest.raises(ValueError):
            m.set_state(state)

    def test_zero_grad(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        x = np.ones((2, 4), dtype=np.float32)
        out = m.forward({"in": x}, outputs=["out"])["out"]
        _, g = losses.mean_squared_error(out, np.zeros_like(out))
        m.backward({"out": g})
        assert any(np.abs(w.grad).sum() > 0 for w in m.trainable_weights)
        m.zero_grad()
        assert all(np.abs(w.grad).sum() == 0 for w in m.weights)

    def test_training_flops_triple(self):
        m = mlp("net", RNGS(), 4, [8], 2, activation="identity")
        assert m.flops_per_sample(training=True) == 3 * m.flops_per_sample()

    def test_identical_seeds_identical_models(self):
        m1 = mlp("net", RNGS(11), 6, [16, 16], 3)
        m2 = mlp("net", RNGS(11), 6, [16, 16], 3)
        for w1, w2 in zip(m1.weights, m2.weights):
            np.testing.assert_array_equal(w1.value, w2.value)

    def test_different_model_names_different_weights(self):
        rngs = RNGS(11)
        m1 = mlp("a", rngs, 6, [16], 3)
        m2 = mlp("b", rngs, 6, [16], 3)
        assert not np.array_equal(m1.weights[0].value, m2.weights[0].value)

    def test_mlp_output_activation(self):
        m = mlp("net", RNGS(), 4, [8], 2, output_activation="sigmoid")
        out = m.predict({"in": np.random.default_rng(0).normal(size=(9, 4))}, "out")
        assert np.all((out >= 0) & (out <= 1))

    def test_mlp_invalid_dims(self):
        with pytest.raises(ValueError):
            mlp("net", RNGS(), 0, [8], 2)

    def test_input_gradients_returned(self):
        m = mlp("net", RNGS(), 4, [8], 2)
        x = np.random.default_rng(1).normal(size=(3, 4)).astype(np.float32)
        out = m.forward({"in": x}, outputs=["out"])["out"]
        grads = m.backward({"out": np.ones_like(out)})
        assert grads["in"].shape == x.shape
