"""Tests for the pluggable population topologies (:mod:`repro.core.topology`).

Covers the strategy contract (plan determinism, bye handling, pairing
telemetry), each shipped topology's structure (random pairing, grid
neighborhoods, MD-GAN consensus + rotation, async readiness queue),
checkpoint round-trips of topology state (RNG stream, grid shape,
readiness cursor) through the population manifest, the serve-plane
topology label, and the per-neighborhood health-collapse detector.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import (
    AsyncPairwise,
    CellularGrid,
    Isolated,
    LtfbConfig,
    LtfbDriver,
    MultiDiscriminator,
    Pairing,
    RandomPairwise,
    RoundPlan,
    Topology,
    TOPOLOGY_NAMES,
    build_population,
    resolve_topology,
)
from repro.core.checkpoint import CheckpointMismatchError, CheckpointStore
from repro.core.topology import _infer_grid
from repro.telemetry import Callback
from repro.utils.rng import RngFactory


def _names(k: int) -> list[str]:
    return [f"trainer{i:02d}" for i in range(k)]


def _bound(topology: Topology, k: int, seed: int = 5) -> Topology:
    topology.bind(_names(k), np.random.default_rng(seed))
    return topology


def _population(tiny_dataset, tiny_spec, tiny_autoencoder, k, seed=77):
    spec = dataclasses.replace(tiny_spec, k=k)
    return build_population(
        tiny_dataset,
        np.arange(tiny_dataset.n_samples - 64),
        RngFactory(seed).child("topo"),
        spec,
        tiny_autoencoder,
    )


def _run(
    trainers, tiny_dataset, topology, rounds=2, steps_per_round=2,
    rng_seed=7, callbacks=(), backend=None, history=None,
):
    val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    driver = LtfbDriver(
        trainers,
        np.random.default_rng(rng_seed),
        LtfbConfig(steps_per_round=steps_per_round, rounds=rounds),
        eval_batch={k: v[val_ids] for k, v in tiny_dataset.fields.items()},
        backend=backend,
        topology=topology,
        history=history,
    )
    history = driver.run(callbacks=list(callbacks))
    return driver, history


class _PairingEvents(Callback):
    def __init__(self):
        self.events = []

    def on_pairing(self, event):
        self.events.append(dict(event.payload))


class TestResolve:
    def test_names(self):
        assert isinstance(resolve_topology("random_pairwise"), RandomPairwise)
        assert isinstance(resolve_topology("cellular_grid"), CellularGrid)
        assert isinstance(
            resolve_topology("multi_discriminator"), MultiDiscriminator
        )
        assert isinstance(resolve_topology("async_pairwise"), AsyncPairwise)
        assert isinstance(resolve_topology("isolated"), Isolated)
        assert set(TOPOLOGY_NAMES) == {
            "random_pairwise", "cellular_grid", "multi_discriminator",
            "async_pairwise", "isolated",
        }

    def test_none_is_isolated(self):
        assert isinstance(resolve_topology(None), Isolated)

    def test_instance_passthrough(self):
        topology = CellularGrid(shape=(2, 2))
        assert resolve_topology(topology) is topology

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown topology"):
            resolve_topology("torus")

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_topology(7)


class TestLifecycle:
    def test_double_bind_raises(self):
        topology = _bound(RandomPairwise(), 4)
        with pytest.raises(RuntimeError, match="already bound"):
            topology.bind(_names(4), np.random.default_rng(0))

    def test_empty_population_rejected(self):
        with pytest.raises(ValueError, match="empty population"):
            RandomPairwise().bind([], np.random.default_rng(0))

    def test_missing_rng_is_a_typed_error(self):
        topology = RandomPairwise()
        topology.bind(_names(4), None)
        with pytest.raises(ValueError, match="pairing RNG"):
            topology.plan_round(0)

    def test_async_requires_rng_at_bind(self):
        with pytest.raises(ValueError, match="pairing RNG"):
            AsyncPairwise().bind(_names(4), None)

    def test_restore_before_bind_raises(self):
        with pytest.raises(RuntimeError, match="bind"):
            RandomPairwise().restore({"kind": "random_pairwise"})


class TestRandomPairwise:
    def test_plan_matches_single_permutation_draw(self):
        topology = _bound(RandomPairwise(), 6, seed=11)
        perm = np.random.default_rng(11).permutation(6)
        plan = topology.plan_round(0)
        assert [(p.a, p.b) for p in plan.pairs] == [
            (perm[0], perm[1]), (perm[2], perm[3]), (perm[4], perm[5]),
        ]
        assert plan.byes == ()

    def test_odd_population_bye_is_deterministic(self):
        plans = [
            _bound(RandomPairwise(), 5, seed=3).plan_round(0)
            for _ in range(2)
        ]
        assert plans[0] == plans[1]
        assert len(plans[0].pairs) == 2
        assert len(plans[0].byes) == 1
        paired = {i for p in plans[0].pairs for i in (p.a, p.b)}
        assert set(plans[0].byes) | paired == set(range(5))

    def test_state_roundtrip_realigns_the_stream(self):
        a = _bound(RandomPairwise(), 4, seed=1)
        a.plan_round(0)
        state = a.state()
        assert state["kind"] == "random_pairwise"
        b = _bound(RandomPairwise(), 4, seed=999)  # deliberately misaligned
        b.restore(state)
        assert b.plan_round(1) == a.plan_round(1)

    def test_restore_wrong_kind(self):
        topology = _bound(RandomPairwise(), 4)
        with pytest.raises(CheckpointMismatchError, match="cellular_grid"):
            topology.restore({"kind": "cellular_grid"})


class TestCellularGrid:
    def test_infer_grid_prefers_square(self):
        assert _infer_grid(4) == (2, 2)
        assert _infer_grid(6) == (2, 3)
        assert _infer_grid(12) == (3, 4)
        assert _infer_grid(5) == (1, 5)  # prime: 1D ring
        assert _infer_grid(2) == (1, 2)

    def test_shape_must_tile_population(self):
        with pytest.raises(ValueError, match="does not tile"):
            _bound(CellularGrid(shape=(2, 3)), 4)

    def test_bad_shape_and_neighborhood_rejected(self):
        with pytest.raises(ValueError, match="neighborhood"):
            CellularGrid(neighborhood="hexagonal")
        with pytest.raises(ValueError, match="shape"):
            CellularGrid(shape=(0, 2))
        with pytest.raises(ValueError, match="shape"):
            CellularGrid(shape=(2, 2, 2))

    def test_neighborhood_labels_are_grid_cells(self):
        topology = _bound(CellularGrid(shape=(2, 2)), 4)
        assert [topology.neighborhood_of(i) for i in range(4)] == [
            "cell(0,0)", "cell(0,1)", "cell(1,0)", "cell(1,1)",
        ]

    def test_plan_is_deterministic_and_local(self):
        topology = _bound(CellularGrid(shape=(2, 2)), 4)
        plan0 = topology.plan_round(0)  # rightward: row neighbors
        assert {(p.a, p.b) for p in plan0.pairs} == {(0, 1), (2, 3)}
        plan1 = topology.plan_round(1)  # downward: column neighbors
        assert {(p.a, p.b) for p in plan1.pairs} == {(0, 2), (1, 3)}
        assert plan0.byes == plan1.byes == ()
        assert all(p.neighborhood for p in plan0.pairs)
        # No RNG involved: identical calls, identical plans.
        assert topology.plan_round(0) == plan0

    def test_ring_wraparound_rotates_byes(self):
        topology = _bound(CellularGrid(), 3)  # 1D ring of 3
        seen_byes = {topology.plan_round(r).byes for r in range(4)}
        assert all(len(b) == 1 for b in seen_byes)
        assert len(seen_byes) > 1  # the brick phase rotates the odd one out

    def test_moore_adds_diagonals(self):
        von = _bound(CellularGrid(shape=(2, 2)), 4)
        moore = _bound(CellularGrid(shape=(2, 2), neighborhood="moore"), 4)
        assert len(moore._directions()) == 4 > len(von._directions())
        diag = moore.plan_round(2)  # third direction: (1, 1)
        assert {(p.a, p.b) for p in diag.pairs} == {(0, 3), (1, 2)}

    def test_state_roundtrip_and_mismatches(self):
        topology = _bound(CellularGrid(shape=(2, 2)), 4)
        state = topology.state()
        assert state == {
            "kind": "cellular_grid",
            "shape": [2, 2],
            "neighborhood": "von_neumann",
        }
        fresh = _bound(CellularGrid(shape=(2, 2)), 4)
        fresh.restore(state)  # no error
        ring = _bound(CellularGrid(shape=(4,)), 4)
        with pytest.raises(CheckpointMismatchError, match="grid shape"):
            ring.restore(state)
        moore = _bound(CellularGrid(shape=(2, 2), neighborhood="moore"), 4)
        with pytest.raises(CheckpointMismatchError, match="neighborhood"):
            moore.restore(state)


class TestAsyncPairwiseUnit:
    def test_pairs_in_readiness_order(self):
        topology = _bound(AsyncPairwise(), 4, seed=2)
        topology.begin_round(0)
        assert topology.on_ready(2) is None  # first finisher waits
        pairing = topology.on_ready(0)
        assert pairing == Pairing(2, 0)
        assert topology.on_ready(3) is None
        assert topology.on_ready(1) == Pairing(3, 1)
        assert topology.finish_round() == ()

    def test_leftover_waiter_is_the_bye(self):
        topology = _bound(AsyncPairwise(), 3, seed=2)
        topology.begin_round(0)
        topology.on_ready(1)
        topology.on_ready(0)
        topology.on_ready(2)
        assert topology.finish_round() == (2,)

    def test_state_carries_cursor_and_rng(self):
        topology = _bound(AsyncPairwise(), 3, seed=2)
        topology.begin_round(0)
        for i in range(3):
            topology.on_ready(i)
        topology.finish_round()
        state = topology.state()
        assert state["ready_cursor"] == 3
        fresh = _bound(AsyncPairwise(), 3, seed=404)
        fresh.restore(state)
        assert fresh._ready_cursor == 3
        assert (
            fresh._require_rng().bit_generator.state
            == topology._require_rng().bit_generator.state
        )

    def test_sync_hooks_raise_on_sync_topologies(self):
        topology = _bound(RandomPairwise(), 4)
        with pytest.raises(NotImplementedError, match="not barrier-free"):
            topology.begin_round(0)
        with pytest.raises(NotImplementedError, match="synchronous"):
            _bound(AsyncPairwise(), 4).plan_round(0)


@pytest.mark.parametrize(
    "topology_name",
    ["random_pairwise", "cellular_grid", "multi_discriminator",
     "async_pairwise"],
)
class TestByesAndPairingEvents:
    """Satellite: the odd-population bye must be deterministic and
    telemetry-visible under every topology."""

    def test_odd_population_run(
        self, topology_name, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=3)
        events = _PairingEvents()
        driver, history = _run(
            trainers, tiny_dataset, topology_name, callbacks=[events]
        )
        assert history.rounds_completed == 2
        assert len(history.pairings) == len(history.byes) == 2
        assert len(events.events) == 2
        names = {t.name for t in trainers}
        for payload, pairs, byes in zip(
            events.events, history.pairings, history.byes
        ):
            assert payload["topology"] == topology_name
            assert payload["pairs"] == [list(p) for p in pairs]
            assert payload["bye"] == byes
            assert "neighborhoods" in payload
            # Pairs and byes partition the population (MD consensus pairs
            # overlap on the best trainer instead, and has no byes).
            flat = {n for p in pairs for n in p} | set(byes)
            assert flat <= names
            if topology_name != "multi_discriminator":
                assert len(byes) == 1  # odd population: exactly one bye
                assert sorted(flat) == sorted(names)

    def test_byes_reproduce_across_runs(
        self, topology_name, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        runs = []
        for _ in range(2):
            trainers = _population(
                tiny_dataset, tiny_spec, tiny_autoencoder, k=3
            )
            _, history = _run(trainers, tiny_dataset, topology_name)
            runs.append((history.pairings, history.byes))
        assert runs[0] == runs[1]


class TestMultiDiscriminator:
    def test_consensus_adoption_and_rotation(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=3)
        disc_before = [
            {
                k: v.copy()
                for k, v in t.surrogate.get_full_state().items()
                if k.startswith("discriminator/")
            }
            for t in trainers
        ]
        driver, history = _run(
            trainers, tiny_dataset, "multi_discriminator", rounds=1
        )
        # Consensus: every tournament names the same partner (the best).
        partners = {r.partner for r in history.tournaments}
        assert len(partners) == 1
        assert len(history.tournaments) == 2  # k-1 verdicts
        for record in history.tournaments:
            assert record.adopted_partner == (
                record.partner_score < record.own_score
            )
        # Rotation: after 1 round trainer i holds the *trained* successor
        # discriminator; all three discriminators moved.
        for i, t in enumerate(trainers):
            now = {
                k: v
                for k, v in t.surrogate.get_full_state().items()
                if k.startswith("discriminator/")
            }
            src = (i + 1) % 3
            # Weights came from the ring successor's lineage, not its own
            # pre-round state (the successor trained in between, so exact
            # equality is with the successor's post-train weights — just
            # assert its own pre-round disc is gone).
            assert not all(
                np.array_equal(now[k], disc_before[i][k]) for k in now
            )
            assert src != i

    def test_rotation_counter_roundtrips(self):
        topology = _bound(MultiDiscriminator(), 3)
        topology._rotations = 5
        state = topology.state()
        assert state == {"kind": "multi_discriminator", "rotations": 5}
        fresh = _bound(MultiDiscriminator(), 3)
        fresh.restore(state)
        assert fresh._rotations == 5


class TestAsyncPairwiseRuns:
    def test_serial_async_is_deterministic(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        histories = []
        for _ in range(2):
            trainers = _population(
                tiny_dataset, tiny_spec, tiny_autoencoder, k=3
            )
            _, history = _run(
                trainers, tiny_dataset, "async_pairwise", rounds=3
            )
            histories.append(history)
        a, b = histories
        assert a.tournaments == b.tournaments
        assert a.pairings == b.pairings
        assert a.byes == b.byes
        assert a.train_losses == b.train_losses

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_parallel_backends_complete_healthy(
        self, backend_name, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        from repro.exec import resolve_backend
        from repro.telemetry import HealthMonitor

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=3)
        events = _PairingEvents()
        driver, history = _run(
            trainers,
            tiny_dataset,
            "async_pairwise",
            rounds=2,
            backend=resolve_backend(backend_name, max_workers=2),
            callbacks=[events, HealthMonitor()],
        )
        assert history.rounds_completed == 2
        # Tiny workloads legitimately trip the fetch-stall heuristic;
        # only model pathologies count against the run here.
        assert not [
            w for w in history.health_warnings
            if w.kind in ("loss_divergence", "winrate_collapse")
        ]
        assert all(t.steps_done == 4 for t in driver.trainers)
        # Every round emitted a pairing event with topology attribution
        # and one pair + one bye (k=3).
        assert [e["topology"] for e in events.events] == [
            "async_pairwise", "async_pairwise",
        ]
        for e in events.events:
            assert len(e["pairs"]) == 1 and len(e["bye"]) == 1


class TestCheckpointTopologyState:
    """Satellite: mid-run checkpoint/resume restores each topology's
    state — RNG stream, grid shape, readiness cursor — via the population
    manifest, replacing the old burned-draw realignment."""

    ROUNDS = 4
    INTERRUPT_AT = 2
    STEPS_PER_ROUND = 6  # epoch-aligned for k=2 (see test_checkpoint)

    def _pop(self, tiny_dataset, tiny_spec, tiny_autoencoder):
        spec = dataclasses.replace(tiny_spec, k=2)
        return build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(77),
            spec,
            tiny_autoencoder,
        )

    def _driver(self, trainers, tiny_dataset, topology, rounds,
                rng_seed=424, history=None):
        val_ids = np.arange(
            tiny_dataset.n_samples - 64, tiny_dataset.n_samples
        )
        return LtfbDriver(
            trainers,
            np.random.default_rng(rng_seed),
            LtfbConfig(steps_per_round=self.STEPS_PER_ROUND, rounds=rounds),
            eval_batch={
                k: v[val_ids] for k, v in tiny_dataset.fields.items()
            },
            topology=topology,
            history=history,
        )

    @pytest.mark.parametrize(
        "topology_name",
        ["random_pairwise", "cellular_grid", "async_pairwise"],
    )
    def test_resume_matches_uninterrupted_run(
        self, topology_name, tmp_path, tiny_dataset, tiny_spec,
        tiny_autoencoder,
    ):
        store = CheckpointStore(tmp_path / "ckpts")

        ref_pop = self._pop(tiny_dataset, tiny_spec, tiny_autoencoder)
        full = self._driver(
            ref_pop, tiny_dataset, topology_name, self.ROUNDS
        ).run()

        pop_a = self._pop(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver_a = self._driver(
            pop_a, tiny_dataset, topology_name, self.INTERRUPT_AT
        )
        partial = driver_a.run()
        store.save_population(pop_a, "mid-run", topology=driver_a.topology)

        # "New process": fresh population and driver; the pairing RNG seed
        # deliberately differs — load_population's topology restore must
        # realign the stream, with no burned draws.
        pop_b = self._pop(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver_b = self._driver(
            pop_b, tiny_dataset, topology_name, self.ROUNDS,
            rng_seed=999, history=partial,
        )
        store.load_population("mid-run", pop_b, topology=driver_b.topology)
        resumed = driver_b.run()

        assert resumed.rounds_completed == full.rounds_completed
        assert resumed.pairings == full.pairings
        assert resumed.byes == full.byes
        assert resumed.tournaments == full.tournaments
        assert resumed.train_losses == full.train_losses
        assert resumed.eval_series == full.eval_series
        for ref, res in zip(ref_pop, pop_b):
            for key, arr in ref.generator_state().items():
                np.testing.assert_array_equal(arr, res.generator_state()[key])

    def test_manifest_records_topology(
        self, tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        store = CheckpointStore(tmp_path / "ckpts")
        trainers = self._pop(tiny_dataset, tiny_spec, tiny_autoencoder)
        topology = CellularGrid(shape=(1, 2))
        topology.bind([t.name for t in trainers], np.random.default_rng(0))
        store.save_population(trainers, "tagged", topology=topology)
        snapshot = store.load_ensemble("tagged")
        assert snapshot.topology == "cellular_grid"
        # Mapping form works too, and a kind-less mapping is rejected.
        store.save_population(
            trainers, "mapped", topology={"kind": "isolated"}
        )
        assert store.load_ensemble("mapped").topology == "isolated"
        with pytest.raises(ValueError, match="kind"):
            store.save_population(trainers, "bad", topology={"shape": [1, 2]})

    def test_kind_mismatch_is_typed(
        self, tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        store = CheckpointStore(tmp_path / "ckpts")
        trainers = self._pop(tiny_dataset, tiny_spec, tiny_autoencoder)
        grid = _bound(CellularGrid(shape=(1, 2)), 2)
        grid._names = [t.name for t in trainers]
        store.save_population(trainers, "grid-run", topology=grid)
        wrong = _bound(RandomPairwise(), 2)
        with pytest.raises(CheckpointMismatchError, match="cellular_grid"):
            store.load_population("grid-run", trainers, topology=wrong)

    def test_pre_topology_manifest_loads_without_topology(
        self, tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        store = CheckpointStore(tmp_path / "ckpts")
        trainers = self._pop(tiny_dataset, tiny_spec, tiny_autoencoder)
        store.save_population(trainers, "legacy")  # no topology recorded
        assert store.load_ensemble("legacy").topology is None
        store.load_population("legacy", trainers)  # no error


class TestServeTopologyLabel:
    """Satellite: the serving plane surfaces the training topology."""

    def test_registry_and_metrics_expose_topology(
        self, tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        from repro.serve import ModelRegistry, ServeConfig, SurrogateServer

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        driver, _ = _run(
            trainers, tiny_dataset, "cellular_grid", rounds=1
        )
        store = CheckpointStore(tmp_path / "ckpts")
        store.save_autoencoder(tiny_autoencoder)
        store.save_population(
            trainers, "campaign", winner=trainers[0].name,
            topology=driver.topology,
        )
        registry = ModelRegistry(store, max_batch=8)
        model = registry.refresh()
        assert model is not None
        assert model.topology == "cellular_grid"
        server = SurrogateServer(registry, ServeConfig(max_batch=8))
        text = server.metrics.render_prometheus()
        assert "repro_serve_model_info" in text
        assert 'topology="cellular_grid"' in text
        assert server.stats()["model"]["topology"] == "cellular_grid"


class TestNeighborhoodHealth:
    """Satellite: per-neighborhood win-rate collapse detection."""

    def _monitor(self, **kwargs):
        from types import SimpleNamespace

        from repro.telemetry import HealthMonitor, TelemetryHub

        hub = TelemetryHub()
        monitor = HealthMonitor(**kwargs)
        hub.subscribe(monitor)
        monitor.on_run_begin(SimpleNamespace(telemetry=hub))
        return hub, monitor

    def test_neighborhood_collapse_flags_early(self):
        # One trainer sweeps its grid cell: 4 adoptions in one
        # neighborhood trip the local detector while the population total
        # (4 < 6) stays under the global floor.
        hub, monitor = self._monitor()
        for r in range(4):
            hub.emit(
                "tournament", round=r, trainer="t0", partner="t1",
                own_score=1.0, partner_score=0.0, adopted=True,
                topology="cellular_grid", neighborhood="cell(0,0)|cell(0,1)",
            )
            hub.emit("round_end", round=r, train_s=1.0)
        assert [w.kind for w in monitor.warnings] == ["winrate_collapse"]
        assert "cell(0,0)|cell(0,1)" in monitor.warnings[0].message
        assert monitor.warnings[0].trainer == "t1"

    def test_population_collapse_message_unchanged(self):
        # Events without a neighborhood reproduce the historical
        # population-wide message verbatim.
        hub, monitor = self._monitor()
        for r in range(3):
            for _ in range(3):
                hub.emit(
                    "tournament", round=r, trainer="loser", partner="t7",
                    own_score=0.0, partner_score=1.0, adopted=True,
                )
            hub.emit("round_end", round=r, train_s=1.0)
        assert len(monitor.warnings) == 1
        assert "the population is collapsing onto one model" in (
            monitor.warnings[0].message
        )

    def test_local_flag_does_not_suppress_population_flag(self):
        # Two adoptions per round, all won by t1 in the same cell: the
        # neighborhood floor (4) trips first, the population floor (6) a
        # round later — both warnings must surface.
        hub, monitor = self._monitor()
        for r in range(3):
            for loser in ("t0", "t2"):
                hub.emit(
                    "tournament", round=r, trainer=loser, partner="t1",
                    own_score=1.0, partner_score=0.0, adopted=True,
                    topology="cellular_grid",
                    neighborhood="cell(0,0)|cell(0,1)",
                )
            hub.emit("round_end", round=r, train_s=1.0)
        kinds = [w.kind for w in monitor.warnings]
        assert kinds == ["winrate_collapse", "winrate_collapse"]
        messages = " | ".join(w.message for w in monitor.warnings)
        assert "neighborhood" in messages
        assert "the population is collapsing onto one model" in messages

    def test_below_neighborhood_floor_is_silent(self):
        hub, monitor = self._monitor(neighborhood_min_adoptions=5)
        for r in range(4):
            hub.emit(
                "tournament", round=r, trainer="t0", partner="t1",
                own_score=1.0, partner_score=0.0, adopted=True,
                topology="cellular_grid", neighborhood="cell(0,0)|cell(0,1)",
            )
            hub.emit("round_end", round=r, train_s=1.0)
        assert monitor.warnings == []


class TestKIndependentUnchanged:
    def test_isolated_topology_keeps_kindependent_shape(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        from repro.core import KIndependentDriver

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        driver = KIndependentDriver(
            trainers, LtfbConfig(steps_per_round=2, rounds=2)
        )
        history = driver.run()
        assert isinstance(driver.topology, Isolated)
        assert history.pairings == []
        assert history.byes == []
        assert history.tournaments == []
        assert history.rounds_completed == 2

    def test_isolated_plan_is_empty(self):
        topology = _bound(Isolated(), 3)
        assert topology.plan_round(0) == RoundPlan()
