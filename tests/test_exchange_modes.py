"""Tests for tournament exchange scopes and adoption policies."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.ensemble import build_population
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.core.trainer import TrainerConfig
from repro.utils.rng import RngFactory


@pytest.fixture()
def make_pair(tiny_dataset, tiny_spec, tiny_autoencoder):
    def build(adopt="exchange", seed=11):
        spec = dataclasses.replace(
            tiny_spec,
            k=2,
            trainer=TrainerConfig(batch_size=32, adopt_optimizer=adopt),
        )
        train_ids = np.arange(tiny_dataset.n_samples - 64)
        return build_population(
            tiny_dataset, train_ids, RngFactory(seed), spec, tiny_autoencoder
        )

    return build


class TestExchangePackage:
    def test_generator_package_contents(self, make_pair):
        a, _ = make_pair(adopt="exchange")
        a.train_steps(2)
        pkg = a.exchange_package("generator")
        assert pkg["scope"] == "generator"
        assert all(k.startswith(("forward/", "inverse/")) for k in pkg["weights"])
        assert pkg["gen_optimizer"]["step_count"] == a.gen_optimizer.step_count
        assert "disc_optimizer" not in pkg

    def test_full_package_contents(self, make_pair):
        a, _ = make_pair(adopt="exchange")
        a.train_steps(1)
        pkg = a.exchange_package("full")
        assert any(k.startswith("discriminator/") for k in pkg["weights"])
        assert "disc_optimizer" in pkg

    def test_keep_mode_ships_no_optimizer(self, make_pair):
        a, _ = make_pair(adopt="keep")
        assert "gen_optimizer" not in a.exchange_package("generator")

    def test_invalid_scope(self, make_pair):
        a, _ = make_pair()
        with pytest.raises(ValueError):
            a.exchange_package("half")


class TestAdoption:
    def test_exchange_mode_installs_winner_optimizer(self, make_pair):
        a, b = make_pair(adopt="exchange")
        b.train_steps(3)
        pkg = b.exchange_package("generator")
        a.adopt_package(pkg)
        assert a.gen_optimizer.step_count == b.gen_optimizer.step_count
        slots_a = a.gen_optimizer.get_state()["slots"]
        slots_b = b.gen_optimizer.get_state()["slots"]
        for wname in slots_b:
            for sname, value in slots_b[wname].items():
                np.testing.assert_array_equal(slots_a[wname][sname], value)

    def test_keep_mode_preserves_local_optimizer(self, make_pair):
        a, b = make_pair(adopt="keep")
        a.train_steps(2)
        before = a.gen_optimizer.get_state()
        a.adopt_package(b.exchange_package("generator"))
        after = a.gen_optimizer.get_state()
        assert after["step_count"] == before["step_count"]

    def test_reset_mode_clears_optimizer(self, make_pair):
        a, b = make_pair(adopt="reset")
        a.train_steps(2)
        a.adopt_package(b.exchange_package("generator"))
        assert a.gen_optimizer.step_count == 0

    def test_full_adoption_moves_discriminator(self, make_pair):
        a, b = make_pair(adopt="exchange")
        a.adopt_package(b.exchange_package("full"))
        da = a.surrogate.discriminator.get_state()
        db = b.surrogate.discriminator.get_state()
        for k in da:
            np.testing.assert_array_equal(da[k], db[k])

    def test_generator_adoption_keeps_discriminator(self, make_pair):
        a, b = make_pair(adopt="exchange")
        da_before = a.surrogate.discriminator.get_state()
        a.adopt_package(b.exchange_package("generator"))
        da_after = a.surrogate.discriminator.get_state()
        for k in da_before:
            np.testing.assert_array_equal(da_after[k], da_before[k])


class TestFullExchangeDriver:
    def test_full_exchange_round_runs(self, make_pair, tiny_dataset):
        trainers = make_pair(adopt="exchange")
        val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
        val_batch = {k: v[val_ids] for k, v in tiny_dataset.fields.items()}
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(4),
            LtfbConfig(steps_per_round=2, rounds=2, exchange="full"),
            eval_batch=val_batch,
        )
        driver.run()
        assert driver.history.rounds_completed == 2

    def test_full_exchange_moves_more_bytes(self, make_pair):
        def run(exchange):
            trainers = make_pair(adopt="keep", seed=13)
            driver = LtfbDriver(
                trainers,
                np.random.default_rng(5),
                LtfbConfig(steps_per_round=1, rounds=2, exchange=exchange),
            )
            driver.run()
            return driver.history.exchange_bytes

        assert run("full") > run("generator")

    def test_score_candidate_full_scope_restores(self, make_pair):
        a, b = make_pair()
        full_before = a.surrogate.get_full_state()
        a.score_candidate(b.surrogate.get_full_state(), scope="full")
        for k, v in a.surrogate.get_full_state().items():
            np.testing.assert_array_equal(v, full_before[k])

    def test_invalid_exchange_config(self):
        with pytest.raises(ValueError):
            LtfbConfig(steps_per_round=1, rounds=1, exchange="partial")
