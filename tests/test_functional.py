"""Tests for the activation kernels and their derivatives.

Every registered activation is checked against a central-difference
numerical derivative (property-based over random inputs), plus targeted
checks of numerical stability at extreme inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensorlib import functional as F


@pytest.mark.parametrize("name", sorted(F.ACTIVATIONS))
def test_grad_matches_numerical(name):
    fn, grad_fn = F.ACTIVATIONS[name]
    rng = np.random.default_rng(42)
    # Avoid the relu/leaky-relu kink at exactly 0.
    x = rng.normal(scale=2.0, size=256).astype(np.float64)
    x = np.where(np.abs(x) < 1e-3, 0.5, x)
    y = fn(x)
    analytic = grad_fn(x, y)
    eps = 1e-5
    numeric = (fn(x + eps) - fn(x - eps)) / (2 * eps)
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-5)


@pytest.mark.parametrize("name", sorted(F.ACTIVATIONS))
def test_preserves_shape_and_does_not_mutate(name):
    fn, _ = F.ACTIVATIONS[name]
    x = np.random.default_rng(0).normal(size=(4, 5)).astype(np.float32)
    x_copy = x.copy()
    y = fn(x)
    assert y.shape == x.shape
    assert np.array_equal(x, x_copy)


def test_sigmoid_stable_at_extremes():
    x = np.array([-1e4, -100.0, 0.0, 100.0, 1e4], dtype=np.float32)
    y = F.sigmoid(x)
    assert np.all(np.isfinite(y))
    assert y[0] == 0.0 and y[-1] == 1.0
    assert y[2] == pytest.approx(0.5)


def test_softplus_stable_and_positive():
    x = np.array([-1e4, -50.0, 0.0, 50.0, 1e4], dtype=np.float64)
    y = F.softplus(x)
    assert np.all(np.isfinite(y))
    assert np.all(y >= 0)
    assert y[-1] == pytest.approx(1e4)
    assert y[2] == pytest.approx(np.log(2.0))


def test_log_sigmoid_matches_log_of_sigmoid():
    x = np.linspace(-10, 10, 101)
    np.testing.assert_allclose(F.log_sigmoid(x), np.log(F.sigmoid(x)), atol=1e-9)


def test_log_sigmoid_no_overflow():
    assert np.isfinite(F.log_sigmoid(np.array([-1e5]))).all()


def test_relu_values():
    x = np.array([-2.0, 0.0, 3.0])
    assert np.array_equal(F.relu(x), [0.0, 0.0, 3.0])


def test_leaky_relu_slope():
    x = np.array([-10.0, 10.0])
    y = F.leaky_relu(x, alpha=0.1)
    np.testing.assert_allclose(y, [-1.0, 10.0])


def test_elu_continuity_at_zero():
    eps = 1e-6
    below = F.elu(np.array([-eps]))[0]
    above = F.elu(np.array([eps]))[0]
    assert abs(above - below) < 1e-5


def test_tanh_grad_identity():
    x = np.linspace(-3, 3, 50)
    y = F.tanh(x)
    np.testing.assert_allclose(F.tanh_grad(x, y), 1 - y**2)


@given(
    hnp.arrays(
        np.float32,
        hnp.array_shapes(min_dims=1, max_dims=2, max_side=16),
        elements=st.floats(-50, 50, width=32),
    )
)
@settings(max_examples=40, deadline=None)
def test_sigmoid_range_property(x):
    y = F.sigmoid(x)
    assert np.all((y >= 0.0) & (y <= 1.0))


@given(
    hnp.arrays(
        np.float64,
        st.integers(1, 64),
        elements=st.floats(-30, 30),
    )
)
@settings(max_examples=40, deadline=None)
def test_elu_monotone_property(x):
    xs = np.sort(x)
    ys = F.elu(xs)
    assert np.all(np.diff(ys) >= -1e-12)
