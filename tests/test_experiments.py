"""Tests for the experiment harnesses and report machinery.

The performance figures run at full paper scale (they are analytic and
fast); the quality figures run on a miniature workbench so the suite stays
quick — the benchmarks run them at full quality scale.
"""

from __future__ import annotations

import pytest

from repro.core.ensemble import EnsembleSpec
from repro.core.trainer import TrainerConfig
from repro.experiments import (
    fig07_scalars,
    fig08_images,
    fig09_data_parallel,
    fig10_datastore,
    fig11_ltfb_scaling,
    fig12_quality,
    fig13_ltfb_vs_kindependent,
)
from repro.experiments.common import ExperimentReport, QualityWorkbench, ShapeCheck
from repro.jag.dataset import JagSchema
from repro.models.cyclegan import SurrogateConfig


class TestReportMachinery:
    def test_row_columns_enforced(self):
        rep = ExperimentReport("X", "desc", columns=["a", "b"])
        rep.add_row(a=1, b=2)
        with pytest.raises(ValueError):
            rep.add_row(a=1)

    def test_shape_check_pass_fail(self):
        ok = ShapeCheck("s", paper_value=10.0, measured_value=10.5, rel_tolerance=0.1)
        bad = ShapeCheck("s", paper_value=10.0, measured_value=15.0, rel_tolerance=0.1)
        assert ok.passed and not bad.passed

    def test_shape_check_nan_fails(self):
        assert not ShapeCheck("s", 1.0, float("nan"), 0.5).passed

    def test_render_contains_everything(self):
        rep = ExperimentReport("Figure X", "demo", columns=["col"])
        rep.add_row(col=3.14159)
        rep.add_check("headline", 1.0, 1.05, 0.1)
        rep.notes.append("a note")
        text = rep.render()
        assert "Figure X" in text and "col" in text
        assert "headline" in text and "a note" in text
        assert "[ok ]" in text

    def test_column_accessor(self):
        rep = ExperimentReport("X", "d", columns=["v"])
        rep.add_row(v=1)
        rep.add_row(v=2)
        assert rep.column("v") == [1, 2]


class TestPerformanceFigures:
    def test_fig09_passes_shape_checks(self):
        report = fig09_data_parallel.run()
        assert report.all_checks_pass, report.render()
        speedups = report.column("speedup")
        assert speedups == sorted(speedups)

    def test_fig09_custom_gpu_counts(self):
        report = fig09_data_parallel.run(gpu_counts=(1, 4))
        assert [r["gpus"] for r in report.rows] == [1, 4]

    def test_fig10_passes_shape_checks(self):
        report = fig10_datastore.run()
        assert report.all_checks_pass, report.render()
        oom = [r["gpus"] for r in report.rows if r["preload_steady_s"] == "OOM"]
        assert oom == [1, 2]

    def test_fig11_passes_shape_checks(self):
        report = fig11_ltfb_scaling.run()
        assert report.all_checks_pass, report.render()
        assert report.rows[-1]["trainers"] == 64
        assert report.rows[-1]["speedup"] > 64

    def test_fig11_smaller_sweep(self):
        report = fig11_ltfb_scaling.run(trainer_counts=(1, 8))
        assert len(report.rows) == 2


@pytest.fixture(scope="module")
def mini_bench():
    """A miniature quality workbench: small data, tiny nets, fast rounds."""
    schema = JagSchema(image_size=8, views=2, channels=2)
    spec = EnsembleSpec(
        surrogate=SurrogateConfig(
            schema=schema,
            ae_hidden=(48, 32),
            forward_hidden=(24, 24),
            inverse_hidden=(24, 24),
            disc_hidden=(16, 8),
            batch_size=32,
        ),
        trainer=TrainerConfig(batch_size=32),
        ae_epochs=4,
        ae_max_samples=512,
    )
    bench = QualityWorkbench(seed=5, n_samples=768, spec=spec)
    # Patch the dataset schema into the workbench spec consistency.
    assert bench.dataset.schema == schema
    return bench


class TestQualityFigures:
    def test_fig07_structure(self, mini_bench):
        report = fig07_scalars.run(mini_bench, k=2, rounds=2, steps_per_round=4)
        assert len(report.rows) == 15
        assert {"scalar", "r2", "mae", "truth_std"} <= set(report.rows[0])

    def test_fig08_structure_and_shared_training(self, mini_bench):
        report = fig08_images.run(mini_bench, k=2, rounds=2, steps_per_round=4)
        schema = mini_bench.dataset.schema
        assert len(report.rows) == schema.views * schema.channels
        # Shares the fig07 cached driver: exactly one training happened.
        assert len(mini_bench._ltfb_cache) == 1

    def test_fig12_structure(self, mini_bench):
        report = fig12_quality.run(
            mini_bench, trainer_counts=(1, 2), rounds=3, steps_per_round=4
        )
        assert len(report.rows) == 3
        assert "k2_improvement" in report.rows[0]
        assert report.rows[-1]["per_trainer_steps"] == 12

    def test_fig12_requires_baseline(self, mini_bench):
        with pytest.raises(ValueError):
            fig12_quality.run(mini_bench, trainer_counts=(2, 4))

    def test_fig13_structure(self, mini_bench):
        report = fig13_ltfb_vs_kindependent.run(
            mini_bench, trainer_counts=(2,), rounds=3, steps_per_round=4
        )
        assert len(report.rows) == 3
        assert {"k2_ltfb", "k2_kind"} <= set(report.rows[0])


class TestBackendScaling:
    def test_structure_and_determinism(self):
        from repro.experiments import backend_scaling

        report = backend_scaling.run(
            k=2,
            rounds=1,
            steps_per_round=2,
            workers=2,
            n_samples=512,
            backends=("serial", "thread"),
        )
        # backend x prefetch-depth grid: depth 0 and the overlapped depth.
        assert [(r["backend"], r["depth"]) for r in report.rows] == [
            ("serial", 0), ("serial", 2), ("thread", 0), ("thread", 2),
        ]
        assert all(r["identical"] for r in report.rows)
        assert all(r["stall_s"] >= 0 and r["overlap_s"] >= 0 for r in report.rows)
        # Synchronous pipelines cannot overlap materialization.
        assert all(r["overlap_s"] == 0 for r in report.rows if r["depth"] == 0)
        determinism = report.checks[0]
        assert "determinism" in determinism.name and determinism.passed


class TestWorkbench:
    def test_strided_validation_unbiased(self, mini_bench):
        drive = mini_bench.val_batch["params"][:, 0]
        assert drive.min() < 0.15 and drive.max() > 0.85

    def test_population_scoped_rngs(self, mini_bench):
        a = mini_bench.population(2, tag="t1")
        b = mini_bench.population(2, tag="t2")
        ga = a[0].generator_state()
        gb = b[0].generator_state()
        assert any((ga[k] != gb[k]).any() for k in ga)

    def test_ltfb_cache_initialized_eagerly(self, mini_bench):
        # The cache is a real attribute from construction (no lazy
        # getattr), so introspection and pickling see a stable shape.
        assert isinstance(mini_bench._ltfb_cache, dict)
        assert "_ltfb_cache" in vars(mini_bench)

    def test_cache_hit_drops_callbacks(self, mini_bench):
        from repro.telemetry import Callback

        class Counting(Callback):
            def __init__(self):
                self.events = 0

            def on_event(self, event):
                self.events += 1

        first, second = Counting(), Counting()
        d1 = mini_bench.train_ltfb(
            "cache-cb", k=2, rounds=1, steps_per_round=2, callbacks=[first]
        )
        d2 = mini_bench.train_ltfb(
            "cache-cb", k=2, rounds=1, steps_per_round=2, callbacks=[second]
        )
        assert d2 is d1  # memoized
        assert first.events > 0
        # Documented behaviour: the hit returns the finished driver and the
        # new callbacks never see an event (training already happened).
        assert second.events == 0

    def test_workbench_backend_plumbs_into_driver(self):
        schema = JagSchema(image_size=8, views=2, channels=2)
        spec = EnsembleSpec(
            surrogate=SurrogateConfig(
                schema=schema,
                ae_hidden=(48, 32),
                forward_hidden=(24, 24),
                inverse_hidden=(24, 24),
                disc_hidden=(16, 8),
                batch_size=32,
            ),
            trainer=TrainerConfig(batch_size=32),
            ae_epochs=2,
            ae_max_samples=256,
        )
        bench = QualityWorkbench(
            seed=5, n_samples=512, spec=spec, backend="thread", workers=2
        )
        driver = bench.train_ltfb("bk", k=2, rounds=1, steps_per_round=2)
        assert driver.backend.name == "thread"
        assert driver.history.rounds_completed == 1
