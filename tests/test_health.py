"""Tests for run-health monitoring (:mod:`repro.telemetry.health`):
the four detectors driven with synthetic events, warning dedupe and
re-emission, ProgressLogger's in-line health lines, History integration
through a real (NaN-forced) run, and the experiments report plumbing.
"""

from __future__ import annotations

import dataclasses
import io
import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import LtfbConfig, LtfbDriver, build_population
from repro.telemetry import (
    HealthMonitor,
    HealthWarning,
    ProgressLogger,
    TelemetryHub,
)
from repro.telemetry.events import HEALTH
from repro.utils.rng import RngFactory


def _monitor(hub: TelemetryHub, **kwargs) -> HealthMonitor:
    """A HealthMonitor subscribed to ``hub`` with its re-emit path live."""
    monitor = HealthMonitor(**kwargs)
    hub.subscribe(monitor)
    monitor.on_run_begin(SimpleNamespace(telemetry=hub))
    return monitor


class _Recorder:
    """Minimal hub subscriber collecting raw events."""

    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)

    def on_run_begin(self, driver):
        pass

    def on_run_end(self, driver, history):
        pass


class TestDetectors:
    def test_nan_loss_is_critical_and_deduped(self):
        hub = TelemetryHub()
        monitor = _monitor(hub)
        for _ in range(3):
            hub.emit(
                "step_end", trainer="t0", steps=1, elapsed_s=0.1,
                losses={"gan": math.nan},
            )
        assert len(monitor.warnings) == 1
        w = monitor.warnings[0]
        assert w.kind == "nan_loss"
        assert w.severity == "critical"
        assert w.trainer == "t0"
        # A different trainer is a separate dedupe key.
        hub.emit(
            "step_end", trainer="t1", steps=1, elapsed_s=0.1,
            losses={"gan": math.inf},
        )
        assert {w.trainer for w in monitor.warnings} == {"t0", "t1"}

    def test_divergence_against_running_floor(self):
        hub = TelemetryHub()
        monitor = _monitor(hub)
        step = lambda v: hub.emit(  # noqa: E731
            "step_end", trainer="t0", steps=1, elapsed_s=0.1,
            losses={"gan": v},
        )
        step(1.0)
        step(5.0)  # oscillation within 20x: fine
        assert monitor.warnings == []
        step(25.0)  # > 20 * floor(1.0)
        assert [w.kind for w in monitor.warnings] == ["divergence"]
        assert "25" in monitor.warnings[0].message

    def test_winrate_collapse_over_window(self):
        hub = TelemetryHub()
        monitor = _monitor(hub)
        for r in range(3):
            for _ in range(3):
                hub.emit(
                    "tournament", round=r, trainer="loser", partner="t7",
                    own_score=0.0, partner_score=1.0, adopted=True,
                )
            hub.emit("round_end", round=r, train_s=1.0)
        assert [w.kind for w in monitor.warnings] == ["winrate_collapse"]
        assert monitor.warnings[0].trainer == "t7"

    def test_no_collapse_below_min_adoptions(self):
        hub = TelemetryHub()
        monitor = _monitor(hub)
        for r in range(2):
            hub.emit(
                "tournament", round=r, trainer="a", partner="b",
                own_score=0.0, partner_score=1.0, adopted=True,
            )
            hub.emit("round_end", round=r, train_s=1.0)
        assert monitor.warnings == []

    def test_stall_regression_after_warmup(self):
        hub = TelemetryHub()
        monitor = _monitor(hub)
        # Round 0 is warmup: the first-epoch ingest stall is expected.
        hub.emit("fetch_stall", stall_s=0.9, materialize_s=0.9)
        hub.emit("round_end", round=0, train_s=1.0)
        assert monitor.warnings == []
        hub.emit("fetch_stall", stall_s=0.9, materialize_s=0.9)
        hub.emit("round_end", round=1, train_s=1.0)
        assert [w.kind for w in monitor.warnings] == ["stall_regression"]
        # Stall accounting resets per round: a quiet round 2 stays quiet
        # (and the kind is deduped anyway).
        hub.emit("round_end", round=2, train_s=1.0)
        assert len(monitor.warnings) == 1

    def test_warnings_reemitted_as_health_events(self):
        hub = TelemetryHub()
        recorder = _Recorder()
        hub.subscribe(recorder)
        monitor = _monitor(hub)
        hub.emit(
            "step_end", trainer="t0", steps=1, elapsed_s=0.1,
            losses={"gan": math.nan},
        )
        health = [e for e in recorder.events if e.type == HEALTH]
        assert len(health) == 1
        assert health[0].payload["kind"] == "nan_loss"
        assert health[0].payload["severity"] == "critical"
        assert monitor.warnings[0].render() == (
            "[critical] nan_loss: " + health[0].payload["message"]
        )


class TestProgressLoggerHealth:
    def _run(self, tiny_dataset, tiny_spec, tiny_autoencoder, callbacks):
        spec = dataclasses.replace(tiny_spec, k=2)
        trainers = build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(11).child("health"),
            spec,
            tiny_autoencoder,
        )
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=2, rounds=2),
        )
        return driver.run(callbacks=callbacks)

    def test_health_lines_print_under_their_round(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        stream = io.StringIO()
        # stall_fraction_threshold=-1 flags every post-warmup round, so a
        # healthy tiny run still produces a deterministic warning.
        monitor = HealthMonitor(stall_fraction_threshold=-1.0)
        self._run(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            [monitor, ProgressLogger(stream=stream)],
        )
        lines = stream.getvalue().splitlines()
        round_lines = [
            i for i, line in enumerate(lines) if line.startswith("[round")
        ]
        assert len(round_lines) == 2
        health_lines = [s for s in lines if s.startswith("  health[")]
        assert health_lines == [s for s in lines if "stall_regression" in s]
        assert len(health_lines) == 1
        # The warning surfaced in round 1 and prints under that round line.
        assert lines.index(health_lines[0]) > round_lines[1]

    def test_pending_health_flushes_at_run_end(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        stream = io.StringIO()
        # Logger subscribed *before* the monitor: the final round's warning
        # arrives after the logger already printed that round's line, so it
        # can only appear via the on_run_end flush.
        self._run(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            [
                ProgressLogger(stream=stream),
                HealthMonitor(stall_fraction_threshold=-1.0),
            ],
        )
        lines = stream.getvalue().splitlines()
        assert lines[-1].startswith("  health[warning] stall_regression:")


class TestHistoryIntegration:
    def test_nan_loss_lands_in_history(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        """Acceptance: force a NaN loss mid-run; the HealthMonitor must
        raise a critical warning into ``History.health_warnings``."""
        spec = dataclasses.replace(tiny_spec, k=2)
        trainers = build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(13).child("nan"),
            spec,
            tiny_autoencoder,
        )

        class Saboteur:
            """Poisons one generator after round 0's training."""

            def handle(self, event):
                if event.type == "round_end" and event.payload["round"] == 0:
                    victim = trainers[0]
                    state = victim.surrogate.get_generator_state()
                    victim.surrogate.set_generator_state(
                        {k: v * math.nan for k, v in state.items()}
                    )

            def on_run_begin(self, driver):
                pass

            def on_run_end(self, driver, history):
                pass

        driver = LtfbDriver(
            trainers,
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=2, rounds=2),
        )
        history = driver.run(callbacks=[Saboteur(), HealthMonitor()])
        assert not history.healthy
        kinds = {w.kind for w in history.health_warnings}
        assert "nan_loss" in kinds
        critical = [w for w in history.health_warnings if w.kind == "nan_loss"]
        assert all(w.severity == "critical" for w in critical)
        assert any(w.trainer == trainers[0].name for w in critical)

    def test_clean_run_is_healthy(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        spec = dataclasses.replace(tiny_spec, k=2)
        trainers = build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(17).child("clean"),
            spec,
            tiny_autoencoder,
        )
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=2, rounds=2),
        )
        history = driver.run(callbacks=[HealthMonitor()])
        assert history.healthy
        assert history.health_warnings == []

    def test_history_without_monitor_is_trivially_healthy(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        spec = dataclasses.replace(tiny_spec, k=2)
        trainers = build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(19).child("plain"),
            spec,
            tiny_autoencoder,
        )
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=1, rounds=1),
        )
        history = driver.run()
        assert history.healthy


class TestExperimentsPlumbing:
    def test_note_health_appends_report_notes(self):
        from repro.experiments.common import ExperimentReport, note_health

        report = ExperimentReport(
            experiment="x", description="d", columns=("a",)
        )
        history = SimpleNamespace(
            health_warnings=[
                HealthWarning(
                    kind="nan_loss", round_index=1, trainer="t0",
                    message="boom", severity="critical",
                )
            ]
        )
        note_health(report, history)
        assert report.notes == ["health: [critical] nan_loss: boom"]
        # Histories without the attribute (older pickles) are a no-op.
        note_health(report, SimpleNamespace())
        assert len(report.notes) == 1

    def test_observability_callbacks_assembly(self, tmp_path):
        from repro.experiments.common import observability_callbacks
        from repro.telemetry import JsonlTraceWriter, MetricsCollector

        metrics = MetricsCollector()
        files: list = []
        callbacks = observability_callbacks(
            "fig12/k4",
            trace_out=tmp_path / "t.jsonl",
            metrics=metrics,
            monitor_health=True,
            trace_files=files,
        )
        kinds = [type(c).__name__ for c in callbacks]
        assert kinds == [
            "JsonlTraceWriter",
            "MetricsCollector",
            "HealthMonitor",
            "ResourceSampler",
        ]
        assert callbacks[1] is metrics
        writer = callbacks[0]
        assert isinstance(writer, JsonlTraceWriter)
        assert files == [tmp_path / "t-fig12-k4.jsonl"]
        # Resource sampling is skippable; with nothing to observe the
        # assembly stays empty either way.
        kinds = [
            type(c).__name__
            for c in observability_callbacks(
                "tag", metrics=metrics, sample_resources=False
            )
        ]
        assert "ResourceSampler" not in kinds

    def test_observability_callbacks_default_empty(self):
        from repro.experiments.common import observability_callbacks

        assert observability_callbacks("tag", monitor_health=False) == []


if __name__ == "__main__":
    pytest.main([__file__, "-q"])
