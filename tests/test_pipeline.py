"""Tests for the plan/materialize data plane and the prefetch pipeline.

The refactor's contract, straight from the module docstrings:

- ``plan_epoch`` is the *only* phase that touches the reader RNG;
  ``materialize`` is RNG-free, so it can run arbitrarily far ahead;
- ``epoch()`` is plan-then-materialize, so the three consumption styles
  (generator, synchronous pipeline, prefetching pipeline) deliver the
  same batches in the same order with the same side effects;
- ``epochs_completed`` uses delivery semantics: it advances exactly when
  an epoch's final batch reaches the consumer;
- a prefetch pipeline of any depth is bit-identical to depth 0, across
  every execution backend, and checkpoint/resume works mid-epoch with
  batches still sitting in the prefetch queue.
"""

from __future__ import annotations

import dataclasses
import time

import numpy as np
import pytest

from repro.cluster.filesystem import SimulatedFilesystem
from repro.core import LtfbConfig, LtfbDriver, build_population
from repro.core.checkpoint import restore_trainer, trainer_checkpoint
from repro.datastore import (
    ArrayReader,
    BatchPipeline,
    DistributedDataStore,
    PrefetchingReader,
    StoreReader,
    build_pipeline,
)
from repro.datastore.bundle import write_bundles
from repro.exec import resolve_backend
from repro.telemetry import CounterAggregator, JsonlTraceWriter, TelemetryHub
from repro.utils.rng import RngFactory

N, BATCH = 64, 8


def make_reader(seed=0, n=N):
    fields = {
        "x": np.arange(2 * n, dtype=np.float32).reshape(n, 2),
        "tag": np.arange(n, dtype=np.float32).reshape(n, 1),
    }
    return ArrayReader(fields, np.arange(n), np.random.default_rng(seed))


def assert_batches_equal(a, b):
    assert len(a) == len(b)
    for mb_a, mb_b in zip(a, b):
        np.testing.assert_array_equal(mb_a.sample_ids, mb_b.sample_ids)
        assert sorted(mb_a.feeds) == sorted(mb_b.feeds)
        for name in mb_a.feeds:
            np.testing.assert_array_equal(mb_a.feeds[name], mb_b.feeds[name])


class TestPlanEpoch:
    def test_plan_partitions_population(self):
        reader = make_reader()
        plan = reader.plan_epoch(BATCH)
        assert len(plan) == N // BATCH
        assert [bp.step_index for bp in plan] == list(range(len(plan)))
        assert [bp.is_last for bp in plan] == [False] * (len(plan) - 1) + [True]
        assert all(bp.epoch_index == 0 for bp in plan)
        ids = np.concatenate([bp.sample_ids for bp in plan])
        np.testing.assert_array_equal(np.sort(ids), np.arange(N))

    def test_epoch_indices_advance_per_plan(self):
        reader = make_reader()
        assert reader.plan_epoch(BATCH).epoch_index == 0
        assert reader.plan_epoch(BATCH).epoch_index == 1

    def test_plan_snapshots_pre_plan_rng_state(self):
        reader = make_reader(seed=3)
        plan = reader.plan_epoch(BATCH)
        replay = make_reader(seed=999)  # different seed, state overwritten
        replay._rng.bit_generator.state = plan.rng_state
        replay._epochs_planned = plan.epoch_index
        replanned = reader.materialize  # keep lints quiet about unused
        del replanned
        plan2 = replay.plan_epoch(BATCH)
        for bp, bp2 in zip(plan, plan2):
            np.testing.assert_array_equal(bp.sample_ids, bp2.sample_ids)
        # Replanning lands the RNG exactly where the original planner did.
        assert (
            replay._rng.bit_generator.state == reader._rng.bit_generator.state
        )

    def test_materialize_is_rng_free(self):
        reader = make_reader()
        plan = reader.plan_epoch(BATCH)
        state = reader._rng.bit_generator.state
        for bp in plan:
            reader.materialize(bp)
        assert reader._rng.bit_generator.state == state

    def test_empty_epoch_raises(self):
        reader = make_reader(n=4)
        with pytest.raises(ValueError):
            reader.plan_epoch(8)  # drop_last leaves zero steps

    def test_epoch_generator_is_plan_then_materialize(self):
        via_epoch = list(make_reader(seed=5).epoch(BATCH))
        reader = make_reader(seed=5)
        plan = reader.plan_epoch(BATCH)
        via_plan = [reader.materialize(bp) for bp in plan]
        assert_batches_equal(via_epoch, via_plan)


class TestEpochsCompleted:
    def test_generator_uses_delivery_semantics(self):
        reader = make_reader()
        gen = reader.epoch(BATCH)
        for _ in range(N // BATCH - 1):
            next(gen)
        assert reader.epochs_completed == 0  # last batch not delivered yet
        next(gen)
        assert reader.epochs_completed == 1

    def test_abandoned_epoch_never_counts(self):
        reader = make_reader()
        gen = reader.epoch(BATCH)
        next(gen)
        gen.close()
        assert reader.epochs_completed == 0
        for _ in reader.epoch(BATCH):
            pass
        assert reader.epochs_completed == 1

    @pytest.mark.parametrize("depth", [0, 2])
    def test_pipeline_uses_delivery_semantics(self, depth):
        pipeline = build_pipeline(make_reader(), BATCH, prefetch_depth=depth)
        try:
            steps = N // BATCH
            for _ in range(steps - 1):
                pipeline.next_batch()
            assert pipeline.reader.epochs_completed == 0
            pipeline.next_batch()
            assert pipeline.reader.epochs_completed == 1
            pipeline.next_batch()  # rolls into epoch 1
            assert pipeline.reader.epochs_completed == 1
        finally:
            pipeline.close()


class TestBatchPipeline:
    def test_matches_epoch_generator_across_epochs(self):
        steps = 2 * (N // BATCH) + 3  # 2.5 epochs
        pipeline = BatchPipeline(make_reader(seed=11), BATCH)
        via_pipeline = [pipeline.next_batch() for _ in range(steps)]
        reader = make_reader(seed=11)
        via_epoch = []
        while len(via_epoch) < steps:
            for mb in reader.epoch(BATCH):
                via_epoch.append(mb)
                if len(via_epoch) == steps:
                    break
        assert_batches_equal(via_pipeline, via_epoch)
        assert pipeline.reader.epochs_completed == reader.epochs_completed

    def test_state_restore_roundtrip_mid_epoch(self):
        pipeline = BatchPipeline(make_reader(seed=7), BATCH)
        for _ in range(5):
            pipeline.next_batch()
        state = pipeline.state()
        assert state["next_step"] == 5
        resumed = BatchPipeline(make_reader(seed=1234), BATCH)
        resumed.restore(state)
        for _ in range(6):  # crosses the epoch boundary
            assert_batches_equal(
                [pipeline.next_batch()], [resumed.next_batch()]
            )
        assert resumed.reader.epochs_completed == pipeline.reader.epochs_completed

    def test_state_is_json_serializable(self):
        import json

        pipeline = BatchPipeline(make_reader(), BATCH)
        pipeline.next_batch()
        assert json.loads(json.dumps(pipeline.state())) == pipeline.state()

    def test_restore_after_consumption_raises(self):
        pipeline = BatchPipeline(make_reader(), BATCH)
        state = pipeline.state()
        pipeline.next_batch()
        with pytest.raises(RuntimeError, match="fresh pipeline"):
            pipeline.restore(state)

    def test_restore_validates_batch_shape(self):
        state = BatchPipeline(make_reader(), BATCH).state()
        other = BatchPipeline(make_reader(), BATCH * 2)
        with pytest.raises(ValueError, match="batch shape"):
            other.restore(state)

    def test_build_pipeline_dispatch(self):
        assert type(build_pipeline(make_reader(), BATCH)) is BatchPipeline
        prefetching = build_pipeline(make_reader(), BATCH, prefetch_depth=3)
        assert isinstance(prefetching, PrefetchingReader)
        assert prefetching.depth == 3
        with pytest.raises(ValueError):
            build_pipeline(make_reader(), BATCH, prefetch_depth=-1)


class TestPrefetchingReader:
    @pytest.mark.parametrize("depth", [1, 4])
    def test_identical_to_synchronous(self, depth):
        steps = 2 * (N // BATCH) + 3
        sync = BatchPipeline(make_reader(seed=21), BATCH)
        prefetching = PrefetchingReader(make_reader(seed=21), BATCH, depth=depth)
        try:
            assert_batches_equal(
                [sync.next_batch() for _ in range(steps)],
                [prefetching.next_batch() for _ in range(steps)],
            )
        finally:
            prefetching.close()

    def test_store_side_effects_identical_to_synchronous(self):
        """The producer materializes in plan order, so dynamic-mode store
        caching and file traffic match the synchronous path exactly."""

        def store_setup(seed):
            fs = SimulatedFilesystem()
            n = 60
            fields = {"x": np.arange(n, dtype=np.float32).reshape(n, 1)}
            paths = write_bundles(fs, fields, samples_per_bundle=10)
            store = DistributedDataStore(2, bytes_per_rank=10**6)
            reader = StoreReader(
                fs, paths, 10, np.arange(n),
                np.random.default_rng(seed), store, "dynamic",
            )
            return fs, store, reader

        fs_a, store_a, reader_a = store_setup(9)
        fs_b, store_b, reader_b = store_setup(9)
        sync = BatchPipeline(reader_a, 10)
        prefetching = PrefetchingReader(reader_b, 10, depth=2)
        try:
            assert_batches_equal(
                [sync.next_batch() for _ in range(9)],  # 1.5 epochs
                [prefetching.next_batch() for _ in range(9)],
            )
        finally:
            prefetching.close()
        assert store_a.num_cached == store_b.num_cached
        assert fs_a.stats.opens == fs_b.stats.opens
        assert fs_a.stats.bytes_read == fs_b.stats.bytes_read

    def test_queue_is_bounded_by_depth(self):
        pipeline = PrefetchingReader(make_reader(), BATCH, depth=2)
        try:
            pipeline.next_batch()
            deadline = time.time() + 5.0
            while pipeline.queued_batches < 2 and time.time() < deadline:
                time.sleep(0.005)
            assert pipeline.queued_batches == 2  # full, producer blocked
        finally:
            pipeline.close()

    def test_depth_validation(self):
        with pytest.raises(ValueError, match="depth"):
            PrefetchingReader(make_reader(), BATCH, depth=0)

    def test_close_joins_producer_and_is_idempotent(self):
        pipeline = PrefetchingReader(make_reader(), BATCH, depth=2)
        pipeline.next_batch()
        thread = pipeline._thread
        pipeline.close()
        assert pipeline._thread is None
        assert thread is not None and not thread.is_alive()
        pipeline.close()

    def test_producer_error_propagates(self):
        class Exploding(ArrayReader):
            def _fetch(self, ids, plan=None):
                raise OSError("disk on fire")

        reader = Exploding(
            {"x": np.zeros((N, 1), dtype=np.float32)},
            np.arange(N),
            np.random.default_rng(0),
        )
        pipeline = PrefetchingReader(reader, BATCH, depth=2)
        try:
            with pytest.raises(RuntimeError, match="prefetch pipeline failed"):
                pipeline.next_batch()
        finally:
            pipeline.close()

    def test_cursor_tracks_delivery_not_prefetch(self):
        pipeline = PrefetchingReader(make_reader(), BATCH, depth=4)
        try:
            for _ in range(3):
                pipeline.next_batch()
            # The producer has prefetched ahead, but state() is the
            # consumer's cursor: resuming replays from the delivery point.
            assert pipeline.state()["next_step"] == 3
        finally:
            pipeline.close()

    def test_restore_after_start_raises(self):
        pipeline = PrefetchingReader(make_reader(), BATCH, depth=2)
        state = pipeline.state()
        pipeline.next_batch()
        try:
            with pytest.raises(RuntimeError, match="before the first batch"):
                pipeline.restore(state)
        finally:
            pipeline.close()


def _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2):
    spec = dataclasses.replace(tiny_spec, k=k)
    return build_population(
        tiny_dataset,
        np.arange(tiny_dataset.n_samples - 64),
        RngFactory(77).child("pipeline"),
        spec,
        tiny_autoencoder,
    )


def _run_ltfb(tiny_dataset, tiny_spec, tiny_autoencoder, backend):
    trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
    val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    driver = LtfbDriver(
        trainers,
        np.random.default_rng(7),
        LtfbConfig(steps_per_round=3, rounds=2),
        eval_batch={k: v[val_ids] for k, v in tiny_dataset.fields.items()},
        backend=backend,
    )
    history = driver.run()
    weights = {
        t.name: {k: v.copy() for k, v in t.generator_state().items()}
        for t in driver.trainers
    }
    return history, weights


@pytest.fixture(scope="module")
def depth0_serial_run(tiny_dataset, tiny_spec, tiny_autoencoder):
    return _run_ltfb(
        tiny_dataset,
        tiny_spec,
        tiny_autoencoder,
        resolve_backend("serial", prefetch_depth=0),
    )


class TestDeterminismAcrossBackendsAndDepths:
    """The acceptance matrix: backend x prefetch depth, all bit-identical."""

    @pytest.mark.parametrize("backend_name", ["serial", "thread", "process"])
    @pytest.mark.parametrize("depth", [0, 1, 4])
    def test_history_bit_identical(
        self,
        backend_name,
        depth,
        depth0_serial_run,
        tiny_dataset,
        tiny_spec,
        tiny_autoencoder,
    ):
        if backend_name == "serial" and depth == 0:
            pytest.skip("is the reference run")
        ref_history, ref_weights = depth0_serial_run
        backend = resolve_backend(
            backend_name, max_workers=2, prefetch_depth=depth
        )
        history, weights = _run_ltfb(
            tiny_dataset, tiny_spec, tiny_autoencoder, backend
        )
        assert history.train_losses == ref_history.train_losses
        assert history.eval_series == ref_history.eval_series
        assert history.tournaments == ref_history.tournaments
        assert history.exchange_bytes == ref_history.exchange_bytes
        for name, ref in ref_weights.items():
            for key, arr in ref.items():
                np.testing.assert_array_equal(arr, weights[name][key])

    def test_backend_release_restores_depth_and_stops_threads(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        import threading

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
        backend = resolve_backend("serial", prefetch_depth=3)
        backend.bind(trainers, TelemetryHub())
        assert all(t.prefetch_depth == 3 for t in trainers)
        for t in trainers:
            t.train_steps(1)  # starts a prefetching pipeline
        backend.release()
        assert all(t.prefetch_depth == 0 for t in trainers)
        assert not any(
            th.name.startswith("repro-prefetch")
            for th in threading.enumerate()
            if th.is_alive()
        )


class TestCheckpointMidEpochResume:
    def test_resume_with_nonempty_prefetch_queue(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainer = _population(tiny_dataset, tiny_spec, tiny_autoencoder)[0]
        trainer.set_prefetch_depth(4)
        trainer.train_steps(2)  # mid-epoch (14 steps per epoch)
        pipeline = trainer._pipeline
        deadline = time.time() + 5.0
        while pipeline.queued_batches == 0 and time.time() < deadline:
            time.sleep(0.005)
        assert pipeline.queued_batches > 0  # checkpoint under live prefetch
        payload = trainer_checkpoint(trainer)
        ref_losses = trainer.train_steps(4)

        resumed = _population(tiny_dataset, tiny_spec, tiny_autoencoder)[0]
        restore_trainer(resumed, payload)
        assert resumed.prefetch_depth == 4
        losses = resumed.train_steps(4)
        assert losses == ref_losses
        ref_weights = trainer.generator_state()
        for key, arr in resumed.generator_state().items():
            np.testing.assert_array_equal(arr, ref_weights[key])
        trainer.set_prefetch_depth(0)  # fold pipelines, stop threads
        resumed.set_prefetch_depth(0)

    def test_checkpoint_rng_state_is_plan_cursor_state(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        """With a prefetch thread planning ahead, the checkpoint must carry
        the in-flight epoch's pre-plan RNG state, not the live generator's
        (which the producer may have advanced)."""
        trainer = _population(tiny_dataset, tiny_spec, tiny_autoencoder)[0]
        trainer.set_prefetch_depth(4)
        steps_per_epoch = trainer.reader.num_samples // trainer.config.batch_size
        trainer.train_steps(steps_per_epoch - 1)
        # Producer has rolled into the next epoch's plan by now (queue
        # depth 4 > 1 remaining step), advancing the live RNG.
        cursor = trainer.data_state()
        assert cursor is not None
        from repro.core.checkpoint import _reader_meta

        meta = _reader_meta(trainer)
        assert meta["rng_state"] == cursor["epoch_rng_state"]
        trainer.set_prefetch_depth(0)


class TestPipelineTelemetry:
    def test_sync_pipeline_emits_fetch_stall_only(self):
        hub = TelemetryHub()
        counters = CounterAggregator()
        hub.subscribe(counters)
        pipeline = build_pipeline(make_reader(), BATCH)
        pipeline.telemetry = hub
        pipeline.context = {"trainer": "t0", "backend": "serial", "worker": 0}
        for _ in range(4):
            pipeline.next_batch()
        assert counters.fetch_stalls == 4
        assert counters.prefetch_fills == 0
        # Synchronous: the stall is the materialization, nothing hidden.
        assert counters.fetch_overlap_s == 0.0
        assert set(counters.worker_stall_s) == {"serial/worker0"}

    def test_prefetching_pipeline_emits_fills(self):
        hub = TelemetryHub()
        counters = CounterAggregator()
        hub.subscribe(counters)
        pipeline = build_pipeline(make_reader(), BATCH, prefetch_depth=2)
        pipeline.telemetry = hub
        try:
            for _ in range(4):
                pipeline.next_batch()
        finally:
            pipeline.close()
        assert counters.fetch_stalls == 4
        assert counters.prefetch_fills >= 4
        assert 0.0 <= counters.mean_prefetch_fill() <= 2.0

    def test_trace_report_renders_data_pipeline_section(
        self, tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        from repro.telemetry.report import render_trace_report

        trace = tmp_path / "trace.jsonl"
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(7),
            LtfbConfig(steps_per_round=2, rounds=1),
            backend=resolve_backend("serial", prefetch_depth=2),
        )
        driver.run(callbacks=[JsonlTraceWriter(trace)])
        text = render_trace_report(trace)
        assert "data pipeline:" in text
        assert "fetch stalls:" in text
        assert "prefetch fills:" in text
        assert "per-worker stall vs. overlap:" in text
        assert "serial/worker0" in text
