"""Tests for the quality-observability stack (:mod:`repro.eval`):
streaming divergence estimators, the reservoir, the tournament judge
seam (including loss-judge bit-identity with the pre-seam tournament
path), the QualityProbe callback, the checkpoint eval-summary plumbing,
and the quality_collapse detectors in HealthMonitor / LiveAggregator.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointStore
from repro.core.ensemble import build_population
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.eval import (
    JUDGE_NAMES,
    METRIC_NAMES,
    DivergenceJudge,
    Judge,
    LossJudge,
    QualityProbe,
    Reservoir,
    fixed_bin_edges,
    histogram_probs,
    js_divergence,
    kl_divergence,
    resolve_judge,
    scalar_divergences,
    summary_value,
)
from repro.telemetry.events import EVAL, TelemetryEvent, TelemetryHub
from repro.telemetry.health import HealthMonitor
from repro.telemetry.live import LiveAggregator
from repro.utils.rng import RngFactory


@pytest.fixture()
def population(tiny_dataset, tiny_spec, tiny_autoencoder):
    def build(k=2, seed=7, **overrides):
        spec = dataclasses.replace(tiny_spec, k=k, **overrides)
        train_ids = np.arange(tiny_dataset.n_samples - 64)
        return build_population(
            tiny_dataset, train_ids, RngFactory(seed), spec, tiny_autoencoder
        )

    return build


@pytest.fixture()
def val_batch(tiny_dataset):
    ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    return {k: v[ids] for k, v in tiny_dataset.fields.items()}


# -- estimators ---------------------------------------------------------------


class TestDivergenceEstimators:
    def test_identical_distributions_are_zero(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(512, 3))
        result = scalar_divergences(x, x.copy())
        assert result.kl == pytest.approx(0.0, abs=1e-9)
        assert result.js == pytest.approx(0.0, abs=1e-9)
        assert result.hellinger == pytest.approx(0.0, abs=1e-9)
        assert result.mean_delta == pytest.approx(0.0, abs=1e-9)
        assert result.std_delta == pytest.approx(0.0, abs=1e-9)

    def test_shifted_distribution_scores_positive(self):
        rng = np.random.default_rng(1)
        ref = rng.normal(size=(1024, 2))
        shifted = ref + 2.0
        result = scalar_divergences(ref, shifted)
        assert result.kl > 0.5
        assert result.js > 0.1
        assert 0.0 < result.hellinger <= 1.0
        assert result.mean_delta == pytest.approx(2.0, rel=0.15)

    def test_js_bounded_and_symmetric(self):
        edges = fixed_bin_edges()
        rng = np.random.default_rng(2)
        p = histogram_probs(rng.normal(size=400), edges)
        q = histogram_probs(rng.normal(loc=3.0, size=400), edges)
        assert 0.0 <= js_divergence(p, q) <= math.log(2.0) + 1e-9
        assert js_divergence(p, q) == pytest.approx(js_divergence(q, p))

    def test_kl_asymmetric_nonnegative(self):
        edges = fixed_bin_edges()
        rng = np.random.default_rng(3)
        p = histogram_probs(rng.normal(size=400), edges)
        q = histogram_probs(rng.normal(scale=2.0, size=400), edges)
        assert kl_divergence(p, q) >= 0.0
        assert kl_divergence(p, p) == pytest.approx(0.0, abs=1e-12)

    def test_deterministic_in_samples(self):
        rng = np.random.default_rng(4)
        ref, out = rng.normal(size=(300, 2)), rng.normal(size=(200, 2))
        a = scalar_divergences(ref, out)
        b = scalar_divergences(ref.copy(), out.copy())
        assert a.as_dict() == b.as_dict()

    def test_result_value_accessor(self):
        rng = np.random.default_rng(5)
        result = scalar_divergences(
            rng.normal(size=(64, 1)), rng.normal(size=(64, 1))
        )
        for metric in METRIC_NAMES + ("mean_delta", "std_delta"):
            assert math.isfinite(result.value(metric))
        with pytest.raises(ValueError):
            result.value("wasserstein")

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            scalar_divergences(np.zeros((0, 2)), np.zeros((4, 2)))
        with pytest.raises(ValueError):
            scalar_divergences(np.zeros((4, 2)), np.zeros((4, 3)))

    def test_degenerate_reference_dim_does_not_nan(self):
        ref = np.zeros((128, 1))  # zero variance
        out = np.ones((128, 1))
        result = scalar_divergences(ref, out)
        assert math.isfinite(result.js)
        assert result.js > 0.0


class TestReservoir:
    def test_bounded_and_counts_seen(self):
        res = Reservoir(capacity=16, seed=0)
        res.offer(np.arange(100, dtype=np.float64).reshape(-1, 1))
        assert len(res) == 16
        assert res.seen == 100
        assert res.sample().shape == (16, 1)

    def test_deterministic_for_seed(self):
        rows = np.arange(200, dtype=np.float64).reshape(-1, 2)
        a, b = Reservoir(8, seed=42), Reservoir(8, seed=42)
        a.offer(rows)
        b.offer(rows)
        assert np.array_equal(a.sample(), b.sample())

    def test_under_capacity_keeps_everything(self):
        res = Reservoir(capacity=32, seed=1)
        rows = np.arange(10, dtype=np.float64).reshape(-1, 1)
        res.offer(rows)
        assert np.array_equal(res.sample(), rows)


# -- the judge seam -----------------------------------------------------------


class TestJudgeSeam:
    def test_resolution(self):
        assert isinstance(resolve_judge(None), LossJudge)
        assert isinstance(resolve_judge("loss"), LossJudge)
        assert isinstance(resolve_judge("divergence"), DivergenceJudge)
        judge = DivergenceJudge(metric="hellinger")
        assert resolve_judge(judge) is judge
        with pytest.raises(ValueError):
            resolve_judge("accuracy")
        assert set(JUDGE_NAMES) == {"loss", "divergence"}

    def test_divergence_judge_rejects_bad_metric(self):
        with pytest.raises(ValueError):
            DivergenceJudge(metric="wasserstein")

    def test_loss_judge_matches_tournament_score(self, population):
        me, other = population(k=2)
        judge = LossJudge()
        assert judge.score(me) == me.tournament_score()
        package = other.exchange_package("generator")
        direct = me.score_candidate(package["weights"], "generator")
        via_judge = judge.score_candidate(me, package["weights"], "generator")
        assert via_judge == direct
        # Scoring a candidate must not perturb the trainer's own weights.
        assert judge.score(me) == me.tournament_score()

    def test_divergence_judge_scores_lower_for_better_model(
        self, population
    ):
        trainers = population(k=2)
        for t in trainers:
            t.train_steps(2)
        judge = DivergenceJudge()
        scores = [judge.score(t) for t in trainers]
        assert all(math.isfinite(s) for s in scores)
        assert all(s >= 0.0 for s in scores)

    @pytest.mark.parametrize(
        "topology", ["random_pairwise", "cellular_grid", "multi_discriminator"]
    )
    def test_loss_judge_bit_identical_to_default(
        self, population, val_batch, topology
    ):
        """The seam's acceptance bar: judge="loss" reproduces the pre-seam
        tournament path exactly — same adoptions, same losses, same
        evals — under every deterministic topology."""
        histories = []
        for judge in (None, "loss"):
            driver = LtfbDriver(
                population(k=4, seed=11),
                np.random.default_rng(123),
                LtfbConfig(steps_per_round=2, rounds=3),
                eval_batch=val_batch,
                topology=topology,
                judge=judge,
            )
            histories.append(driver.run())
        base, seamed = histories
        assert base.train_losses == seamed.train_losses
        assert base.tournaments == seamed.tournaments
        assert base.eval_series == seamed.eval_series
        assert base.exchange_bytes == seamed.exchange_bytes

    def test_divergence_judge_runs_and_changes_nothing_structural(
        self, population, val_batch
    ):
        driver = LtfbDriver(
            population(k=2, seed=13),
            np.random.default_rng(5),
            LtfbConfig(steps_per_round=2, rounds=2),
            eval_batch=val_batch,
            judge="divergence",
        )
        history = driver.run()
        assert history.rounds_completed == 2
        assert len(history.tournaments) > 0

    def test_tournament_events_carry_judge_name(self, population, val_batch):
        events = []

        class Recorder:
            wants_spans = False

            def handle(self, event):
                events.append(event)

            def on_run_begin(self, driver):
                pass

            def on_run_end(self, driver, history):
                pass

        driver = LtfbDriver(
            population(k=2, seed=17),
            np.random.default_rng(9),
            LtfbConfig(steps_per_round=1, rounds=1),
            eval_batch=val_batch,
            judge="loss",
        )
        driver.telemetry.subscribe(Recorder())
        driver.run()
        tournaments = [e for e in events if e.type == "tournament"]
        assert tournaments
        assert all(e.payload.get("judge") == "loss" for e in tournaments)


# -- the probe ----------------------------------------------------------------


class TestQualityProbe:
    def test_probe_emits_eval_and_builds_summary(self, population, val_batch):
        probe = QualityProbe(capacity=128, seed=3)
        driver = LtfbDriver(
            population(k=2, seed=19),
            np.random.default_rng(2),
            LtfbConfig(steps_per_round=2, rounds=3),
            eval_batch=val_batch,
        )
        events = []

        class Recorder:
            wants_spans = False

            def handle(self, event):
                if event.type == EVAL and "divergence" in event.payload:
                    events.append(event)

            def on_run_begin(self, driver):
                pass

            def on_run_end(self, driver, history):
                pass

        driver.telemetry.subscribe(Recorder())
        driver.run(callbacks=[probe])
        assert len(events) == 3  # one probe pass per round
        payload = events[-1].payload
        assert payload["metric"] == "js"
        for name, values in payload["divergence"].items():
            for key in ("kl", "js", "hellinger", "mean_delta", "std_delta"):
                assert math.isfinite(values[key])
        summary = probe.summary(winner=sorted(payload["divergence"])[0])
        assert summary["metric"] == "js"
        assert summary["round"] == 2
        assert summary["winner_value"] == pytest.approx(
            summary["trainers"][summary["winner"]]["js"]
        )

    def test_summary_none_before_any_probe(self):
        probe = QualityProbe()
        assert probe.summary() is None

    def test_every_skips_rounds(self, population, val_batch):
        probe = QualityProbe(capacity=64, seed=4, every=2)
        driver = LtfbDriver(
            population(k=2, seed=23),
            np.random.default_rng(6),
            LtfbConfig(steps_per_round=1, rounds=4),
            eval_batch=val_batch,
        )
        driver.run(callbacks=[probe])
        probed_rounds = {
            r for points in probe.trajectory.values() for r, _ in points
        }
        assert probed_rounds == {0, 2}

    def test_summary_value_fallbacks(self):
        assert summary_value(None) is None
        assert summary_value({"winner_value": 0.25}) == 0.25
        assert summary_value(
            {
                "metric": "js",
                "winner": "t1",
                "trainers": {"t1": {"js": 0.5}, "t0": {"js": 0.9}},
            }
        ) == 0.5
        assert summary_value(
            {"metric": "js", "trainers": {"a": {"js": 0.7}, "b": {"js": 0.3}}}
        ) == 0.3
        assert summary_value({"metric": "js", "trainers": {}}) is None


# -- checkpoint plumbing ------------------------------------------------------


class TestEvalSummaryManifest:
    def test_round_trip_and_stamp(
        self, tmp_path, population, tiny_autoencoder
    ):
        trainers = population(k=2)
        store = CheckpointStore(tmp_path / "ckpts")
        summary = {"metric": "js", "winner_value": 0.125}
        store.save_population(
            trainers, "with-summary", winner=trainers[0].name,
            eval_summary=summary,
        )
        assert store.eval_summary("with-summary") == summary

        store.save_population(trainers, "bare", winner=trainers[0].name)
        assert store.eval_summary("bare") is None
        store.stamp_eval_summary("bare", {"metric": "js", "winner_value": 0.5})
        assert store.eval_summary("bare")["winner_value"] == 0.5
        store.stamp_eval_summary("bare", None)
        assert store.eval_summary("bare") is None


# -- quality-collapse detection -----------------------------------------------


def _eval_event(round_index, divergence, metric="js", time_s=0.0):
    return TelemetryEvent(
        type=EVAL,
        time_s=time_s,
        sequence=round_index,
        payload={
            "round": round_index,
            "divergence": divergence,
            "metric": metric,
        },
    )


def _step_event(trainer, loss, time_s=0.0):
    return TelemetryEvent(
        type="step_end",
        time_s=time_s,
        sequence=0,
        payload={
            "trainer": trainer,
            "steps": 1,
            "steps_done": 1,
            "elapsed_s": 0.001,
            "losses": {"gen_loss": loss},
        },
    )


class TestHealthMonitorQualityCollapse:
    def test_flags_blowup_critical_when_loss_improves(self):
        monitor = HealthMonitor(quality_factor=3.0, quality_min_points=2)
        monitor.handle(_step_event("t0", 1.0))
        monitor.handle(_eval_event(0, {"t0": {"js": 0.1}}))
        monitor.handle(_step_event("t0", 0.5))  # loss improving...
        monitor.handle(_eval_event(1, {"t0": {"js": 0.12}}))
        monitor.handle(_eval_event(2, {"t0": {"js": 0.9}}))  # ...quality gone
        kinds = [(w.kind, w.severity) for w in monitor.warnings]
        assert ("quality_collapse", "critical") in kinds

    def test_warning_severity_when_loss_also_degrades(self):
        monitor = HealthMonitor(quality_factor=3.0, quality_min_points=2)
        monitor.handle(_step_event("t0", 1.0))
        monitor.handle(_eval_event(0, {"t0": {"js": 0.1}}))
        monitor.handle(_step_event("t0", 5.0))  # loss got worse too
        monitor.handle(_eval_event(1, {"t0": {"js": 0.12}}))
        monitor.handle(_eval_event(2, {"t0": {"js": 0.9}}))
        collapse = [
            w for w in monitor.warnings if w.kind == "quality_collapse"
        ]
        assert len(collapse) == 1
        assert collapse[0].severity == "warning"

    def test_no_flag_for_stable_divergence(self):
        monitor = HealthMonitor()
        for r in range(6):
            monitor.handle(_eval_event(r, {"t0": {"js": 0.1 + 0.01 * r}}))
        assert not [
            w for w in monitor.warnings if w.kind == "quality_collapse"
        ]

    def test_driver_eval_payloads_ignored(self):
        monitor = HealthMonitor()
        monitor.handle(
            TelemetryEvent(
                type=EVAL,
                time_s=0.0,
                sequence=0,
                payload={"round": 0, "metrics": {"t0": {"val_loss": 1.0}}},
            )
        )
        assert monitor.warnings == []


class TestLiveAggregatorQualityCollapse:
    def _aggregator(self):
        agg = LiveAggregator(
            z_threshold=2.0, alpha=0.3, detector_warmup=3, cooldown_rounds=0
        )
        agg.attach(hub=None, history=None)
        return agg

    def test_spike_fires_quality_collapse_alert(self):
        agg = self._aggregator()
        for r in range(6):
            agg.handle(_eval_event(r, {"t0": {"js": 0.1}}, time_s=float(r)))
        agg.handle(_eval_event(6, {"t0": {"js": 2.5}}, time_s=6.0))
        kinds = [a.kind for a in agg.alerts]
        assert "quality_collapse" in kinds

    def test_critical_when_loss_improving(self):
        agg = self._aggregator()
        agg.handle(_step_event("t0", 1.0, time_s=0.0))
        agg.handle(_eval_event(0, {"t0": {"js": 0.1}}, time_s=0.0))
        agg.handle(_step_event("t0", 0.4, time_s=1.0))
        for r in range(1, 6):
            agg.handle(_eval_event(r, {"t0": {"js": 0.1}}, time_s=float(r)))
        agg.handle(_eval_event(6, {"t0": {"js": 3.0}}, time_s=6.0))
        collapse = [a for a in agg.alerts if a.kind == "quality_collapse"]
        assert collapse and collapse[0].severity == "critical"

    def test_snapshot_carries_quality_section(self):
        agg = self._aggregator()
        agg.handle(_eval_event(0, {"t0": {"js": 0.2, "kl": 0.4}}))
        snap = agg.snapshot()
        assert snap["quality"]["metric"] == "js"
        assert snap["quality"]["round"] == 0
        assert snap["quality"]["divergence"]["t0"]["js"] == pytest.approx(0.2)
        assert "eval_divergence" in snap["windows"]

    def test_driver_eval_payloads_ignored(self):
        agg = self._aggregator()
        agg.handle(
            TelemetryEvent(
                type=EVAL,
                time_s=0.0,
                sequence=0,
                payload={"round": 0, "metrics": {"t0": {"val_loss": 1.0}}},
            )
        )
        assert agg.snapshot()["quality"] is None


# -- reporting surfaces -------------------------------------------------------


class TestEvalReporting:
    def test_summarize_eval(self):
        from repro.telemetry.report import summarize_eval

        events = [
            _eval_event(0, {"t0": {"js": 0.3}, "t1": {"js": 0.5}}),
            _eval_event(1, {"t0": {"js": 0.2}, "t1": {"js": 0.6}}),
        ]
        agg = summarize_eval(events)
        assert agg["probes"] == 2
        assert agg["metric"] == "js"
        assert agg["last_round"] == 1
        assert agg["trainers"]["t0"] == {
            "last": 0.2, "best": 0.2, "points": 2
        }
        assert agg["trainers"]["t1"]["best"] == 0.5
        # Driver eval payloads don't count as probe passes.
        assert summarize_eval([]) is None

    def test_trace_report_renders_quality_section(self, tmp_path):
        from repro.telemetry.callbacks import JsonlTraceWriter
        from repro.telemetry.report import render_trace_report, trace_summary

        path = tmp_path / "trace.jsonl"
        writer = JsonlTraceWriter(path)
        hub = TelemetryHub()
        hub.subscribe(writer)
        hub.emit(
            EVAL,
            round=0,
            divergence={"t0": {"js": 0.25}},
            metric="js",
        )
        writer.close()
        text = render_trace_report(path)
        assert "eval quality:" in text
        assert "t0: last 0.25" in text
        summary = trace_summary(path)
        assert summary["eval"]["trainers"]["t0"]["points"] == 1

    def test_watch_renders_quality_line(self):
        from repro.telemetry.__main__ import render_watch

        agg = LiveAggregator()
        agg.handle(_eval_event(1, {"t0": {"js": 0.31}}))
        text = render_watch(agg.snapshot())
        assert "quality[js] round 1: t0 0.31" in text
