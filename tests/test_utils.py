"""Tests for repro.utils: RNG determinism, units, serialization."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.rng import RngFactory, spawn_rngs
from repro.utils.serialization import nbytes_of, pack_arrays, unpack_arrays
from repro.utils.units import GB, GIB, KB, MB, format_bytes, format_time


class TestRngFactory:
    def test_same_seed_same_name_same_stream(self):
        a = RngFactory(42).generator("x")
        b = RngFactory(42).generator("x")
        assert np.array_equal(a.random(8), b.random(8))

    def test_different_names_independent(self):
        f = RngFactory(42)
        assert not np.array_equal(
            f.generator("a").random(8), f.generator("b").random(8)
        )

    def test_different_seeds_differ(self):
        assert float(RngFactory(1).generator("x").random()) != float(
            RngFactory(2).generator("x").random()
        )

    def test_child_path_composes(self):
        root = RngFactory(7)
        via_child = root.child("a").generator("b")
        direct = root.generator("a/b")
        assert np.array_equal(via_child.random(4), direct.random(4))

    def test_child_scoping_prevents_collisions(self):
        root = RngFactory(7)
        assert float(root.child("a").generator("x").random()) != float(
            root.child("b").generator("x").random()
        )

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            RngFactory(0).generator("")

    def test_independent_of_call_order(self):
        f1 = RngFactory(3)
        a1 = f1.generator("a").random()
        b1 = f1.generator("b").random()
        f2 = RngFactory(3)
        b2 = f2.generator("b").random()
        a2 = f2.generator("a").random()
        assert a1 == a2 and b1 == b2

    def test_spawn_rngs(self):
        rngs = spawn_rngs(5, ["p", "q"])
        assert set(rngs) == {"p", "q"}
        assert float(rngs["p"].random()) != float(rngs["q"].random())

    @given(st.text(min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_any_name_is_stable(self, name):
        assert float(RngFactory(9).generator(name).random()) == float(
            RngFactory(9).generator(name).random()
        )


class TestUnits:
    def test_constants(self):
        assert KB == 1000 and MB == 10**6 and GB == 10**9
        assert GIB == 2**30

    @pytest.mark.parametrize(
        "n,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1500, "1.50 KB"),
            (2_500_000, "2.50 MB"),
            (3 * GB, "3.00 GB"),
        ],
    )
    def test_format_bytes(self, n, expected):
        assert format_bytes(n) == expected

    def test_format_bytes_negative_rejected(self):
        with pytest.raises(ValueError):
            format_bytes(-1)

    @pytest.mark.parametrize(
        "s,expected",
        [
            (1e-7, "0.1 us"),
            (0.0005, "500.0 us"),
            (0.25, "250.0 ms"),
            (42.0, "42.00 s"),
            (600, "10.0 min"),
            (7200, "2.00 h"),
        ],
    )
    def test_format_time(self, s, expected):
        assert format_time(s) == expected

    def test_format_time_negative_rejected(self):
        with pytest.raises(ValueError):
            format_time(-0.1)

    @pytest.mark.parametrize(
        "n,expected",
        [
            # Exact unit boundaries pick the larger unit.
            (999, "999 B"),
            (KB, "1.00 KB"),
            (MB - 1, "1000.00 KB"),
            (MB, "1.00 MB"),
            (GB, "1.00 GB"),
            (10**12, "1.00 TB"),
            (0.4, "0 B"),  # sub-byte floats round down to whole bytes
        ],
    )
    def test_format_bytes_boundaries(self, n, expected):
        assert format_bytes(n) == expected

    @pytest.mark.parametrize(
        "s,expected",
        [
            (0.0, "0.0 us"),
            (1e-3, "1.0 ms"),  # us -> ms boundary
            (1.0, "1.00 s"),  # ms -> s boundary
            (119.99, "119.99 s"),
            (120.0, "2.0 min"),  # s -> min boundary
            (7200.0, "2.00 h"),  # min -> h boundary
        ],
    )
    def test_format_time_boundaries(self, s, expected):
        assert format_time(s) == expected

    _BYTE_UNITS = {"B": 1, "KB": KB, "MB": MB, "GB": GB, "TB": 10**12}
    _TIME_UNITS = {"us": 1e-6, "ms": 1e-3, "s": 1.0, "min": 60.0, "h": 3600.0}

    @given(st.floats(min_value=0, max_value=1e14))
    @settings(max_examples=200)
    def test_format_bytes_round_trip(self, n):
        value, unit = format_bytes(n).split()
        scale = self._BYTE_UNITS[unit]
        # Parsing the rendering back recovers the input to within the
        # printed precision (2 decimals above 1 unit, whole bytes below).
        tolerance = max(0.005 * scale, 0.5)
        assert abs(float(value) * scale - n) <= tolerance

    @given(st.floats(min_value=0, max_value=1e5))
    @settings(max_examples=200)
    def test_format_time_round_trip(self, s):
        value, unit = format_time(s).split()
        scale = self._TIME_UNITS[unit]
        assert abs(float(value) * scale - s) <= 0.05 * scale


class TestSerialization:
    def test_roundtrip_preserves_dtype_shape_values(self):
        arrays = {
            "a": np.arange(12, dtype=np.float32).reshape(3, 4),
            "b": np.array([1, 2, 3], dtype=np.int64),
            "model/fc0/kernel": np.random.default_rng(0).normal(size=(5, 7)),
        }
        back = unpack_arrays(pack_arrays(arrays))
        assert set(back) == set(arrays)
        for k in arrays:
            assert back[k].dtype == np.asarray(arrays[k]).dtype
            assert np.array_equal(back[k], arrays[k])

    def test_slash_keys_survive(self):
        back = unpack_arrays(pack_arrays({"x/y/z": np.ones(3)}))
        assert "x/y/z" in back

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            pack_arrays({"": np.ones(1)})

    def test_nbytes_of(self):
        arrays = {"a": np.zeros((10, 10), dtype=np.float32), "b": np.zeros(5)}
        assert nbytes_of(arrays) == 400 + 40

    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(min_codepoint=97, max_codepoint=122),
                    min_size=1,
                    max_size=8,
                ),
                st.integers(min_value=1, max_value=16),
            ),
            min_size=1,
            max_size=6,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, spec):
        rng = np.random.default_rng(0)
        arrays = {name: rng.normal(size=n).astype(np.float32) for name, n in spec}
        back = unpack_arrays(pack_arrays(arrays))
        assert all(np.array_equal(back[k], arrays[k]) for k in arrays)
