"""Shared fixtures: small datasets and pre-trained components.

Expensive artifacts (the JAG dataset, the pre-trained autoencoder) are
session-scoped so the whole suite builds them once.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import EnsembleSpec, pretrain_autoencoder
from repro.core.trainer import TrainerConfig
from repro.jag.dataset import JagDatasetConfig, JagSchema, generate_dataset
from repro.models.cyclegan import SurrogateConfig
from repro.utils.rng import RngFactory

# A deliberately tiny schema so model math stays fast in unit tests.
TINY_SCHEMA = JagSchema(image_size=8, views=2, channels=2)


def pytest_addoption(parser):
    parser.addoption(
        "--backend",
        default="serial",
        choices=["serial", "thread", "process"],
        help="execution backend the backend-aware tests train under",
    )
    parser.addoption(
        "--topology",
        default="random_pairwise",
        choices=[
            "random_pairwise",
            "cellular_grid",
            "multi_discriminator",
            "async_pairwise",
            "isolated",
        ],
        help="population topology the topology-aware tests train under",
    )


@pytest.fixture(scope="session")
def cli_backend(request) -> str:
    """The ``--backend`` the suite was invoked with (default ``serial``).

    Tests that run a population driver and don't care *where* the steps
    execute take this fixture, so CI can re-run them under every backend.
    """
    return request.config.getoption("--backend")


@pytest.fixture(scope="session")
def cli_topology(request) -> str:
    """The ``--topology`` the suite was invoked with (default
    ``random_pairwise``), for tests that run a population driver under
    whichever topology CI's matrix selects."""
    return request.config.getoption("--topology")


@pytest.fixture(scope="session")
def rngs() -> RngFactory:
    return RngFactory(1234)


@pytest.fixture(scope="session")
def tiny_schema() -> JagSchema:
    return TINY_SCHEMA


@pytest.fixture(scope="session")
def tiny_dataset():
    """512-sample dataset with 8x8 images; enough structure for training
    smoke tests without slowing the suite."""
    return generate_dataset(
        JagDatasetConfig(n_samples=512, schema=TINY_SCHEMA, seed=99, chunk=256)
    )


@pytest.fixture(scope="session")
def tiny_surrogate_config(tiny_dataset) -> SurrogateConfig:
    return SurrogateConfig(
        schema=tiny_dataset.schema,
        ae_hidden=(48, 32),
        forward_hidden=(24, 24),
        inverse_hidden=(24, 24),
        disc_hidden=(16, 8),
        batch_size=32,
    )


@pytest.fixture(scope="session")
def tiny_spec(tiny_surrogate_config) -> EnsembleSpec:
    return EnsembleSpec(
        k=2,
        surrogate=tiny_surrogate_config,
        trainer=TrainerConfig(batch_size=32),
        ae_epochs=3,
        ae_max_samples=256,
        tournament_fraction=0.125,
    )


@pytest.fixture(scope="session")
def tiny_autoencoder(tiny_dataset, tiny_spec):
    rngs = RngFactory(555)
    train_ids = np.arange(tiny_dataset.n_samples)
    return pretrain_autoencoder(tiny_dataset, train_ids, rngs, tiny_spec)
