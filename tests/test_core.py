"""Tests for the core training stack: Trainer, LTFB, K-independent,
population construction.

Uses the session-scoped tiny dataset/autoencoder from conftest so the
suite pre-trains the expensive pieces once.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.driver import History
from repro.core.ensemble import EnsembleSpec, build_population
from repro.core.kindependent import KIndependentDriver
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.core.trainer import Trainer, TrainerConfig
from repro.utils.rng import RngFactory


@pytest.fixture()
def population(tiny_dataset, tiny_spec, tiny_autoencoder):
    def build(k=2, seed=7, **overrides):
        spec = dataclasses.replace(tiny_spec, k=k, **overrides)
        train_ids = np.arange(tiny_dataset.n_samples - 64)
        return build_population(
            tiny_dataset, train_ids, RngFactory(seed), spec, tiny_autoencoder
        )

    return build


@pytest.fixture()
def val_batch(tiny_dataset):
    ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    return {k: v[ids] for k, v in tiny_dataset.fields.items()}


class TestTrainerConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)
        with pytest.raises(ValueError):
            TrainerConfig(tournament_metric="accuracy")
        with pytest.raises(ValueError):
            TrainerConfig(adopt_optimizer="maybe")


class TestTrainer:
    def test_train_steps_returns_mean_losses(self, population):
        t = population(k=1)[0]
        losses = t.train_steps(3)
        assert t.steps_done == 3
        assert "gen_loss" in losses and "disc_loss" in losses

    def test_batches_continue_across_epoch_boundaries(self, population):
        t = population(k=2)[0]
        # silo is small; request more steps than one epoch holds
        steps = t.reader.steps_per_epoch(t.config.batch_size) + 2
        t.train_steps(steps)
        assert t.steps_done == steps

    def test_tournament_score_finite(self, population):
        t = population(k=2)[0]
        assert np.isfinite(t.tournament_score())

    def test_score_candidate_restores_own_state(self, population):
        a, b = population(k=2)
        own = a.surrogate.get_generator_state()
        a.score_candidate(b.generator_state())
        for k, v in a.surrogate.get_generator_state().items():
            np.testing.assert_array_equal(v, own[k])

    def test_adopt_package_replaces_generator_keeps_discriminator(
        self, population
    ):
        a, b = population(k=2)
        disc_before = a.surrogate.discriminator.get_state()
        a.adopt_package({"scope": "generator", "weights": b.generator_state()})
        for k, v in a.surrogate.get_generator_state().items():
            np.testing.assert_array_equal(v, b.generator_state()[k])
        for k, v in a.surrogate.discriminator.get_state().items():
            np.testing.assert_array_equal(v, disc_before[k])

    def test_adopt_reset_clears_gen_optimizer(self, population):
        trainers = population(k=2)
        a = Trainer(
            "reset",
            trainers[0].surrogate,
            trainers[0].reader,
            trainers[0].tournament_batch,
            TrainerConfig(batch_size=32, adopt_optimizer="reset"),
        )
        a.train_steps(2)
        assert a.gen_optimizer.step_count > 0
        a.adopt_package(
            {"scope": "generator", "weights": trainers[1].generator_state()}
        )
        assert a.gen_optimizer.step_count == 0

    def test_deprecated_aliases_are_gone(self, population):
        a, b = population(k=2)
        assert not hasattr(b, "generator_package")
        assert not hasattr(a, "adopt_generator")
        # The replacement API covers the old behaviour.
        a.adopt_package(b.exchange_package("generator"))
        for k, v in a.surrogate.get_generator_state().items():
            np.testing.assert_array_equal(v, b.generator_state()[k])

    def test_discriminator_tournament_metric(self, population, val_batch):
        trainers = population(k=2)
        t = Trainer(
            "disc-metric",
            trainers[0].surrogate,
            trainers[0].reader,
            trainers[0].tournament_batch,
            TrainerConfig(batch_size=32, tournament_metric="discriminator"),
        )
        assert np.isfinite(t.tournament_score())


class TestLtfbDriver:
    def test_round_trains_everyone(self, population, val_batch):
        trainers = population(k=4)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(0),
            LtfbConfig(steps_per_round=2, rounds=2),
            eval_batch=val_batch,
        )
        driver.run()
        assert all(t.steps_done == 4 for t in trainers)
        assert driver.history.rounds_completed == 2
        assert len(driver.history.eval_series) == 2

    def test_pairings_disjoint(self, population):
        trainers = population(k=4)
        driver = LtfbDriver(
            trainers, np.random.default_rng(1), LtfbConfig(steps_per_round=1, rounds=3)
        )
        driver.run()
        for pairing in driver.history.pairings:
            flat = [name for pair in pairing for name in pair]
            assert len(flat) == len(set(flat)) == 4

    def test_odd_population_one_sits_out(self, population):
        trainers = population(k=3)
        driver = LtfbDriver(
            trainers, np.random.default_rng(2), LtfbConfig(steps_per_round=1, rounds=1)
        )
        driver.run()
        assert len(driver.history.pairings[0]) == 1  # one pair, one idle

    def test_single_trainer_no_tournaments(self, population):
        driver = LtfbDriver(
            population(k=1),
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=1, rounds=2),
        )
        driver.run()
        assert driver.history.tournaments == []
        assert driver.history.exchange_bytes == 0

    def test_tournament_adoption_consistent_with_scores(self, population):
        trainers = population(k=2)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(4),
            LtfbConfig(steps_per_round=2, rounds=2),
        )
        driver.run()
        for rec in driver.history.tournaments:
            assert rec.adopted_partner == (rec.partner_score < rec.own_score)

    def test_winner_propagates_identical_generators(self, population, val_batch):
        """After a round where both trainers agree on a winner (global
        tournament set => same judgement), the pair holds one generator."""
        trainers = population(k=2)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(5),
            LtfbConfig(steps_per_round=2, rounds=1),
        )
        driver.run()
        recs = driver.history.tournaments
        if any(r.adopted_partner for r in recs):
            ga = trainers[0].generator_state()
            gb = trainers[1].generator_state()
            assert all(np.array_equal(ga[k], gb[k]) for k in ga)

    def test_exchange_bytes_accounted(self, population):
        trainers = population(k=2)
        per_exchange = 2 * trainers[0].surrogate.generator_state_nbytes()
        driver = LtfbDriver(
            trainers, np.random.default_rng(6), LtfbConfig(steps_per_round=1, rounds=3)
        )
        driver.run()
        assert driver.history.exchange_bytes == 3 * per_exchange

    def test_best_trainer_needs_eval_batch(self, population):
        driver = LtfbDriver(
            population(k=2), np.random.default_rng(7), LtfbConfig(1, 1)
        )
        with pytest.raises(ValueError):
            driver.best_trainer()

    def test_duplicate_names_rejected(self, population):
        trainers = population(k=2)
        trainers[1].name = trainers[0].name
        with pytest.raises(ValueError):
            LtfbDriver(trainers, np.random.default_rng(0), LtfbConfig(1, 1))

    def test_reproducible_given_seeds(self, tiny_dataset, tiny_spec, tiny_autoencoder, val_batch):
        def run_once():
            spec = dataclasses.replace(tiny_spec, k=2)
            train_ids = np.arange(tiny_dataset.n_samples - 64)
            trainers = build_population(
                tiny_dataset, train_ids, RngFactory(42), spec, tiny_autoencoder
            )
            driver = LtfbDriver(
                trainers,
                np.random.default_rng(42),
                LtfbConfig(steps_per_round=2, rounds=2),
                eval_batch=val_batch,
            )
            driver.run()
            return driver.history.eval_series[-1]

        a, b = run_once(), run_once()
        for name in a:
            assert a[name]["val_loss"] == pytest.approx(b[name]["val_loss"], rel=1e-6)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LtfbConfig(steps_per_round=0, rounds=1)
        with pytest.raises(ValueError):
            LtfbDriver([], np.random.default_rng(0), LtfbConfig(1, 1))


class TestKIndependent:
    def test_no_communication_between_trainers(self, population, val_batch):
        trainers = population(k=2)
        states_before = [t.generator_state() for t in trainers]
        driver = KIndependentDriver(
            trainers, LtfbConfig(steps_per_round=2, rounds=1), eval_batch=val_batch
        )
        driver.run()
        # Models moved (trained) but never became identical.
        ga, gb = trainers[0].generator_state(), trainers[1].generator_state()
        assert any(not np.array_equal(ga[k], gb[k]) for k in ga)
        for t, before in zip(trainers, states_before):
            after = t.generator_state()
            assert any(not np.array_equal(after[k], before[k]) for k in after)

    def test_best_trainer_selection(self, population, val_batch):
        trainers = population(k=3)
        driver = KIndependentDriver(
            trainers, LtfbConfig(steps_per_round=2, rounds=2), eval_batch=val_batch
        )
        driver.run()
        best, loss = driver.best_trainer()
        all_losses = [t.evaluate(val_batch)["val_loss"] for t in trainers]
        assert loss == pytest.approx(min(all_losses))
        assert len(driver.best_val_series()) == 2

    def test_run_returns_shared_history_shape(self, population, val_batch):
        """Both drivers return the same History type so Fig.-13 code can
        swap them without branching."""
        trainers = population(k=2)
        history = KIndependentDriver(
            trainers, LtfbConfig(steps_per_round=1, rounds=2), eval_batch=val_batch
        ).run()
        assert isinstance(history, History)
        assert history.rounds_completed == 2
        assert history.tournaments == [] and history.exchange_bytes == 0
        assert len(history.best_val_series()) == 2
        # Back-compat views stay readable on the driver itself.
        ltfb = LtfbDriver(
            population(k=2, seed=8),
            np.random.default_rng(0),
            LtfbConfig(steps_per_round=1, rounds=1),
            eval_batch=val_batch,
        )
        assert isinstance(ltfb.run(), History)


class TestBuildPopulation:
    def test_global_tournament_shared(self, population):
        trainers = population(k=3)
        t0 = trainers[0].tournament_batch["params"]
        for t in trainers[1:]:
            np.testing.assert_array_equal(t.tournament_batch["params"], t0)

    def test_local_tournament_distinct(self, population):
        trainers = population(k=2, tournament_scope="local")
        a = trainers[0].tournament_batch["params"]
        b = trainers[1].tournament_batch["params"]
        assert a.shape != b.shape or not np.array_equal(a, b)

    def test_silos_disjoint_and_exclude_tournament(self, population):
        trainers = population(k=3)
        silos = [set(t.reader.sample_ids.tolist()) for t in trainers]
        for i in range(3):
            for j in range(i + 1, 3):
                assert not (silos[i] & silos[j])

    def test_contiguous_silos_are_drive_biased(self, tiny_dataset, population):
        """The paper's exploration-ordered files make contiguous silos
        non-IID: first silo low drive, last silo high drive."""
        trainers = population(k=2)
        d0 = tiny_dataset.params[trainers[0].reader.sample_ids, 0].mean()
        d1 = tiny_dataset.params[trainers[1].reader.sample_ids, 0].mean()
        assert d0 < 0.4 < 0.6 < d1

    def test_trainers_have_distinct_inits(self, population):
        trainers = population(k=2)
        ga, gb = trainers[0].generator_state(), trainers[1].generator_state()
        assert any(not np.array_equal(ga[k], gb[k]) for k in ga)

    def test_hyperparam_jitter_varies_learning_rates(self, population):
        trainers = population(k=4, hyperparam_jitter=0.5)
        lrs = {t.surrogate.config.learning_rate for t in trainers}
        assert len(lrs) == 4

    def test_no_jitter_same_lr(self, population):
        trainers = population(k=3, hyperparam_jitter=0.0)
        lrs = {t.surrogate.config.learning_rate for t in trainers}
        assert len(lrs) == 1

    def test_spec_validation(self, tiny_surrogate_config):
        with pytest.raises(ValueError):
            EnsembleSpec(k=0)
        with pytest.raises(ValueError):
            EnsembleSpec(tournament_fraction=0.6)
        with pytest.raises(ValueError):
            EnsembleSpec(tournament_scope="galactic")
        with pytest.raises(ValueError):
            EnsembleSpec(hyperparam_jitter=-1)
