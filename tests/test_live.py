"""Tests for the live observability plane (:mod:`repro.telemetry.live`):
rolling windows and EWMA detectors, alert dedup/cooldown, the live
aggregator's detections landing in ``History.health_warnings`` *during*
a real run, worker alert relay across execution backends, flight-recorder
bundles (crash hook, critical auto-dump, SIGTERM-free manual path), the
serve status endpoint, atomic metrics publication, the trace-report
pairing/ingest sections, and the watch CLI.
"""

from __future__ import annotations

import dataclasses
import json
import math
import urllib.request
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import LtfbConfig, LtfbDriver
from repro.core.ensemble import build_population
from repro.exec import resolve_backend
from repro.telemetry import (
    Alert,
    AlertEngine,
    EwmaDetector,
    FlightRecorder,
    JsonlTraceWriter,
    LiveAggregator,
    RollingWindow,
    TelemetryHub,
    load_bundle,
)
from repro.telemetry.live.recorder import SUBSYSTEM_OF
from repro.utils.rng import RngFactory


class _History(SimpleNamespace):
    def __init__(self):
        super().__init__(health_warnings=[])


def _steps(hub, n, trainer="t0", elapsed_s=0.01, **extra):
    for i in range(n):
        hub.emit(
            "step_end", trainer=trainer, steps=1, steps_done=i + 1,
            losses={"loss": 1.0}, elapsed_s=elapsed_s, backend="serial",
            worker=0, **extra,
        )


class TestRollingWindow:
    def test_ring_bound_and_total(self):
        w = RollingWindow(maxlen=4)
        for i in range(10):
            w.push(float(i), float(i))
        assert len(w) == 4
        assert w.total == 10
        assert w.values == [6.0, 7.0, 8.0, 9.0]
        assert w.last == 9.0
        assert w.min == 6.0 and w.max == 9.0
        assert w.mean == pytest.approx(7.5)

    def test_percentiles_interpolate(self):
        w = RollingWindow()
        for v in (1.0, 2.0, 3.0, 4.0):
            w.push(0.0, v)
        assert w.percentile(0) == 1.0
        assert w.percentile(100) == 4.0
        assert w.percentile(50) == pytest.approx(2.5)
        snap = w.snapshot()
        assert snap["count"] == 4 and snap["p50"] == pytest.approx(2.5)

    def test_empty_window_is_safe(self):
        w = RollingWindow()
        assert not w
        assert w.last is None
        assert w.percentile(95) == 0.0
        assert w.rate_per_s() == 0.0

    def test_rate_per_s(self):
        w = RollingWindow()
        w.push(0.0, 10.0)
        w.push(2.0, 30.0)
        assert w.rate_per_s() == pytest.approx(20.0)

    def test_rejects_nonpositive_maxlen(self):
        with pytest.raises(ValueError):
            RollingWindow(maxlen=0)


class TestEwmaDetector:
    def test_warmup_never_flags(self):
        det = EwmaDetector(warmup=5)
        for _ in range(5):
            assert det.update(1.0) == 0.0

    def test_spike_flags_after_warmup_one_sided(self):
        det = EwmaDetector(alpha=0.25, z_threshold=4.0, warmup=4)
        for _ in range(10):
            z = det.update(1.0 + 0.001 * np.random.default_rng(0).random())
            assert not det.is_anomaly(z)
        spike = det.update(100.0)
        assert det.is_anomaly(spike)
        # One-sided: a sudden improvement never alerts.
        fast = EwmaDetector(warmup=2)
        for _ in range(8):
            fast.update(1.0)
        assert not fast.is_anomaly(fast.update(0.0001))

    def test_nonfinite_does_not_poison_baseline(self):
        det = EwmaDetector(warmup=2)
        for _ in range(6):
            det.update(1.0)
        mean_before = det.mean
        assert det.update(math.nan) == 0.0
        assert det.mean == mean_before


class TestAlertEngine:
    def _alert(self, **kw):
        base = dict(kind="k", severity="warning", message="m", source="data")
        base.update(kw)
        return Alert(**base)

    def test_dedup_within_cooldown_and_refire_after(self):
        engine = AlertEngine(cooldown_rounds=3)
        assert engine.fire(self._alert(round_index=0))
        assert not engine.fire(self._alert(round_index=1))
        assert not engine.fire(self._alert(round_index=2))
        assert engine.fire(self._alert(round_index=3))
        assert len(engine.alerts) == 2

    def test_distinct_keys_do_not_dedup(self):
        engine = AlertEngine(cooldown_rounds=10)
        assert engine.fire(self._alert(round_index=0, trainer="a"))
        assert engine.fire(self._alert(round_index=0, trainer="b"))
        assert engine.fire(self._alert(round_index=0, kind="other"))

    def test_critical_escalation_pierces_cooldown_once(self):
        engine = AlertEngine(cooldown_rounds=100)
        assert engine.fire(self._alert(round_index=0))
        crit = self._alert(round_index=1, severity="critical")
        assert engine.fire(crit)
        # Only once: the same critical re-fired inside cooldown suppresses.
        assert not engine.fire(self._alert(round_index=2, severity="critical"))

    def test_bounded_alert_list(self):
        engine = AlertEngine(cooldown_rounds=0, max_alerts=5)
        for r in range(9):
            assert engine.fire(self._alert(round_index=r))
        assert len(engine.alerts) == 5
        assert engine.dropped == 4
        snap = engine.snapshot()
        assert snap["count"] == 5 and snap["dropped"] == 4

    def test_payload_round_trip(self):
        alert = self._alert(round_index=4, trainer="t1", value=1.5,
                            threshold=1.0, origin="worker")
        assert Alert.from_payload(alert.to_payload()) == alert


class TestLiveAggregator:
    def test_step_time_anomaly_fires_into_hub_and_history(self):
        hub = TelemetryHub()
        history = _History()
        agg = LiveAggregator(detector_warmup=4).attach(hub, history)
        seen = []

        class Sink:
            def handle(self, event):
                if event.type == "alert":
                    seen.append(dict(event.payload))

        hub.subscribe(agg)
        hub.subscribe(Sink())
        _steps(hub, 12)
        hub.emit(
            "step_end", trainer="t0", steps=1, steps_done=13,
            losses={"loss": 1.0}, elapsed_s=10.0, backend="serial", worker=0,
        )
        kinds = {a.kind for a in agg.alerts}
        assert "step_time_anomaly" in kinds
        assert [w.kind for w in history.health_warnings] == ["step_time_anomaly"]
        assert seen and seen[0]["kind"] == "step_time_anomaly"
        assert seen[0]["origin"] == "live"

    def test_nan_loss_is_critical(self):
        hub = TelemetryHub()
        history = _History()
        hub.subscribe(LiveAggregator().attach(hub, history))
        hub.emit(
            "step_end", trainer="t0", steps=1, steps_done=1,
            losses={"gan": math.nan}, elapsed_s=0.01,
        )
        assert len(history.health_warnings) == 1
        w = history.health_warnings[0]
        assert w.kind == "nan_loss" and w.severity == "critical"
        assert w.trainer == "t0"

    def test_ingest_backpressure_and_serve_slo_burn(self):
        hub = TelemetryHub()
        agg = LiveAggregator(serve_slo_s=0.01, slo_min_samples=4).attach(hub)
        hub.subscribe(agg)
        hub.emit(
            "ingest", round=0, admitted=4, evicted=0, stale=0,
            store_evictions=0, depth=8, cursor=4, universe_version=1,
            universe_size=64, producer_lag=9, store_occupancy=0.0,
            paused=True, channel_occupancy=1.0,
        )
        for _ in range(6):
            hub.emit("serve", size=4, queue_depth=2, forward_s=0.05,
                     wait_s=0.01, version=1)
        kinds = {a.kind for a in agg.alerts}
        assert "ingest_backpressure" in kinds
        assert "serve_slo_burn" in kinds
        snap = agg.snapshot()
        assert snap["ingest"]["paused"] is True
        assert snap["serve"]["slo_burn"] == 1.0

    def test_stall_regression_on_round_end(self):
        hub = TelemetryHub()
        agg = LiveAggregator(
            stall_fraction_threshold=0.5, warmup_rounds=1
        ).attach(hub)
        hub.subscribe(agg)
        # Warmup round: stall is ignored even if huge.
        hub.emit("fetch_stall", trainer="t0", stall_s=9.0, overlap_s=0.0)
        hub.emit("round_end", round=0, train_s=1.0)
        assert not agg.alerts
        hub.emit("fetch_stall", trainer="t0", stall_s=0.8, overlap_s=0.0)
        hub.emit("round_end", round=1, train_s=1.0)
        assert [a.kind for a in agg.alerts] == ["stall_regression"]
        # The per-round accumulator resets: a healthy round stays quiet.
        hub.emit("round_end", round=2, train_s=1.0)
        assert len(agg.alerts) == 1

    def test_worker_origin_alerts_admitted_without_reemission(self):
        hub = TelemetryHub()
        history = _History()
        agg = LiveAggregator().attach(hub, history)
        emitted = []

        class Sink:
            def handle(self, event):
                if event.type == "alert":
                    emitted.append(event.payload)

        hub.subscribe(agg)
        hub.subscribe(Sink())
        payload = Alert(
            kind="nan_loss", severity="critical", message="worker says nan",
            trainer="t0", origin="worker",
        ).to_payload()
        hub.emit("alert", **payload)
        # Admitted once into history, no second (re-emitted) alert event.
        assert [w.kind for w in history.health_warnings] == ["nan_loss"]
        assert len(emitted) == 1

    def test_snapshot_shape_is_json_encodable(self):
        hub = TelemetryHub()
        agg = LiveAggregator().attach(hub)
        hub.subscribe(agg)
        _steps(hub, 3)
        hub.emit("pairing", topology="ring", round=0, pairs=[["t0", "t1"]],
                 bye=[], neighborhoods=[None])
        hub.emit("round_end", round=0, train_s=0.03)
        snap = agg.snapshot()
        json.dumps(snap)
        assert snap["round"] == 0
        assert snap["trainers"]["t0"]["steps_done"] == 3
        assert snap["pairing"]["pairs"] == [["t0", "t1"]]
        assert "step_time_s" in snap["windows"]


def _tiny_driver(tiny_dataset, tiny_spec, tiny_autoencoder, *, seed, backend,
                 rounds=2, steps_per_round=2):
    spec = dataclasses.replace(tiny_spec, k=2)
    trainers = build_population(
        tiny_dataset,
        np.arange(tiny_dataset.n_samples - 64),
        RngFactory(seed).child("live"),
        spec,
        tiny_autoencoder,
    )
    eval_batch = {
        k: v[np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)]
        for k, v in tiny_dataset.fields.items()
    }
    return trainers, LtfbDriver(
        trainers,
        np.random.default_rng(5),
        LtfbConfig(steps_per_round=steps_per_round, rounds=rounds),
        eval_batch=eval_batch,
        backend=backend,
    )


class _Poisoner:
    """Poisons one trainer's generator after round 0's training.

    Marks the victim dirty so backends with remote replicas (process)
    push the poisoned state to the worker before the next interval.
    """

    def __init__(self, trainers):
        self.trainers = trainers
        self._driver = None

    def handle(self, event):
        if event.type == "round_end" and event.payload["round"] == 0:
            victim = self.trainers[0]
            state = victim.surrogate.get_generator_state()
            victim.surrogate.set_generator_state(
                {k: v * math.nan for k, v in state.items()}
            )
            self._driver.backend.mark_dirty(victim.name)

    def on_run_begin(self, driver):
        self._driver = driver

    def on_run_end(self, driver, history):
        pass


class TestDriverIntegration:
    def test_alerts_land_in_history_during_run(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        """Acceptance: a forced NaN raises a critical warning into
        ``History.health_warnings`` *before* the run ends (observed at the
        following round's start, when the final round has not run yet)."""
        trainers, driver = _tiny_driver(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            seed=21, backend=resolve_backend("serial"),
        )
        counts = []

        class Probe:
            def handle(self, event):
                if event.type == "round_end":
                    counts.append(len(driver.history.health_warnings))

            def on_run_begin(self, d):
                pass

            def on_run_end(self, d, h):
                pass

        history = driver.run(
            callbacks=[_Poisoner(trainers), Probe(), LiveAggregator()]
        )
        kinds = {w.kind for w in history.health_warnings}
        assert "nan_loss" in kinds
        critical = [w for w in history.health_warnings if w.kind == "nan_loss"]
        assert all(w.severity == "critical" for w in critical)
        assert any(w.trainer == trainers[0].name for w in critical)
        # Live: the warning was already present when round 1 ended, not
        # appended at on_run_end.
        assert counts[-1] >= 1

    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_worker_relay_raises_live_alert(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, backend_name
    ):
        """Workers detect the non-finite loss themselves and relay an
        ``alert`` event through their recorder; the driver-side aggregator
        admits it into history."""
        trainers, driver = _tiny_driver(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            seed=23, backend=resolve_backend(backend_name, max_workers=2),
        )
        history = driver.run(
            callbacks=[_Poisoner(trainers), LiveAggregator()]
        )
        nan = [w for w in history.health_warnings if w.kind == "nan_loss"]
        assert nan, history.health_warnings
        assert all(w.severity == "critical" for w in nan)


class TestFlightRecorder:
    def test_rings_are_bounded_per_subsystem(self, tmp_path):
        hub = TelemetryHub()
        rec = FlightRecorder(out_dir=tmp_path, capacity=5)
        hub.subscribe(rec)
        _steps(hub, 20)
        hub.emit("ingest", round=0, admitted=1, evicted=0, stale=0,
                 store_evictions=0, depth=0, cursor=1, universe_version=1,
                 universe_size=1, producer_lag=0, store_occupancy=0.0,
                 paused=False, channel_occupancy=0.0)
        assert len(rec.rings["train"]) == 5
        assert len(rec.rings["ingest"]) == 1
        assert rec.events_seen == 21
        # No trigger fired: nothing on disk.
        assert not rec.dumps_written

    def test_spans_excluded_unless_asked(self, tmp_path):
        hub = TelemetryHub()
        rec = FlightRecorder(out_dir=tmp_path)
        hub.subscribe(rec)
        hub.start_tracing()
        hub.emit("span", name="x", track="main", start_s=0.0, dur_s=0.1)
        assert "span" not in rec.rings
        keeper = FlightRecorder(out_dir=tmp_path, record_spans=True)
        hub.subscribe(keeper)
        hub.emit("span", name="y", track="main", start_s=0.0, dur_s=0.1)
        assert len(keeper.rings["span"]) == 1

    def test_critical_alert_auto_dumps_bounded(self, tmp_path):
        hub = TelemetryHub()
        rec = FlightRecorder(out_dir=tmp_path, max_auto_dumps=2)
        hub.subscribe(rec)
        _steps(hub, 3)
        for i in range(5):
            hub.emit("alert", kind="nan_loss", severity="critical",
                     source="train", round=i, trainer="t0", message="boom",
                     value=None, threshold=None, origin="live")
        assert len(rec.dumps_written) == 2
        bundle = load_bundle(rec.dumps_written[0])
        assert bundle["reason"] == "critical-nan_loss"
        assert [r["type"] for r in bundle["events"]["train"]] == ["step_end"] * 3
        assert bundle["events"]["health"][0]["kind"] == "nan_loss"

    def test_warning_severity_does_not_dump(self, tmp_path):
        hub = TelemetryHub()
        rec = FlightRecorder(out_dir=tmp_path)
        hub.subscribe(rec)
        hub.emit("health", kind="stall_regression", severity="warning",
                 round=1, trainer=None, message="slow")
        assert not rec.dumps_written

    def test_crash_hook_dumps_bundle(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        """A mid-run exception escaping the round loop triggers
        ``on_run_error`` and a crash bundle before the exception unwinds."""
        _, driver = _tiny_driver(
            tiny_dataset, tiny_spec, tiny_autoencoder,
            seed=29, backend=resolve_backend("serial"),
        )

        class Bomb:
            def handle(self, event):
                if event.type == "round_end":
                    raise RuntimeError("injected fault")

            def on_run_begin(self, d):
                pass

            def on_run_end(self, d, h):
                pass

        rec = FlightRecorder(out_dir=tmp_path)
        with pytest.raises(RuntimeError, match="injected fault"):
            driver.run(callbacks=[rec, Bomb()])
        assert len(rec.dumps_written) == 1
        bundle = load_bundle(rec.dumps_written[0])
        assert bundle["reason"] == "crash-RuntimeError"
        assert bundle["error"] == "RuntimeError('injected fault')"
        assert bundle["run"]["driver"] == "LtfbDriver"
        assert bundle["events"]["train"]

    def test_load_bundle_rejects_garbage(self, tmp_path):
        not_bundle = tmp_path / "x.json"
        not_bundle.write_text('{"bundle": "something_else"}')
        with pytest.raises(ValueError, match="not a flight-recorder bundle"):
            load_bundle(not_bundle)
        wrong_version = tmp_path / "y.json"
        wrong_version.write_text(
            '{"bundle": "flight_recorder", "version": 999}'
        )
        with pytest.raises(ValueError, match="unsupported bundle version"):
            load_bundle(wrong_version)

    def test_every_event_type_has_a_subsystem(self):
        from repro.telemetry.events import EVENT_TYPES

        assert set(SUBSYSTEM_OF) == set(EVENT_TYPES)


class TestStatusServer:
    def _fake_server(self):
        from repro.telemetry.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("repro_serve_requests_total", "requests").inc(7)
        return SimpleNamespace(
            stats=lambda: {"requests": 7, "version": 3},
            metrics=registry,
            batcher=SimpleNamespace(closed=False),
        )

    def test_endpoints(self):
        from repro.serve.status import StatusServer

        fake = self._fake_server()
        hub = TelemetryHub()
        agg = LiveAggregator().attach(hub)
        hub.subscribe(agg)
        _steps(hub, 2)
        with StatusServer(fake, aggregator=agg) as status:
            base = status.url
            with urllib.request.urlopen(f"{base}/status") as resp:
                doc = json.load(resp)
            assert doc["serve"]["requests"] == 7
            assert doc["live"]["trainers"]["t0"]["steps_done"] == 2
            with urllib.request.urlopen(f"{base}/metrics") as resp:
                text = resp.read().decode()
                assert resp.headers["Content-Type"].startswith("text/plain")
            assert "repro_serve_requests_total 7" in text
            with urllib.request.urlopen(f"{base}/healthz") as resp:
                assert resp.read() == b"ok\n"
            fake.batcher.closed = True
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/healthz")
            assert err.value.code == 503
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(f"{base}/nope")
            assert err.value.code == 404

    def test_status_without_aggregator_omits_live(self):
        from repro.serve.status import StatusServer

        status = StatusServer(self._fake_server())
        doc = status.status()
        assert "live" not in doc
        status.stop()


class TestAtomicMetrics:
    def test_write_metrics_publishes_atomically(self, tmp_path):
        from repro.telemetry.metrics import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        registry.counter("repro_test_total", "x").inc(3)
        out = tmp_path / "metrics.json"
        write_metrics(registry, out)
        doc = json.loads(out.read_text())
        assert doc["counters"]["repro_test_total"] == 3
        # No temporary files survive publication.
        assert [p.name for p in tmp_path.iterdir()] == ["metrics.json"]

    def test_failed_write_leaves_no_tmp(self, tmp_path):
        from repro.telemetry.metrics import MetricsRegistry, write_metrics

        registry = MetricsRegistry()
        target = tmp_path / "dir.prom"
        target.mkdir()  # os.replace onto a directory fails
        with pytest.raises(OSError):
            write_metrics(registry, target)
        assert [p.name for p in tmp_path.iterdir()] == ["dir.prom"]

    def test_render_metrics_formats(self):
        from repro.telemetry.metrics import MetricsRegistry, render_metrics

        registry = MetricsRegistry()
        registry.counter("repro_test_total", "x").inc(1)
        assert "repro_test_total 1" in render_metrics(registry, "prometheus")
        assert json.loads(render_metrics(registry, "json"))["counters"]
        with pytest.raises(ValueError):
            render_metrics(registry, "xml")


def _write_demo_trace(path, rounds=3, paused_last=True):
    hub = TelemetryHub()
    writer = JsonlTraceWriter(
        path,
        metadata={"driver": "LtfbDriver", "backend": "serial", "workers": 1,
                  "population": ["t0", "t1"], "rounds": rounds},
    )
    hub.subscribe(writer)
    for r in range(rounds):
        hub.emit("pairing", topology="ring", round=r, pairs=[["t0", "t1"]],
                 bye=[], neighborhoods=[None])
        for t in ("t0", "t1"):
            hub.emit("step_end", trainer=t, steps=2, steps_done=(r + 1) * 2,
                     losses={"loss": 1.0 / (r + 1)}, elapsed_s=0.02,
                     backend="serial", worker=0)
        hub.emit("fetch_stall", trainer="t0", stall_s=0.002, overlap_s=0.001,
                 worker=0)
        hub.emit("exchange", round=r, trainer_a="t0", trainer_b="t1",
                 scope="model", nbytes=1024)
        hub.emit("ingest", round=r, admitted=8, evicted=2, stale=1,
                 store_evictions=0, depth=0, cursor=8 * (r + 1),
                 universe_version=r, universe_size=64 + 8 * r,
                 producer_lag=2, store_occupancy=0.0,
                 paused=paused_last and r == rounds - 1,
                 channel_occupancy=0.2 * (r + 1))
        hub.emit("round_end", round=r, train_s=0.08, tournament_s=0.01,
                 exchange_s=0.005)
    writer.close()


class TestReportSections:
    def test_pairing_and_ingest_sections(self, tmp_path):
        from repro.telemetry.report import render_trace_report, trace_summary

        trace = tmp_path / "trace.jsonl"
        _write_demo_trace(trace)
        text = render_trace_report(trace)
        assert "pairing:" in text
        assert "3 rounds (ring x3): 3 pairings, 1 unique, 0 byes" in text
        assert "partner diversity" in text
        assert "ingest:" in text
        assert "3 polls: admitted 24, evicted 6 (3 stale)" in text
        assert "hit the high watermark" in text
        summary = trace_summary(trace)
        assert summary["pairings"]["unique_pairs"] == 1
        assert summary["pairings"]["partners"] == {"t0": 1, "t1": 1}
        assert summary["ingest"]["polls"] == 3
        assert summary["ingest"]["paused_polls"] == 1
        assert summary["ingest"]["universe_size"] == 80
        json.dumps(summary)

    def test_sections_absent_without_events(self, tmp_path):
        from repro.telemetry.report import (
            render_trace_report,
            summarize_ingest,
            summarize_pairings,
            trace_summary,
        )

        trace = tmp_path / "trace.jsonl"
        hub = TelemetryHub()
        writer = JsonlTraceWriter(trace)
        hub.subscribe(writer)
        _steps(hub, 2)
        hub.emit("round_end", round=0, train_s=0.02)
        writer.close()
        assert summarize_pairings([]) is None
        assert summarize_ingest([]) is None
        text = render_trace_report(trace)
        assert "pairing:" not in text
        assert "ingest:" not in text
        summary = trace_summary(trace)
        assert summary["pairings"] is None
        assert summary["ingest"] is None


class TestWatchCli:
    def test_snapshot_and_render(self, tmp_path):
        from repro.telemetry.__main__ import render_watch, watch_snapshot

        trace = tmp_path / "trace.jsonl"
        _write_demo_trace(trace)
        snap = watch_snapshot(trace)
        assert snap["round"] == 2
        assert snap["header"]["run"]["driver"] == "LtfbDriver"
        text = render_watch(snap, path=trace)
        assert "round: 3/3" in text
        assert "t0:" in text and "t1:" in text
        assert "pairing[ring]" in text
        assert "ingest: universe 80" in text
        assert "PAUSED" in text

    def test_tail_tolerates_partial_line(self, tmp_path):
        from repro.telemetry.__main__ import _TraceTail

        trace = tmp_path / "trace.jsonl"
        _write_demo_trace(trace, rounds=1)
        tail = _TraceTail(trace)
        complete = tail.poll()
        assert complete
        with open(trace, "a", encoding="utf-8") as fh:
            fh.write('{"type": "round_end", "time_s": 9.0, "seq')
        assert tail.poll() == []  # half-written line is left for later
        with open(trace, "a", encoding="utf-8") as fh:
            fh.write('uence": 99, "round": 1, "train_s": 0.1}\n')
        more = tail.poll()
        assert [e.type for e in more] == ["round_end"]
        assert more[0].payload["round"] == 1

    def test_main_once_and_json(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        trace = tmp_path / "trace.jsonl"
        _write_demo_trace(trace)
        assert main(["watch", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "== live status" in out
        assert main(["watch", str(trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["round"] == 2

    def test_missing_trace_renders_empty(self, tmp_path, capsys):
        from repro.telemetry.__main__ import main

        assert main(["watch", str(tmp_path / "nope.jsonl")]) == 0
        assert "alerts: none" in capsys.readouterr().out


class TestJointObservabilityStreaming:
    def test_health_resources_and_live_under_process_backend(self, tmp_path):
        """HealthMonitor + ResourceSampler + LiveAggregator together on a
        streamed run under the process backend: the run stays healthy, the
        sampler sees driver and worker sources, ingest polls happen, and
        the live snapshot reflects all of it."""
        from repro.experiments.streaming import StreamingSpec, build_streaming_run
        from repro.telemetry import HealthMonitor, ResourceSampler

        setup = build_streaming_run(
            StreamingSpec(seed=7, k=2, n_design=256, prime_samples=64)
        )
        agg = LiveAggregator()
        samples = []

        class Resources:
            def handle(self, event):
                if event.type == "resource_sample":
                    samples.append(event.payload.get("source"))

            def on_run_begin(self, d):
                pass

            def on_run_end(self, d, h):
                pass

        driver = LtfbDriver(
            setup.trainers,
            setup.rngs.generator("pairing"),
            LtfbConfig(steps_per_round=2, rounds=2),
            eval_batch=setup.eval_batch,
            backend=resolve_backend("process", max_workers=2),
            source=setup.source,
        )
        history = driver.run(
            callbacks=[HealthMonitor(), ResourceSampler(), agg, Resources()]
        )
        assert history.rounds_completed == 2
        # The tiny primed channel legitimately pauses at its watermark, so
        # warning-level backpressure alerts are fine; nothing critical.
        assert all(w.severity != "critical" for w in history.health_warnings), [
            w.render() for w in history.health_warnings
        ]
        assert "driver" in samples
        assert any(s and s.startswith("worker") for s in samples)
        snap = agg.snapshot()
        assert snap["ingest"] is not None
        assert snap["ingest"]["universe_size"] > 64
        assert snap["windows"]["ingest_admitted"]["count"] >= 1
        assert snap["alerts"]["critical"] == 0
