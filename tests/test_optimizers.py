"""Tests for optimizers and learning-rate schedules."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensorlib.optimizers import (
    SGD,
    Adam,
    ConstantLR,
    CosineDecayLR,
    Momentum,
    StepDecayLR,
)
from repro.tensorlib.weights import Weight


def quad_weight(value=5.0):
    """Scalar weight with loss 0.5*w^2 (gradient = w)."""
    return Weight("w", np.array([value], dtype=np.float32))


def converges(opt, steps=400, start=5.0, tol=1e-2):
    w = quad_weight(start)
    for _ in range(steps):
        w.zero_grad()
        w.accumulate_grad(w.value.copy())
        opt.step([w])
    return abs(float(w.value[0])) < tol


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.1).learning_rate(999) == 0.1
        with pytest.raises(ValueError):
            ConstantLR(0.0)

    def test_step_decay(self):
        s = StepDecayLR(1.0, factor=0.5, every=10)
        assert s.learning_rate(0) == 1.0
        assert s.learning_rate(9) == 1.0
        assert s.learning_rate(10) == 0.5
        assert s.learning_rate(25) == 0.25

    def test_cosine_decay(self):
        s = CosineDecayLR(1.0, total_steps=100, final=0.1)
        assert s.learning_rate(0) == pytest.approx(1.0)
        assert s.learning_rate(100) == pytest.approx(0.1)
        assert s.learning_rate(50) == pytest.approx(0.55)
        assert s.learning_rate(1000) == pytest.approx(0.1)  # clamped

    def test_float_becomes_constant(self):
        assert SGD(0.05).learning_rate == 0.05


class TestSGD:
    def test_single_step_math(self):
        w = quad_weight(2.0)
        w.accumulate_grad(np.array([1.0], dtype=np.float32))
        SGD(0.5).step([w])
        assert float(w.value[0]) == pytest.approx(1.5)

    def test_converges_on_quadratic(self):
        assert converges(SGD(0.1))

    def test_skips_frozen_weights(self):
        w = Weight("frozen", np.ones(1), trainable=False)
        w.accumulate_grad(np.ones(1))
        SGD(1.0).step([w])
        assert float(w.value[0]) == 1.0

    def test_schedule_applied_per_step(self):
        opt = SGD(StepDecayLR(1.0, factor=0.5, every=1))
        w = quad_weight(0.0)
        w.accumulate_grad(np.array([1.0], dtype=np.float32))
        opt.step([w])  # lr 1.0
        assert float(w.value[0]) == pytest.approx(-1.0)
        w.zero_grad()
        w.accumulate_grad(np.array([1.0], dtype=np.float32))
        opt.step([w])  # lr 0.5
        assert float(w.value[0]) == pytest.approx(-1.5)


class TestMomentum:
    def test_converges(self):
        assert converges(Momentum(0.05, momentum=0.9))

    def test_nesterov_converges(self):
        assert converges(Momentum(0.05, momentum=0.9, nesterov=True))

    def test_velocity_accumulates(self):
        opt = Momentum(1.0, momentum=0.5)
        w = quad_weight(0.0)
        for expected in (-1.0, -2.5):  # v: -1, then -1.5
            w.zero_grad()
            w.accumulate_grad(np.array([1.0], dtype=np.float32))
            opt.step([w])
            assert float(w.value[0]) == pytest.approx(expected)

    def test_invalid_momentum(self):
        with pytest.raises(ValueError):
            Momentum(0.1, momentum=1.0)


class TestAdam:
    def test_converges(self):
        assert converges(Adam(0.3))

    def test_first_step_magnitude_is_lr(self):
        # With bias correction, |first update| ~= lr regardless of grad size.
        for scale in (1e-3, 1.0, 1e3):
            w = quad_weight(0.0)
            w.accumulate_grad(np.array([scale], dtype=np.float32))
            Adam(0.01).step([w])
            assert float(w.value[0]) == pytest.approx(-0.01, rel=1e-3)

    def test_state_roundtrip(self):
        opt = Adam(0.1)
        w = quad_weight(3.0)
        for _ in range(5):
            w.zero_grad()
            w.accumulate_grad(w.value.copy())
            opt.step([w])
        snapshot = opt.get_state()
        v_after_5 = float(w.value[0])
        w.zero_grad()
        w.accumulate_grad(w.value.copy())
        opt.step([w])
        v_after_6 = float(w.value[0])

        # Restore and replay step 6 — must match exactly.
        opt2 = Adam(0.1)
        opt2.set_state(snapshot)
        w2 = quad_weight(v_after_5)
        w2.accumulate_grad(w2.value.copy())
        opt2.step([w2])
        assert float(w2.value[0]) == pytest.approx(v_after_6, rel=1e-6)

    def test_reset_clears_slots(self):
        opt = Adam(0.1)
        w = quad_weight(1.0)
        w.accumulate_grad(np.ones(1, dtype=np.float32))
        opt.step([w])
        assert opt.step_count == 1
        opt.reset()
        assert opt.step_count == 0
        assert opt.get_state()["slots"] == {}

    def test_distinct_weights_distinct_slots(self):
        opt = Adam(0.1)
        a = Weight("m1/w", np.ones(2))
        b = Weight("m2/w", np.ones(3))
        a.accumulate_grad(np.ones(2))
        b.accumulate_grad(np.ones(3))
        opt.step([a, b])  # would broadcast-error if slots collided
        assert set(opt.get_state()["slots"]) == {"m1/w", "m2/w"}

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            Adam(0.1, beta1=1.0)
        with pytest.raises(ValueError):
            Adam(0.1, epsilon=0.0)


class TestWeight:
    def test_grad_shape_check(self):
        w = Weight("w", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            w.accumulate_grad(np.zeros(3))

    def test_assign_shape_check(self):
        w = Weight("w", np.zeros((2, 2)))
        with pytest.raises(ValueError):
            w.assign(np.zeros((3, 3)))

    def test_assign_in_place(self):
        w = Weight("w", np.zeros(3))
        buf = w.value
        w.assign(np.ones(3))
        assert buf is w.value
        np.testing.assert_array_equal(w.value, 1.0)

    def test_value_is_float32_copy(self):
        src = np.ones(3, dtype=np.float64)
        w = Weight("w", src)
        src[:] = 7.0
        assert w.value.dtype == np.float32
        np.testing.assert_array_equal(w.value, 1.0)
