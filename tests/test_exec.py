"""Tests for the pluggable execution backends (:mod:`repro.exec`).

The headline invariant: a population run produces a bit-identical
:class:`~repro.core.driver.History` no matter which backend executes the
train phase — trainers are independent within a round and all randomness
is scoped per trainer, so execution placement must not be observable in
the results.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core import LtfbConfig, LtfbDriver, build_population
from repro.exec import (
    BACKEND_NAMES,
    EventRecorder,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.telemetry import Callback, TelemetryHub
from repro.utils.rng import RngFactory


def _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=4):
    spec = dataclasses.replace(tiny_spec, k=k)
    return build_population(
        tiny_dataset,
        np.arange(tiny_dataset.n_samples - 64),
        RngFactory(77).child("exec"),
        spec,
        tiny_autoencoder,
    )


def _run_ltfb(
    tiny_dataset, tiny_spec, tiny_autoencoder, backend,
    topology="random_pairwise",
):
    trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
    val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    driver = LtfbDriver(
        trainers,
        np.random.default_rng(7),
        LtfbConfig(steps_per_round=3, rounds=3),
        eval_batch={k: v[val_ids] for k, v in tiny_dataset.fields.items()},
        backend=backend,
        topology=topology,
    )
    history = driver.run()
    final_weights = {
        t.name: {k: v.copy() for k, v in t.generator_state().items()}
        for t in driver.trainers
    }
    return history, final_weights, driver


class TestResolveBackend:
    def test_default_is_serial(self):
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)
        assert tuple(BACKEND_NAMES) == ("serial", "thread", "process")

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_backend("gpu")

    def test_instance_passthrough(self):
        backend = ThreadBackend(max_workers=2)
        assert resolve_backend(backend) is backend

    def test_instance_rejects_max_workers_override(self):
        with pytest.raises(ValueError, match="max_workers"):
            resolve_backend(ThreadBackend(), max_workers=2)

    def test_bad_type(self):
        with pytest.raises(TypeError):
            resolve_backend(42)


class TestEventRecorder:
    def test_rejects_unknown_event_type(self):
        with pytest.raises(ValueError, match="unknown event type"):
            EventRecorder().emit("nope", x=1)

    def test_replay_preserves_order_and_clears(self):
        recorder = EventRecorder()
        recorder.emit("step_end", trainer="a", steps=1)
        recorder.emit("round_end", round=0, train_s=0.1)
        seen = []

        class Collect(Callback):
            def on_event(self, event):
                seen.append((event.type, dict(event.payload)))

        hub = TelemetryHub()
        hub.subscribe(Collect())
        recorder.replay_into(hub)
        assert [t for t, _ in seen] == ["step_end", "round_end"]
        assert seen[0][1]["trainer"] == "a"
        assert recorder.events == []


class TestLifecycle:
    def test_double_bind_raises(self, tiny_dataset, tiny_spec, tiny_autoencoder):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        backend = SerialBackend()
        backend.bind(trainers, TelemetryHub())
        with pytest.raises(RuntimeError, match="already bound"):
            backend.bind(trainers, TelemetryHub())
        backend.release()
        backend.release()  # idempotent
        backend.bind(trainers, TelemetryHub())  # reusable after release
        backend.release()

    def test_worker_assignment_is_round_robin(self):
        assert [ExecutionBackend.worker_of(i, 3) for i in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]
        assert ExecutionBackend.worker_of(5, 0) == 0  # degenerate guard

    def test_context_manager_releases(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        backend = ThreadBackend(max_workers=2)
        with backend:
            backend.bind(trainers, TelemetryHub())
        assert not backend._bound

    def test_thread_backend_restores_shared_autoencoder(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        backend = ThreadBackend(max_workers=2)
        backend.bind(trainers, TelemetryHub())
        # Bound: each trainer trains against a private replica.
        replicas = {id(t.surrogate.autoencoder) for t in trainers}
        assert len(replicas) == 2 and id(tiny_autoencoder) not in replicas
        backend.release()
        assert all(t.surrogate.autoencoder is tiny_autoencoder for t in trainers)


@pytest.fixture(scope="module", params=["random_pairwise", "cellular_grid"])
def serial_run(request, tiny_dataset, tiny_spec, tiny_autoencoder):
    """One serial reference run per synchronous topology: the determinism
    contract must hold for every topology whose plan depends only on the
    pairing RNG and round index, not just the paper's random pairing."""
    return request.param, _run_ltfb(
        tiny_dataset, tiny_spec, tiny_autoencoder, "serial",
        topology=request.param,
    )


class TestCrossBackendDeterminism:
    @pytest.mark.parametrize("backend_name", ["thread", "process"])
    def test_history_bit_identical_to_serial(
        self, backend_name, serial_run, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        topology, (ref_history, ref_weights, _) = serial_run
        backend = resolve_backend(backend_name, max_workers=2)
        history, weights, _ = _run_ltfb(
            tiny_dataset, tiny_spec, tiny_autoencoder, backend,
            topology=topology,
        )
        assert history.rounds_completed == ref_history.rounds_completed
        assert history.train_losses == ref_history.train_losses
        assert history.eval_series == ref_history.eval_series
        assert history.tournaments == ref_history.tournaments
        assert history.pairings == ref_history.pairings
        assert history.byes == ref_history.byes
        assert history.exchange_bytes == ref_history.exchange_bytes
        for name, ref in ref_weights.items():
            for key, arr in ref.items():
                np.testing.assert_array_equal(arr, weights[name][key])

    def test_serial_reference_is_itself_deterministic(
        self, serial_run, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        topology, (ref_history, _, _) = serial_run
        again, _, _ = _run_ltfb(
            tiny_dataset, tiny_spec, tiny_autoencoder, "serial",
            topology=topology,
        )
        assert again.tournaments == ref_history.tournaments

    def test_cli_backend_full_run(
        self, cli_backend, cli_topology, tiny_dataset, tiny_spec,
        tiny_autoencoder,
    ):
        """The --backend/--topology suite leg: a full LTFB run under the
        CLI-chosen backend and topology must finish and advance every
        trainer."""
        history, _, driver = _run_ltfb(
            tiny_dataset, tiny_spec, tiny_autoencoder, cli_backend,
            topology=cli_topology,
        )
        assert history.rounds_completed == 3
        assert all(t.steps_done == 9 for t in driver.trainers)


class TestProcessBackend:
    def test_mid_epoch_bind_matches_serial(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        """Trainers with an in-flight data pipeline ship to workers cleanly:
        pickling folds the pipeline into its plan cursor, and the replica
        resumes the same epoch bit-identically to a serial continuation."""
        ref = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        ref_losses = {}
        for t in ref:
            t.train_steps(1)
            ref_losses[t.name] = t.train_steps(3)
        live = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        for t in live:
            t.train_steps(1)  # leaves a mid-epoch data pipeline
        backend = ProcessBackend(max_workers=2)
        backend.bind(live, TelemetryHub())
        try:
            losses = backend.train_round(0, 3)
        finally:
            backend.release()
        assert losses == ref_losses
        for tr, tl in zip(ref, live):
            for key, arr in tr.generator_state().items():
                np.testing.assert_array_equal(arr, tl.generator_state()[key])

    def test_mark_dirty_unknown_trainer(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        backend = ProcessBackend(max_workers=2)
        backend.bind(trainers, TelemetryHub())
        try:
            with pytest.raises(ValueError, match="unknown trainer"):
                backend.mark_dirty("nobody")
        finally:
            backend.release()

    def test_dead_worker_raises(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder, k=2)
        backend = ProcessBackend(max_workers=2)
        backend.bind(trainers, TelemetryHub())
        try:
            backend._procs[0].terminate()
            backend._procs[0].join()
            with pytest.raises(RuntimeError, match="died unexpectedly"):
                backend.train_round(0, 1)
        finally:
            backend.release()

    def test_max_workers_validation(self):
        with pytest.raises(ValueError):
            ProcessBackend(max_workers=0)


class TestTelemetryAttribution:
    def _step_events(self, tiny_dataset, tiny_spec, tiny_autoencoder, backend):
        events = []

        class Steps(Callback):
            def on_step_end(self, event):
                events.append(dict(event.payload))

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(7),
            LtfbConfig(steps_per_round=2, rounds=1),
            backend=backend,
        )
        driver.run(callbacks=[Steps()])
        return events

    def test_serial_attribution(self, tiny_dataset, tiny_spec, tiny_autoencoder):
        events = self._step_events(
            tiny_dataset, tiny_spec, tiny_autoencoder, "serial"
        )
        assert [e["trainer"] for e in events] == [
            "trainer00", "trainer01", "trainer02", "trainer03",
        ]
        assert all(e["backend"] == "serial" and e["worker"] == 0 for e in events)

    def test_thread_attribution_and_population_order(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        events = self._step_events(
            tiny_dataset, tiny_spec, tiny_autoencoder, ThreadBackend(max_workers=2)
        )
        # Relayed in population order despite concurrent execution.
        assert [e["trainer"] for e in events] == [
            "trainer00", "trainer01", "trainer02", "trainer03",
        ]
        assert all(e["backend"] == "thread" for e in events)
        assert [e["worker"] for e in events] == [0, 1, 0, 1]

    def test_counter_aggregator_per_worker_seconds(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        from repro.telemetry import CounterAggregator

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
        counters = CounterAggregator()
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(7),
            LtfbConfig(steps_per_round=2, rounds=1),
            backend=ThreadBackend(max_workers=2),
        )
        driver.run(callbacks=[counters])
        assert set(counters.worker_train_s) == {
            "thread/worker0", "thread/worker1",
        }
        assert all(s > 0 for s in counters.worker_train_s.values())
        summary = counters.summary()
        assert "train_s[thread/worker0]" in summary

    def test_counter_aggregator_per_worker_seconds_process(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        # Worker attribution must survive the multiprocessing relay: step
        # events recorded in worker processes still carry backend/worker
        # fields when replayed on the driver's hub.
        from repro.telemetry import CounterAggregator

        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
        counters = CounterAggregator()
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(7),
            LtfbConfig(steps_per_round=2, rounds=1),
            backend=ProcessBackend(max_workers=2),
        )
        driver.run(callbacks=[counters])
        assert set(counters.worker_train_s) == {
            "process/worker0", "process/worker1",
        }
        assert all(s > 0 for s in counters.worker_train_s.values())
        summary = counters.summary()
        assert "train_s[process/worker0]" in summary

    def test_counter_aggregator_skips_unattributed_steps(self):
        from repro.telemetry import CounterAggregator

        counters = CounterAggregator()
        hub = TelemetryHub()
        hub.subscribe(counters)
        # A pre-backend trace line: no backend/worker fields.
        hub.emit("step_end", trainer="t", steps=3, elapsed_s=0.5)
        assert counters.steps == 3
        assert counters.worker_train_s == {}

    def test_trace_report_renders_per_worker_section(
        self, tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        from repro.telemetry import JsonlTraceWriter
        from repro.telemetry.report import render_trace_report

        trace = tmp_path / "trace.jsonl"
        trainers = _population(tiny_dataset, tiny_spec, tiny_autoencoder)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(7),
            LtfbConfig(steps_per_round=2, rounds=1),
            backend=ThreadBackend(max_workers=2),
        )
        driver.run(callbacks=[JsonlTraceWriter(trace)])
        text = render_trace_report(trace)
        assert "per-worker train wall clock" in text
        assert "thread/worker0" in text and "thread/worker1" in text
