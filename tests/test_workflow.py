"""Tests for the ensemble workflow engine and the JAG campaign."""

from __future__ import annotations

import pytest

from repro.cluster.filesystem import SimulatedFilesystem
from repro.jag.dataset import JagDatasetConfig, small_schema
from repro.workflow.campaign import run_campaign
from repro.workflow.engine import EnsembleWorkflow, WorkerPoolSpec


class TestWorkflowEngine:
    def test_all_tasks_complete_once(self):
        wf = EnsembleWorkflow(WorkerPoolSpec(num_workers=3, tasks_per_job=4))
        results, stats = wf.run([1.0] * 20)
        assert stats.tasks_completed == 20
        assert sorted(r.task_id for r in results) == list(range(20))

    def test_batching_amortizes_overhead(self):
        """The paper's Merlin point: for ~minute tasks, per-job scheduling
        overhead dominates unless tasks are batched."""
        # Enough tasks that the batched schedule still fills every worker.
        times = [60.0] * 6400
        unbatched = EnsembleWorkflow(
            WorkerPoolSpec(num_workers=16, schedule_overhead=30, placement_overhead=15, tasks_per_job=1)
        )
        batched = EnsembleWorkflow(
            WorkerPoolSpec(num_workers=16, schedule_overhead=30, placement_overhead=15, tasks_per_job=100)
        )
        _, s_un = unbatched.run(times)
        _, s_b = batched.run(times)
        assert s_un.overhead_fraction > 0.4
        assert s_b.overhead_fraction < 0.02
        assert s_b.makespan < 0.7 * s_un.makespan

    def test_makespan_lower_bound(self):
        spec = WorkerPoolSpec(num_workers=4, schedule_overhead=0, placement_overhead=0, tasks_per_job=1)
        _, stats = EnsembleWorkflow(spec).run([2.0] * 8)
        assert stats.makespan == pytest.approx(4.0)  # 8 tasks / 4 workers

    def test_single_worker_serializes(self):
        spec = WorkerPoolSpec(num_workers=1, schedule_overhead=1, placement_overhead=0, tasks_per_job=2)
        results, stats = EnsembleWorkflow(spec).run([1.0] * 4)
        assert stats.makespan == pytest.approx(2 * 1 + 4 * 1.0)
        assert stats.jobs_launched == 2

    def test_task_fn_executed(self):
        seen = []
        wf = EnsembleWorkflow(WorkerPoolSpec(num_workers=2), task_fn=seen.append)
        results, _ = wf.run([0.5] * 5)
        assert sorted(seen) == list(range(5))

    def test_worker_efficiency_bounds(self):
        _, stats = EnsembleWorkflow(WorkerPoolSpec()).run([1.0] * 10)
        assert 0.0 < stats.worker_efficiency <= 1.0
        assert stats.overhead_fraction + stats.worker_efficiency == pytest.approx(1.0)

    def test_timestamps_non_overlapping_per_worker(self):
        wf = EnsembleWorkflow(WorkerPoolSpec(num_workers=2, tasks_per_job=3))
        results, _ = wf.run([1.0, 2.0, 0.5, 1.5, 1.0, 0.5, 2.0])
        by_worker: dict[int, list] = {}
        for r in results:
            by_worker.setdefault(r.worker, []).append((r.start_time, r.end_time))
        for spans in by_worker.values():
            spans.sort()
            for (s1, e1), (s2, _e2) in zip(spans, spans[1:]):
                assert s2 >= e1

    def test_validation(self):
        wf = EnsembleWorkflow(WorkerPoolSpec())
        with pytest.raises(ValueError):
            wf.run([])
        with pytest.raises(ValueError):
            wf.run([-1.0])
        with pytest.raises(ValueError):
            WorkerPoolSpec(num_workers=0)


class TestCampaign:
    def test_end_to_end(self):
        fs = SimulatedFilesystem()
        report = run_campaign(
            JagDatasetConfig(n_samples=200, schema=small_schema(8), seed=4),
            fs,
            pool=WorkerPoolSpec(num_workers=8, tasks_per_job=50),
            samples_per_bundle=50,
            task_seconds=60.0,
        )
        assert report.dataset.n_samples == 200
        assert len(report.bundle_paths) == 4
        assert all(fs.exists(p) for p in report.bundle_paths)
        assert report.stats.tasks_completed == 200
        assert report.samples_per_simulated_hour > 0

    def test_bundles_preserve_exploration_order(self):
        fs = SimulatedFilesystem()
        report = run_campaign(
            JagDatasetConfig(n_samples=120, schema=small_schema(8), seed=4),
            fs,
            samples_per_bundle=40,
        )
        first = fs.read_file(report.bundle_paths[0])
        last = fs.read_file(report.bundle_paths[-1])
        # sweep order: drive grows across bundles
        assert first.fields["params"][:, 0].mean() < last.fields["params"][:, 0].mean()

    def test_invalid_task_seconds(self):
        with pytest.raises(ValueError):
            run_campaign(
                JagDatasetConfig(n_samples=10, schema=small_schema(8)),
                SimulatedFilesystem(),
                task_seconds=0,
            )
