"""Tests for the metrics registry (:mod:`repro.telemetry.metrics`):
histogram percentile math, Prometheus/JSON rendering, the live collector,
and the trace-report percentile tables.
"""

from __future__ import annotations

import dataclasses
import json
import math

import numpy as np
import pytest

from repro.core import LtfbConfig, LtfbDriver, build_population
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    JsonlTraceWriter,
    MetricsCollector,
    MetricsRegistry,
    TelemetryHub,
    collect_metrics,
    load_trace,
    write_metrics,
)
from repro.utils.rng import RngFactory


class TestHistogram:
    def test_observe_buckets_and_stats(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.0, 8.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(16.0)
        assert h.mean == pytest.approx(3.2)
        assert h.counts == [1, 1, 2, 1]  # last bucket is +Inf overflow

    def test_quantile_interpolates_within_bucket(self):
        h = Histogram("h", buckets=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 3.0, 3.0, 8.0):
            h.observe(v)
        # target rank 2.5 lands in the (2, 4] bucket, a quarter in.
        assert h.quantile(0.5) == pytest.approx(2.5)
        assert h.quantile(0.0) == pytest.approx(0.5)  # clamped to min
        assert h.quantile(1.0) == pytest.approx(8.0)  # clamped to max

    def test_quantile_clamps_to_observed_range(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        h.observe(3.0)
        # Interpolation inside (1, 10] would give ~5.5; the single
        # observation pins it.
        assert h.quantile(0.5) == pytest.approx(3.0)

    def test_empty_histogram_is_nan(self):
        h = Histogram("h", buckets=(1.0,))
        assert math.isnan(h.mean)
        assert math.isnan(h.quantile(0.5))
        assert all(math.isnan(v) for v in h.percentiles().values())

    def test_quantile_range_validation(self):
        h = Histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="quantile"):
            h.quantile(1.5)

    def test_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="strictly"):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="strictly"):
            Histogram("h", buckets=())

    def test_to_json_cumulative_buckets(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 9.0):
            h.observe(v)
        doc = h.to_json()
        assert [b["count"] for b in doc["buckets"]] == [1, 2, 3]
        assert doc["buckets"][-1]["le"] == math.inf
        assert doc["count"] == 3 and doc["min"] == 0.5 and doc["max"] == 9.0


class TestRegistry:
    def test_metric_name_validation(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("has space")

    def test_counter_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_get_or_create_is_idempotent_and_typed(self):
        r = MetricsRegistry()
        c = r.counter("repro_x_total")
        assert r.counter("repro_x_total") is c
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("repro_x_total")

    def test_to_json_shape(self):
        r = MetricsRegistry()
        r.counter("c").inc(2)
        r.gauge("g").set(1.5)
        r.histogram("h", buckets=(1.0,)).observe(0.5)
        doc = r.to_json()
        assert doc["counters"] == {"c": 2}
        assert doc["gauges"] == {"g": 1.5}
        assert doc["histograms"]["h"]["count"] == 1

    def test_prometheus_exposition_format(self):
        r = MetricsRegistry()
        r.counter("repro_steps_total", "steps").inc(7)
        h = r.histogram("repro_t_seconds", "t", buckets=(0.5, 1.0))
        h.observe(0.25)
        h.observe(2.0)
        text = r.render_prometheus()
        assert "# HELP repro_steps_total steps" in text
        assert "# TYPE repro_steps_total counter" in text
        assert "repro_steps_total 7" in text
        assert '# TYPE repro_t_seconds histogram' in text
        assert 'repro_t_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_t_seconds_bucket{le="1"} 1' in text
        assert 'repro_t_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_t_seconds_sum 2.25" in text
        assert "repro_t_seconds_count 2" in text
        assert text.endswith("\n")

    def test_write_metrics_format_follows_suffix(self, tmp_path):
        r = MetricsRegistry()
        r.counter("c").inc()
        write_metrics(r, tmp_path / "m.prom")
        assert "# TYPE c counter" in (tmp_path / "m.prom").read_text()
        write_metrics(r, tmp_path / "m.json")
        with open(tmp_path / "m.json", encoding="utf-8") as fh:
            assert json.load(fh)["counters"]["c"] == 1


class TestMetricsCollector:
    def test_folds_synthetic_events(self):
        hub = TelemetryHub()
        mc = MetricsCollector()
        hub.subscribe(mc)
        hub.emit("step_end", trainer="t0", steps=4, elapsed_s=0.4, losses={})
        hub.emit("fetch_stall", stall_s=0.01, materialize_s=0.02)
        hub.emit("exchange", trainer_a="a", trainer_b="b", nbytes=2048)
        hub.emit("tournament", round=0, trainer="a", partner="b",
                 own_score=1.0, partner_score=0.5, adopted=True)
        hub.emit("prefetch_fill", depth=2, fill=1, epoch=0, step=0,
                 materialize_s=0.01)
        hub.emit("datastore_fetch", batch_size=4, local_fetches=3,
                 remote_fetches=1, local_bytes=48, remote_bytes=16)
        hub.emit("round_end", round=0, train_s=0.4)
        r = mc.registry
        assert r["repro_steps_total"].value == 4
        assert mc.step_time.count == 1
        assert mc.step_time.sum == pytest.approx(0.1)  # per-step mean
        assert mc.fetch_latency.count == 1
        assert mc.stall.count == 1
        assert mc.exchange_size.count == 1
        assert r["repro_exchange_bytes_total"].value == 2048
        assert r["repro_adoptions_total"].value == 1
        assert r["repro_datastore_local_fetches_total"].value == 3
        assert r["repro_datastore_remote_fetches_total"].value == 1
        assert r["repro_prefetch_queue_fill"].value == 1
        assert r["repro_rounds_total"].value == 1

    def test_offline_collect_matches_live(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        trace = tmp_path / "trace.jsonl"
        spec = dataclasses.replace(tiny_spec, k=2)
        trainers = build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(9).child("metrics"),
            spec,
            tiny_autoencoder,
        )
        live = MetricsCollector()
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(2),
            LtfbConfig(steps_per_round=2, rounds=2),
        )
        driver.run(callbacks=[JsonlTraceWriter(trace), live])
        offline = collect_metrics(load_trace(trace))
        assert offline.to_json()["counters"] == (
            live.registry.to_json()["counters"]
        )
        assert (
            offline["repro_step_time_seconds"].count
            == live.step_time.count
            == 4
        )

    def test_trace_report_percentile_tables(
        self, tiny_dataset, tiny_spec, tiny_autoencoder, tmp_path
    ):
        from repro.telemetry.report import render_trace_report

        trace = tmp_path / "trace.jsonl"
        spec = dataclasses.replace(tiny_spec, k=2)
        trainers = build_population(
            tiny_dataset,
            np.arange(tiny_dataset.n_samples - 64),
            RngFactory(9).child("metrics2"),
            spec,
            tiny_autoencoder,
        )
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(2),
            LtfbConfig(steps_per_round=2, rounds=2),
        )
        driver.run(callbacks=[JsonlTraceWriter(trace)])
        text = render_trace_report(trace)
        assert "latency/size percentiles:" in text
        assert "step time:" in text and "fetch latency:" in text
        assert "p50=" in text and "p95=" in text and "p99=" in text
        assert "exchange size:" in text


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(3)
        g.set(-1.5)
        assert g.value == -1.5
        assert g.to_json() == -1.5


class TestLabels:
    def test_label_order_is_canonicalized(self):
        r = MetricsRegistry()
        a = r.gauge("repro_info", labels={"b": "2", "a": "1"})
        b = r.gauge("repro_info", labels={"a": "1", "b": "2"})
        assert a is b
        assert a.labels == (("a", "1"), ("b", "2"))

    def test_labeled_and_unlabeled_are_distinct_series(self):
        r = MetricsRegistry()
        plain = r.counter("repro_hits_total")
        labeled = r.counter("repro_hits_total", labels={"route": "x"})
        assert plain is not labeled
        plain.inc()
        labeled.inc(5)
        assert r["repro_hits_total"].value == 1
        values = {m.labels: m.value for m in r.series("repro_hits_total")}
        assert values == {(): 1, (("route", "x"),): 5}

    def test_family_kind_is_consistent_across_series(self):
        r = MetricsRegistry()
        r.counter("repro_hits_total", labels={"route": "x"})
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("repro_hits_total", labels={"route": "y"})

    def test_invalid_label_names_rejected(self):
        r = MetricsRegistry()
        for bad in ("has space", "0num", "dash-y", ""):
            with pytest.raises(ValueError):
                r.counter("repro_ok_total", labels={bad: "v"})

    def test_prometheus_escaping_and_determinism(self):
        r = MetricsRegistry()
        r.gauge(
            "repro_model_info",
            "deployed model",
            labels={"tag": 'r"1"\n', "winner": "t\\0"},
        ).set(1)
        r.gauge("repro_model_info", labels={"tag": "a", "winner": "b"}).set(0)
        text = r.render_prometheus()
        assert (
            'repro_model_info{tag="r\\"1\\"\\n",winner="t\\\\0"} 1' in text
        )
        # Series within a family are ordered by their rendered labels,
        # and repeated renders are byte-identical.
        assert text.index('tag="a"') < text.index('tag="r')
        assert text == r.render_prometheus()
        assert text.count("# TYPE repro_model_info gauge") == 1

    def test_histogram_bucket_rows_append_le_last(self):
        r = MetricsRegistry()
        h = r.histogram(
            "repro_lat_seconds", buckets=(0.5,), labels={"route": "q"}
        )
        h.observe(0.1)
        text = r.render_prometheus()
        assert 'repro_lat_seconds_bucket{route="q",le="0.5"} 1' in text
        assert 'repro_lat_seconds_bucket{route="q",le="+Inf"} 1' in text
        assert 'repro_lat_seconds_sum{route="q"} 0.1' in text
        assert 'repro_lat_seconds_count{route="q"} 1' in text

    def test_to_json_keys_labeled_series(self):
        r = MetricsRegistry()
        r.counter("repro_hits_total", labels={"route": "x"}).inc(3)
        doc = r.to_json()
        assert doc["counters"] == {'repro_hits_total{route="x"}': 3}
