"""Tests for the streaming ingestion plane: channel flow control and
retention, the growing sample universe and its snapshotting reader,
store admission, the poll/replay cursor, and mid-epoch checkpoint
determinism while the universe grows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datastore.pipeline import build_pipeline
from repro.datastore.store import DistributedDataStore
from repro.ingest.channel import (
    IngestChannel,
    RecencyRetention,
    ReservoirRetention,
    StreamedSample,
    resolve_retention,
)
from repro.ingest.producer import StreamingCampaign
from repro.ingest.source import IngestReplayError, StreamingSource
from repro.ingest.universe import SampleUniverse, StreamReader
from repro.jag.dataset import JagDatasetConfig, JagSchema
from repro.workflow.engine import (
    EnsembleWorkflow,
    WorkerPoolSpec,
    WorkflowConfigError,
)

SCHEMA = JagSchema(image_size=8, views=2, channels=2)


def sample(sid: int, produced_at: float = 0.0, value: float | None = None):
    v = float(sid) if value is None else value
    return StreamedSample(
        sample_id=sid,
        fields={"x": np.full(4, v, dtype=np.float32)},
        produced_at=produced_at,
        task_id=sid,
    )


class TestIngestChannel:
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            IngestChannel(capacity=0)
        with pytest.raises(ValueError):
            IngestChannel(capacity=4, high_watermark=0.3, low_watermark=0.6)
        with pytest.raises(ValueError):
            IngestChannel(capacity=4, max_age_s=0.0)
        with pytest.raises(ValueError):
            resolve_retention("freshest")

    def test_watermark_hysteresis(self):
        ch = IngestChannel(capacity=10, high_watermark=0.8, low_watermark=0.3)
        for sid in range(8):
            ch.publish(sample(sid))
        assert ch.paused  # reached 8 = high watermark
        ch.drain(4)  # depth 4 > low watermark: still paused
        assert ch.paused
        ch.drain(1)  # depth 3 = low watermark: resumes
        assert not ch.paused

    def test_recency_retention_drops_oldest(self):
        ch = IngestChannel(capacity=3, retention="recency", high_watermark=1.0)
        for sid in range(5):
            assert ch.publish(sample(sid))
        resident = [s.sample_id for s in ch]
        assert resident == [2, 3, 4]
        assert ch.stats.retention_drops == 2
        assert ch.stats.published == 5 and ch.stats.accepted == 5

    def test_reservoir_retention_is_unbiased_and_deterministic(self):
        def offered_stream(seed):
            ch = IngestChannel(
                capacity=16, retention="reservoir", high_watermark=1.0, seed=seed
            )
            for sid in range(400):
                ch.publish(sample(sid))
            return [s.sample_id for s in ch]

        a, b = offered_stream(7), offered_stream(7)
        assert a == b  # policy owns its RNG: pure function of publishes
        assert offered_stream(8) != a
        # Unbiased: late ids must not dominate (recency would keep 384+).
        assert min(a) < 100
        assert isinstance(ch := IngestChannel(4).retention, RecencyRetention)
        assert isinstance(
            resolve_retention("reservoir", seed=1), ReservoirRetention
        )

    def test_stale_eviction_and_cursor(self):
        ch = IngestChannel(capacity=8, max_age_s=10.0)
        ch.publish(sample(0, produced_at=0.0))
        ch.publish(sample(1, produced_at=5.0))
        ch.publish(sample(2, produced_at=12.0))
        assert ch.evict_stale(now_s=15.0) == 1  # sample 0 aged out
        assert ch.stats.stale_evictions == 1 and ch.stats.evicted == 1
        drained = ch.drain()
        assert [s.sample_id for s in drained] == [1, 2]
        assert ch.cursor == 2  # evictions never advance the drain cursor
        assert ch.producer_lag == 1  # published 3, drained 2


class TestSampleUniverse:
    def test_versioned_snapshots_are_immutable_prefixes(self):
        u = SampleUniverse()
        assert u.version == 0 and u.size == 0
        u.admit([sample(0), sample(1)])
        u.admit([sample(2)])
        assert u.version == 2 and u.size == 3
        assert u.snapshot_ids(1).tolist() == [0, 1]
        assert u.snapshot_ids(2).tolist() == [0, 1, 2]
        with pytest.raises(ValueError):
            u.snapshot_ids(3)

    def test_admit_is_idempotent_and_version_only_bumps_on_growth(self):
        u = SampleUniverse()
        assert u.admit([sample(0)]) == 1
        assert u.admit([sample(0)]) == 0  # duplicate: no new version
        assert u.version == 1
        assert u.admit([sample(0), sample(1)]) == 1
        assert u.version == 2

    def test_batch_and_warm(self):
        u = SampleUniverse()
        u.admit([sample(i) for i in range(4)])
        batch = u.batch([3, 1])
        assert batch["x"].shape == (2, 4)
        assert batch["x"][0, 0] == 3.0 and batch["x"][1, 0] == 1.0
        store = DistributedDataStore(2, bytes_per_rank=10**6)
        assert u.warm(store) == 4
        assert u.warm(store) == 0  # idempotent through the store


class TestStreamReader:
    def test_refuses_empty_universe(self):
        with pytest.raises(ValueError):
            StreamReader(SampleUniverse(), np.random.default_rng(0))

    def test_plan_freezes_current_snapshot(self):
        u = SampleUniverse()
        u.admit([sample(i) for i in range(8)])
        r = StreamReader(u, np.random.default_rng(0))
        plan1 = r.plan_epoch(batch_size=4)
        assert plan1.universe_version == 1
        u.admit([sample(8 + i) for i in range(4)])
        r.ingest_admit([], version=None)  # no-op growth path
        plan2 = r.plan_epoch(batch_size=4)
        assert plan2.universe_version == 2
        assert len(r.sample_ids) == 12
        # plan1's batches only ever index the 8-sample snapshot.
        assert max(i for bp in plan1.batches for i in bp.sample_ids) < 8

    def test_begin_replay_pins_one_plan(self):
        u = SampleUniverse()
        u.admit([sample(i) for i in range(8)])
        r = StreamReader(u, np.random.default_rng(0))
        u.admit([sample(8 + i) for i in range(8)])
        r.ingest_admit([], version=None)
        r.begin_replay(1)
        plan = r.plan_epoch(batch_size=4)
        assert plan.universe_version == 1 and r.frozen_version == 1
        plan = r.plan_epoch(batch_size=4)  # pin was one-shot
        assert plan.universe_version == 2

    def test_version_cross_check(self):
        u = SampleUniverse()
        u.admit([sample(0)])
        r = StreamReader(u, np.random.default_rng(0))
        with pytest.raises(RuntimeError, match="universe diverged"):
            r.ingest_admit([sample(1)], version=5)

    def test_store_fallback_for_evicted_samples(self):
        u = SampleUniverse()
        u.admit([sample(i) for i in range(3)])
        nbytes = sample(0).nbytes
        store = DistributedDataStore(
            1, bytes_per_rank=2 * nbytes, evicting=True
        )
        r = StreamReader(u, np.random.default_rng(0), store=store)
        u.warm(store)  # admits 3 into budget for 2: sample 0 evicted
        assert 0 not in store and store.stats.evictions == 1
        batch = r._fetch(np.asarray([0, 2]))
        assert batch["x"][0, 0] == 0.0 and batch["x"][1, 0] == 2.0
        assert 0 not in store  # fallbacks are not re-cached


class TestStoreAdmission:
    def test_round_robin_placement(self):
        store = DistributedDataStore(3, bytes_per_rank=10**6)
        ranks = [store.admit(sid, sample(sid).fields) for sid in range(6)]
        assert ranks == [0, 1, 2, 0, 1, 2]
        assert store.stats.admitted == 6

    def test_admit_is_idempotent_and_can_force_rank(self):
        store = DistributedDataStore(2, bytes_per_rank=10**6)
        assert store.admit(7, sample(7).fields, rank=1) == 1
        assert store.admit(7, sample(7).fields) == 1  # already placed
        assert store.stats.admitted == 1

    def test_eviction_accounting_shared_with_cache(self):
        nbytes = sample(0).nbytes
        store = DistributedDataStore(1, bytes_per_rank=2 * nbytes, evicting=True)
        for sid in range(4):
            store.admit(sid, sample(sid).fields)
        assert store.stats.evictions == 2
        assert store.stats.admitted == 4


class TestWorkflowValidation:
    def test_worker_pool_rejects_nonpositive_counts(self):
        with pytest.raises(WorkflowConfigError):
            WorkerPoolSpec(num_workers=0)
        with pytest.raises(WorkflowConfigError):
            WorkerPoolSpec(num_workers=-4)
        with pytest.raises(WorkflowConfigError):
            WorkerPoolSpec(tasks_per_job=0)
        assert issubclass(WorkflowConfigError, ValueError)

    def test_run_rejects_empty_and_negative_task_times(self):
        wf = EnsembleWorkflow(WorkerPoolSpec(num_workers=2))
        with pytest.raises(WorkflowConfigError):
            wf.run([])
        with pytest.raises(WorkflowConfigError):
            wf.run([1.0, -1.0])

    def test_iter_results_streams_in_completion_order(self):
        wf = EnsembleWorkflow(
            WorkerPoolSpec(num_workers=2, tasks_per_job=2),
            task_fn=lambda tid: tid * 10,
        )
        times = [3.0, 1.0, 2.0, 1.0, 5.0]
        streamed = list(wf.iter_results(times))
        ends = [(r.end_time, r.task_id) for r in streamed]
        assert ends == sorted(ends)
        assert sorted(r.task_id for r in streamed) == list(range(5))
        assert all(r.output == r.task_id * 10 for r in streamed)
        batch, _ = EnsembleWorkflow(
            WorkerPoolSpec(num_workers=2, tasks_per_job=2)
        ).run(times)
        # Same schedule, different order: run() keeps task order.
        assert {(r.task_id, r.end_time) for r in streamed} == {
            (r.task_id, r.end_time) for r in batch
        }


@pytest.fixture(scope="module")
def campaign_parts():
    """A small live campaign wired to a channel/universe/source."""

    def build(n=96, capacity=32, max_age_s=None, tasks_per_poll=24):
        campaign = StreamingCampaign(
            JagDatasetConfig(n_samples=n, schema=SCHEMA, seed=5),
            pool=WorkerPoolSpec(num_workers=4, tasks_per_job=4),
            task_seconds=60.0,
            calibration=16,
        )
        channel = IngestChannel(
            capacity=capacity,
            high_watermark=0.75,
            low_watermark=0.25,
            max_age_s=max_age_s,
        )
        universe = SampleUniverse()
        return campaign, channel, universe, StreamingSource(
            campaign, channel, universe, tasks_per_poll=tasks_per_poll
        )

    return build


class TestStreamingCampaign:
    def test_pump_honors_watermark_pause(self, campaign_parts):
        campaign, channel, _, _ = campaign_parts(capacity=8)
        published = campaign.pump(channel, max_tasks=64)
        assert channel.paused
        assert published == channel.depth  # stopped at the watermark,
        assert channel.stats.retention_drops == 0  # never displaced work
        channel.drain()
        assert campaign.pump(channel, max_tasks=4) == 4

    def test_publish_sequence_is_deterministic(self, campaign_parts):
        ids = []
        for _ in range(2):
            campaign, channel, _, _ = campaign_parts()
            campaign.pump(channel, max_tasks=16)
            ids.append([s.sample_id for s in channel.drain()])
        assert ids[0] == ids[1]

    def test_calibration_fields_shapes(self, campaign_parts):
        campaign, _, _, _ = campaign_parts()
        cal = campaign.calibration_fields()
        assert cal["params"].shape[0] == 16
        assert set(cal) == {"params", "scalars", "images"}


class TestStreamingSource:
    def test_prime_then_poll_grows_universe(self, campaign_parts):
        _, channel, universe, source = campaign_parts()
        source.prime(24)
        assert universe.size >= 24
        v = universe.version
        admitted = source.poll()
        assert admitted > 0 and universe.version == v + 1

    def test_prime_raises_when_campaign_too_small(self, campaign_parts):
        _, _, _, source = campaign_parts(n=8)
        with pytest.raises(RuntimeError, match="could not prime"):
            source.prime(64)

    def test_poll_suspends_pipelines_and_notifies_backend(self, campaign_parts):
        _, _, universe, source = campaign_parts()
        source.prime(24)

        class FakeTrainer:
            def __init__(self):
                self.reader = StreamReader(universe, np.random.default_rng(0))
                self.suspended = 0

            def suspend_data_pipeline(self):
                self.suspended += 1

        class FakeBackend:
            calls = []

            def ingest_admit(self, samples, version):
                self.calls.append((len(list(samples)), version))

        t, b = FakeTrainer(), FakeBackend()
        admitted = source.poll(trainers=[t], backend=b)
        assert admitted > 0
        assert t.suspended == 1
        assert len(t.reader.sample_ids) < universe.size  # not yet re-planned
        assert b.calls == [(admitted, universe.version)]

    def test_replay_reproduces_cursor(self, campaign_parts):
        _, _, _, source = campaign_parts()
        source.prime(24)
        source.poll()
        source.poll()
        state = source.state()

        _, _, universe_b, source_b = campaign_parts()
        source_b.replay(state)
        assert source_b.state() == state
        assert universe_b.version == state["universe_version"]

    def test_replay_resumes_a_partially_polled_source(self, campaign_parts):
        _, _, _, source = campaign_parts()
        source.prime(24)
        source.poll()
        state = source.state()

        _, _, _, source_b = campaign_parts()
        source_b.prime(24)  # identical priming already happened
        source_b.replay(state)
        assert source_b.state() == state

    def test_replay_rejects_overrun_and_divergence(self, campaign_parts):
        _, _, _, source = campaign_parts()
        source.prime(24)
        state = source.state()
        source.poll()
        with pytest.raises(IngestReplayError, match="already polled"):
            source.replay(state)

        _, _, _, diverged = campaign_parts(tasks_per_poll=8)
        with pytest.raises(IngestReplayError, match="diverged"):
            diverged.replay(state)


class TestMidEpochCheckpointWithGrowth:
    """Satellite: a plan cursor checkpointed mid-epoch must replay the
    identical batches even though the universe grew after the
    checkpoint — at any prefetch depth."""

    def _batches(self, pipeline, n):
        return [pipeline.next_batch().feeds["x"].copy() for _ in range(n)]

    @pytest.mark.parametrize("depth", [0, 2])
    def test_resume_is_bit_identical_across_growth(self, depth):
        def fresh_reader():
            u = SampleUniverse()
            u.admit([sample(i) for i in range(16)])
            return u, StreamReader(u, np.random.default_rng(42))

        growth = [sample(16 + i) for i in range(8)]

        # Reference: uninterrupted consumption with growth mid-epoch.
        u, reader = fresh_reader()
        pipe = build_pipeline(reader, batch_size=4, prefetch_depth=depth)
        ref = self._batches(pipe, 2)
        state = pipe.state()  # checkpoint here, mid-epoch (step 2 of 4)
        # The universe grows; the suspend/restore beat rewinds any plans a
        # prefetch thread drew ahead, exactly as StreamingSource.poll does.
        pipe.close()
        reader.ingest_admit(growth, version=None)
        pipe = build_pipeline(reader, batch_size=4, prefetch_depth=depth)
        pipe.restore(state)
        ref += self._batches(pipe, 6)  # finish epoch + spill into the next
        pipe.close()

        # Resume: a fresh reader replays admissions, restores the cursor.
        u2, reader2 = fresh_reader()
        reader2.ingest_admit(growth, version=None)
        assert u2.version == 2
        pipe2 = build_pipeline(reader2, batch_size=4, prefetch_depth=depth)
        pipe2.restore(state)
        resumed = self._batches(pipe2, 6)
        pipe2.close()

        for a, b in zip(ref[2:], resumed):
            np.testing.assert_array_equal(a, b)
        # The restored in-flight epoch used the 16-sample snapshot; the
        # epoch after it picks up the grown universe.
        assert state["universe_version"] == 1
        assert len(reader2.sample_ids) == 24

    def test_restore_requires_replay_capable_reader(self):
        u = SampleUniverse()
        u.admit([sample(i) for i in range(8)])
        reader = StreamReader(u, np.random.default_rng(0))
        pipe = build_pipeline(reader, batch_size=4)
        pipe.next_batch()
        state = pipe.state()
        assert state["universe_version"] == 1

        from repro.datastore.reader import ArrayReader

        plain = ArrayReader(
            {"x": np.zeros((8, 4), dtype=np.float32)},
            np.arange(8),
            np.random.default_rng(0),
        )
        fresh = build_pipeline(plain, batch_size=4)
        with pytest.raises(ValueError, match="cannot replay"):
            fresh.restore(state)


class TestStreamingExperiment:
    def test_streaming_study_passes_checks(self):
        from repro.experiments import streaming

        report = streaming.run(
            seed=11, k=2, rounds=2, steps_per_round=2, n_design=256
        )
        assert report.all_checks_pass
        assert len(report.rows) == 2  # one ingest row per round
        with pytest.raises(ValueError):
            streaming.run(rounds=1)
