"""Tests for the multimodal autoencoder and the CycleGAN surrogate."""

from __future__ import annotations


import numpy as np
import pytest

from repro.jag.dataset import JagSchema
from repro.models.autoencoder import MultimodalAutoencoder
from repro.models.cyclegan import (
    ICFSurrogate,
    MLPSpec,
    SurrogateArchitecture,
    SurrogateConfig,
    paper_architecture,
    small_config,
)
from repro.tensorlib.optimizers import Adam
from repro.utils.rng import RngFactory

SCHEMA = JagSchema(image_size=8, views=2, channels=2)


def make_batch(n=32, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "params": rng.random((n, 5)).astype(np.float32),
        "scalars": rng.normal(size=(n, SCHEMA.n_scalars)).astype(np.float32),
        "images": rng.random((n, SCHEMA.image_flat_dim)).astype(np.float32),
    }


def make_structured_batch(n=64, seed=0):
    """Low-dimensional structured data: outputs are smooth functions of
    the 5-D params, so they are actually learnable through a 20-D
    bottleneck (unlike pure noise)."""
    rng = np.random.default_rng(seed)
    params = rng.random((n, 5)).astype(np.float32)
    w_s = rng.normal(size=(5, SCHEMA.n_scalars)).astype(np.float32)
    w_i = rng.normal(size=(5, SCHEMA.image_flat_dim)).astype(np.float32)
    scalars = np.tanh(params @ w_s)
    images = 0.5 + 0.4 * np.tanh(params @ w_i)
    return {"params": params, "scalars": scalars, "images": images.astype(np.float32)}


def make_ae(seed=0, hidden=(32, 16)):
    return MultimodalAutoencoder(
        RngFactory(seed).child("ae"), SCHEMA, hidden=hidden, latent_dim=20
    )


def make_surrogate(seed=0):
    cfg = SurrogateConfig(
        schema=SCHEMA,
        ae_hidden=(32, 16),
        forward_hidden=(16, 16),
        inverse_hidden=(16, 16),
        disc_hidden=(12, 8),
        batch_size=16,
    )
    ae = make_ae(seed)
    return ICFSurrogate(RngFactory(seed).child("sur"), cfg, ae), cfg


class TestMLPSpec:
    def test_param_count(self):
        spec = MLPSpec((4, 8, 2))
        assert spec.param_count == (4 * 8 + 8) + (8 * 2 + 2)
        assert spec.param_nbytes == 4 * spec.param_count

    def test_fwd_flops(self):
        assert MLPSpec((4, 8, 2)).fwd_flops == 2 * (32 + 16)

    def test_flops_modes(self):
        spec = MLPSpec((4, 4))
        assert spec.flops("train") == 3 * spec.flops("fwd")
        assert spec.flops("through") == 2 * spec.flops("fwd")
        with pytest.raises(ValueError):
            spec.flops("sideways")

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPSpec((4,))
        with pytest.raises(ValueError):
            MLPSpec((4, 0))


class TestSurrogateArchitecture:
    def test_from_widths_dims(self):
        arch = SurrogateArchitecture.from_widths(
            SCHEMA, 20, (32, 16), (8,), (8,), (6,)
        )
        bundle = SCHEMA.n_scalars + SCHEMA.image_flat_dim
        assert arch.encoder.dims == (bundle, 32, 16, 20)
        assert arch.decoder.dims == (20, 16, 32, bundle)
        assert arch.forward.dims == (5, 8, 20)
        assert arch.discriminator.dims == (20, 6, 1)

    def test_gen_grad_excludes_frozen_parts(self):
        arch = paper_architecture()
        assert arch.gen_grad_nbytes == (
            arch.forward.param_nbytes + arch.inverse.param_nbytes
        )
        assert arch.generator_state_nbytes == arch.gen_grad_nbytes

    def test_train_flops_dominated_by_frozen_autoencoder(self):
        arch = paper_architecture()
        ae_part = arch.encoder.flops("fwd") + arch.decoder.flops("through")
        assert ae_part > 0.5 * arch.train_flops_per_sample

    def test_paper_scale_magnitudes(self):
        arch = paper_architecture()
        # ~70 MB generator exchange, single-GB/sample training FLOPs —
        # the calibration DESIGN.md documents.
        assert 40e6 < arch.generator_state_nbytes < 120e6
        assert 1e9 < arch.train_flops_per_sample < 10e9

    def test_config_architecture_consistent_with_runtime_model(self):
        surrogate, cfg = make_surrogate()
        arch = cfg.architecture()
        assert arch.forward.param_count == surrogate.forward_model.param_count()
        assert arch.inverse.param_count == surrogate.inverse_model.param_count()
        assert (
            arch.discriminator.param_count
            == surrogate.discriminator.param_count()
        )
        assert arch.generator_state_nbytes == surrogate.generator_state_nbytes()


class TestAutoencoder:
    def test_encode_decode_shapes(self):
        ae = make_ae()
        batch = make_batch()
        z = ae.encode(batch["scalars"], batch["images"])
        assert z.shape == (32, 20)
        s, i = ae.decode(z)
        assert s.shape == batch["scalars"].shape
        assert i.shape == batch["images"].shape

    def test_images_decoded_into_unit_interval(self):
        ae = make_ae()
        batch = make_batch()
        _, i = ae.decode(ae.encode(batch["scalars"], batch["images"]))
        assert np.all((i >= 0) & (i <= 1))

    def test_training_reduces_reconstruction_error(self):
        ae = make_ae(seed=3)
        batch = make_structured_batch(64, seed=3)
        opt = Adam(2e-3)
        before = ae.reconstruction_error(batch)
        for _ in range(150):
            ae.train_step(batch, opt)
        after = ae.reconstruction_error(batch)
        assert after["scalar_mae"] < 0.7 * before["scalar_mae"]
        assert after["image_mae"] < 0.7 * before["image_mae"]

    def test_state_roundtrip(self):
        ae = make_ae()
        state = ae.get_state()
        batch = make_batch()
        ae.train_step(batch, Adam(1e-2))
        ae.set_state(state)
        for k, v in ae.get_state().items():
            np.testing.assert_array_equal(v, state[k])

    def test_latent_dim_validation(self):
        with pytest.raises(ValueError):
            MultimodalAutoencoder(RngFactory(0), SCHEMA, latent_dim=0)


class TestICFSurrogate:
    def test_constructor_consistency_checks(self):
        ae = make_ae()
        bad_cfg = SurrogateConfig(schema=SCHEMA, latent_dim=7)
        with pytest.raises(ValueError):
            ICFSurrogate(RngFactory(0), bad_cfg, ae)
        other_schema_cfg = SurrogateConfig(schema=JagSchema(image_size=4))
        with pytest.raises(ValueError):
            ICFSurrogate(RngFactory(0), other_schema_cfg, ae)

    def test_predict_shapes(self):
        surrogate, _ = make_surrogate()
        batch = make_batch()
        s, i = surrogate.predict_outputs(batch["params"])
        assert s.shape == batch["scalars"].shape
        assert i.shape == batch["images"].shape
        x = surrogate.invert(batch["scalars"], batch["images"])
        assert x.shape == batch["params"].shape
        assert np.all((x >= 0) & (x <= 1))  # sigmoid head

    def test_train_step_returns_all_terms(self):
        surrogate, cfg = make_surrogate()
        batch = make_batch(cfg.batch_size)
        terms = surrogate.train_step(batch, Adam(1e-3), Adam(1e-3))
        assert {
            "disc_loss",
            "fidelity_scalar",
            "fidelity_image",
            "adversarial",
            "cycle",
            "gen_loss",
        } <= set(terms)
        assert surrogate.steps_trained == 1

    def test_training_improves_generator(self):
        surrogate, cfg = make_surrogate(seed=5)
        batch = make_structured_batch(64, seed=5)
        before = surrogate.evaluate(batch)["val_loss"]
        d_opt, g_opt = Adam(1e-3), Adam(2e-3)
        for _ in range(120):
            surrogate.train_step(batch, d_opt, g_opt)
        after = surrogate.evaluate(batch)["val_loss"]
        assert after < 0.8 * before

    def test_train_step_freezes_autoencoder(self):
        surrogate, cfg = make_surrogate()
        batch = make_batch(cfg.batch_size)
        ae_state = surrogate.autoencoder.get_state()
        surrogate.train_step(batch, Adam(1e-2), Adam(1e-2))
        for k, v in surrogate.autoencoder.get_state().items():
            np.testing.assert_array_equal(v, ae_state[k])

    def test_disc_phase_does_not_move_generator(self):
        """The generator must only move in the generator phase; check by
        comparing against a manual replay with a zero-lr generator opt."""
        surrogate, cfg = make_surrogate(seed=7)
        batch = make_batch(cfg.batch_size, seed=7)
        gen_before = surrogate.get_generator_state()
        # lr -> 0 for generator: any change would come from the D phase.
        surrogate.train_step(batch, Adam(1e-3), Adam(1e-30))
        for k, v in surrogate.get_generator_state().items():
            np.testing.assert_allclose(v, gen_before[k], atol=1e-6)

    def test_gen_phase_does_not_move_discriminator(self):
        surrogate, cfg = make_surrogate(seed=8)
        batch = make_batch(cfg.batch_size, seed=8)
        disc_before = surrogate.discriminator.get_state()
        surrogate.train_step(batch, Adam(1e-30), Adam(1e-3))
        for k, v in surrogate.discriminator.get_state().items():
            np.testing.assert_allclose(v, disc_before[k], atol=1e-6)

    def test_generator_state_excludes_discriminator(self):
        surrogate, _ = make_surrogate()
        gen = surrogate.get_generator_state()
        assert all(
            k.startswith(("forward/", "inverse/")) for k in gen
        )
        full = surrogate.get_full_state()
        assert any(k.startswith("discriminator/") for k in full)

    def test_generator_exchange_between_surrogates(self):
        a, _ = make_surrogate(seed=1)
        b, _ = make_surrogate(seed=2)
        batch = make_batch(8)
        b.set_generator_state(a.get_generator_state())
        np.testing.assert_allclose(
            a.predict_latent(batch["params"]),
            b.predict_latent(batch["params"]),
            atol=1e-6,
        )
        # Discriminators remain different (local to each trainer).
        da = a.discriminator.get_state()
        db = b.discriminator.get_state()
        assert any(not np.array_equal(da[k], db[k]) for k in da)

    def test_full_state_roundtrip(self):
        surrogate, cfg = make_surrogate()
        state = surrogate.get_full_state()
        surrogate.train_step(make_batch(cfg.batch_size), Adam(1e-2), Adam(1e-2))
        surrogate.set_full_state(state)
        for k, v in surrogate.get_full_state().items():
            np.testing.assert_array_equal(v, state[k])

    def test_evaluate_keys(self):
        surrogate, _ = make_surrogate()
        metrics = surrogate.evaluate(make_batch(16))
        assert {
            "forward_scalar_mae",
            "forward_image_mae",
            "cycle_mae",
            "inverse_mae",
            "val_loss",
        } == set(metrics)

    def test_discriminator_score_scalar(self):
        surrogate, _ = make_surrogate()
        score = surrogate.discriminator_score(make_batch(16))
        assert np.isfinite(score) and score > 0

    def test_identical_seeds_identical_surrogates(self):
        a, _ = make_surrogate(seed=9)
        b, _ = make_surrogate(seed=9)
        sa, sb = a.get_full_state(), b.get_full_state()
        assert all(np.array_equal(sa[k], sb[k]) for k in sa)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            SurrogateConfig(schema=SCHEMA, label_smoothing=0.6)
        with pytest.raises(ValueError):
            SurrogateConfig(schema=SCHEMA, learning_rate=0)

    def test_small_config_overrides(self):
        cfg = small_config(SCHEMA, batch_size=99)
        assert cfg.batch_size == 99 and cfg.schema == SCHEMA
