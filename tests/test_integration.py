"""Cross-module integration tests: the full pipeline at miniature scale.

campaign -> bundles on the simulated PFS -> data-store ingestion ->
autoencoder pre-training -> LTFB tournament training -> surrogate queries,
with the paper's ingestion invariant asserted along the way.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.cluster import SimulatedFilesystem
from repro.core import (
    EnsembleSpec,
    KIndependentDriver,
    LtfbConfig,
    LtfbDriver,
    Trainer,
    TrainerConfig,
    build_population,
    pretrain_autoencoder,
)
from repro.datastore import DistributedDataStore, StoreReader
from repro.jag import JagDatasetConfig, small_schema
from repro.models import ICFSurrogate, SurrogateConfig
from repro.utils.rng import RngFactory
from repro.workflow import WorkerPoolSpec, run_campaign


@pytest.fixture(scope="module")
def pipeline():
    """Campaign + bundles + dataset, built once."""
    fs = SimulatedFilesystem()
    campaign = run_campaign(
        JagDatasetConfig(
            n_samples=640, schema=small_schema(8), seed=21, chunk=320
        ),
        fs,
        pool=WorkerPoolSpec(num_workers=16, tasks_per_job=40),
        samples_per_bundle=40,
    )
    return fs, campaign


def test_full_pipeline_through_datastore(pipeline):
    fs, campaign = pipeline
    dataset = campaign.dataset
    rngs = RngFactory(99)

    cfg = SurrogateConfig(
        schema=dataset.schema,
        ae_hidden=(48, 32),
        forward_hidden=(24, 24),
        inverse_hidden=(24, 24),
        disc_hidden=(16, 8),
        batch_size=32,
    )
    spec = EnsembleSpec(
        k=2,
        surrogate=cfg,
        trainer=TrainerConfig(batch_size=32),
        ae_epochs=3,
        ae_max_samples=256,
    )
    train_ids, val_ids = dataset.train_val_split(0.15, mode="strided")
    autoencoder = pretrain_autoencoder(dataset, train_ids, rngs, spec)
    val_batch = {k: v[val_ids] for k, v in dataset.fields.items()}

    # Trainers feed from preloaded data stores over the bundle files.
    trainers = []
    silo_split = np.array_split(train_ids, 2)
    tournament = {k: v[train_ids[::10]] for k, v in dataset.fields.items()}
    for i, silo in enumerate(silo_split):
        child = rngs.child(f"t{i}")
        store = DistributedDataStore(4, bytes_per_rank=10**8)
        reader = StoreReader(
            fs,
            campaign.bundle_paths,
            40,
            silo,
            child.generator("reader"),
            store,
            mode="preload",
        )
        surrogate = ICFSurrogate(child, cfg, autoencoder)
        trainers.append(
            Trainer(f"t{i}", surrogate, reader, tournament, spec.trainer)
        )

    opens_after_preload = fs.stats.opens
    driver = LtfbDriver(
        trainers,
        rngs.generator("pairing"),
        LtfbConfig(steps_per_round=3, rounds=3),
        eval_batch=val_batch,
    )
    history = driver.run()

    # Ingestion invariant: training never touched the file system.
    assert fs.stats.opens == opens_after_preload
    assert history.rounds_completed == 3

    # The surrogate answers forward and inverse queries with sane shapes.
    best, loss = driver.best_trainer()
    assert np.isfinite(loss)
    scalars, images = best.surrogate.predict_outputs(val_batch["params"][:5])
    assert scalars.shape == (5, 15)
    assert images.shape == (5, dataset.schema.image_flat_dim)
    x = best.surrogate.invert(val_batch["scalars"][:5], val_batch["images"][:5])
    assert x.shape == (5, 5) and np.all((x >= 0) & (x <= 1))


def test_ltfb_and_kindependent_same_schedule_comparable(
    tiny_dataset, tiny_spec, tiny_autoencoder, cli_backend
):
    """The Fig.-13 experimental contract: identical silos, schedules, and
    eval batches for the two algorithms (under the --backend under test)."""
    rngs = RngFactory(3)
    train_ids = np.arange(tiny_dataset.n_samples - 64)
    val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    val_batch = {k: v[val_ids] for k, v in tiny_dataset.fields.items()}
    config = LtfbConfig(steps_per_round=2, rounds=2)
    spec = dataclasses.replace(tiny_spec, k=2)

    ltfb = LtfbDriver(
        build_population(tiny_dataset, train_ids, rngs.child("l"), spec, tiny_autoencoder),
        np.random.default_rng(0),
        config,
        eval_batch=val_batch,
        backend=cli_backend,
    )
    ltfb.run()
    kind = KIndependentDriver(
        build_population(tiny_dataset, train_ids, rngs.child("k"), spec, tiny_autoencoder),
        config,
        eval_batch=val_batch,
        backend=cli_backend,
    )
    kind.run()

    assert len(ltfb.history.eval_series) == len(kind.eval_series) == 2
    for t_l, t_k in zip(ltfb.trainers, kind.trainers):
        assert t_l.steps_done == t_k.steps_done  # equal iteration budgets
        assert t_l.reader.num_samples == t_k.reader.num_samples  # equal silos


def test_deterministic_end_to_end(
    tiny_dataset, tiny_spec, tiny_autoencoder, cli_backend
):
    """Same seeds => bit-identical tournament history."""

    def run_once():
        rngs = RngFactory(1234)
        train_ids = np.arange(256)
        trainers = build_population(
            tiny_dataset, train_ids, rngs, dataclasses.replace(tiny_spec, k=2), tiny_autoencoder
        )
        driver = LtfbDriver(
            trainers,
            rngs.generator("pairing"),
            LtfbConfig(steps_per_round=2, rounds=2),
            backend=cli_backend,
        )
        driver.run()
        return [
            (r.trainer, r.own_score, r.partner_score, r.adopted_partner)
            for r in driver.history.tournaments
        ]

    assert run_once() == run_once()
