"""Tests for trainer/population checkpointing."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.checkpoint import (
    population_checkpoint,
    restore_population,
    restore_trainer,
    trainer_checkpoint,
)
from repro.core.ensemble import build_population
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.utils.rng import RngFactory


@pytest.fixture()
def two_trainers(tiny_dataset, tiny_spec, tiny_autoencoder):
    spec = dataclasses.replace(tiny_spec, k=2)
    train_ids = np.arange(tiny_dataset.n_samples - 64)
    return build_population(
        tiny_dataset, train_ids, RngFactory(31), spec, tiny_autoencoder
    )


def states_equal(a, b) -> bool:
    return set(a) == set(b) and all(np.array_equal(a[k], b[k]) for k in a)


class TestTrainerCheckpoint:
    def test_roundtrip_restores_exact_state(self, two_trainers):
        t = two_trainers[0]
        t.train_steps(3)
        payload = trainer_checkpoint(t)
        before = t.surrogate.get_full_state()
        opt_before = t.gen_optimizer.get_state()

        t.train_steps(2)  # diverge
        assert not states_equal(before, t.surrogate.get_full_state())

        restore_trainer(t, payload)
        assert states_equal(before, t.surrogate.get_full_state())
        assert t.steps_done == 3
        restored_opt = t.gen_optimizer.get_state()
        assert restored_opt["step_count"] == opt_before["step_count"]
        for wname, slots in opt_before["slots"].items():
            for k, v in slots.items():
                np.testing.assert_array_equal(restored_opt["slots"][wname][k], v)

    def test_resume_training_is_bit_deterministic(self, two_trainers):
        """Checkpoint -> 2 more steps must equal uninterrupted 5 steps
        (readers excluded: we re-drive the same batches explicitly)."""
        t = two_trainers[0]
        batches = [t._next_batch() for _ in range(5)]

        # Uninterrupted path.
        for mb in batches:
            t.surrogate.train_step(mb.feeds, t.disc_optimizer, t.gen_optimizer)
        final_direct = t.surrogate.get_full_state()

        # Rewind to the start via a pre-captured checkpoint is impossible
        # now, so replay: restore from a checkpoint taken after batch 2.
        t2 = two_trainers[1]
        for mb in batches[:3]:
            t2.surrogate.train_step(mb.feeds, t2.disc_optimizer, t2.gen_optimizer)
        ckpt = trainer_checkpoint(t2)
        for mb in batches[3:]:
            t2.surrogate.train_step(mb.feeds, t2.disc_optimizer, t2.gen_optimizer)
        direct = t2.surrogate.get_full_state()
        restore_trainer(t2, ckpt)
        for mb in batches[3:]:
            t2.surrogate.train_step(mb.feeds, t2.disc_optimizer, t2.gen_optimizer)
        resumed = t2.surrogate.get_full_state()
        assert states_equal(direct, resumed)
        assert not states_equal(direct, final_direct)  # sanity: t != t2

    def test_counters_roundtrip(self, two_trainers):
        t = two_trainers[0]
        t.tournaments_won = 5
        t.tournaments_lost = 2
        payload = trainer_checkpoint(t)
        t.tournaments_won = 0
        restore_trainer(t, payload)
        assert t.tournaments_won == 5 and t.tournaments_lost == 2

    def test_corrupt_version_rejected(self, two_trainers):
        import io
        import json

        t = two_trainers[0]
        payload = trainer_checkpoint(t)
        with np.load(io.BytesIO(payload)) as data:
            arrays = {k: np.array(data[k]) for k in data.files}
        header = json.loads(bytes(arrays["__checkpoint_header__"]).decode())
        header["version"] = 99
        arrays["__checkpoint_header__"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        with pytest.raises(ValueError):
            restore_trainer(t, buf.getvalue())


class TestPopulationCheckpoint:
    def test_roundtrip(self, two_trainers):
        for t in two_trainers:
            t.train_steps(2)
        ckpts = population_checkpoint(two_trainers)
        states = [t.surrogate.get_full_state() for t in two_trainers]
        for t in two_trainers:
            t.train_steps(1)
        restore_population(two_trainers, ckpts)
        for t, s in zip(two_trainers, states):
            assert states_equal(s, t.surrogate.get_full_state())

    def test_missing_checkpoint_rejected(self, two_trainers):
        ckpts = population_checkpoint(two_trainers)
        del ckpts[two_trainers[0].name]
        with pytest.raises(ValueError):
            restore_population(two_trainers, ckpts)

    def test_duplicate_names_rejected(self, two_trainers):
        two_trainers[1].name = two_trainers[0].name
        with pytest.raises(ValueError):
            population_checkpoint(two_trainers)


class TestMidRunResume:
    """Checkpoint an LTFB campaign mid-run, restore into a *fresh*
    population (as after preemption), and finish: the resumed ``History``
    and the final model weights must equal the uninterrupted run's.

    The schedule is epoch-aligned by construction: 448 train ids with
    ``tournament_fraction=0.125`` leave 196-sample silos at k=2; batch 32
    gives 6 steps per reader epoch, so ``steps_per_round=6`` checkpoints
    exactly at epoch boundaries — the regime where the checkpointed reader
    RNG state replays the identical batch sequence.
    """

    ROUNDS = 4
    INTERRUPT_AT = 2
    STEPS_PER_ROUND = 6

    def _population(self, tiny_dataset, tiny_spec, tiny_autoencoder):
        spec = dataclasses.replace(tiny_spec, k=2)
        train_ids = np.arange(tiny_dataset.n_samples - 64)
        return build_population(
            tiny_dataset, train_ids, RngFactory(77), spec, tiny_autoencoder
        )

    def _driver(self, trainers, eval_batch, rounds, history=None, burned=0):
        # The pairing RNG is not checkpointed (it belongs to the driver,
        # not a trainer); a resuming caller replays the completed rounds'
        # draws to realign it.
        rng = np.random.default_rng(424)
        for _ in range(burned):
            rng.permutation(len(trainers))
        return LtfbDriver(
            trainers,
            rng,
            LtfbConfig(steps_per_round=self.STEPS_PER_ROUND, rounds=rounds),
            eval_batch=eval_batch,
            history=history,
        )

    def test_resume_matches_uninterrupted_run(
        self, tiny_dataset, tiny_spec, tiny_autoencoder
    ):
        val_ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
        val_batch = {k: v[val_ids] for k, v in tiny_dataset.fields.items()}

        # Uninterrupted reference.
        ref_pop = self._population(tiny_dataset, tiny_spec, tiny_autoencoder)
        for t in ref_pop:  # guard the epoch-alignment premise
            assert t.reader.steps_per_epoch(t.config.batch_size) == (
                self.STEPS_PER_ROUND
            )
        full = self._driver(ref_pop, val_batch, self.ROUNDS).run()

        # Interrupted run: stop after 2 rounds and checkpoint everything.
        pop_a = self._population(tiny_dataset, tiny_spec, tiny_autoencoder)
        partial = self._driver(pop_a, val_batch, self.INTERRUPT_AT).run()
        ckpts = population_checkpoint(pop_a)
        assert partial.rounds_completed == self.INTERRUPT_AT

        # "New process": fresh identically-built population, restore, and
        # resume by handing the partial History back to a full-length driver.
        pop_b = self._population(tiny_dataset, tiny_spec, tiny_autoencoder)
        restore_population(pop_b, ckpts)
        resumed = self._driver(
            pop_b,
            val_batch,
            self.ROUNDS,
            history=partial,
            burned=self.INTERRUPT_AT,
        ).run()

        assert resumed.rounds_completed == full.rounds_completed == self.ROUNDS
        assert resumed.pairings == full.pairings
        assert resumed.tournaments == full.tournaments
        assert resumed.train_losses == full.train_losses
        assert resumed.eval_series == full.eval_series
        assert resumed.exchange_bytes == full.exchange_bytes
        for ref, res in zip(ref_pop, pop_b):
            assert ref.steps_done == res.steps_done
            assert states_equal(
                ref.surrogate.get_full_state(), res.surrogate.get_full_state()
            )
