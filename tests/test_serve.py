"""Tests for the serving subsystem: micro-batcher, cache, registry
hot-reload, and the end-to-end server guarantees (bit-identity with
unbatched forwards, no mixed-version responses across a reload)."""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future

import numpy as np
import pytest

from repro.core.checkpoint import CheckpointStore
from repro.core.ensemble import build_population
from repro.serve import (
    DeadlineExceededError,
    GeneratorRuntime,
    MicroBatcher,
    ModelRegistry,
    PendingRequest,
    ResponseCache,
    ServeConfig,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
    SurrogateServer,
    aggregate,
    closed_loop,
    open_loop,
)
from repro.utils.rng import RngFactory


def _request(row, deadline=None) -> PendingRequest:
    return PendingRequest(
        params=np.asarray(row, dtype=np.float32),
        future=Future(),
        enqueued=time.perf_counter(),
        deadline=deadline,
    )


class TestMicroBatcher:
    def test_coalesces_concurrent_requests(self):
        batches = []
        done = threading.Event()
        n = 24

        def execute(batch):
            batches.append(batch)
            for r in batch.requests:
                r.future.set_result(None)
            if sum(len(b.requests) for b in batches) >= n:
                done.set()

        batcher = MicroBatcher(
            execute, expire=lambda r: None, max_batch=8, max_delay_s=0.02
        )
        requests = [_request([float(i)]) for i in range(n)]
        for r in requests:
            batcher.submit(r)
        batcher.start()
        assert done.wait(5.0)
        batcher.close()
        assert all(len(b.requests) <= 8 for b in batches)
        # Pre-queued traffic must actually batch, not dribble out 1-by-1.
        assert max(len(b.requests) for b in batches) > 1
        assert all(r.future.done() for r in requests)
        assert all(b.t_ready >= b.t_open for b in batches)

    def test_backpressure_rejects_when_full(self):
        batcher = MicroBatcher(
            execute=lambda b: None, expire=lambda r: None, max_queue=2
        )
        batcher.submit(_request([0.0]))
        batcher.submit(_request([1.0]))
        with pytest.raises(ServerOverloadedError):
            batcher.submit(_request([2.0]))

    def test_submit_after_close_rejected(self):
        batcher = MicroBatcher(execute=lambda b: None, expire=lambda r: None)
        batcher.start()
        batcher.close()
        assert batcher.closed
        with pytest.raises(ServerClosedError):
            batcher.submit(_request([0.0]))

    def test_expired_requests_shed_not_executed(self):
        executed, expired = [], []
        batcher = MicroBatcher(
            execute=lambda b: executed.extend(b.requests),
            expire=expired.append,
            max_delay_s=0.001,
        )
        dead = _request([0.0], deadline=time.perf_counter() - 1.0)
        live = _request([1.0])
        batcher.submit(dead)
        batcher.submit(live)
        batcher.start()
        deadline = time.monotonic() + 5.0
        while len(executed) < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        batcher.close()
        assert expired == [dead]
        assert executed == [live]

    def test_invalid_policy_rejected(self):
        for kwargs in (
            dict(max_batch=0),
            dict(max_queue=0),
            dict(max_delay_s=-1.0),
        ):
            with pytest.raises(ValueError):
                MicroBatcher(
                    execute=lambda b: None, expire=lambda r: None, **kwargs
                )


class TestResponseCache:
    def test_quantized_keys_collapse_near_duplicates(self):
        cache = ResponseCache(quantum=1e-3)
        a = np.array([0.5, 1.0])
        b = a + 1e-5  # within the quantum grid cell
        c = a + 0.1  # a different cell
        assert cache.key(a) == cache.key(b)
        assert cache.key(a) != cache.key(c)
        cache.put(cache.key(a), "hit")
        assert cache.get(cache.key(b)) == "hit"
        assert cache.get(cache.key(c)) is None

    def test_zero_quantum_is_exact(self):
        cache = ResponseCache(quantum=0.0)
        a = np.array([0.5])
        assert cache.key(a) != cache.key(a + 1e-12)

    def test_lru_eviction_order(self):
        cache = ResponseCache(capacity=2, quantum=0.0)
        keys = [cache.key(np.array([float(i)])) for i in range(3)]
        cache.put(keys[0], 0)
        cache.put(keys[1], 1)
        assert cache.get(keys[0]) == 0  # refresh 0; 1 becomes LRU
        cache.put(keys[2], 2)
        assert cache.get(keys[1]) is None
        assert cache.get(keys[0]) == 0
        assert cache.get(keys[2]) == 2
        assert cache.stats()["evictions"] == 1

    def test_zero_capacity_disables(self):
        cache = ResponseCache(capacity=0)
        key = cache.key(np.array([1.0]))
        cache.put(key, "x")
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_clear_keeps_stats(self):
        cache = ResponseCache()
        key = cache.key(np.array([1.0]))
        cache.put(key, "x")
        assert cache.get(key) == "x"
        cache.clear()
        assert cache.get(key) is None
        assert cache.stats()["hits"] == 1


class TestAggregate:
    def test_mean_and_median(self):
        outputs = [
            np.array([[1.0, 2.0]]),
            np.array([[3.0, 4.0]]),
            np.array([[11.0, 12.0]]),
        ]
        np.testing.assert_allclose(
            aggregate(outputs, "mean"), np.array([[5.0, 6.0]])
        )
        np.testing.assert_allclose(
            aggregate(outputs, "median"), np.array([[3.0, 4.0]])
        )

    def test_winner_mode_is_not_an_elementwise_reduction(self):
        with pytest.raises(ValueError):
            aggregate([np.zeros(2)], "winner")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            aggregate([np.zeros(2)], "max")


@pytest.fixture(scope="module")
def serve_store(tmp_path_factory, tiny_dataset, tiny_spec, tiny_autoencoder):
    """A checkpoint store holding the autoencoder and two population tags
    (round-001, round-002) with distinct weights."""
    spec = dataclasses.replace(tiny_spec, k=2)
    train_ids = np.arange(tiny_dataset.n_samples - 64)
    trainers = build_population(
        tiny_dataset, train_ids, RngFactory(47), spec, tiny_autoencoder
    )
    store = CheckpointStore(tmp_path_factory.mktemp("serve") / "ckpts")
    store.save_autoencoder(tiny_autoencoder)
    for t in trainers:
        t.train_steps(2)
    store.save_population(trainers, "round-001", winner=trainers[0].name)
    for t in trainers:
        t.train_steps(2)
    store.save_population(trainers, "round-002", winner=trainers[1].name)
    return store


def _server(serve_store, tag="round-001", **config) -> SurrogateServer:
    registry = ModelRegistry(
        serve_store, max_batch=config.get("max_batch", 8)
    )
    registry.load(tag)
    defaults = dict(max_batch=8, max_delay_s=0.002)
    defaults.update(config)
    return SurrogateServer(registry, ServeConfig(**defaults))


class TestRegistry:
    def test_refresh_picks_newest_non_autoencoder_tag(self, serve_store):
        registry = ModelRegistry(serve_store)
        assert not registry.loaded
        with pytest.raises(ServeError):
            registry.current()
        model = registry.refresh()
        assert model is not None
        assert model.tag == "round-002"
        assert model.version == 1
        # A second refresh with no new tags is a no-op.
        assert registry.refresh() is None
        assert registry.current().version == 1

    def test_load_swaps_and_bumps_version(self, serve_store):
        registry = ModelRegistry(serve_store)
        seen = []
        registry.on_reload(lambda model: seen.append(model.tag))
        registry.load("round-001")
        registry.load("round-002")
        assert registry.current().version == 2
        assert seen == ["round-001", "round-002"]

    def test_winner_member_is_served(self, serve_store):
        registry = ModelRegistry(serve_store)
        registry.load("round-002")
        runtime = registry.current().runtime
        assert runtime.winner.snapshot.trainer_name == "trainer01"


def _summary(value: float, metric: str = "js") -> dict:
    """A minimal stamped eval summary the gate can judge by."""
    return {"metric": metric, "winner_value": value}


@pytest.fixture()
def gate_store(tmp_path, tiny_dataset, tiny_spec, tiny_autoencoder):
    """A fresh two-tag store per test, so stamped eval summaries never
    leak between gate scenarios (or into the shared ``serve_store``)."""
    spec = dataclasses.replace(tiny_spec, k=2)
    train_ids = np.arange(tiny_dataset.n_samples - 64)
    trainers = build_population(
        tiny_dataset, train_ids, RngFactory(48), spec, tiny_autoencoder
    )
    store = CheckpointStore(tmp_path / "ckpts")
    store.save_autoencoder(tiny_autoencoder)
    store.save_population(trainers, "round-001", winner=trainers[0].name)
    for t in trainers:
        t.train_steps(1)
    store.save_population(trainers, "round-002", winner=trainers[1].name)
    return store


class TestQualityGate:
    def test_regressed_candidate_refused(self, gate_store):
        gate_store.stamp_eval_summary("round-001", _summary(0.10))
        gate_store.stamp_eval_summary("round-002", _summary(0.50))
        registry = ModelRegistry(gate_store)
        decisions = []
        registry.on_quality_gate(decisions.append)
        registry.load("round-001")
        assert registry.refresh() is None
        # The incumbent keeps serving.
        assert registry.current().tag == "round-001"
        assert len(decisions) == 1
        decision = decisions[0]
        assert not decision.allowed
        assert decision.reason == "regressed"
        assert decision.candidate == pytest.approx(0.50)
        assert decision.incumbent == pytest.approx(0.10)
        assert registry.last_gate is decision
        # The refused tag is remembered: the poll loop does not re-judge
        # (and re-warn about) the same candidate every period.
        assert registry.refresh() is None
        assert len(decisions) == 1

    def test_improved_candidate_swapped(self, gate_store):
        gate_store.stamp_eval_summary("round-001", _summary(0.50))
        gate_store.stamp_eval_summary("round-002", _summary(0.10))
        registry = ModelRegistry(gate_store)
        registry.load("round-001")
        model = registry.refresh()
        assert model is not None and model.tag == "round-002"
        assert registry.last_gate.allowed
        assert registry.last_gate.reason == "improved"

    def test_within_tolerance_passes(self, gate_store):
        gate_store.stamp_eval_summary("round-001", _summary(0.100))
        gate_store.stamp_eval_summary("round-002", _summary(0.104))
        registry = ModelRegistry(gate_store, quality_tolerance=0.05)
        registry.load("round-001")
        model = registry.refresh()
        assert model is not None and model.tag == "round-002"
        assert registry.last_gate.reason == "within_tolerance"

    def test_missing_candidate_summary_passes_open(self, gate_store):
        # round-002 was never probed: the gate has nothing to judge and
        # must not wedge the deployment.  (The explicit None stamp also
        # re-publishes round-002's manifest, keeping it the newest tag
        # after round-001's stamp bumped that manifest's mtime.)
        gate_store.stamp_eval_summary("round-001", _summary(0.10))
        gate_store.stamp_eval_summary("round-002", None)
        registry = ModelRegistry(gate_store)
        registry.load("round-001")
        model = registry.refresh()
        assert model is not None and model.tag == "round-002"
        assert registry.last_gate.allowed
        assert registry.last_gate.reason == "no_candidate_summary"

    def test_missing_incumbent_summary_passes_open(self, gate_store):
        gate_store.stamp_eval_summary("round-002", _summary(0.50))
        registry = ModelRegistry(gate_store)
        registry.load("round-001")
        model = registry.refresh()
        assert model is not None and model.tag == "round-002"
        assert registry.last_gate.reason == "no_incumbent_summary"

    def test_explicit_load_overrides_gate(self, gate_store):
        gate_store.stamp_eval_summary("round-001", _summary(0.10))
        gate_store.stamp_eval_summary("round-002", _summary(0.50))
        registry = ModelRegistry(gate_store)
        registry.load("round-001")
        assert registry.refresh() is None
        # The operator override: load() never consults the gate.
        model = registry.load("round-002")
        assert model.tag == "round-002"
        assert registry.current().tag == "round-002"

    def test_server_surfaces_refusal(self, gate_store):
        gate_store.stamp_eval_summary("round-001", _summary(0.10))
        gate_store.stamp_eval_summary("round-002", _summary(0.50))
        registry = ModelRegistry(gate_store, max_batch=8)
        registry.load("round-001")
        server = SurrogateServer(
            registry, ServeConfig(max_batch=8, max_delay_s=0.002)
        )
        assert registry.refresh() is None
        stats = server.stats()["quality_gate"]
        assert stats["checks"] == 1
        assert stats["refusals"] == 1
        assert stats["last"]["reason"] == "regressed"
        assert stats["last"]["tag"] == "round-002"
        assert server.m_gate_refused.value == 1
        assert server.m_gate_passed.value == 0


class TestServer:
    def test_batched_matches_unbatched_bit_identical(
        self, serve_store, tiny_autoencoder
    ):
        """The acceptance gate: micro-batched outputs must equal the
        single-request forward bit-for-bit (fixed-shape padding)."""
        server = _server(serve_store, cache_size=0)
        snapshot = serve_store.load_ensemble("round-001")
        single = GeneratorRuntime(
            snapshot.winner_member, tiny_autoencoder, max_batch=8
        )
        rng = np.random.default_rng(11)
        params = rng.random((40, single.input_dim), dtype=np.float32)
        with server:
            futures = [server.submit(row) for row in params]
            responses = [f.result(timeout=30.0) for f in futures]
        assert server.stats()["batches"] < len(params), (
            "traffic never coalesced; bit-identity was not exercised "
            "under batching"
        )
        for row, response in zip(params, responses):
            scalars, images = single.predict(row[None, :])
            np.testing.assert_array_equal(response.scalars, scalars[0])
            np.testing.assert_array_equal(response.images, images[0])

    def test_cache_hit_marks_response(self, serve_store):
        server = _server(serve_store)
        row = np.full(
            server.registry.current().runtime.input_dim, 0.25,
            dtype=np.float32,
        )
        with server:
            first = server.predict(row)
            second = server.predict(row)
        assert not first.cached
        assert second.cached
        assert second.version == first.version
        np.testing.assert_array_equal(first.scalars, second.scalars)
        assert server.stats()["cache"]["hits"] == 1

    def test_expired_deadline_raises(self, serve_store):
        server = _server(serve_store)
        row = np.full(
            server.registry.current().runtime.input_dim, 0.75,
            dtype=np.float32,
        )
        with server:
            future = server.submit(row, deadline_s=-1.0)
            with pytest.raises(DeadlineExceededError):
                future.result(timeout=30.0)
        assert server.stats()["deadline_misses"] == 1

    def test_overload_rejects_and_counts(self, serve_store):
        # The batcher thread is intentionally not started, so the queue
        # fills deterministically.
        server = _server(serve_store, max_queue=2, cache_size=0)
        n = server.registry.current().runtime.input_dim
        rows = np.eye(3, n, dtype=np.float32)
        server.submit(rows[0])
        server.submit(rows[1])
        with pytest.raises(ServerOverloadedError):
            server.submit(rows[2])
        assert server.stats()["rejected"] == 1

    def test_submit_after_stop_rejected(self, serve_store):
        server = _server(serve_store)
        with server:
            pass
        with pytest.raises(ServerClosedError):
            server.submit(np.zeros(
                server.registry.current().runtime.input_dim
            ))

    def test_start_with_empty_store_fails(self, tmp_path):
        registry = ModelRegistry(
            CheckpointStore(tmp_path / "empty"), autoencoder=None
        )
        with pytest.raises(ServeError):
            SurrogateServer(registry).start()

    def test_metrics_are_namespaced(self, serve_store):
        server = _server(serve_store)
        names = {m.name for m in server.metrics}
        assert names, "server registered no metrics"
        assert all(n.startswith("repro_serve_") for n in names)

    def test_hot_reload_mid_load(self, serve_store, tiny_autoencoder):
        """A new winner swaps in under live traffic: every response
        succeeds, none mixes versions, and post-swap traffic is served
        by the new snapshot's weights."""
        server = _server(serve_store, tag="round-001", cache_size=0)
        rng = np.random.default_rng(13)
        n = server.registry.current().runtime.input_dim
        params = rng.random((120, n), dtype=np.float32)
        responses = []
        with server:
            for i, row in enumerate(params):
                responses.append(server.submit(row))
                if i == 40:
                    assert server.registry.refresh().tag == "round-002"
            responses = [f.result(timeout=30.0) for f in responses]

        # No failures, and the version/tag stamps stay consistent.
        by_version = {}
        for r in responses:
            by_version.setdefault(r.version, set()).add(r.tag)
        assert set(by_version) <= {1, 2}
        assert 2 in by_version, "no request was served by the new model"
        assert by_version.get(1, {"round-001"}) == {"round-001"}
        assert by_version[2] == {"round-002"}
        # Version never goes backwards in submission order.
        versions = [r.version for r in responses]
        assert versions == sorted(versions)

        # Post-swap outputs really come from round-002's weights.
        snapshot = serve_store.load_ensemble("round-002")
        runtime = GeneratorRuntime(
            snapshot.winner_member, tiny_autoencoder, max_batch=8
        )
        last_row, last = params[-1], responses[-1]
        scalars, _images = runtime.predict(last_row[None, :])
        np.testing.assert_array_equal(last.scalars, scalars[0])
        assert server.stats()["model"]["tag"] == "round-002"

    def test_reload_clears_cache(self, serve_store):
        server = _server(serve_store, tag="round-001")
        row = np.full(
            server.registry.current().runtime.input_dim, 0.5,
            dtype=np.float32,
        )
        with server:
            server.predict(row)
            assert server.predict(row).cached
            server.registry.refresh()
            refreshed = server.predict(row)
        assert not refreshed.cached
        assert refreshed.tag == "round-002"


class TestLoadGenerators:
    def test_closed_loop_accounts_every_request(self, serve_store):
        server = _server(serve_store)
        n = server.registry.current().runtime.input_dim
        params = np.random.default_rng(7).random((32, n), dtype=np.float32)
        with server:
            report = closed_loop(
                server, params, clients=2, requests_per_client=8
            )
        assert report.n_requests == 16
        assert report.n_ok == 16
        assert report.n_failed == report.n_rejected == 0
        assert len(report.latencies_s) == 16
        p = report.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]
        doc = report.to_json()
        assert doc["mode"] == "closed"
        assert doc["achieved_qps"] > 0

    def test_open_loop_accounts_every_request(self, serve_store):
        server = _server(serve_store)
        n = server.registry.current().runtime.input_dim
        params = np.random.default_rng(9).random((32, n), dtype=np.float32)
        with server:
            report = open_loop(server, params, qps=400.0, n_requests=40)
        assert report.n_requests == 40
        assert (
            report.n_ok
            + report.n_deadline_miss
            + report.n_rejected
            + report.n_failed
            == 40
        )
        assert report.n_ok == 40
        assert report.offered_qps == 400.0
