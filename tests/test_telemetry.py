"""Tests for the telemetry subsystem and the unified driver API.

Covers the hub/event layer, the shipped callbacks (trace writer, timer,
counter aggregator, progress logger, resource sampler), instrumentation
of the data store and checkpointing, and the trace-report CLI.
"""

from __future__ import annotations

import dataclasses
import io
import json

import numpy as np
import pytest

from repro.core.checkpoint import restore_trainer, trainer_checkpoint
from repro.core.enums import AdoptOptimizer, ExchangeScope
from repro.core.ensemble import build_population
from repro.core.kindependent import KIndependentDriver
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.datastore.store import DistributedDataStore
from repro.telemetry import (
    EVENT_TYPES,
    Callback,
    CounterAggregator,
    JsonlTraceWriter,
    ProgressLogger,
    ResourceSampler,
    TelemetryHub,
    WallClockTimer,
    load_trace,
    sample_resources,
    summarize_resources,
    summarize_trace,
    trace_summary,
)
from repro.utils.rng import RngFactory


class Recorder(Callback):
    """Collects every event for assertions."""

    def __init__(self) -> None:
        self.events = []
        self.run_begins = 0
        self.run_ends = 0

    def on_event(self, event) -> None:
        self.events.append(event)

    def on_run_begin(self, driver) -> None:
        self.run_begins += 1

    def on_run_end(self, driver, history) -> None:
        self.run_ends += 1

    def of_type(self, event_type):
        return [e for e in self.events if e.type == event_type]


@pytest.fixture()
def population(tiny_dataset, tiny_spec, tiny_autoencoder):
    def build(k=2, seed=7, **overrides):
        spec = dataclasses.replace(tiny_spec, k=k, **overrides)
        train_ids = np.arange(tiny_dataset.n_samples - 64)
        return build_population(
            tiny_dataset, train_ids, RngFactory(seed), spec, tiny_autoencoder
        )

    return build


@pytest.fixture()
def val_batch(tiny_dataset):
    ids = np.arange(tiny_dataset.n_samples - 64, tiny_dataset.n_samples)
    return {k: v[ids] for k, v in tiny_dataset.fields.items()}


class TestHub:
    def test_emit_without_subscribers_is_free(self):
        hub = TelemetryHub()
        assert hub.emit("step_end", trainer="t0") is None
        assert not hub.active

    def test_emit_dispatches_and_sequences(self):
        hub = TelemetryHub()
        rec = Recorder()
        hub.subscribe(rec)
        hub.subscribe(rec)  # idempotent
        e0 = hub.emit("round_end", round=0, train_s=1.0)
        e1 = hub.emit("eval", round=0, metrics={}, elapsed_s=0.0)
        assert [e.type for e in rec.events] == ["round_end", "eval"]
        assert (e0.sequence, e1.sequence) == (0, 1)
        assert e1.time_s >= e0.time_s >= 0.0

    def test_unknown_event_type_rejected(self):
        hub = TelemetryHub()
        with pytest.raises(ValueError, match="unknown event type"):
            hub.emit("banana")

    def test_unsubscribe(self):
        hub = TelemetryHub()
        rec = Recorder()
        hub.subscribe(rec)
        hub.unsubscribe(rec)
        hub.unsubscribe(rec)  # unknown is a no-op
        hub.emit("round_end", round=0)
        assert rec.events == []

    def test_per_type_hooks_dispatch(self):
        calls = []

        class Hooked(Callback):
            def on_tournament(self, event):
                calls.append(("typed", event.type))

            def on_event(self, event):
                calls.append(("generic", event.type))

        hub = TelemetryHub()
        hub.subscribe(Hooked())
        hub.emit("tournament", round=0, trainer="a", partner="b",
                 own_score=1.0, partner_score=2.0, adopted=False)
        hub.emit("round_end", round=0)
        assert calls == [
            ("typed", "tournament"),
            ("generic", "tournament"),
            ("generic", "round_end"),
        ]


class TestLtfbTelemetry:
    @pytest.fixture()
    def traced_run(self, population, val_batch, tmp_path):
        trainers = population(k=4)
        driver = LtfbDriver(
            trainers,
            np.random.default_rng(0),
            LtfbConfig(steps_per_round=2, rounds=2),
            eval_batch=val_batch,
        )
        trace_path = tmp_path / "trace.jsonl"
        rec = Recorder()
        timer = WallClockTimer()
        counters = CounterAggregator()
        stream = io.StringIO()
        history = driver.run(
            callbacks=[
                JsonlTraceWriter(trace_path),
                rec,
                timer,
                counters,
                ProgressLogger(stream=stream),
            ]
        )
        return driver, history, trace_path, rec, timer, counters, stream

    def test_event_stream_shape(self, traced_run):
        driver, history, _, rec, _, _, _ = traced_run
        assert rec.run_begins == 1 and rec.run_ends == 1
        # 4 trainers x 2 rounds train intervals.
        assert len(rec.of_type("step_end")) == 8
        # 2 pairs x 2 rounds exchanges; 2 decisions per exchange.
        assert len(rec.of_type("exchange")) == 4
        assert len(rec.of_type("tournament")) == len(history.tournaments) == 8
        assert len(rec.of_type("eval")) == 2
        assert len(rec.of_type("round_end")) == 2
        for e in rec.of_type("step_end"):
            assert e.payload["steps"] == 2
            assert e.payload["elapsed_s"] >= 0.0
            assert "gen_loss" in e.payload["losses"]

    def test_counters_match_history(self, traced_run):
        _, history, _, _, _, counters, _ = traced_run
        assert counters.exchange_bytes == history.exchange_bytes
        assert counters.tournaments == len(history.tournaments)
        assert counters.adoption_rate() == pytest.approx(history.adoption_rate())
        assert counters.steps == 16  # 4 trainers x 2 rounds x 2 steps

    def test_timer_accumulates_phases(self, traced_run):
        _, _, _, _, timer, _, _ = traced_run
        assert timer.rounds == 2
        assert set(timer.totals) == {"train", "tournament", "exchange", "eval"}
        assert timer.totals["train"] > 0.0
        assert timer.totals["eval"] > 0.0
        assert all(v >= 0.0 for v in timer.totals.values())
        assert "wall clock over 2 rounds" in timer.summary()

    def test_progress_logger_lines(self, traced_run):
        _, _, _, _, _, _, stream = traced_run
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("[round 1/2]")
        assert "best val_loss" in lines[0]

    def test_jsonl_trace_round_trip(self, traced_run):
        _, history, trace_path, rec, _, _, _ = traced_run
        # Every line is one JSON object; line 1 is the versioned header,
        # the rest are events with known types.
        with open(trace_path, encoding="utf-8") as fh:
            records = [json.loads(line) for line in fh]
        header, records = records[0], records[1:]
        assert header["type"] == "trace_header"
        assert header["version"] == JsonlTraceWriter.SCHEMA_VERSION
        assert header["run"]["driver"] == "LtfbDriver"
        assert len(records) == len(rec.events)
        assert {r["type"] for r in records} <= EVENT_TYPES
        assert {"step_end", "tournament", "eval", "exchange", "round_end"} <= {
            r["type"] for r in records
        }
        # Loading reproduces the stream; summarizing reproduces the run.
        events = load_trace(trace_path)
        assert [e.type for e in events] == [e.type for e in rec.events]
        timer, counters, census = summarize_trace(events)
        assert counters.exchange_bytes == history.exchange_bytes
        assert counters.adoption_rate() == pytest.approx(history.adoption_rate())
        assert census["round_end"] == 2 and timer.rounds == 2

    def test_callbacks_detach_after_run(self, traced_run):
        driver, _, _, rec, _, _, _ = traced_run
        assert driver.telemetry.callbacks == []
        n = len(rec.events)
        driver.telemetry.emit("round_end", round=99)
        assert len(rec.events) == n


class TestOnRoundShimRemoved:
    def test_run_rejects_on_round_keyword(self, population, val_batch):
        driver = LtfbDriver(
            population(k=2),
            np.random.default_rng(1),
            LtfbConfig(steps_per_round=1, rounds=3),
            eval_batch=val_batch,
        )
        with pytest.raises(TypeError):
            driver.run(on_round=lambda r, d: None)

    def test_callback_replaces_on_round(self, population):
        seen = []

        class Rounds(Callback):
            def on_round_end(self, event):
                seen.append(event.payload["round"])

        driver = KIndependentDriver(
            population(k=2), LtfbConfig(steps_per_round=1, rounds=2)
        )
        driver.run(callbacks=[Rounds()])
        assert seen == [0, 1]


class TestDatastoreTelemetry:
    def test_fetch_batch_emits_deltas(self):
        hub = TelemetryHub()
        rec = Recorder()
        hub.subscribe(rec)
        store = DistributedDataStore(
            num_ranks=2, bytes_per_rank=1 << 20, telemetry=hub
        )
        sample = {"x": np.ones(4, dtype=np.float32)}
        for sid in range(4):
            store.cache_sample(sid % 2, sid, sample)
        store.fetch_batch([0, 1, 2, 3])
        events = rec.of_type("datastore_fetch")
        assert len(events) == 1
        p = events[0].payload
        assert p["batch_size"] == 4
        assert p["local_fetches"] + p["remote_fetches"] == 4
        assert p["local_fetches"] == store.stats.local_fetches
        assert p["remote_fetches"] == store.stats.remote_fetches
        assert p["local_bytes"] + p["remote_bytes"] == 4 * 16

    def test_counter_aggregator_folds_stats_snapshot(self):
        store = DistributedDataStore(num_ranks=2, bytes_per_rank=1 << 20)
        sample = {"x": np.ones(4, dtype=np.float32)}
        for sid in range(4):
            store.cache_sample(sid % 2, sid, sample)
        store.fetch_batch([0, 1, 2, 3])
        counters = CounterAggregator()
        counters.fold_datastore(store.stats)
        assert (
            counters.datastore_local_fetches + counters.datastore_remote_fetches
            == 4
        )
        assert counters.remote_fetch_fraction() == pytest.approx(
            store.stats.remote_fraction
        )


class TestCheckpointTelemetry:
    def test_save_and_restore_emit_events(self, population):
        t = population(k=1)[0]
        hub = TelemetryHub()
        rec = Recorder()
        hub.subscribe(rec)
        payload = trainer_checkpoint(t, telemetry=hub)
        restore_trainer(t, payload, telemetry=hub)
        events = rec.of_type("checkpoint")
        assert [e.payload["action"] for e in events] == ["save", "restore"]
        assert all(e.payload["nbytes"] == len(payload) for e in events)
        assert all(e.payload["trainer"] == t.name for e in events)

    def test_falls_back_to_trainer_hub(self, population):
        t = population(k=1)[0]
        hub = TelemetryHub()
        rec = Recorder()
        hub.subscribe(rec)
        t.telemetry = hub
        trainer_checkpoint(t)
        assert len(rec.of_type("checkpoint")) == 1


class TestEnums:
    def test_coerce_accepts_member_and_string(self):
        assert ExchangeScope.coerce("full") is ExchangeScope.FULL
        assert ExchangeScope.coerce(ExchangeScope.GENERATOR) is (
            ExchangeScope.GENERATOR
        )
        assert AdoptOptimizer.coerce("keep") is AdoptOptimizer.KEEP

    def test_coerce_rejects_unknown(self):
        with pytest.raises(ValueError, match="ExchangeScope"):
            ExchangeScope.coerce("half")
        with pytest.raises(ValueError, match="AdoptOptimizer"):
            AdoptOptimizer.coerce("maybe")

    def test_enums_accepted_by_configs(self, population):
        cfg = LtfbConfig(steps_per_round=1, rounds=1, exchange=ExchangeScope.FULL)
        assert cfg.exchange is ExchangeScope.FULL
        assert cfg.exchange == "full"  # str-mixin keeps comparisons working
        a, b = population(k=2)
        pkg = a.exchange_package(ExchangeScope.FULL)
        assert pkg["scope"] == "full" and isinstance(pkg["scope"], str)
        b.adopt_package(pkg)

    def test_str_scope_still_accepted(self, population):
        a, _ = population(k=2)
        assert a.exchange_package("generator")["scope"] == "generator"
        with pytest.raises(ValueError):
            a.exchange_package("half")


class TestTraceReportCli:
    def test_summarizes_a_real_trace(self, population, val_batch, tmp_path, capsys):
        from repro.experiments.__main__ import main

        trace_path = tmp_path / "trace.jsonl"
        driver = LtfbDriver(
            population(k=2),
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=1, rounds=2),
            eval_batch=val_batch,
        )
        driver.run(callbacks=[JsonlTraceWriter(trace_path)])
        assert main(["trace-report", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase wall clock" in out
        assert "adoption rate" in out
        assert "exchange" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.experiments.__main__ import main

        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 1
        assert "trace-report:" in capsys.readouterr().err

    def test_malformed_trace_rejected(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "round_end"}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace(bad)
        unknown = tmp_path / "unknown.jsonl"
        unknown.write_text('{"type": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown event type"):
            load_trace(unknown)

    def test_json_format_is_machine_readable(
        self, population, val_batch, tmp_path, capsys
    ):
        from repro.experiments.__main__ import main

        trace_path = tmp_path / "trace.jsonl"
        driver = LtfbDriver(
            population(k=2),
            np.random.default_rng(3),
            LtfbConfig(steps_per_round=1, rounds=2),
            eval_batch=val_batch,
        )
        driver.run(callbacks=[JsonlTraceWriter(trace_path), ResourceSampler()])
        assert main(["trace-report", str(trace_path), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["phases"]["rounds"] == 2
        assert doc["counters"]["tournaments"] == 4  # k=2 trainers x 2 rounds
        assert doc["events"]["round_end"] == 2
        assert "repro_step_time_seconds" in doc["percentiles"]
        # Sampler: begin + 2 rounds + end; serial backend: one per round.
        assert doc["resources"]["driver"]["samples"] == 6
        assert doc["health"] == [] and doc["spans"] is None
        # The same dict is importable directly.
        assert trace_summary(trace_path)["phases"]["rounds"] == 2


class TestResourceTelemetry:
    def test_sample_resources_shape(self):
        s = sample_resources()
        assert set(s) == {"rss_bytes", "peak_rss_bytes", "cpu_user_s", "cpu_system_s"}
        assert s["peak_rss_bytes"] > 0 and s["cpu_user_s"] >= 0.0

    def test_sampler_emits_per_round_and_lifecycle(self, population):
        driver = KIndependentDriver(
            population(k=2), LtfbConfig(steps_per_round=1, rounds=3)
        )
        rec = Recorder()
        driver.run(callbacks=[rec, ResourceSampler(every_rounds=2)])
        driver_samples = [
            e for e in rec.of_type("resource_sample")
            if e.payload["source"] == "driver" and "backend" not in e.payload
        ]
        # run begin + round 2 (every 2nd of 3 rounds) + run end.
        assert len(driver_samples) == 3

    def test_serial_backend_samples_per_train_phase(self, population):
        driver = KIndependentDriver(
            population(k=2), LtfbConfig(steps_per_round=1, rounds=2)
        )
        rec = Recorder()
        driver.run(callbacks=[rec])
        backend_samples = [
            e for e in rec.of_type("resource_sample")
            if e.payload.get("backend") == "serial"
        ]
        assert len(backend_samples) == 2
        assert all(e.payload["source"] == "driver" for e in backend_samples)

    def test_process_backend_relays_worker_samples(self, population, val_batch):
        from repro.exec import resolve_backend

        driver = LtfbDriver(
            population(k=2),
            np.random.default_rng(5),
            LtfbConfig(steps_per_round=1, rounds=2),
            eval_batch=val_batch,
            backend=resolve_backend("process", max_workers=2),
        )
        rec = Recorder()
        driver.run(callbacks=[rec])
        summary = summarize_resources(rec.of_type("resource_sample"))
        assert {"worker0", "worker1"} <= set(summary)
        for worker in ("worker0", "worker1"):
            row = summary[worker]
            assert row["samples"] == 2  # one per train phase
            assert row["peak_rss_bytes"] > 0

    def test_export_renders_counter_tracks(self, population, val_batch, tmp_path):
        from repro.telemetry import export_chrome_trace

        trace_path = tmp_path / "trace.jsonl"
        driver = LtfbDriver(
            population(k=2),
            np.random.default_rng(6),
            LtfbConfig(steps_per_round=1, rounds=1),
            eval_batch=val_batch,
        )
        driver.run(
            callbacks=[
                JsonlTraceWriter(trace_path, spans=True), ResourceSampler(),
            ]
        )
        doc = export_chrome_trace(trace_path, tmp_path / "trace.json")
        counters = [e for e in doc["traceEvents"] if e.get("ph") == "C"]
        assert {"rss[driver]", "cpu[driver]"} <= {e["name"] for e in counters}
        rss = next(e for e in counters if e["name"] == "rss[driver]")
        assert rss["args"]["peak_mb"] > 0

    def test_metrics_collector_folds_samples_into_gauges(self):
        from repro.telemetry import MetricsCollector

        hub = TelemetryHub()
        collector = MetricsCollector()
        hub.subscribe(collector)
        hub.emit(
            "resource_sample", source="driver",
            rss_bytes=100, peak_rss_bytes=500,
            cpu_user_s=1.0, cpu_system_s=0.5,
        )
        hub.emit(
            "resource_sample", source="worker0",
            rss_bytes=50, peak_rss_bytes=300,
            cpu_user_s=2.0, cpu_system_s=0.25,
        )
        r = collector.registry
        assert r["repro_rss_bytes"].value == 50.0  # last sample
        assert r["repro_peak_rss_bytes"].value == 500.0  # max across sources
        assert r["repro_cpu_seconds"].value == pytest.approx(2.25)

    def test_report_renders_resources_section(self, population, tmp_path):
        from repro.telemetry import render_trace_report

        trace_path = tmp_path / "trace.jsonl"
        driver = KIndependentDriver(
            population(k=2), LtfbConfig(steps_per_round=1, rounds=1)
        )
        driver.run(callbacks=[JsonlTraceWriter(trace_path), ResourceSampler()])
        out = render_trace_report(trace_path)
        assert "resources:" in out
        assert "driver: peak rss" in out

    def test_sampler_rejects_bad_cadence(self):
        with pytest.raises(ValueError, match="every_rounds"):
            ResourceSampler(every_rounds=0)
