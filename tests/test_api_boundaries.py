"""Static guards on module boundaries.

The checkpoint redesign made :class:`~repro.core.checkpoint.CheckpointStore`
and the snapshot types the public surface; everything underscore-prefixed
in ``repro.core.checkpoint`` is format plumbing that callers must not
reach into.  This test walks every source module and fails on any import
or attribute access of those internals from outside the module itself.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
CHECKPOINT_MODULE = "repro.core.checkpoint"


def _modules():
    for path in sorted(SRC.rglob("*.py")):
        module = ".".join(path.relative_to(SRC).with_suffix("").parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        yield module, path


def _violations(module: str, tree: ast.AST) -> list[str]:
    found = []
    checkpoint_aliases = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            if node.module == CHECKPOINT_MODULE:
                for alias in node.names:
                    if alias.name.startswith("_"):
                        found.append(
                            f"line {node.lineno}: from {CHECKPOINT_MODULE} "
                            f"import {alias.name}"
                        )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == CHECKPOINT_MODULE:
                    checkpoint_aliases.add(alias.asname or "checkpoint")
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and node.attr.startswith("_")
            and not node.attr.startswith("__")
            and isinstance(node.value, ast.Name)
            and node.value.id in checkpoint_aliases
        ):
            found.append(
                f"line {node.lineno}: {node.value.id}.{node.attr}"
            )
    return found


def test_no_external_use_of_checkpoint_internals():
    offenders = {}
    for module, path in _modules():
        if module == CHECKPOINT_MODULE:
            continue
        tree = ast.parse(path.read_text(), filename=str(path))
        found = _violations(module, tree)
        if found:
            offenders[module] = found
    assert not offenders, (
        "modules reaching into repro.core.checkpoint internals "
        f"(use the CheckpointStore / snapshot API instead): {offenders}"
    )


def test_guard_catches_violations():
    """The AST walk itself must actually detect both access styles."""
    bad = (
        "from repro.core.checkpoint import _unpack\n"
        "import repro.core.checkpoint as checkpoint\n"
        "x = checkpoint._FORMAT_VERSION\n"
    )
    found = _violations("fake", ast.parse(bad))
    assert len(found) == 2


def test_serve_package_has_no_private_checkpoint_coupling():
    # The serving plane was built against the public API from day one;
    # spot-check the import surface it actually uses exists.
    from repro.core import checkpoint

    for name in (
        "CheckpointStore",
        "CheckpointError",
        "CheckpointNotFoundError",
        "CheckpointCorruptError",
        "CheckpointVersionError",
        "CheckpointMismatchError",
        "GeneratorSnapshot",
        "EnsembleSnapshot",
        "generator_snapshot",
    ):
        assert not name.startswith("_")
        assert hasattr(checkpoint, name)


if __name__ == "__main__":
    pytest.main([__file__, "-v"])
