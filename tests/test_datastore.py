"""Tests for the distributed data store stack: conduit nodes, bundles,
partitioning, the store itself, and the readers.

The headline invariants come straight from the paper:

- preload opens each bundle exactly once, by exactly one rank;
- after population (either mode), *no data is read from the file system*;
- the naive reader re-reads files every epoch and hits the same file from
  many batches;
- shards are capacity-limited and ownership is disjoint and exhaustive.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.filesystem import SimulatedFilesystem
from repro.comm.spmd import run_spmd
from repro.comm.topology import contiguous_placement
from repro.datastore.bundle import Bundle, bundle_paths_for, write_bundles
from repro.datastore.conduit import ConduitNode
from repro.datastore.partition import partition_indices, partition_items
from repro.datastore.reader import ArrayReader, NaiveReader, StoreReader
from repro.datastore.store import (
    DistributedDataStore,
    InsufficientMemoryError,
    consumer_ranks_for_batch,
    spmd_exchange_minibatch,
)


def make_fields(n=200, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    return {
        "x": rng.normal(size=(n, dim)).astype(np.float32),
        "tag": np.arange(n, dtype=np.float32).reshape(n, 1),
    }


def make_fs_with_bundles(n=200, spb=20, seed=0):
    fs = SimulatedFilesystem()
    fields = make_fields(n, seed=seed)
    paths = write_bundles(fs, fields, samples_per_bundle=spb)
    return fs, fields, paths


class TestConduit:
    def test_path_set_get(self):
        n = ConduitNode()
        n["outputs/scalars"] = np.arange(3)
        n["outputs/images"] = np.zeros((2, 2))
        n["inputs"] = np.ones(5)
        assert sorted(n.leaf_paths()) == [
            "inputs",
            "outputs/images",
            "outputs/scalars",
        ]
        np.testing.assert_array_equal(n["outputs/scalars"], [0, 1, 2])

    def test_interior_vs_leaf_conflicts(self):
        n = ConduitNode()
        n["a/b"] = 1
        with pytest.raises(KeyError):
            n["a"] = 2  # 'a' is interior
        with pytest.raises(KeyError):
            n["a/b/c"] = 3  # 'b' is a leaf

    def test_invalid_paths(self):
        n = ConduitNode()
        for bad in ("", "/x", "x/"):
            with pytest.raises(KeyError):
                n[bad] = 1

    def test_contains_and_missing(self):
        n = ConduitNode({"a/b": 1})
        assert "a/b" in n and "a" in n and "a/c" not in n
        with pytest.raises(KeyError):
            n["zzz"]

    def test_nbytes(self):
        n = ConduitNode({"a": np.zeros(10, dtype=np.float32)})
        assert n.nbytes == 40

    def test_flat_roundtrip_and_equality(self):
        flat = {"x/y": np.arange(4), "z": np.ones(2)}
        n = ConduitNode.from_flat(flat)
        assert n == ConduitNode.from_flat(n.to_flat())
        assert n != ConduitNode.from_flat({"x/y": np.arange(4)})


class TestBundle:
    def test_columnar_access(self):
        ids = np.arange(10, 20)
        b = Bundle(ids, {"x": np.arange(10).reshape(10, 1)})
        assert len(b) == 10
        assert b.sample(3)["x"][0] == 3
        with pytest.raises(IndexError):
            b.sample(10)

    def test_rows_for(self):
        b = Bundle(np.array([5, 7, 9]), {"x": np.array([[50], [70], [90]])})
        rows = b.rows_for(np.array([9, 5]))
        np.testing.assert_array_equal(b.sample_ids[rows], [9, 5])
        with pytest.raises(KeyError):
            b.rows_for(np.array([6]))

    def test_field_length_mismatch(self):
        with pytest.raises(ValueError):
            Bundle(np.arange(3), {"x": np.zeros((4, 1))})

    def test_write_bundles_layout(self):
        fs, fields, paths = make_fs_with_bundles(n=95, spb=20)
        assert len(paths) == 5  # last bundle short
        first = fs.read_file(paths[0])
        last = fs.read_file(paths[-1])
        assert len(first) == 20 and len(last) == 15
        np.testing.assert_array_equal(last.sample_ids, np.arange(80, 95))
        # Generation order is preserved.
        np.testing.assert_array_equal(
            first.fields["tag"][:, 0], np.arange(20, dtype=np.float32)
        )

    def test_write_bundles_validation(self):
        fs = SimulatedFilesystem()
        with pytest.raises(ValueError):
            write_bundles(fs, {"x": np.zeros((0, 1))}, 10)
        with pytest.raises(ValueError):
            write_bundles(fs, {"x": np.zeros((5, 1)), "y": np.zeros((6, 1))}, 10)

    def test_bundle_paths_sorted(self):
        paths = bundle_paths_for("p", 12)
        assert paths == sorted(paths)
        assert len(set(paths)) == 12


class TestPartition:
    @pytest.mark.parametrize("mode", ["contiguous", "strided", "random"])
    def test_disjoint_and_exhaustive(self, mode):
        rng = np.random.default_rng(0)
        parts = partition_indices(103, 7, mode=mode, rng=rng)
        allidx = np.concatenate(parts)
        assert len(allidx) == 103
        assert len(np.unique(allidx)) == 103
        sizes = [len(p) for p in parts]
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_blocks_are_ranges(self):
        parts = partition_indices(10, 2, mode="contiguous")
        np.testing.assert_array_equal(parts[0], np.arange(5))
        np.testing.assert_array_equal(parts[1], np.arange(5, 10))

    def test_strided_interleaves(self):
        parts = partition_indices(9, 3, mode="strided")
        np.testing.assert_array_equal(parts[1], [1, 4, 7])

    def test_random_requires_rng(self):
        with pytest.raises(ValueError):
            partition_indices(10, 2, mode="random")

    def test_partition_items(self):
        items = list("abcdef")
        parts = partition_items(items, 3)
        assert parts == [["a", "b"], ["c", "d"], ["e", "f"]]

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            partition_indices(5, 6)
        with pytest.raises(ValueError):
            partition_indices(5, 0)

    @given(st.integers(1, 200), st.integers(1, 16))
    @settings(max_examples=40, deadline=None)
    def test_partition_property(self, n, k):
        if k > n:
            return
        parts = partition_indices(n, k, mode="strided")
        assert sum(len(p) for p in parts) == n


class TestConsumerMapping:
    def test_contiguous_blocks(self):
        np.testing.assert_array_equal(
            consumer_ranks_for_batch(8, 4), [0, 0, 1, 1, 2, 2, 3, 3]
        )

    def test_uneven(self):
        consumers = consumer_ranks_for_batch(10, 4)
        assert consumers.min() == 0 and consumers.max() == 3

    def test_single_rank(self):
        assert np.all(consumer_ranks_for_batch(5, 1) == 0)


class TestDistributedDataStore:
    def test_preload_opens_each_file_once(self):
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(4, 10**7)
        report = store.preload(fs, paths)
        assert fs.stats.opens == len(paths)
        assert all(count == 1 for count in fs.stats.opens_per_file.values())
        assert store.num_cached == 200
        # Round-robin file assignment.
        assert report[0][0] == len(paths) // 4 + (1 if len(paths) % 4 else 0)

    def test_ownership_disjoint_and_exhaustive(self):
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(4, 10**7)
        store.preload(fs, paths)
        owners = [store.owner_of(s) for s in range(200)]
        assert set(owners) == {0, 1, 2, 3}

    def test_capacity_enforced(self):
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(4, bytes_per_rank=100)
        with pytest.raises(InsufficientMemoryError):
            store.preload(fs, paths)

    def test_cache_sample_idempotent(self):
        store = DistributedDataStore(2, 10**6)
        sample = {"x": np.ones(4, dtype=np.float32)}
        store.cache_sample(0, 7, sample)
        store.cache_sample(1, 7, sample)  # second insert ignored
        assert store.owner_of(7) == 0
        assert store.num_cached == 1

    def test_fetch_batch_order_and_stats(self):
        fs, fields, paths = make_fs_with_bundles()
        placement = contiguous_placement(4, 2)
        store = DistributedDataStore(4, 10**7, placement=placement)
        store.preload(fs, paths)
        ids = np.array([3, 100, 42, 199])
        batch = store.fetch_batch(ids)
        np.testing.assert_array_equal(batch["tag"][:, 0], ids.astype(np.float32))
        assert store.stats.total_fetches == 4

    def test_fetch_unknown_sample(self):
        store = DistributedDataStore(2, 10**6)
        with pytest.raises(KeyError):
            store.fetch_batch([0])

    def test_occupancy_fraction(self):
        store = DistributedDataStore(2, 1000)
        store.cache_sample(0, 0, {"x": np.zeros(100, dtype=np.float32)})  # 400 B
        assert store.occupancy_fraction() == pytest.approx(0.4)

    def test_placement_rank_mismatch(self):
        with pytest.raises(ValueError):
            DistributedDataStore(4, 100, placement=contiguous_placement(2, 2))

    def test_remote_fraction_counts_cross_node_only(self):
        placement = contiguous_placement(4, 4)  # all same node
        store = DistributedDataStore(4, 10**7, placement=placement)
        for s in range(8):
            store.cache_sample(s % 4, s, {"x": np.ones(2, dtype=np.float32)})
        store.fetch_batch(list(range(8)))
        assert store.stats.remote_fetches == 0  # same node => local

    def test_per_rank_bytes_tracks_shard_occupancy(self):
        store = DistributedDataStore(3, 10**6)
        assert store.stats.per_rank_bytes == [0, 0, 0]
        store.cache_sample(0, 0, {"x": np.zeros(10, dtype=np.float32)})  # 40 B
        store.cache_sample(0, 1, {"x": np.zeros(10, dtype=np.float32)})
        store.cache_sample(2, 2, {"x": np.zeros(5, dtype=np.float32)})  # 20 B
        assert store.stats.per_rank_bytes == [80, 0, 20]
        assert store.stats.per_rank_bytes == [
            store.shard_bytes(r) for r in range(3)
        ]
        assert sum(store.stats.per_rank_bytes) == store.stats.cached_bytes

    def test_per_rank_bytes_tracks_evictions(self):
        # Budget fits exactly two 40-byte samples per rank.
        store = DistributedDataStore(2, bytes_per_rank=80, evicting=True)
        for s in range(3):
            store.cache_sample(0, s, {"x": np.zeros(10, dtype=np.float32)})
        assert store.stats.evictions == 1
        assert store.stats.per_rank_bytes == [80, 0]
        assert store.stats.per_rank_bytes[0] == store.shard_bytes(0)


class TestReaders:
    def test_array_reader_epoch_covers_population(self):
        fields = make_fields(n=64)
        reader = ArrayReader(fields, np.arange(64), np.random.default_rng(0))
        seen = []
        for mb in reader.epoch(16):
            seen.extend(mb.sample_ids.tolist())
            np.testing.assert_array_equal(
                mb.feeds["tag"][:, 0], mb.sample_ids.astype(np.float32)
            )
        assert sorted(seen) == list(range(64))
        assert reader.epochs_completed == 1

    def test_epoch_shuffles_differently(self):
        fields = make_fields(n=64)
        reader = ArrayReader(fields, np.arange(64), np.random.default_rng(0))
        first = [mb.sample_ids.tolist() for mb in reader.epoch(64)]
        second = [mb.sample_ids.tolist() for mb in reader.epoch(64)]
        assert first != second

    def test_drop_last(self):
        fields = make_fields(n=50)
        reader = ArrayReader(fields, np.arange(50), np.random.default_rng(0))
        assert reader.steps_per_epoch(16, drop_last=True) == 3
        assert reader.steps_per_epoch(16, drop_last=False) == 4

    def test_batch_too_large(self):
        fields = make_fields(n=10)
        reader = ArrayReader(fields, np.arange(10), np.random.default_rng(0))
        with pytest.raises(ValueError):
            list(reader.epoch(11))

    def test_negative_sample_ids_rejected(self):
        # Negative ids would silently index from the end of the field
        # arrays; the constructor rejects them like out-of-range ids.
        fields = make_fields(n=10)
        with pytest.raises(ValueError, match="non-negative"):
            ArrayReader(fields, np.array([0, -1, 2]), np.random.default_rng(0))

    def test_naive_reader_reopens_every_epoch(self):
        fs, _, paths = make_fs_with_bundles()
        reader = NaiveReader(fs, paths, 20, np.arange(200), np.random.default_rng(1))
        for _ in reader.epoch(25):
            pass
        opens_first = fs.stats.opens
        assert opens_first > len(paths)  # many re-opens within the epoch
        for _ in reader.epoch(25):
            pass
        assert fs.stats.opens > opens_first  # and again next epoch

    def test_store_reader_preload_serves_from_memory(self):
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(4, 10**7)
        reader = StoreReader(
            fs, paths, 20, np.arange(200), np.random.default_rng(2), store, "preload"
        )
        baseline_opens = fs.stats.opens
        for mb in reader.epoch(25):
            assert mb.feeds["x"].shape == (25, 3)
        assert fs.stats.opens == baseline_opens  # THE invariant

    def test_store_reader_dynamic_stops_reading_after_epoch0(self):
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(4, 10**7)
        reader = StoreReader(
            fs, paths, 20, np.arange(200), np.random.default_rng(3), store, "dynamic"
        )
        for _ in reader.epoch(25):
            pass
        opens_epoch0 = fs.stats.opens
        assert opens_epoch0 > 0
        assert store.num_cached == 200
        for _ in reader.epoch(25):
            pass
        assert fs.stats.opens == opens_epoch0  # nothing read after epoch 0

    def test_store_reader_partial_population_subset(self):
        """A reader over a subset only preloads the bundles it needs."""
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(2, 10**7)
        StoreReader(
            fs, paths, 20, np.arange(40), np.random.default_rng(4), store, "preload"
        )
        assert fs.stats.opens == 2  # samples 0..39 live in bundles 0 and 1

    def test_store_reader_bad_mode(self):
        fs, _, paths = make_fs_with_bundles()
        store = DistributedDataStore(2, 10**7)
        with pytest.raises(ValueError):
            StoreReader(
                fs, paths, 20, np.arange(10), np.random.default_rng(0), store, "weird"
            )

    def test_readers_reproducible_given_seed(self):
        fields = make_fields(n=64)
        r1 = ArrayReader(fields, np.arange(64), np.random.default_rng(9))
        r2 = ArrayReader(fields, np.arange(64), np.random.default_rng(9))
        ids1 = [mb.sample_ids.tolist() for mb in r1.epoch(16)]
        ids2 = [mb.sample_ids.tolist() for mb in r2.epoch(16)]
        assert ids1 == ids2


class TestSpmdExchange:
    def test_batch_reassembled_in_order(self):
        n_ranks, n_samples = 4, 32
        shards = [dict() for _ in range(n_ranks)]
        owner = {}
        for sid in range(n_samples):
            owner[sid] = sid % n_ranks
            shards[owner[sid]][sid] = {"v": np.full(2, sid, dtype=np.float32)}
        batch = [5, 17, 2, 30, 11, 8, 23, 0]

        def prog(comm):
            return spmd_exchange_minibatch(comm, shards[comm.rank], owner, batch)

        per_rank = run_spmd(n_ranks, prog, timeout=15)
        flat = [s["v"][0] for chunk in per_rank for s in chunk]
        assert flat == [float(b) for b in batch]

    def test_each_rank_gets_its_share(self):
        shards = [dict() for _ in range(2)]
        owner = {}
        for sid in range(8):
            owner[sid] = 0  # rank 0 owns everything
            shards[0][sid] = {"v": np.array([sid], dtype=np.float32)}
        batch = list(range(8))

        def prog(comm):
            return spmd_exchange_minibatch(comm, shards[comm.rank], owner, batch)

        out = run_spmd(2, prog, timeout=15)
        assert len(out[0]) == 4 and len(out[1]) == 4
