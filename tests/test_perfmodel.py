"""Tests for the paper-scale performance models (Figs. 9-11 machinery).

These encode the paper's qualitative claims as assertions, independent of
exact calibration values: strong-scaling shape, data-store benefits and
OOM boundaries, super-linear LTFB efficiency, preload contention.
"""

from __future__ import annotations

import pytest

from repro.cluster.machine import lassen
from repro.core.perfmodel import (
    IngestionMode,
    LtfbPerfModel,
    PerfDataset,
    TrainerPerfModel,
    TrainerResources,
)
from repro.datastore.store import InsufficientMemoryError
from repro.jag.dataset import paper_schema
from repro.models.cyclegan import paper_architecture

MACHINE = lassen()
ARCH = paper_architecture()
SAMPLE = paper_schema().sample_nbytes
DS_1M = PerfDataset(1_000_000, SAMPLE)
DS_10M = PerfDataset(10_000_000, SAMPLE)
VAL_100K = PerfDataset(100_000, SAMPLE)
VAL_1M = PerfDataset(1_000_000, SAMPLE)


def trainer_model(gpus, mode, train=DS_1M, val=VAL_100K, **kw):
    res = TrainerResources(gpus, min(gpus, 4))
    return TrainerPerfModel(MACHINE, ARCH, res, train, mode, val=val, **kw)


class TestPerfDataset:
    def test_derived_quantities(self):
        ds = PerfDataset(10_000, 1000, samples_per_bundle=1000)
        assert ds.total_bytes == 10_000_000
        assert ds.n_bundles == 10

    def test_subset(self):
        assert DS_10M.subset(1_000_000).n_samples == 1_000_000
        with pytest.raises(ValueError):
            DS_10M.subset(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PerfDataset(0, 100)


class TestTrainerResources:
    def test_nodes(self):
        assert TrainerResources(16, 4).num_nodes == 4
        assert TrainerResources(16, 1).num_nodes == 16
        assert TrainerResources(1, 1).num_nodes == 1

    def test_preload_budget_default_quarter_node(self):
        res = TrainerResources(4, 4)
        node = MACHINE.node
        expected = node.memory_bytes * node.usable_memory_fraction / 4
        assert res.preload_bytes_per_rank(MACHINE) == pytest.approx(expected, rel=1e-6)

    def test_preload_budget_full_node_override(self):
        res = TrainerResources(16, 1, memory_share=1.0)
        node = MACHINE.node
        assert res.preload_bytes_per_rank(MACHINE) == pytest.approx(
            node.memory_bytes * node.usable_memory_fraction, rel=1e-6
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TrainerResources(0, 1)
        with pytest.raises(ValueError):
            TrainerResources(4, 4, memory_share=1.5)


class TestStrongScalingShape:
    """Fig. 9 qualitative structure."""

    def test_speedup_monotone_but_saturating(self):
        epochs = {}
        for p in (1, 2, 4, 8, 16):
            epochs[p] = trainer_model(p, IngestionMode.NAIVE).epoch_time()
        speedups = {p: epochs[1] / epochs[p] for p in epochs}
        assert speedups[2] > 1.5
        assert speedups[16] > speedups[8] > speedups[4]
        # Efficiency decays with scale.
        eff = {p: speedups[p] / p for p in speedups}
        assert eff[4] > eff[8] > eff[16]
        # Paper band: 9.36x @16, 58% efficiency.
        assert 8.0 < speedups[16] < 10.5
        assert 0.50 < eff[16] < 0.66

    def test_per_gpu_batch_and_steps(self):
        m = trainer_model(16, IngestionMode.NAIVE)
        assert m.per_gpu_batch == 8
        assert m.steps_per_epoch() == 1_000_000 // 128

    def test_batch_must_divide(self):
        res = TrainerResources(12, 4)
        with pytest.raises(ValueError):
            TrainerPerfModel(MACHINE, ARCH, res, DS_1M, IngestionMode.NAIVE)


class TestDataStoreBehaviour:
    """Fig. 10 qualitative structure."""

    def test_preload_oom_at_small_gpu_counts(self):
        for gpus in (1, 2):
            with pytest.raises(InsufficientMemoryError):
                trainer_model(gpus, IngestionMode.STORE_PRELOAD)
        trainer_model(4, IngestionMode.STORE_PRELOAD)  # fits

    def test_store_benefit_shrinks_with_gpus(self):
        def benefit(gpus):
            naive = trainer_model(gpus, IngestionMode.NAIVE).epoch_time()
            store = trainer_model(gpus, IngestionMode.STORE_DYNAMIC).epoch_time()
            return naive / store

        b1, b16 = benefit(1), benefit(16)
        assert b1 > 4.0  # massive at one GPU
        assert 1.05 < b16 < 1.6  # modest at four nodes
        assert b1 > 2 * b16

    def test_store_steady_state_beats_naive_everywhere(self):
        for gpus in (1, 2, 4, 8, 16):
            naive = trainer_model(gpus, IngestionMode.NAIVE).epoch_time()
            dyn = trainer_model(gpus, IngestionMode.STORE_DYNAMIC).epoch_time()
            assert dyn < naive

    def test_dynamic_initial_epoch_expensive_like_naive(self):
        m = trainer_model(16, IngestionMode.STORE_DYNAMIC)
        naive = trainer_model(16, IngestionMode.NAIVE).epoch_time()
        assert m.epoch_time(steady=False) >= 0.95 * naive
        assert m.epoch_time(steady=True) < 0.9 * m.epoch_time(steady=False)

    def test_preload_slightly_beats_dynamic_steady(self):
        dyn = trainer_model(16, IngestionMode.STORE_DYNAMIC).epoch_time()
        pre = trainer_model(16, IngestionMode.STORE_PRELOAD).epoch_time()
        assert 1.02 < dyn / pre < 1.25

    def test_naive_initial_equals_steady(self):
        m = trainer_model(8, IngestionMode.NAIVE)
        assert m.epoch_time(False) == pytest.approx(m.epoch_time(True))

    def test_preload_time_positive_and_counted_in_initial(self):
        m = trainer_model(16, IngestionMode.STORE_PRELOAD)
        assert m.preload_time() > 0
        assert m.epoch_time(False) == pytest.approx(
            m.epoch_time(True) + m.preload_time()
        )
        assert trainer_model(16, IngestionMode.NAIVE).preload_time() == 0.0

    def test_dynamic_partial_caching_when_over_capacity(self):
        # 10M samples cannot fit a 4-node pool: hit fraction < 1, so the
        # steady state keeps paying (partially overlapped) file I/O and is
        # slower than a fully cached configuration of the same geometry.
        m = TrainerPerfModel(
            MACHINE,
            ARCH,
            TrainerResources(16, 4),
            DS_10M,
            IngestionMode.STORE_DYNAMIC,
        )
        assert 0.0 < m.dynamic_hit_fraction() < 1.0
        full = TrainerPerfModel(
            MACHINE,
            ARCH,
            TrainerResources(16, 4),
            DS_1M,
            IngestionMode.STORE_DYNAMIC,
        )
        assert full.dynamic_hit_fraction() == 1.0
        assert (
            m.step_breakdown(steady=True).total
            >= full.step_breakdown(steady=True).total
        )

    def test_occupancy_zero_for_naive(self):
        assert trainer_model(4, IngestionMode.NAIVE).occupancy() == 0.0

    def test_step_breakdown_total_consistent(self):
        m = trainer_model(16, IngestionMode.STORE_PRELOAD)
        bd = m.step_breakdown(steady=True)
        assert m.epoch_time(True) == pytest.approx(bd.total * m.steps_per_epoch())


class TestLtfbScaling:
    """Fig. 11 qualitative structure."""

    @pytest.fixture(scope="class")
    def model(self):
        return LtfbPerfModel(MACHINE, ARCH, DS_10M, val=VAL_1M)

    def test_baseline_needs_full_node_memory(self):
        # A 4-node trainer cannot preload the 10M set: the paper's reason
        # for the 16-node x 1-GPU baseline.
        with pytest.raises(InsufficientMemoryError):
            TrainerPerfModel(
                MACHINE,
                ARCH,
                TrainerResources(16, 4),
                DS_10M,
                IngestionMode.STORE_PRELOAD,
                val=VAL_1M,
            )
        # The baseline allocation works.
        TrainerPerfModel(
            MACHINE,
            ARCH,
            TrainerResources(16, 1, memory_share=1.0),
            DS_10M,
            IngestionMode.STORE_PRELOAD,
            val=VAL_1M,
        )

    def test_superlinear_speedup(self, model):
        pts = {p.num_trainers: p for p in model.sweep([1, 8, 64])}
        assert pts[64].speedup > 64  # super-linear
        assert 1.0 < pts[64].parallel_efficiency < 1.2
        assert 60 < pts[64].speedup < 80  # paper: 70.2

    def test_epoch_time_decreases_with_trainers(self, model):
        pts = model.sweep([1, 8, 16, 32, 64])
        times = [p.epoch_time for p in pts]
        assert all(a > b for a, b in zip(times, times[1:]))

    def test_preload_degrades_at_64_trainers(self, model):
        pts = {p.num_trainers: p for p in model.sweep([8, 32, 64])}
        assert pts[64].preload_time > 1.3 * pts[32].preload_time

    def test_tournament_overhead_small(self, model):
        pt = model.scale_point(64)
        assert pt.tournament_time_per_epoch < 0.05 * pt.epoch_time

    def test_gpu_accounting(self, model):
        pt = model.scale_point(32)
        assert pt.total_gpus == 512

    def test_invalid_trainer_count(self, model):
        with pytest.raises(ValueError):
            model.scale_point(0)
