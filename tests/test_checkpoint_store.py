"""Tests for the public checkpoint API: CheckpointStore, snapshots,
and the typed error paths the serve registry depends on."""

from __future__ import annotations

import dataclasses
import io
import json

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointNotFoundError,
    CheckpointStore,
    CheckpointVersionError,
    generator_snapshot,
    trainer_checkpoint,
)
from repro.core.ensemble import build_population
from repro.utils.rng import RngFactory


@pytest.fixture(scope="module")
def population(tiny_dataset, tiny_spec, tiny_autoencoder):
    spec = dataclasses.replace(tiny_spec, k=2)
    train_ids = np.arange(tiny_dataset.n_samples - 64)
    trainers = build_population(
        tiny_dataset, train_ids, RngFactory(41), spec, tiny_autoencoder
    )
    for t in trainers:
        t.train_steps(2)
    return trainers


@pytest.fixture()
def store(tmp_path):
    return CheckpointStore(tmp_path / "ckpts")


def _tamper_header(payload: bytes, **overrides) -> bytes:
    """Rewrite header fields of an npz checkpoint payload."""
    with np.load(io.BytesIO(payload)) as data:
        arrays = {k: np.array(data[k]) for k in data.files}
    header = json.loads(bytes(arrays["__checkpoint_header__"]).decode())
    header.update(overrides)
    arrays["__checkpoint_header__"] = np.frombuffer(
        json.dumps(header).encode(), dtype=np.uint8
    )
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


class TestTagsAndRoundtrips:
    def test_save_load_trainer_roundtrip(self, store, population):
        t = population[0]
        tag = store.save(t)
        assert tag == f"{t.name}-s{t.steps_done:08d}"
        before = t.surrogate.get_full_state()
        t.train_steps(1)
        store.load_trainer(tag, t)
        after = t.surrogate.get_full_state()
        assert all(np.array_equal(before[k], after[k]) for k in before)

    def test_list_tags_and_latest(self, store, population):
        assert store.list_tags() == []
        assert store.latest() is None
        store.save(population[0], tag="alpha")
        store.save_population(population, "round/002", winner=None)
        assert store.list_tags() == ["alpha", "round/002"]
        assert store.latest() == "round/002"
        assert store.latest(exclude=("round/002",)) == "alpha"
        assert "alpha" in store and "round/002" in store
        assert "missing" not in store

    def test_invalid_tags_rejected(self, store, population):
        for bad in ("", "../escape", "/abs", "a//b", ".hidden", "a b"):
            with pytest.raises(ValueError):
                store.save(population[0], tag=bad)

    def test_population_roundtrip_with_winner(self, store, population):
        winner = population[1].name
        store.save_population(population, "pop", winner=winner)
        states = [t.surrogate.get_full_state() for t in population]
        for t in population:
            t.train_steps(1)
        store.load_population("pop", population)
        for t, s in zip(population, states):
            got = t.surrogate.get_full_state()
            assert all(np.array_equal(s[k], got[k]) for k in s)
        ensemble = store.load_ensemble("pop")
        assert ensemble.winner == winner
        assert ensemble.winner_member.trainer_name == winner
        assert [m.trainer_name for m in ensemble.members] == [
            t.name for t in population
        ]

    def test_single_trainer_tag_loads_as_one_member_ensemble(
        self, store, population
    ):
        store.save(population[0], tag="solo")
        ensemble = store.load_ensemble("solo")
        assert len(ensemble.members) == 1
        assert ensemble.winner == population[0].name

    def test_generator_snapshot_contents(self, store, population):
        t = population[0]
        store.save(t, tag="snap")
        snapshot = store.load_generator("snap")
        assert snapshot.trainer_name == t.name
        assert snapshot.steps_trained == t.steps_done
        assert all(
            k.startswith(("forward/", "inverse/")) for k in snapshot.weights
        )
        state = t.surrogate.get_generator_state()
        for k, v in snapshot.weights.items():
            np.testing.assert_array_equal(v, state[k])
        assert snapshot.nbytes == sum(v.nbytes for v in state.values())

    def test_autoencoder_roundtrip(self, store, tiny_autoencoder, tiny_dataset):
        store.save_autoencoder(tiny_autoencoder)
        loaded = store.load_autoencoder()
        n = 4
        scalars = tiny_dataset.fields["scalars"][:n]
        images = tiny_dataset.fields["images"][:n].reshape(n, -1)
        np.testing.assert_array_equal(
            tiny_autoencoder.encode(scalars, images),
            loaded.encode(scalars, images),
        )
        assert loaded.hidden == tiny_autoencoder.hidden
        assert loaded.schema == tiny_autoencoder.schema


class TestTypedErrors:
    def test_missing_tag(self, store):
        with pytest.raises(CheckpointNotFoundError):
            store.payload("nope")
        with pytest.raises(CheckpointNotFoundError):
            store.load_ensemble("nope")

    def test_truncated_payload(self, store, population):
        tag = store.save(population[0], tag="trunc")
        path = store.root / f"trunc{store.SUFFIX}"
        path.write_bytes(path.read_bytes()[:100])
        with pytest.raises(CheckpointCorruptError):
            store.load_generator(tag)

    def test_garbage_payload(self, population):
        with pytest.raises(CheckpointCorruptError):
            generator_snapshot(b"not an npz archive")

    def test_version_header_mismatch(self, population):
        payload = _tamper_header(trainer_checkpoint(population[0]), version=99)
        with pytest.raises(CheckpointVersionError):
            generator_snapshot(payload)

    def test_kind_mismatch(self, store, population, tiny_autoencoder):
        store.save_autoencoder(tiny_autoencoder, tag="ae")
        with pytest.raises(CheckpointMismatchError):
            store.load_generator("ae")
        store.save(population[0], tag="gen")
        with pytest.raises(CheckpointMismatchError):
            store.load_autoencoder("gen")

    def test_population_member_missing(self, store, population):
        store.save_population(population, "broken")
        (store.root / "broken" / f"{population[0].name}.ckpt").unlink()
        with pytest.raises(CheckpointCorruptError):
            store.load_ensemble("broken")
        with pytest.raises(CheckpointCorruptError):
            store.load_population("broken", population)

    def test_manifest_corrupt(self, store, population):
        store.save_population(population, "badjson")
        (store.root / "badjson" / store.MANIFEST).write_text("{nope")
        with pytest.raises(CheckpointCorruptError):
            store.load_ensemble("badjson")

    def test_typed_errors_are_value_errors(self):
        # Legacy except-sites catch ValueError; the typed hierarchy must
        # stay inside it.
        assert issubclass(CheckpointError, ValueError)
        for err in (
            CheckpointNotFoundError,
            CheckpointCorruptError,
            CheckpointVersionError,
            CheckpointMismatchError,
        ):
            assert issubclass(err, CheckpointError)

    def test_duplicate_population_names_rejected(self, store, population):
        clone = list(population)
        clone[1] = clone[0]
        with pytest.raises(ValueError):
            store.save_population(clone, "dupes")

    def test_unknown_winner_rejected(self, store, population):
        with pytest.raises(ValueError):
            store.save_population(population, "badwinner", winner="ghost")


class TestAtomicPublish:
    def test_population_without_manifest_is_invisible(self, store, population):
        # Simulate a crash between member writes and the manifest
        # publish: members exist but the manifest does not.  The
        # population tag itself must not exist; the members remain
        # addressable as plain nested file tags.
        directory = store.root / "partial"
        directory.mkdir(parents=True)
        (directory / f"{population[0].name}.ckpt").write_bytes(
            trainer_checkpoint(population[0])
        )
        assert "partial" not in store
        with pytest.raises(CheckpointNotFoundError):
            store.load_ensemble("partial")
        assert store.list_tags() == [f"partial/{population[0].name}"]

    def test_tmp_files_never_listed(self, store, population):
        store.save(population[0], tag="real")
        (store.root / ".real.ckpt.tmp-123").write_bytes(b"partial write")
        assert store.list_tags() == ["real"]
