"""Tests for layer classes: build protocol, forward math, gradient checks.

Every layer's backward pass is validated against central-difference
numerical gradients, for both weight gradients and input gradients.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensorlib.initializers import NormalInit
from repro.tensorlib.layers import (
    Activation,
    BatchNorm,
    Concatenation,
    Dropout,
    FullyConnected,
    Identity,
    Input,
    Layer,
    LayerBuildError,
    Slice,
    Sum,
)

RNG = lambda s=0: np.random.default_rng(s)  # noqa: E731


def build(layer: Layer, *shapes, seed=0):
    layer.build(list(shapes), RNG(seed))
    return layer


def numeric_input_grad(layer, inputs, grad_out, idx, training=False, eps=1e-3):
    """Central-difference d(sum(out * grad_out))/d(inputs[idx])."""

    def objective():
        return float(np.sum(layer.forward(inputs, training) * grad_out))

    x = inputs[idx]
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = float(x[i])
        x[i] = orig + eps
        plus = objective()
        x[i] = orig - eps
        minus = objective()
        x[i] = orig
        grad[i] = (plus - minus) / (2 * eps)
    return grad


class TestBuildProtocol:
    def test_forward_before_build_fails(self):
        with pytest.raises(LayerBuildError):
            FullyConnected("fc", 4).forward([np.zeros((2, 3))], False)

    def test_double_build_fails(self):
        fc = build(FullyConnected("fc", 4), (3,))
        with pytest.raises(LayerBuildError):
            fc.build([(3,)], RNG())

    def test_backward_without_forward_fails(self):
        fc = build(FullyConnected("fc", 4), (3,))
        with pytest.raises(RuntimeError):
            fc.backward(np.zeros((2, 4)))

    def test_wrong_input_count(self):
        fc = build(FullyConnected("fc", 4), (3,))
        with pytest.raises(ValueError):
            fc.forward([np.zeros((2, 3)), np.zeros((2, 3))], False)

    def test_wrong_sample_shape(self):
        fc = build(FullyConnected("fc", 4), (3,))
        with pytest.raises(ValueError):
            fc.forward([np.zeros((2, 5))], False)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Identity("")


class TestInput:
    def test_feed_validates_shape(self):
        inp = build(Input("x", shape=(5,)))
        assert inp.feed(np.zeros((3, 5))).shape == (3, 5)
        with pytest.raises(ValueError):
            inp.feed(np.zeros((3, 4)))
        with pytest.raises(ValueError):
            inp.feed(np.zeros(5))

    def test_feed_casts_to_float32(self):
        inp = build(Input("x", shape=(2,)))
        assert inp.feed(np.zeros((1, 2), dtype=np.float64)).dtype == np.float32

    def test_input_with_parents_rejected(self):
        inp = Input("x", shape=(2,))
        with pytest.raises(LayerBuildError):
            inp.build([(2,)], RNG())


class TestFullyConnected:
    def test_forward_math(self):
        fc = build(FullyConnected("fc", 2, kernel_init=NormalInit(0, 1)), (3,))
        x = RNG(1).normal(size=(4, 3)).astype(np.float32)
        expected = x @ fc.kernel.value + fc.bias.value
        np.testing.assert_allclose(fc.forward([x], False), expected, rtol=1e-6)

    def test_no_bias(self):
        fc = build(FullyConnected("fc", 2, use_bias=False), (3,))
        assert fc.bias is None
        assert fc.param_count() == 6

    def test_weight_gradients_numeric(self):
        fc = build(FullyConnected("fc", 3), (4,))
        x = RNG(2).normal(size=(5, 4)).astype(np.float64)
        g = RNG(3).normal(size=(5, 3)).astype(np.float64)
        fc.forward([x.astype(np.float32)], False)
        fc.backward(g.astype(np.float32))
        np.testing.assert_allclose(fc.kernel.grad, x.T @ g, rtol=1e-4, atol=1e-5)
        np.testing.assert_allclose(fc.bias.grad, g.sum(axis=0), rtol=1e-4, atol=1e-5)

    def test_input_gradient_numeric(self):
        fc = build(FullyConnected("fc", 3), (4,))
        x = RNG(2).normal(size=(5, 4)).astype(np.float32)
        g = RNG(3).normal(size=(5, 3)).astype(np.float32)
        fc.forward([x], False)
        analytic = fc.backward(g)[0]
        numeric = numeric_input_grad(fc, [x], g, 0)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-3)

    def test_flattens_high_rank_input(self):
        fc = build(FullyConnected("fc", 4), (2, 3))
        x = RNG(0).normal(size=(5, 2, 3)).astype(np.float32)
        out = fc.forward([x], False)
        assert out.shape == (5, 4)
        dx = fc.backward(np.ones((5, 4), dtype=np.float32))[0]
        assert dx.shape == (5, 2, 3)

    def test_flops(self):
        fc = build(FullyConnected("fc", 8), (16,))
        assert fc.flops_per_sample() == 2 * 16 * 8

    def test_grad_accumulates(self):
        fc = build(FullyConnected("fc", 2), (2,))
        x = np.ones((1, 2), dtype=np.float32)
        g = np.ones((1, 2), dtype=np.float32)
        fc.forward([x], False)
        fc.backward(g)
        first = fc.kernel.grad.copy()
        fc.forward([x], False)
        fc.backward(g)
        np.testing.assert_allclose(fc.kernel.grad, 2 * first)

    def test_invalid_units(self):
        with pytest.raises(ValueError):
            FullyConnected("fc", 0)


@pytest.mark.parametrize("kind", ["relu", "leaky_relu", "elu", "sigmoid", "tanh"])
class TestActivationLayer:
    def test_input_gradient_numeric(self, kind):
        act = build(Activation("a", kind), (6,))
        x = RNG(4).normal(size=(3, 6)).astype(np.float32)
        x = np.where(np.abs(x) < 1e-2, 0.5, x).astype(np.float32)
        g = RNG(5).normal(size=(3, 6)).astype(np.float32)
        act.forward([x], False)
        analytic = act.backward(g)[0]
        numeric = numeric_input_grad(act, [x], g, 0)
        np.testing.assert_allclose(analytic, numeric, rtol=1e-2, atol=1e-3)


class TestActivationErrors:
    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            Activation("a", "swishh")


class TestDropout:
    def test_eval_mode_is_identity(self):
        d = build(Dropout("d", 0.5), (10,))
        x = RNG(0).normal(size=(4, 10)).astype(np.float32)
        np.testing.assert_array_equal(d.forward([x], training=False), x)

    def test_training_mode_scales_kept_units(self):
        d = build(Dropout("d", 0.5), (1000,))
        x = np.ones((2, 1000), dtype=np.float32)
        y = d.forward([x], training=True)
        kept = y != 0
        assert 0.3 < kept.mean() < 0.7
        np.testing.assert_allclose(y[kept], 2.0)

    def test_backward_uses_same_mask(self):
        d = build(Dropout("d", 0.5), (50,))
        x = np.ones((3, 50), dtype=np.float32)
        y = d.forward([x], training=True)
        dx = d.backward(np.ones_like(y))[0]
        np.testing.assert_array_equal((dx != 0), (y != 0))

    def test_rate_zero_passthrough_in_training(self):
        d = build(Dropout("d", 0.0), (5,))
        x = RNG(0).normal(size=(2, 5)).astype(np.float32)
        np.testing.assert_array_equal(d.forward([x], training=True), x)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            Dropout("d", 1.0)


class TestBatchNorm:
    def test_training_normalizes_batch(self):
        bn = build(BatchNorm("bn"), (8,))
        x = (RNG(1).normal(size=(256, 8)) * 3 + 5).astype(np.float32)
        y = bn.forward([x], training=True)
        np.testing.assert_allclose(y.mean(axis=0), 0.0, atol=1e-4)
        np.testing.assert_allclose(y.std(axis=0), 1.0, atol=1e-2)

    def test_running_stats_update_and_eval_use(self):
        bn = build(BatchNorm("bn", momentum=0.5), (4,))
        x = (RNG(2).normal(size=(64, 4)) + 10).astype(np.float32)
        for _ in range(20):
            bn.forward([x], training=True)
            bn.backward(np.zeros((64, 4), dtype=np.float32))
        assert bn.running_mean.value.mean() == pytest.approx(10.0, abs=0.5)
        y_eval = bn.forward([x], training=False)
        bn.backward(np.zeros_like(y_eval))
        np.testing.assert_allclose(y_eval.mean(axis=0), 0.0, atol=0.2)

    def test_input_gradient_numeric_training(self):
        bn = build(BatchNorm("bn"), (3,))
        x = RNG(3).normal(size=(6, 3)).astype(np.float32)
        g = RNG(4).normal(size=(6, 3)).astype(np.float32)
        bn.forward([x], training=True)
        analytic = bn.backward(g)[0]

        def objective(xp):
            out = bn.forward([xp], training=True)
            val = float(np.sum(out * g))
            bn.backward(np.zeros_like(g))
            return val

        eps = 1e-3
        numeric = np.zeros_like(x, dtype=np.float64)
        it = np.nditer(x, flags=["multi_index"])
        for _ in it:
            i = it.multi_index
            orig = float(x[i])
            x[i] = orig + eps
            plus = objective(x)
            x[i] = orig - eps
            minus = objective(x)
            x[i] = orig
            numeric[i] = (plus - minus) / (2 * eps)
        # Re-run forward so the batch statistics match the analytic pass.
        np.testing.assert_allclose(analytic, numeric, rtol=5e-2, atol=5e-3)

    def test_gamma_beta_grads(self):
        bn = build(BatchNorm("bn"), (2,))
        x = RNG(5).normal(size=(16, 2)).astype(np.float32)
        g = np.ones((16, 2), dtype=np.float32)
        bn.forward([x], training=True)
        bn.backward(g)
        np.testing.assert_allclose(bn.beta.grad, g.sum(axis=0))

    def test_nontrainable_running_stats(self):
        bn = build(BatchNorm("bn"), (2,))
        trainable = {w.name for w in bn.weights if w.trainable}
        assert trainable == {"bn/gamma", "bn/beta"}

    def test_rejects_rank2_features(self):
        with pytest.raises(LayerBuildError):
            build(BatchNorm("bn"), (2, 3))


class TestPlumbingLayers:
    def test_concat_forward_backward(self):
        c = build(Concatenation("c"), (2,), (3,))
        a = np.ones((4, 2), dtype=np.float32)
        b = 2 * np.ones((4, 3), dtype=np.float32)
        out = c.forward([a, b], False)
        assert out.shape == (4, 5)
        ga, gb = c.backward(np.arange(20, dtype=np.float32).reshape(4, 5))
        assert ga.shape == (4, 2) and gb.shape == (4, 3)
        np.testing.assert_array_equal(ga[0], [0, 1])
        np.testing.assert_array_equal(gb[0], [2, 3, 4])

    def test_slice_forward_backward(self):
        s = build(Slice("s", 1, 3), (5,))
        x = np.arange(10, dtype=np.float32).reshape(2, 5)
        out = s.forward([x], False)
        np.testing.assert_array_equal(out, [[1, 2], [6, 7]])
        dx = s.backward(np.ones((2, 2), dtype=np.float32))[0]
        np.testing.assert_array_equal(dx, [[0, 1, 1, 0, 0]] * 2)

    def test_slice_out_of_bounds(self):
        with pytest.raises(LayerBuildError):
            build(Slice("s", 0, 10), (5,))

    def test_slice_invalid_range(self):
        with pytest.raises(ValueError):
            Slice("s", 3, 3)

    def test_sum_forward_backward(self):
        s = build(Sum("s"), (3,), (3,), (3,))
        xs = [np.full((2, 3), i, dtype=np.float32) for i in range(3)]
        np.testing.assert_array_equal(s.forward(xs, False), np.full((2, 3), 3.0))
        grads = s.backward(np.ones((2, 3), dtype=np.float32))
        assert len(grads) == 3

    def test_sum_shape_mismatch(self):
        with pytest.raises(LayerBuildError):
            build(Sum("s"), (3,), (4,))

    def test_identity_passthrough(self):
        ident = build(Identity("i"), (7,))
        x = RNG(0).normal(size=(2, 7)).astype(np.float32)
        np.testing.assert_array_equal(ident.forward([x], False), x)
        np.testing.assert_array_equal(ident.backward(x)[0], x)
