"""Tests for repro.bench: stats, schema, harness, regression gate, CLI."""

from __future__ import annotations

import copy
import json

import numpy as np
import pytest

from repro.bench import (
    SCENARIOS,
    SCHEMA_NAME,
    SCHEMA_VERSION,
    BenchConfig,
    compare_docs,
    find_bench_files,
    fingerprints_differ,
    load_bench_doc,
    machine_fingerprint,
    metric,
    next_bench_path,
    render_comparison,
    render_trajectory,
    run_bench,
    summarize_samples,
    validate_bench_doc,
    write_bench_doc,
)
from repro.bench.harness import _selected


def _row(scenario, name, samples, unit="s", direction="lower"):
    return {
        "scenario": scenario,
        "metric": name,
        "unit": unit,
        "direction": direction,
        "samples": [float(s) for s in samples],
        **summarize_samples(samples),
    }


def _doc(results, mode="quick"):
    return {
        "schema": SCHEMA_NAME,
        "version": SCHEMA_VERSION,
        "mode": mode,
        "created_unix": 1.0,
        "machine": machine_fingerprint(),
        "config": {"warmup": 0, "repeats": 3, "seed": 2024},
        "results": results,
    }


@pytest.fixture(scope="module")
def quick_doc():
    """One real (but minimal) harness run: cheapest scenario, 2 trials."""
    config = BenchConfig(mode="quick", warmup=0, repeats=2)
    return run_bench(config, only=["reader_materialize"])


class TestStats:
    def test_summary_values(self):
        s = summarize_samples([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s["n"] == 5
        assert s["median"] == 3.0
        assert s["min"] == 1.0 and s["max"] == 5.0
        assert s["mean"] == 3.0
        assert s["iqr"] == pytest.approx(s["q75"] - s["q25"])
        assert s["cv"] > 0

    def test_constant_samples_have_zero_spread(self):
        s = summarize_samples([2.5, 2.5, 2.5])
        assert s["iqr"] == 0.0
        assert s["cv"] == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError):
            summarize_samples([1.0, float("nan")])
        with pytest.raises(ValueError):
            summarize_samples([np.inf])


class TestFingerprint:
    def test_shape(self):
        fp = machine_fingerprint()
        assert {"platform", "python", "numpy", "cpu_count"} <= set(fp["host"])
        assert fp["simulated_machine"]["name"]

    def test_differ(self):
        a = machine_fingerprint()
        assert fingerprints_differ(a, copy.deepcopy(a)) == []
        b = copy.deepcopy(a)
        b["host"]["python"] = "0.0.0"
        diffs = fingerprints_differ(a, b)
        assert diffs and any("python" in d for d in diffs)


class TestSchema:
    def test_valid_doc_passes_and_chains(self):
        doc = _doc([_row("sc", "m", [1.0, 2.0, 3.0])])
        assert validate_bench_doc(doc) is doc

    @pytest.mark.parametrize(
        "mutate,where",
        [
            (lambda d: d.update(schema="other/v1"), "schema"),
            (lambda d: d.update(version=99), "version"),
            (lambda d: d.update(mode="turbo"), "mode"),
            (lambda d: d.update(created_unix="yesterday"), "created_unix"),
            (lambda d: d.update(machine={"no_host": {}}), "machine"),
            (lambda d: d["config"].update(warmup=-1), "config.warmup"),
            (lambda d: d.update(results=[]), "results"),
            (lambda d: d["results"][0].update(direction="sideways"), "direction"),
            (lambda d: d["results"][0].update(samples=[]), "samples"),
            (lambda d: d["results"][0].update(n=99), ".n"),
            (lambda d: d["results"][0].pop("median"), "median"),
            (
                lambda d: d["results"].append(dict(d["results"][0])),
                "duplicate",
            ),
        ],
    )
    def test_violations_rejected_with_location(self, mutate, where):
        doc = _doc([_row("sc", "m", [1.0, 2.0, 3.0])])
        mutate(doc)
        with pytest.raises(ValueError, match=where):
            validate_bench_doc(doc)

    def test_write_load_round_trip(self, tmp_path):
        doc = _doc([_row("sc", "m", [1.0, 2.0, 3.0])])
        path = tmp_path / "BENCH_0.json"
        write_bench_doc(doc, path)
        assert path.read_text().endswith("\n")
        assert load_bench_doc(path)["results"][0]["median"] == 2.0

    def test_load_rejects_bad_json_and_bad_doc(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_bench_doc(bad)
        bad.write_text('{"schema": "wrong"}')
        with pytest.raises(ValueError, match="schema"):
            load_bench_doc(bad)


class TestHarness:
    def test_mode_defaults_and_overrides(self):
        assert (BenchConfig().resolved_warmup, BenchConfig().resolved_repeats) == (1, 3)
        full = BenchConfig(mode="full")
        assert (full.resolved_warmup, full.resolved_repeats) == (2, 7)
        custom = BenchConfig(warmup=0, repeats=9)
        assert (custom.resolved_warmup, custom.resolved_repeats) == (0, 9)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            BenchConfig(mode="turbo")
        with pytest.raises(ValueError):
            BenchConfig(warmup=-1)
        with pytest.raises(ValueError):
            BenchConfig(repeats=0)

    def test_metric_validates_direction(self):
        m = metric([1.0, 2.0], "s")
        assert m["direction"] == "lower" and m["samples"] == [1.0, 2.0]
        with pytest.raises(ValueError):
            metric([1.0], "s", direction="sideways")

    def test_registry_contents(self):
        _selected(BenchConfig(), None)  # imports the scenario module
        assert {
            "reader_materialize",
            "store_fetch",
            "prefetch_pipeline",
            "train_step_serial",
            "train_step_thread",
            "train_step_process",
            "ltfb_round",
            "checkpoint",
        } <= set(SCENARIOS)

    def test_selection_honours_mode_and_only(self):
        quick = {s.name for s in _selected(BenchConfig(mode="quick"), None)}
        full = {s.name for s in _selected(BenchConfig(mode="full"), None)}
        assert "train_step_process" not in quick
        assert "train_step_process" in full
        # Naming a full-only scenario overrides the quick gating.
        named = _selected(BenchConfig(mode="quick"), ["train_step_process"])
        assert [s.name for s in named] == ["train_step_process"]
        with pytest.raises(ValueError, match="unknown scenario"):
            _selected(BenchConfig(), ["nope"])

    def test_quick_run_emits_schema_valid_doc(self, quick_doc):
        validate_bench_doc(quick_doc)
        assert quick_doc["machine"]["host"]["python"]
        assert quick_doc["config"] == {
            "warmup": 0,
            "repeats": 2,
            "seed": 2024,
            "topology": "random_pairwise",
        }
        by_metric = {r["metric"]: r for r in quick_doc["results"]}
        assert "epoch_s" in by_metric and "samples_per_s" in by_metric
        assert by_metric["samples_per_s"]["direction"] == "higher"
        for r in quick_doc["results"]:
            assert r["n"] == 2 == len(r["samples"])
            assert r["min"] <= r["median"] <= r["max"]


class TestCompare:
    def test_self_compare_is_clean(self, quick_doc):
        comparison = compare_docs(quick_doc, quick_doc)
        assert comparison["regressions"] == 0
        assert all(v["status"] == "ok" for v in comparison["verdicts"])

    def test_injected_regression_detected(self, quick_doc):
        worse = copy.deepcopy(quick_doc)
        for r in worse["results"]:
            if r["metric"] == "epoch_s":
                r["median"] *= 10.0
        comparison = compare_docs(quick_doc, worse)
        assert comparison["regressions"] == 1
        (bad,) = [v for v in comparison["verdicts"] if v["status"] == "regression"]
        assert bad["metric"] == "epoch_s"

    def test_direction_aware_higher_is_better(self):
        base = _doc([_row("sc", "rate", [100.0, 100.0, 100.0], "x/s", "higher")])
        slower = _doc([_row("sc", "rate", [50.0, 50.0, 50.0], "x/s", "higher")])
        faster = _doc([_row("sc", "rate", [200.0, 200.0, 200.0], "x/s", "higher")])
        assert compare_docs(base, slower)["regressions"] == 1
        up = compare_docs(base, faster)
        assert up["regressions"] == 0
        assert up["verdicts"][0]["status"] == "improved"

    def test_noise_band_tolerates_small_shifts(self):
        # 5% worse on a zero-IQR baseline: inside the 10% threshold.
        base = _doc([_row("sc", "t", [1.0, 1.0, 1.0])])
        near = _doc([_row("sc", "t", [1.05, 1.05, 1.05])])
        assert compare_docs(base, near)["verdicts"][0]["status"] == "ok"
        # 20% worse but the baseline itself is that noisy: IQR term wins.
        noisy = _doc([_row("sc", "t", [0.8, 1.0, 1.2])])
        drift = _doc([_row("sc", "t", [1.2, 1.2, 1.2])])
        assert compare_docs(noisy, drift)["verdicts"][0]["status"] == "ok"

    def test_one_sided_metrics_become_notes(self):
        base = _doc([_row("a", "m", [1.0]), _row("b", "m", [1.0])])
        cand = _doc([_row("a", "m", [1.0]), _row("c", "m", [1.0])])
        comparison = compare_docs(base, cand)
        assert len(comparison["verdicts"]) == 1
        assert any("baseline only" in n for n in comparison["notes"])
        assert any("new metric" in n for n in comparison["notes"])

    def test_direction_change_refuses_to_gate(self):
        base = _doc([_row("sc", "m", [1.0], direction="lower")])
        cand = _doc([_row("sc", "m", [1.0], direction="higher")])
        with pytest.raises(ValueError, match="re-baseline"):
            compare_docs(base, cand)

    def test_negative_knobs_rejected(self):
        doc = _doc([_row("sc", "m", [1.0])])
        with pytest.raises(ValueError):
            compare_docs(doc, doc, threshold=-0.1)

    def test_render_flags_regressions(self):
        base = _doc([_row("sc", "m", [1.0, 1.0, 1.0])])
        worse = _doc([_row("sc", "m", [5.0, 5.0, 5.0])])
        text = render_comparison(compare_docs(base, worse))
        assert "REGRESSION" in text
        assert "verdict: 1 regression(s)" in text


class TestTrajectory:
    def test_bench_file_numbering(self, tmp_path):
        assert find_bench_files(tmp_path) == []
        assert next_bench_path(tmp_path).name == "BENCH_0.json"
        doc = _doc([_row("sc", "m", [1.0])])
        write_bench_doc(doc, tmp_path / "BENCH_0.json")
        write_bench_doc(doc, tmp_path / "BENCH_2.json")
        (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not numbered
        assert [i for i, _ in find_bench_files(tmp_path)] == [0, 2]
        assert next_bench_path(tmp_path).name == "BENCH_1.json"

    def test_render_trajectory_table(self, tmp_path):
        assert "no BENCH_" in render_trajectory(tmp_path)
        write_bench_doc(
            _doc([_row("sc", "t", [2.0]), _row("sc", "rate", [9.0], "x/s", "higher")]),
            tmp_path / "BENCH_0.json",
        )
        write_bench_doc(
            _doc([_row("sc", "t", [3.0])]), tmp_path / "BENCH_1.json"
        )
        text = render_trajectory(tmp_path)
        assert "BENCH_0" in text and "BENCH_1" in text
        assert "sc/t" in text and "sc/rate" in text
        assert "2.00 s" in text and "3.00 s" in text
        assert "-" in text  # missing metric in BENCH_1 renders as a dash


class TestCli:
    def test_run_writes_valid_doc(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        out = tmp_path / "BENCH_0.json"
        rc = main(
            [
                "run",
                "--quick",
                "--scenario",
                "reader_materialize",
                "--warmup",
                "0",
                "--repeats",
                "2",
                "--out",
                str(out),
            ]
        )
        assert rc == 0
        assert "wrote" in capsys.readouterr().out
        doc = load_bench_doc(out)
        assert doc["mode"] == "quick"

    def test_run_list(self, capsys):
        from repro.bench.__main__ import main

        assert main(["run", "--list"]) == 0
        out = capsys.readouterr().out
        assert "reader_materialize" in out and "checkpoint" in out

    def test_compare_exit_codes(self, tmp_path, quick_doc, capsys):
        from repro.bench.__main__ import main

        base = tmp_path / "BENCH_0.json"
        write_bench_doc(quick_doc, base)
        # Self-compare: clean exit.
        assert main(["compare", str(base), str(base)]) == 0
        assert "0 regression(s)" in capsys.readouterr().out
        # Injected regression: nonzero exit, the CI gate condition.
        worse = copy.deepcopy(quick_doc)
        for r in worse["results"]:
            r["median"] *= 10.0 if r["direction"] == "lower" else 0.1
        cand = tmp_path / "cand.json"
        write_bench_doc(worse, cand)
        assert main(["compare", str(base), str(cand)]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_errors_exit_2(self, tmp_path, capsys):
        from repro.bench.__main__ import main

        missing = str(tmp_path / "nope.json")
        assert main(["compare", missing, missing]) == 2
        assert "error:" in capsys.readouterr().err
        assert main(["run", "--scenario", "nope", "--list"]) == 2

    def test_report(self, tmp_path, quick_doc, capsys):
        from repro.bench.__main__ import main

        write_bench_doc(quick_doc, tmp_path / "BENCH_0.json")
        assert main(["report", "--dir", str(tmp_path)]) == 0
        assert "benchmark trajectory" in capsys.readouterr().out
