"""Tests for loss functions (values + gradients) and streaming metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensorlib import losses
from repro.tensorlib.metrics import (
    PSNR,
    Mean,
    MeanAbsoluteError,
    MeanSquaredError,
    R2Score,
)

RNG = lambda s=0: np.random.default_rng(s)  # noqa: E731


def numeric_grad(fn, pred, eps=1e-4):
    grad = np.zeros_like(pred, dtype=np.float64)
    it = np.nditer(pred, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        orig = float(pred[i])
        pred[i] = orig + eps
        plus = fn(pred)[0]
        pred[i] = orig - eps
        minus = fn(pred)[0]
        pred[i] = orig
        grad[i] = (plus - minus) / (2 * eps)
    return grad


class TestMSE:
    def test_value(self):
        v, _ = losses.mean_squared_error(
            np.array([[1.0, 2.0]], dtype=np.float32),
            np.array([[0.0, 0.0]], dtype=np.float32),
        )
        assert v == pytest.approx(2.5)

    def test_gradient_numeric(self):
        pred = RNG(0).normal(size=(3, 4)).astype(np.float64)
        target = RNG(1).normal(size=(3, 4)).astype(np.float32)
        _, g = losses.mean_squared_error(pred.astype(np.float32), target)
        num = numeric_grad(
            lambda p: losses.mean_squared_error(p.astype(np.float32), target), pred
        )
        np.testing.assert_allclose(g, num, rtol=1e-2, atol=1e-4)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            losses.mean_squared_error(np.zeros((2, 2)), np.zeros((2, 3)))


class TestMAE:
    def test_value_and_grad_signs(self):
        pred = np.array([[2.0, -1.0]], dtype=np.float32)
        target = np.array([[0.0, 0.0]], dtype=np.float32)
        v, g = losses.mean_absolute_error(pred, target)
        assert v == pytest.approx(1.5)
        np.testing.assert_array_equal(np.sign(g), [[1.0, -1.0]])

    def test_gradient_magnitude(self):
        pred = RNG(2).normal(size=(4, 5)).astype(np.float32)
        target = np.zeros_like(pred)
        _, g = losses.mean_absolute_error(pred, target)
        np.testing.assert_allclose(np.abs(g[pred != 0]), 1.0 / pred.size)

    def test_zero_at_target(self):
        x = RNG(0).normal(size=(3, 3)).astype(np.float32)
        v, _ = losses.mean_absolute_error(x, x)
        assert v == 0.0


class TestBCEWithLogits:
    def test_matches_reference(self):
        z = np.array([[0.0], [2.0], [-2.0]], dtype=np.float32)
        t = np.array([[1.0], [1.0], [0.0]], dtype=np.float32)
        v, _ = losses.bce_with_logits(z, t)
        p = 1 / (1 + np.exp(-z))
        ref = -(t * np.log(p) + (1 - t) * np.log(1 - p)).mean()
        assert v == pytest.approx(float(ref), rel=1e-5)

    def test_gradient_numeric(self):
        z = RNG(3).normal(size=(6, 1)).astype(np.float64)
        t = (RNG(4).random((6, 1)) > 0.5).astype(np.float32)
        _, g = losses.bce_with_logits(z.astype(np.float32), t)
        num = numeric_grad(
            lambda p: losses.bce_with_logits(p.astype(np.float32), t), z
        )
        np.testing.assert_allclose(g, num, rtol=1e-2, atol=1e-4)

    def test_stable_at_extreme_logits(self):
        z = np.array([[1e4], [-1e4]], dtype=np.float32)
        t = np.array([[1.0], [0.0]], dtype=np.float32)
        v, g = losses.bce_with_logits(z, t)
        assert math.isfinite(v) and v == pytest.approx(0.0, abs=1e-6)
        assert np.all(np.isfinite(g))

    def test_soft_labels_allowed_hard_bounds_enforced(self):
        z = np.zeros((2, 1), dtype=np.float32)
        losses.bce_with_logits(z, np.full((2, 1), 0.9, dtype=np.float32))
        with pytest.raises(ValueError):
            losses.bce_with_logits(z, np.full((2, 1), 1.5, dtype=np.float32))


class TestWeightedSum:
    def test_combination(self):
        l1 = (2.0, np.ones((2, 2), dtype=np.float32))
        l2 = (3.0, 2 * np.ones((2, 2), dtype=np.float32))
        total, grads = losses.weighted_sum((0.5, l1), (2.0, l2))
        assert total == pytest.approx(0.5 * 2 + 2.0 * 3)
        np.testing.assert_allclose(grads[0], 0.5)
        np.testing.assert_allclose(grads[1], 4.0)


class TestMetrics:
    def test_mean_weighted(self):
        m = Mean()
        m.update(1.0, 1.0)
        m.update(3.0, 3.0)
        assert m.result() == pytest.approx(2.5)
        m.reset()
        assert math.isnan(m.result())

    def test_mae_streaming_equals_batch(self):
        pred = RNG(0).normal(size=(10, 3))
        target = RNG(1).normal(size=(10, 3))
        m = MeanAbsoluteError()
        for i in range(10):
            m.update(pred[i], target[i])
        assert m.result() == pytest.approx(float(np.abs(pred - target).mean()))

    def test_mse_streaming_equals_batch(self):
        pred = RNG(2).normal(size=(8, 4))
        target = RNG(3).normal(size=(8, 4))
        m = MeanSquaredError()
        m.update(pred[:5], target[:5])
        m.update(pred[5:], target[5:])
        assert m.result() == pytest.approx(float(((pred - target) ** 2).mean()))

    def test_r2_perfect_and_mean_predictor(self):
        t = RNG(4).normal(size=200)
        perfect = R2Score()
        perfect.update(t, t)
        assert perfect.result() == pytest.approx(1.0)
        mean_pred = R2Score()
        mean_pred.update(np.full_like(t, t.mean()), t)
        assert mean_pred.result() == pytest.approx(0.0, abs=1e-6)

    def test_r2_streaming_equals_batch(self):
        pred = RNG(5).normal(size=300)
        target = pred + 0.3 * RNG(6).normal(size=300)
        whole = R2Score()
        whole.update(pred, target)
        stream = R2Score()
        for chunk in np.split(np.arange(300), 3):
            stream.update(pred[chunk], target[chunk])
        assert stream.result() == pytest.approx(whole.result(), rel=1e-9)

    def test_r2_constant_target_nan(self):
        m = R2Score()
        m.update(np.zeros(5), np.ones(5))
        assert math.isnan(m.result())

    def test_psnr_known_value(self):
        m = PSNR(data_range=1.0)
        pred = np.zeros((4, 4))
        target = np.full((4, 4), 0.1)
        m.update(pred, target)
        assert m.result() == pytest.approx(20.0, rel=1e-6)  # -10 log10(0.01)

    def test_psnr_identical_is_inf(self):
        m = PSNR()
        x = RNG(7).random((3, 3))
        m.update(x, x)
        assert m.result() == math.inf

    def test_metric_shape_mismatch(self):
        with pytest.raises(ValueError):
            MeanAbsoluteError().update(np.zeros(3), np.zeros(4))


@given(st.integers(1, 40), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_mae_grad_descends(n, d):
    """Property: stepping predictions along -grad reduces the MAE."""
    rng = np.random.default_rng(n * 7 + d)
    pred = rng.normal(size=(n, d)).astype(np.float32)
    target = rng.normal(size=(n, d)).astype(np.float32)
    v0, g = losses.mean_absolute_error(pred, target)
    if v0 == 0:
        return
    v1, _ = losses.mean_absolute_error(pred - 1e-3 * np.sign(g), target)
    assert v1 <= v0 + 1e-7


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_classes(self):
        z = np.zeros((4, 5), dtype=np.float32)
        y = np.array([0, 1, 2, 3])
        v, _ = losses.softmax_cross_entropy(z, y)
        assert v == pytest.approx(math.log(5.0), rel=1e-5)

    def test_gradient_numeric(self):
        z = RNG(8).normal(size=(6, 4)).astype(np.float64)
        y = RNG(9).integers(0, 4, size=6)
        _, g = losses.softmax_cross_entropy(z.astype(np.float32), y)
        num = numeric_grad(
            lambda p: losses.softmax_cross_entropy(p.astype(np.float32), y), z
        )
        np.testing.assert_allclose(g, num, rtol=1e-2, atol=1e-4)

    def test_stable_at_extreme_logits(self):
        z = np.array([[1e4, -1e4, 0.0]], dtype=np.float32)
        v, g = losses.softmax_cross_entropy(z, np.array([0]))
        assert math.isfinite(v) and v == pytest.approx(0.0, abs=1e-6)
        assert np.all(np.isfinite(g))

    def test_gradient_rows_sum_to_zero(self):
        z = RNG(10).normal(size=(8, 3)).astype(np.float32)
        y = RNG(11).integers(0, 3, size=8)
        _, g = losses.softmax_cross_entropy(z, y)
        np.testing.assert_allclose(g.sum(axis=1), 0.0, atol=1e-7)

    def test_validation(self):
        with pytest.raises(ValueError):
            losses.softmax_cross_entropy(np.zeros((2, 3)), np.array([0, 5]))
        with pytest.raises(ValueError):
            losses.softmax_cross_entropy(np.zeros(3), np.array([0]))
        with pytest.raises(ValueError):
            losses.softmax_cross_entropy(np.zeros((2, 3)), np.array([0]))


class TestAccuracy:
    def test_basic(self):
        from repro.tensorlib.metrics import Accuracy

        m = Accuracy()
        logits = np.array([[2.0, 1.0], [0.0, 3.0], [1.0, 0.0]])
        m.update(logits, np.array([0, 1, 1]))
        assert m.result() == pytest.approx(2 / 3)
        m.reset()
        assert math.isnan(m.result())

    def test_streaming(self):
        from repro.tensorlib.metrics import Accuracy

        m = Accuracy()
        m.update(np.array([[1.0, 0.0]]), np.array([0]))
        m.update(np.array([[1.0, 0.0]]), np.array([1]))
        assert m.result() == pytest.approx(0.5)

    def test_shape_validation(self):
        from repro.tensorlib.metrics import Accuracy

        with pytest.raises(ValueError):
            Accuracy().update(np.zeros(3), np.zeros(3, dtype=int))
