"""Benchmark harness for Figure 8: predicted vs ground-truth capsule images.

Reuses the Figure-7 trained surrogate (same workbench training cache) and
scores per-(view, channel) image quality.
"""

from __future__ import annotations

from repro.experiments import fig08_images


def test_fig08_image_quality(benchmark, quality_bench, fig0708_schedule, archive):
    report = benchmark.pedantic(
        fig08_images.run,
        kwargs=dict(bench=quality_bench, **fig0708_schedule),
        rounds=1,
        iterations=1,
    )
    archive(report, "fig08_image_quality")
    schema = quality_bench.dataset.schema
    assert len(report.rows) == schema.views * schema.channels
    # Every view/channel visually close (PSNR bar) and explaining most
    # pixel variance.
    for r in report.rows:
        assert r["psnr_db"] > 20.0, report.render()
    assert report.all_checks_pass, report.render()
