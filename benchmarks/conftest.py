"""Benchmark fixtures.

The quality experiments (Figs. 7, 8, 12, 13) share one expensive setup —
dataset generation plus autoencoder pre-training — built once per session
here.  Reports are printed and archived under ``results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.core.ensemble import EnsembleSpec
from repro.core.trainer import TrainerConfig
from repro.experiments.common import ExperimentReport, QualityWorkbench
from repro.models.cyclegan import small_config

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

# Quality-experiment scale.  These sizes keep the full benchmark suite in
# the tens of minutes on a laptop while leaving every paper effect
# measurable; scale n_samples / rounds up for tighter curves.
QUALITY_SEED = 2019
QUALITY_SAMPLES = 12_288
QUALITY_BATCH = 64


def _quality_spec() -> EnsembleSpec:
    return EnsembleSpec(
        surrogate=small_config(batch_size=QUALITY_BATCH),
        trainer=TrainerConfig(batch_size=QUALITY_BATCH, adopt_optimizer="exchange"),
        ae_epochs=10,
        tournament_fraction=0.05,  # keeps per-round tournament evals cheap
    )


@pytest.fixture(scope="session")
def quality_bench() -> QualityWorkbench:
    """Quasi-random ("design") campaign order: unbiased silos.  Used by
    Figures 7, 8 and 12 (population-exploration effects)."""
    return QualityWorkbench(
        seed=QUALITY_SEED,
        n_samples=QUALITY_SAMPLES,
        spec=_quality_spec(),
        dataset_order="design",
        max_val_samples=1024,
    )


@pytest.fixture(scope="session")
def sweep_quality_bench() -> QualityWorkbench:
    """Sweep-ordered campaign at *saturated* silo scale: strongly non-IID
    silos small enough that independent trainers converge onto (and
    overfit) their drive band within the schedule.  Used by Figure 13,
    where the silo handicap is the mechanism under test (see
    EXPERIMENTS.md on campaign ordering and data regime)."""
    spec = _quality_spec()
    import dataclasses

    from repro.core.trainer import TrainerConfig
    from repro.models.cyclegan import small_config

    spec = dataclasses.replace(
        spec,
        surrogate=small_config(batch_size=128),
        trainer=TrainerConfig(batch_size=128, adopt_optimizer="keep"),
    )
    return QualityWorkbench(
        seed=QUALITY_SEED + 1,
        n_samples=4096,
        spec=spec,
        dataset_order="sweep",
        max_val_samples=1024,
    )


def archive_report(report: ExperimentReport, name: str) -> None:
    """Print the report and save it under results/ for EXPERIMENTS.md."""
    text = report.render()
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture()
def archive():
    return archive_report


# One schedule shared by the Figure 7/8 benchmarks so they reuse a single
# trained surrogate from the workbench cache.
FIG0708_SCHEDULE = dict(k=4, rounds=40, steps_per_round=10)


@pytest.fixture(scope="session")
def fig0708_schedule() -> dict:
    return dict(FIG0708_SCHEDULE)
