"""Benchmark harness for Figure 9: data-parallel strong scaling.

Regenerates the paper's series (steady-state epoch time for 1-16 GPUs,
naive ingestion, 1M samples) from the calibrated performance model, checks
the headline shape (9.36x speedup / 58% efficiency at 16 GPUs), and
benchmarks the model-evaluation cost itself.
"""

from __future__ import annotations

from repro.experiments import fig09_data_parallel


def test_fig09_data_parallel(benchmark, archive):
    report = benchmark.pedantic(
        fig09_data_parallel.run, rounds=3, iterations=1, warmup_rounds=1
    )
    archive(report, "fig09_data_parallel")
    assert len(report.rows) == 5
    assert report.all_checks_pass, report.render()
    # Epoch time strictly decreases with GPUs.
    epochs = report.column("epoch_s")
    assert all(a > b for a, b in zip(epochs, epochs[1:]))
