"""Benchmark harness for Figure 10: data-store modes vs naive ingestion."""

from __future__ import annotations

from repro.experiments import fig10_datastore


def test_fig10_datastore(benchmark, archive):
    report = benchmark.pedantic(
        fig10_datastore.run, rounds=3, iterations=1, warmup_rounds=1
    )
    archive(report, "fig10_datastore")
    assert len(report.rows) == 5
    assert report.all_checks_pass, report.render()
    # Preload must be infeasible exactly at 1 and 2 GPUs.
    ooms = [r["gpus"] for r in report.rows if r["preload_steady_s"] == "OOM"]
    assert ooms == [1, 2]
    # Steady-state store epochs beat naive epochs wherever the store fits.
    for r in report.rows:
        assert r["dynamic_steady_s"] < r["naive_steady_s"]
