"""Component micro-benchmarks: the real (wall-clock) hot paths.

These are genuine pytest-benchmark measurements of the library's kernels —
useful for tracking performance regressions of the reproduction itself
(the figure benchmarks above measure *simulated* time, not wall time).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.filesystem import SimulatedFilesystem
from repro.datastore.bundle import write_bundles
from repro.datastore.store import DistributedDataStore
from repro.jag.dataset import JagSchema
from repro.jag.sampling import design_points
from repro.jag.simulator import JagSimulator
from repro.models.autoencoder import MultimodalAutoencoder
from repro.models.cyclegan import ICFSurrogate, SurrogateConfig
from repro.tensorlib.optimizers import Adam
from repro.utils.rng import RngFactory

SCHEMA = JagSchema(image_size=16)


@pytest.fixture(scope="module")
def surrogate_and_batch():
    rngs = RngFactory(0)
    cfg = SurrogateConfig(schema=SCHEMA)
    ae = MultimodalAutoencoder(
        rngs.child("ae"), SCHEMA, hidden=cfg.ae_hidden, latent_dim=cfg.latent_dim
    )
    surrogate = ICFSurrogate(rngs.child("s"), cfg, ae)
    rng = np.random.default_rng(0)
    batch = {
        "params": rng.random((128, 5)).astype(np.float32),
        "scalars": rng.normal(size=(128, 15)).astype(np.float32),
        "images": rng.random((128, SCHEMA.image_flat_dim)).astype(np.float32),
    }
    return surrogate, ae, batch


def test_bench_gan_train_step(benchmark, surrogate_and_batch):
    surrogate, _, batch = surrogate_and_batch
    d_opt, g_opt = Adam(1e-3), Adam(1e-3)
    benchmark(surrogate.train_step, batch, d_opt, g_opt)


def test_bench_surrogate_inference(benchmark, surrogate_and_batch):
    surrogate, _, batch = surrogate_and_batch
    benchmark(surrogate.predict_outputs, batch["params"])


def test_bench_autoencoder_step(benchmark, surrogate_and_batch):
    _, ae, batch = surrogate_and_batch
    opt = Adam(1e-3)
    benchmark(ae.train_step, batch, opt)


def test_bench_jag_simulate_and_render(benchmark):
    sim = JagSimulator(image_size=16)
    x = design_points(512, 5, method="lattice").astype(np.float32)

    def run():
        state = sim.run(x)
        return sim.render_images(state)

    benchmark(run)


def test_bench_datastore_fetch(benchmark):
    fs = SimulatedFilesystem()
    rng = np.random.default_rng(0)
    fields = {"x": rng.normal(size=(2000, 64)).astype(np.float32)}
    paths = write_bundles(fs, fields, samples_per_bundle=100)
    store = DistributedDataStore(16, 10**8)
    store.preload(fs, paths)
    ids = rng.choice(2000, size=128, replace=False)
    benchmark(store.fetch_batch, ids)


def test_bench_generator_exchange_payload(benchmark, surrogate_and_batch):
    surrogate, _, _ = surrogate_and_batch

    def exchange():
        state = surrogate.get_generator_state()
        surrogate.set_generator_state(state)

    benchmark(exchange)
