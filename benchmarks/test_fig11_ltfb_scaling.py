"""Benchmark harness for Figure 11: LTFB strong scaling to 1024 GPUs."""

from __future__ import annotations

from repro.experiments import fig11_ltfb_scaling


def test_fig11_ltfb_scaling(benchmark, archive):
    report = benchmark.pedantic(
        fig11_ltfb_scaling.run, rounds=3, iterations=1, warmup_rounds=1
    )
    archive(report, "fig11_ltfb_scaling")
    assert [r["trainers"] for r in report.rows] == [1, 8, 16, 32, 64]
    assert report.all_checks_pass, report.render()
    # Super-linear efficiency at every multi-trainer point.
    for r in report.rows:
        if r["trainers"] > 1:
            assert r["efficiency_pct"] > 100.0
