"""Benchmark harness for Figure 7: predicted vs ground-truth 15-D scalars.

Trains the surrogate with LTFB (shared with the Figure-8 benchmark via the
session workbench cache) and scores scalar predictions on validation data.
"""

from __future__ import annotations

from repro.experiments import fig07_scalars


def test_fig07_scalar_quality(benchmark, quality_bench, fig0708_schedule, archive):
    report = benchmark.pedantic(
        fig07_scalars.run,
        kwargs=dict(bench=quality_bench, **fig0708_schedule),
        rounds=1,
        iterations=1,
    )
    archive(report, "fig07_scalar_quality")
    assert len(report.rows) == 15  # one row per scalar observable
    # Most scalar channels must be well predicted (strong R^2).
    good = [r for r in report.rows if r["r2"] > 0.7]
    assert len(good) >= 10, report.render()
    assert report.all_checks_pass, report.render()
