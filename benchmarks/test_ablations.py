"""Ablation benchmarks: the design choices behind the reproduction.

Not paper figures — these regenerate the evidence for the mechanism
decisions DESIGN.md documents (tournament-set scope, optimizer handling on
adoption, generator-only exchange, fabric sensitivity, campaign ordering).
"""

from __future__ import annotations

import pytest

from repro.core.ensemble import EnsembleSpec
from repro.core.trainer import TrainerConfig
from repro.experiments import ablations
from repro.experiments.common import QualityWorkbench
from repro.models.cyclegan import small_config


def _ablation_spec() -> EnsembleSpec:
    return EnsembleSpec(
        surrogate=small_config(batch_size=64),
        trainer=TrainerConfig(batch_size=64),
        ae_epochs=8,
    )


@pytest.fixture(scope="module")
def ablation_bench() -> QualityWorkbench:
    """A mid-sized workbench: big enough for real effects, small enough
    that five ablations stay manageable."""
    return QualityWorkbench(seed=7101, n_samples=6144, spec=_ablation_spec())


@pytest.fixture(scope="module")
def ablation_sweep_bench() -> QualityWorkbench:
    """Sweep-ordered twin: used where the ablated mechanism only exists
    with biased silos (a silo-local judge on IID silos is unbiased)."""
    return QualityWorkbench(
        seed=7102, n_samples=6144, spec=_ablation_spec(), dataset_order="sweep"
    )


def test_ablation_tournament_scope(benchmark, ablation_sweep_bench, archive):
    # Sweep-ordered silos: with IID silos a local judge is unbiased and
    # the scope choice is immaterial; the collapse only shows when silos
    # are biased.
    report = benchmark.pedantic(
        ablations.tournament_scope_ablation,
        kwargs=dict(bench=ablation_sweep_bench, k=4, rounds=8, steps_per_round=15),
        rounds=1,
        iterations=1,
    )
    archive(report, "ablation_tournament_scope")
    rows = {r["scope"]: r for r in report.rows}
    # Global judging sustains adoption; local judging (nearly) kills it.
    assert rows["global"]["adoption_rate"] > 0.2
    assert rows["local"]["adoption_rate"] < 0.5 * rows["global"]["adoption_rate"]


def test_ablation_adoption_policy(benchmark, ablation_bench, archive):
    report = benchmark.pedantic(
        ablations.adoption_policy_ablation,
        kwargs=dict(bench=ablation_bench, k=4, rounds=12, steps_per_round=10),
        rounds=1,
        iterations=1,
    )
    archive(report, "ablation_adoption_policy")
    rows = {r["policy"]: r["best_val_loss"] for r in report.rows}
    # Shipping optimizer state with the winner is never the worst option.
    assert rows["exchange"] <= 1.1 * min(rows.values())


def test_ablation_exchange_scope(benchmark, ablation_bench, archive):
    report = benchmark.pedantic(
        ablations.exchange_scope_ablation,
        kwargs=dict(bench=ablation_bench, k=4, rounds=8, steps_per_round=15),
        rounds=1,
        iterations=1,
    )
    archive(report, "ablation_exchange_scope")
    rows = {r["exchange"]: r for r in report.rows}
    assert rows["generator"]["exchanged_bytes"] < rows["full"]["exchanged_bytes"]
    assert report.all_checks_pass, report.render()


def test_ablation_interconnect(benchmark, archive):
    report = benchmark.pedantic(
        ablations.interconnect_ablation, rounds=3, iterations=1
    )
    archive(report, "ablation_interconnect")
    speedups = report.column("speedup_16gpu")
    # Monotone in fabric bandwidth.
    assert all(a <= b + 1e-9 for a, b in zip(speedups, speedups[1:]))
    assert report.all_checks_pass, report.render()


def test_ablation_dataset_ordering(benchmark, ablation_bench, ablation_sweep_bench, archive):
    report = benchmark.pedantic(
        ablations.dataset_ordering_ablation,
        kwargs=dict(
            design_bench=ablation_bench,
            sweep_bench=ablation_sweep_bench,
            k=4,
            rounds=8,
            steps_per_round=15,
        ),
        rounds=1,
        iterations=1,
    )
    archive(report, "ablation_dataset_ordering")
    # LTFB is at worst modestly behind K-independent under either
    # ordering (single-seed comparisons carry variance; EXPERIMENTS.md).
    for r in report.rows:
        assert r["gap"] > 0.8, report.render()
