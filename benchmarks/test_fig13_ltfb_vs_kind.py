"""Benchmark harness for Figure 13: LTFB vs partitioned K-independent.

Runs both algorithms on identical contiguous (non-IID, sweep-ordered)
silos with identical schedules and hyperparameters, averaged over two
population seeds, and reports per-round population-best validation loss
plus the final-loss gap at each k.

At laptop scale this comparison carries substantial seed-to-seed variance
(see EXPERIMENTS.md "Figure 13"): across our runs the gap ranged from
0.67x to 1.26x.  The paper's regime (10M samples; silos simultaneously
biased and a vanishing data fraction) is not reachable here, so the
assertions are structural — both algorithms must train and the full
series must be archived — while the shape checks print the measured gaps
against the paper's claim.
"""

from __future__ import annotations

from repro.experiments import fig13_ltfb_vs_kindependent


def test_fig13_ltfb_vs_kindependent(benchmark, sweep_quality_bench, archive):
    report = benchmark.pedantic(
        fig13_ltfb_vs_kindependent.run,
        kwargs=dict(
            bench=sweep_quality_bench,
            trainer_counts=(2, 4),
            rounds=30,
            steps_per_round=15,
            # Equal configurations across trainers: the comparison is
            # exchange-vs-no-exchange, not a hyperparameter lottery.
            hyperparam_jitter=0.0,
            n_seeds=2,
        ),
        rounds=1,
        iterations=1,
    )
    archive(report, "fig13_ltfb_vs_kind")
    assert len(report.rows) == 30
    # Both algorithms learn on every silo count.
    final = report.rows[-1]
    first = report.rows[0]
    for k in (2, 4):
        assert final[f"k{k}_ltfb"] < first[f"k{k}_ltfb"]
        assert final[f"k{k}_kind"] < first[f"k{k}_kind"]
    # The measured gaps are reported by the shape checks (tolerances sized
    # for the variance documented in EXPERIMENTS.md).
    assert report.all_checks_pass, report.render()
