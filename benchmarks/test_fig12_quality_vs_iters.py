"""Benchmark harness for Figure 12: quality vs per-trainer iterations.

Runs real LTFB training at several population sizes on the shared
workbench dataset and reports the population-best validation loss per
round, with improvement ratios over the k=1 baseline at equal per-trainer
iteration counts.
"""

from __future__ import annotations

from repro.experiments import fig12_quality


def test_fig12_quality_vs_iterations(benchmark, quality_bench, archive):
    report = benchmark.pedantic(
        fig12_quality.run,
        kwargs=dict(
            bench=quality_bench,
            trainer_counts=(1, 2, 4, 8),
            rounds=40,
            steps_per_round=10,
        ),
        rounds=1,
        iterations=1,
    )
    archive(report, "fig12_quality_vs_iters")
    assert len(report.rows) == 40
    # Loss series decrease over training for every population size.
    for k in (1, 2, 4, 8):
        series = report.column(f"k{k}_val_loss")
        assert series[-1] < series[0]
    assert report.all_checks_pass, report.render()
