"""The multimodal autoencoder behind the surrogate's latent space.

"The forward model ... maps from the 5-D experiment parameter space to a
20-D latent space.  This is trained a priori using a multimodal
autoencoder of all outputs."  The encoder ingests both output modalities
(scalars and flattened images) jointly; the decoder reconstructs both from
the 20-D code.  Joint encoding is what gives the surrogate its internal
consistency: one latent point determines *all* modalities at once.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.jag.dataset import JagSchema
from repro.tensorlib import losses
from repro.tensorlib.graph import LayerGraph
from repro.tensorlib.layers import (
    Activation,
    Concatenation,
    FullyConnected,
    Identity,
    Input,
    Slice,
)
from repro.tensorlib.model import Model
from repro.tensorlib.optimizers import Optimizer
from repro.utils.rng import RngFactory

__all__ = ["MultimodalAutoencoder"]


def _build_encoder(
    name: str,
    rngs: RngFactory,
    schema: JagSchema,
    hidden: Sequence[int],
    latent_dim: int,
) -> Model:
    g = LayerGraph()
    g.add(Input("scalars", shape=(schema.n_scalars,)))
    g.add(Input("images", shape=(schema.image_flat_dim,)))
    g.add(Concatenation("concat"), parents=["scalars", "images"])
    prev = "concat"
    for i, width in enumerate(hidden):
        g.add(FullyConnected(f"fc{i}", units=int(width)), parents=[prev])
        g.add(Activation(f"act{i}", "leaky_relu"), parents=[f"fc{i}"])
        prev = f"act{i}"
    g.add(FullyConnected("latent_fc", units=latent_dim), parents=[prev])
    g.add(Identity("latent"), parents=["latent_fc"])
    return Model(name, g, rngs)


def _build_decoder(
    name: str,
    rngs: RngFactory,
    schema: JagSchema,
    hidden: Sequence[int],
    latent_dim: int,
) -> Model:
    g = LayerGraph()
    g.add(Input("latent", shape=(latent_dim,)))
    prev = "latent"
    for i, width in enumerate(reversed(list(hidden))):
        g.add(FullyConnected(f"fc{i}", units=int(width)), parents=[prev])
        g.add(Activation(f"act{i}", "leaky_relu"), parents=[f"fc{i}"])
        prev = f"act{i}"
    total_out = schema.n_scalars + schema.image_flat_dim
    g.add(FullyConnected("head", units=total_out), parents=[prev])
    g.add(Slice("scalars_out", 0, schema.n_scalars), parents=["head"])
    g.add(Slice("images_logits", schema.n_scalars, total_out), parents=["head"])
    # Images live in [0, 1); squash them.  Scalars are z-scored: linear head.
    g.add(Activation("images_out", "sigmoid"), parents=["images_logits"])
    return Model(name, g, rngs)


class MultimodalAutoencoder:
    """Encoder/decoder pair over (scalars, images) with a 20-D bottleneck.

    Parameters
    ----------
    rngs:
        RNG factory scoping this component's weight init.
    schema:
        Sample shapes (scalar and flattened-image widths).
    hidden:
        Encoder hidden widths; the decoder mirrors them.
    latent_dim:
        Bottleneck width (20 in the paper).
    image_loss_weight:
        Relative weight of the image reconstruction term; scalars and
        images have very different widths, so the per-element mean losses
        are combined with an explicit weight instead of letting the image
        term dominate by count.
    """

    def __init__(
        self,
        rngs: RngFactory,
        schema: JagSchema,
        hidden: Sequence[int] = (128, 64),
        latent_dim: int = 20,
        image_loss_weight: float = 1.0,
    ) -> None:
        if latent_dim <= 0:
            raise ValueError("latent_dim must be positive")
        self.schema = schema
        self.hidden = tuple(int(h) for h in hidden)
        self.latent_dim = int(latent_dim)
        self.image_loss_weight = float(image_loss_weight)
        self.encoder = _build_encoder("encoder", rngs, schema, hidden, latent_dim)
        self.decoder = _build_decoder("decoder", rngs, schema, hidden, latent_dim)

    # -- inference ---------------------------------------------------------

    def encode(self, scalars: np.ndarray, images: np.ndarray) -> np.ndarray:
        return self.encoder.predict(
            {"scalars": scalars, "images": images}, "latent"
        )

    def decode(self, latent: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        out = self.decoder.forward(
            {"latent": latent}, outputs=["scalars_out", "images_out"]
        )
        return out["scalars_out"], out["images_out"]

    # -- training -------------------------------------------------------------

    def train_step(
        self, batch: Mapping[str, np.ndarray], optimizer: Optimizer
    ) -> dict[str, float]:
        """One reconstruction step on a mini-batch with keys
        ``scalars`` and ``images``.  Returns the loss terms."""
        scalars, images = batch["scalars"], batch["images"]
        self.encoder.zero_grad()
        self.decoder.zero_grad()

        latent = self.encoder.forward(
            {"scalars": scalars, "images": images}, outputs=["latent"], training=True
        )["latent"]
        dec = self.decoder.forward(
            {"latent": latent},
            outputs=["scalars_out", "images_out"],
            training=True,
        )
        s_loss, s_grad = losses.mean_absolute_error(dec["scalars_out"], scalars)
        i_loss, i_grad = losses.mean_absolute_error(dec["images_out"], images)
        latent_grad = self.decoder.backward(
            {
                "scalars_out": s_grad,
                "images_out": self.image_loss_weight * i_grad,
            }
        )["latent"]
        self.encoder.backward({"latent": latent_grad})
        optimizer.step(self.encoder.trainable_weights + self.decoder.trainable_weights)
        return {
            "scalar_mae": s_loss,
            "image_mae": i_loss,
            "loss": s_loss + self.image_loss_weight * i_loss,
        }

    def reconstruction_error(self, batch: Mapping[str, np.ndarray]) -> dict[str, float]:
        """Evaluation-mode reconstruction MAE per modality."""
        latent = self.encode(batch["scalars"], batch["images"])
        s_hat, i_hat = self.decode(latent)
        s_loss, _ = losses.mean_absolute_error(s_hat, batch["scalars"])
        i_loss, _ = losses.mean_absolute_error(i_hat, batch["images"])
        return {"scalar_mae": s_loss, "image_mae": i_loss}

    # -- state ------------------------------------------------------------------

    def get_state(self) -> dict[str, np.ndarray]:
        # Weight names are model-qualified ("encoder/...", "decoder/...")
        # so the two dicts are disjoint by construction.
        state = self.encoder.get_state()
        state.update(self.decoder.get_state())
        return state

    def set_state(self, state: Mapping[str, np.ndarray]) -> None:
        enc = {k: v for k, v in state.items() if k.startswith("encoder/")}
        dec = {k: v for k, v in state.items() if k.startswith("decoder/")}
        self.encoder.set_state(enc)
        self.decoder.set_state(dec)
