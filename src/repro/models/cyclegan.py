"""The CycleGAN ICF surrogate: runtime model + symbolic architecture.

Runtime side (:class:`ICFSurrogate`): the trainable composite of
Section II-D, built on a *pre-trained, frozen* multimodal autoencoder
(shared by all trainers, so their 20-D latent spaces are coherent and
exchanging generators between trainers is meaningful):

- discriminator phase: D learns to separate encoder(real outputs) from
  F(params) in latent space;
- generator phase: F (and the inverse model G) minimize
  ``w_s * MAE(decoded scalars)`` + ``w_i * MAE(decoded images)``
  (surrogate fidelity / internal consistency, through the frozen decoder)
  + ``w_adv * BCE(D(F(x)), 1)`` (physical consistency, through the frozen
  discriminator) + ``w_cyc * MAE(G(F(x)), x)`` (self consistency).

Symbolic side (:class:`MLPSpec`, :class:`SurrogateArchitecture`): layer
widths only, from which FLOP counts, parameter counts and gradient sizes
follow — the cluster performance model prices paper-scale (64x64-image)
training steps from these without materializing ~2 GB of weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.jag.dataset import JagSchema, small_schema, paper_schema
from repro.models.autoencoder import MultimodalAutoencoder
from repro.tensorlib import losses
from repro.tensorlib.model import mlp
from repro.tensorlib.optimizers import Optimizer
from repro.utils.rng import RngFactory
from repro.utils.serialization import nbytes_of

__all__ = [
    "MLPSpec",
    "SurrogateArchitecture",
    "paper_architecture",
    "SurrogateConfig",
    "small_config",
    "ICFSurrogate",
]


# ---------------------------------------------------------------------------
# Symbolic architecture (performance modelling)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MLPSpec:
    """A fully-connected stack described by its layer widths."""

    dims: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.dims) < 2 or any(d <= 0 for d in self.dims):
            raise ValueError(f"MLPSpec needs >= 2 positive widths, got {self.dims}")

    @property
    def param_count(self) -> int:
        return sum(
            a * b + b for a, b in zip(self.dims[:-1], self.dims[1:])
        )

    @property
    def param_nbytes(self) -> int:
        return 4 * self.param_count  # float32

    @property
    def fwd_flops(self) -> int:
        """Forward multiply-add FLOPs per sample (2 per weight)."""
        return 2 * sum(a * b for a, b in zip(self.dims[:-1], self.dims[1:]))

    def flops(self, mode: str) -> int:
        """FLOPs per sample by traversal mode.

        - ``"fwd"`` — inference;
        - ``"train"`` — forward + data-gradient + weight-gradient (3x);
        - ``"through"`` — forward + data-gradient only, for *frozen*
          components gradients merely pass through (2x).
        """
        factor = {"fwd": 1, "train": 3, "through": 2}.get(mode)
        if factor is None:
            raise ValueError(f"unknown flops mode {mode!r}")
        return factor * self.fwd_flops


@dataclass(frozen=True)
class SurrogateArchitecture:
    """Widths of all five components, plus derived training-step costs."""

    schema: JagSchema
    latent_dim: int
    encoder: MLPSpec
    decoder: MLPSpec
    forward: MLPSpec
    inverse: MLPSpec
    discriminator: MLPSpec

    @classmethod
    def from_widths(
        cls,
        schema: JagSchema,
        latent_dim: int,
        ae_hidden: Sequence[int],
        forward_hidden: Sequence[int],
        inverse_hidden: Sequence[int],
        disc_hidden: Sequence[int],
    ) -> "SurrogateArchitecture":
        bundle = schema.n_scalars + schema.image_flat_dim
        return cls(
            schema=schema,
            latent_dim=latent_dim,
            encoder=MLPSpec((bundle, *ae_hidden, latent_dim)),
            decoder=MLPSpec((latent_dim, *reversed(tuple(ae_hidden)), bundle)),
            forward=MLPSpec((schema.n_params, *forward_hidden, latent_dim)),
            inverse=MLPSpec((latent_dim, *inverse_hidden, schema.n_params)),
            discriminator=MLPSpec((latent_dim, *disc_hidden, 1)),
        )

    # -- per-sample costs of one GAN training step -------------------------

    @property
    def train_flops_per_sample(self) -> int:
        """Both phases of one step.

        Discriminator phase: encoder fwd (real latents), F fwd (fake
        latents, detached), D trained on both populations (2 samples per
        dataset sample).  Generator phase: F and G trained; decoder and D
        are frozen pass-throughs.
        """
        d_phase = (
            self.encoder.flops("fwd")
            + self.forward.flops("fwd")
            + 2 * self.discriminator.flops("train")
        )
        g_phase = (
            self.forward.flops("train")
            + self.decoder.flops("through")
            + self.discriminator.flops("through")
            + self.inverse.flops("train")
        )
        return d_phase + g_phase

    @property
    def inference_flops_per_sample(self) -> int:
        """A forward surrogate query: decoder(F(x))."""
        return self.forward.flops("fwd") + self.decoder.flops("fwd")

    @property
    def eval_flops_per_sample(self) -> int:
        """A validation pass: forward prediction plus cycle check."""
        return self.inference_flops_per_sample + self.inverse.flops("fwd")

    @property
    def disc_grad_nbytes(self) -> int:
        """Allreduce payload of the discriminator phase."""
        return self.discriminator.param_nbytes

    @property
    def gen_grad_nbytes(self) -> int:
        """Allreduce payload of the generator phase (F and G train)."""
        return self.forward.param_nbytes + self.inverse.param_nbytes

    @property
    def generator_state_nbytes(self) -> int:
        """LTFB exchange payload: generators only, discriminator stays."""
        return self.forward.param_nbytes + self.inverse.param_nbytes

    @property
    def total_param_count(self) -> int:
        return (
            self.encoder.param_count
            + self.decoder.param_count
            + self.forward.param_count
            + self.inverse.param_count
            + self.discriminator.param_count
        )


def paper_architecture() -> SurrogateArchitecture:
    """Paper-scale architecture used by the performance benchmarks.

    The paper does not publish layer widths (it cites an OSTI report for
    "a complete description of the network"); these widths are our
    calibration — chosen so the per-step compute, gradient-allreduce
    payload (~70 MB of trained F/G parameters), and generator-exchange
    size reproduce the timing ratios of Figures 9-11.  The frozen
    autoencoder halves dominate FLOPs (49,167-wide output bundles), the
    trained components dominate the allreduce.
    """
    return SurrogateArchitecture.from_widths(
        schema=paper_schema(),
        latent_dim=20,
        ae_hidden=(8192, 4096),
        forward_hidden=(2048, 4096),
        inverse_hidden=(4096, 2048),
        disc_hidden=(2048, 1024),
    )


# ---------------------------------------------------------------------------
# Runtime configuration and model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SurrogateConfig:
    """Hyperparameters of a runnable (scaled-down) surrogate.

    Defaults follow the paper where it is explicit: mini-batch 128, Adam,
    initial learning rate 1e-3, 20-D latent space.
    """

    schema: JagSchema = field(default_factory=small_schema)
    latent_dim: int = 20
    ae_hidden: tuple[int, ...] = (256, 128)
    forward_hidden: tuple[int, ...] = (96, 96)
    inverse_hidden: tuple[int, ...] = (96, 96)
    disc_hidden: tuple[int, ...] = (64, 32)
    batch_size: int = 128
    learning_rate: float = 1.0e-3
    disc_learning_rate: float = 1.0e-3
    w_scalar_fidelity: float = 1.0
    w_image_fidelity: float = 1.0
    w_adversarial: float = 0.02
    w_cycle: float = 1.0
    label_smoothing: float = 0.1  # real labels = 1 - smoothing for D

    def __post_init__(self) -> None:
        if self.latent_dim <= 0 or self.batch_size <= 0:
            raise ValueError("latent_dim and batch_size must be positive")
        if min(self.learning_rate, self.disc_learning_rate) <= 0:
            raise ValueError("learning rates must be positive")
        if not 0 <= self.label_smoothing < 0.5:
            raise ValueError("label_smoothing must be in [0, 0.5)")

    def architecture(self) -> SurrogateArchitecture:
        return SurrogateArchitecture.from_widths(
            self.schema,
            self.latent_dim,
            self.ae_hidden,
            self.forward_hidden,
            self.inverse_hidden,
            self.disc_hidden,
        )


def small_config(schema: JagSchema | None = None, **overrides) -> SurrogateConfig:
    """Laptop-scale config for the real training experiments."""
    if schema is not None:
        overrides["schema"] = schema
    return SurrogateConfig(**overrides)


class ICFSurrogate:
    """Runnable CycleGAN surrogate for one trainer.

    Parameters
    ----------
    rngs:
        RNG factory; components derive their init streams from it, so two
        surrogates built from different factories start at different
        points of the loss landscape (LTFB's initial-state exploration).
    config:
        Hyperparameters and widths.
    autoencoder:
        A pre-trained :class:`MultimodalAutoencoder`.  Frozen here; shared
        between trainers by the ensemble driver.
    """

    def __init__(
        self,
        rngs: RngFactory,
        config: SurrogateConfig,
        autoencoder: MultimodalAutoencoder,
    ) -> None:
        if autoencoder.latent_dim != config.latent_dim:
            raise ValueError(
                f"autoencoder latent dim {autoencoder.latent_dim} != "
                f"config latent dim {config.latent_dim}"
            )
        if autoencoder.schema != config.schema:
            raise ValueError("autoencoder and config disagree on the sample schema")
        self.config = config
        self.autoencoder = autoencoder
        s = config.schema
        self.forward_model = mlp(
            "forward",
            rngs,
            input_dim=s.n_params,
            hidden=config.forward_hidden,
            output_dim=config.latent_dim,
            activation="leaky_relu",
        )
        self.inverse_model = mlp(
            "inverse",
            rngs,
            input_dim=config.latent_dim,
            hidden=config.inverse_hidden,
            output_dim=s.n_params,
            activation="leaky_relu",
            output_activation="sigmoid",  # params are normalized to [0, 1]
        )
        self.discriminator = mlp(
            "discriminator",
            rngs,
            input_dim=config.latent_dim,
            hidden=config.disc_hidden,
            output_dim=1,
            activation="leaky_relu",
        )
        self.steps_trained = 0

    # -- inference ------------------------------------------------------------

    def predict_latent(self, params: np.ndarray) -> np.ndarray:
        return self.forward_model.predict({"in": params}, "out")

    def predict_outputs(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Full surrogate query: (scalars_hat, images_hat) = decoder(F(x))."""
        return self.autoencoder.decode(self.predict_latent(params))

    def invert(self, scalars: np.ndarray, images: np.ndarray) -> np.ndarray:
        """Inverse query: infer parameters from observed outputs."""
        latent = self.autoencoder.encode(scalars, images)
        return self.inverse_model.predict({"in": latent}, "out")

    # -- training ----------------------------------------------------------------

    def train_step(
        self,
        batch: Mapping[str, np.ndarray],
        disc_optimizer: Optimizer,
        gen_optimizer: Optimizer,
    ) -> dict[str, float]:
        """One full GAN step (discriminator phase, then generator phase).

        ``batch`` needs keys ``params``, ``scalars``, ``images``.  Returns
        all loss terms.
        """
        cfg = self.config
        params, scalars, images = batch["params"], batch["scalars"], batch["images"]
        n = params.shape[0]

        # Real/fake latents.  The encoder is frozen: evaluation mode,
        # no backward pass.
        latent_real = self.autoencoder.encode(scalars, images)

        # --- discriminator phase ---
        self.discriminator.zero_grad()
        latent_fake = self.predict_latent(params)  # detached from F
        real_logits = self.discriminator.forward(
            {"in": latent_real}, outputs=["out"], training=True
        )["out"]
        real_targets = np.full((n, 1), 1.0 - cfg.label_smoothing, dtype=np.float32)
        d_real, g_real = losses.bce_with_logits(real_logits, real_targets)
        self.discriminator.backward({"out": g_real})
        fake_logits = self.discriminator.forward(
            {"in": latent_fake}, outputs=["out"], training=True
        )["out"]
        d_fake, g_fake = losses.bce_with_logits(
            fake_logits, np.zeros((n, 1), dtype=np.float32)
        )
        self.discriminator.backward({"out": g_fake})
        disc_optimizer.step(self.discriminator.trainable_weights)

        # --- generator phase ---
        self.forward_model.zero_grad()
        self.inverse_model.zero_grad()
        self.autoencoder.decoder.zero_grad()
        self.discriminator.zero_grad()

        z = self.forward_model.forward(
            {"in": params}, outputs=["out"], training=True
        )["out"]
        dec = self.autoencoder.decoder.forward(
            {"latent": z}, outputs=["scalars_out", "images_out"], training=False
        )
        fid_s, grad_s = losses.mean_absolute_error(dec["scalars_out"], scalars)
        fid_i, grad_i = losses.mean_absolute_error(dec["images_out"], images)
        z_grad = self.autoencoder.decoder.backward(
            {
                "scalars_out": cfg.w_scalar_fidelity * grad_s,
                "images_out": cfg.w_image_fidelity * grad_i,
            }
        )["latent"]

        adv_logits = self.discriminator.forward(
            {"in": z}, outputs=["out"], training=False
        )["out"]
        adv, grad_adv = losses.bce_with_logits(
            adv_logits, np.ones((n, 1), dtype=np.float32)
        )
        z_grad = z_grad + self.discriminator.backward(
            {"out": cfg.w_adversarial * grad_adv}
        )["in"]

        x_hat = self.inverse_model.forward(
            {"in": z}, outputs=["out"], training=True
        )["out"]
        cyc, grad_cyc = losses.mean_absolute_error(x_hat, params)
        z_grad = z_grad + self.inverse_model.backward(
            {"out": cfg.w_cycle * grad_cyc}
        )["in"]

        self.forward_model.backward({"out": z_grad})
        gen_optimizer.step(
            self.forward_model.trainable_weights + self.inverse_model.trainable_weights
        )
        self.steps_trained += 1
        return {
            "disc_real": d_real,
            "disc_fake": d_fake,
            "disc_loss": d_real + d_fake,
            "fidelity_scalar": fid_s,
            "fidelity_image": fid_i,
            "adversarial": adv,
            "cycle": cyc,
            "gen_loss": (
                cfg.w_scalar_fidelity * fid_s
                + cfg.w_image_fidelity * fid_i
                + cfg.w_adversarial * adv
                + cfg.w_cycle * cyc
            ),
        }

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, batch: Mapping[str, np.ndarray]) -> dict[str, float]:
        """Validation metrics on a batch; no parameter updates.

        ``val_loss`` (forward fidelity + cycle consistency, per the
        paper's "forward and inverse loss" quality measure) is the LTFB
        tournament/validation criterion — lower is better.
        """
        params, scalars, images = batch["params"], batch["scalars"], batch["images"]
        s_hat, i_hat = self.predict_outputs(params)
        fwd_s, _ = losses.mean_absolute_error(s_hat, scalars)
        fwd_i, _ = losses.mean_absolute_error(i_hat, images)
        z = self.predict_latent(params)
        x_cycle = self.inverse_model.predict({"in": z}, "out")
        cyc, _ = losses.mean_absolute_error(x_cycle, params)
        x_inv = self.invert(scalars, images)
        inv, _ = losses.mean_absolute_error(x_inv, params)
        cfg = self.config
        return {
            "forward_scalar_mae": fwd_s,
            "forward_image_mae": fwd_i,
            "cycle_mae": cyc,
            "inverse_mae": inv,
            "val_loss": (
                cfg.w_scalar_fidelity * fwd_s
                + cfg.w_image_fidelity * fwd_i
                + cfg.w_cycle * cyc
            ),
        }

    def discriminator_score(self, batch: Mapping[str, np.ndarray]) -> float:
        """Local-discriminator tournament metric: BCE of D(F(x)) against
        the "real" label.  Lower means the generator fools this trainer's
        discriminator better (paper Fig. 6b)."""
        params = batch["params"]
        z = self.predict_latent(params)
        logits = self.discriminator.predict({"in": z}, "out")
        value, _ = losses.bce_with_logits(
            logits, np.ones((params.shape[0], 1), dtype=np.float32)
        )
        return value

    # -- state exchange ------------------------------------------------------------

    GENERATOR_PARTS = ("forward", "inverse")

    def get_generator_state(self) -> dict[str, np.ndarray]:
        """The LTFB-GAN exchange payload: generators only (F and G); the
        discriminator never leaves its trainer.  Weight names are
        model-qualified ("forward/...", "inverse/..."), so the union is
        disjoint."""
        state = self.forward_model.get_state()
        state.update(self.inverse_model.get_state())
        return state

    def set_generator_state(self, state: Mapping[str, np.ndarray]) -> None:
        fwd = {k: v for k, v in state.items() if k.startswith("forward/")}
        inv = {k: v for k, v in state.items() if k.startswith("inverse/")}
        self.forward_model.set_state(fwd)
        self.inverse_model.set_state(inv)

    def generator_state_nbytes(self) -> int:
        return nbytes_of(self.get_generator_state())

    def get_full_state(self) -> dict[str, np.ndarray]:
        """Everything trainable in this trainer (generators + local D)."""
        state = self.get_generator_state()
        state.update(self.discriminator.get_state())
        return state

    def set_full_state(self, state: Mapping[str, np.ndarray]) -> None:
        self.set_generator_state(state)
        disc = {k: v for k, v in state.items() if k.startswith("discriminator/")}
        self.discriminator.set_state(disc)
