"""The paper's neural architectures (Section II-D).

The ICF surrogate is a CycleGAN over a learned latent space:

- a **multimodal autoencoder** maps output bundles (15 scalars + images)
  to a 20-D latent space and back (trained a priori);
- the **forward model** F: R^5 -> R^20 maps experiment parameters to the
  latent space (predictions = decoder(F(x)), enforcing *internal
  consistency* — all modalities predicted jointly);
- an adversarial **discriminator** D: R^20 -> {0,1} pushes F's outputs
  onto the data manifold (*physical consistency*);
- the **inverse model** G: R^20 -> R^5 enforces *self consistency*
  G(F(x)) ~= x (cycle loss) and gives scientists the inverse map.

All components are standard fully-connected networks, as in the paper.
:class:`~repro.models.cyclegan.SurrogateArchitecture` additionally
describes the layer widths symbolically so the cluster performance model
can price paper-scale training steps without materializing paper-scale
weights.
"""

from repro.models.autoencoder import MultimodalAutoencoder
from repro.models.cyclegan import (
    ICFSurrogate,
    MLPSpec,
    SurrogateArchitecture,
    SurrogateConfig,
    paper_architecture,
    small_config,
)

__all__ = [
    "MultimodalAutoencoder",
    "ICFSurrogate",
    "SurrogateConfig",
    "small_config",
    "MLPSpec",
    "SurrogateArchitecture",
    "paper_architecture",
]
