"""Layer abstraction: a node in the model DAG with explicit forward/backward.

Mirrors LBANN's design where a model is a DAG of tensor operations
("layers") over trainable tensors ("weights").  A layer

- is *built* once against the per-sample shapes of its inputs (deferred
  shape inference, so architectures compose without manual bookkeeping),
- caches whatever the most recent forward pass needs for its backward pass
  (models are executed by exactly one trainer at a time, so a single slot
  suffices),
- *accumulates* weight gradients into :class:`~repro.tensorlib.weights.Weight`
  buffers and returns gradients with respect to each of its inputs,
- reports per-sample forward FLOPs so the cluster performance model
  (:mod:`repro.cluster.compute`) can price a training step without running
  it at full scale.

Shapes are **per-sample**: a layer built with input shape ``(64,)``
processes batches of shape ``(batch, 64)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.tensorlib.initializers import Initializer
from repro.tensorlib.weights import Weight

__all__ = ["Layer", "LayerBuildError"]

Shape = tuple[int, ...]


class LayerBuildError(RuntimeError):
    """Raised when a layer is built with incompatible input shapes."""


class Layer(ABC):
    """Base class for all layers.

    Subclasses implement :meth:`_build`, :meth:`_forward` and
    :meth:`_backward`; this base class enforces the build-before-use
    protocol and owns the weight list.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("layer name must be non-empty")
        self.name = name
        self.weights: list[Weight] = []
        self.input_shapes: list[Shape] | None = None
        self.output_shape: Shape | None = None
        self._rng: np.random.Generator | None = None
        self._cache: dict | None = None

    # -- construction ------------------------------------------------------

    @property
    def built(self) -> bool:
        return self.output_shape is not None

    def build(self, input_shapes: Sequence[Shape], rng: np.random.Generator) -> None:
        """Resolve shapes and allocate weights.  Idempotence is an error:
        a layer instance belongs to exactly one graph."""
        if self.built:
            raise LayerBuildError(f"layer {self.name!r} is already built")
        self.input_shapes = [tuple(int(d) for d in s) for s in input_shapes]
        self._rng = rng
        self.output_shape = tuple(int(d) for d in self._build(self.input_shapes))

    def add_weight(
        self,
        suffix: str,
        shape: Shape,
        initializer: Initializer,
        trainable: bool = True,
    ) -> Weight:
        """Create and register a weight named ``"<layer>/<suffix>"``."""
        assert self._rng is not None, "add_weight must be called from _build"
        w = Weight(f"{self.name}/{suffix}", initializer(shape, self._rng), trainable)
        self.weights.append(w)
        return w

    # -- execution ----------------------------------------------------------

    def forward(self, inputs: list[np.ndarray], training: bool) -> np.ndarray:
        """Run the layer on a batch, caching context for backward."""
        if not self.built:
            raise LayerBuildError(f"layer {self.name!r} used before build()")
        self._check_batch_shapes(inputs)
        self._cache = {}
        return self._forward(inputs, training, self._cache)

    def backward(self, grad_output: np.ndarray) -> list[np.ndarray]:
        """Propagate a gradient through the layer.

        Accumulates weight gradients as a side effect and returns one
        gradient array per input, aligned with the forward ``inputs`` list.
        """
        if self._cache is None:
            raise RuntimeError(
                f"backward() on layer {self.name!r} without a preceding forward()"
            )
        grads = self._backward(grad_output, self._cache)
        self._cache = None
        return grads

    # -- cost accounting ----------------------------------------------------

    def flops_per_sample(self) -> int:
        """Forward-pass floating-point operations per sample (estimate).

        The standard backward-pass estimate used by the performance model
        is 2x the forward count (one matmul each for data and weight
        gradients in dense layers).
        """
        return 0

    def param_count(self) -> int:
        return sum(w.size for w in self.weights)

    # -- subclass API ---------------------------------------------------------

    @abstractmethod
    def _build(self, input_shapes: list[Shape]) -> Shape:
        """Validate input shapes, create weights, return the output shape."""

    @abstractmethod
    def _forward(
        self, inputs: list[np.ndarray], training: bool, cache: dict
    ) -> np.ndarray:
        """Compute the layer output; stash backward context in ``cache``."""

    @abstractmethod
    def _backward(self, grad_output: np.ndarray, cache: dict) -> list[np.ndarray]:
        """Return input gradients; accumulate weight gradients."""

    # -- helpers -------------------------------------------------------------

    def _check_batch_shapes(self, inputs: list[np.ndarray]) -> None:
        assert self.input_shapes is not None
        if len(inputs) != len(self.input_shapes):
            raise ValueError(
                f"layer {self.name!r} expects {len(self.input_shapes)} inputs, "
                f"got {len(inputs)}"
            )
        for arr, expected in zip(inputs, self.input_shapes):
            if arr.shape[1:] != expected:
                raise ValueError(
                    f"layer {self.name!r}: input sample shape {arr.shape[1:]} "
                    f"!= built shape {expected}"
                )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, out={self.output_shape}, "
            f"params={self.param_count()})"
        )
