"""Layer classes: the nodes of a model DAG."""

from repro.tensorlib.layers.base import Layer, LayerBuildError
from repro.tensorlib.layers.core import (
    Activation,
    BatchNorm,
    Concatenation,
    Dropout,
    FullyConnected,
    Identity,
    Input,
    Slice,
    Sum,
)

__all__ = [
    "Layer",
    "LayerBuildError",
    "Input",
    "Identity",
    "FullyConnected",
    "Activation",
    "Dropout",
    "BatchNorm",
    "Concatenation",
    "Slice",
    "Sum",
]
