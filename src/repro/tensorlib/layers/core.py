"""Core layer implementations: dense, activation, regularization, plumbing."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.tensorlib import functional as F
from repro.tensorlib.initializers import GlorotUniform, Initializer, Zeros, Constant
from repro.tensorlib.layers.base import Layer, LayerBuildError, Shape

__all__ = [
    "Input",
    "Identity",
    "FullyConnected",
    "Activation",
    "Dropout",
    "BatchNorm",
    "Concatenation",
    "Slice",
    "Sum",
]


class Input(Layer):
    """Named entry point of a model graph.

    Declared with a fixed per-sample shape; the graph feeds batches into it
    and it passes them through unchanged (casting to float32).
    """

    def __init__(self, name: str, shape: Sequence[int]) -> None:
        super().__init__(name)
        self.declared_shape: Shape = tuple(int(d) for d in shape)

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if input_shapes:
            raise LayerBuildError(f"Input layer {self.name!r} takes no parents")
        return self.declared_shape

    def _forward(self, inputs, training, cache):  # pragma: no cover - graph feeds directly
        raise RuntimeError("Input layers are fed by the graph, not forwarded")

    def _backward(self, grad_output, cache):  # pragma: no cover
        raise RuntimeError("Input layers have no backward pass")

    def feed(self, batch: np.ndarray) -> np.ndarray:
        batch = np.asarray(batch, dtype=np.float32)
        if batch.ndim != len(self.declared_shape) + 1:
            raise ValueError(
                f"input {self.name!r} expects batched rank "
                f"{len(self.declared_shape) + 1}, got shape {batch.shape}"
            )
        if batch.shape[1:] != self.declared_shape:
            raise ValueError(
                f"input {self.name!r} expects sample shape {self.declared_shape}, "
                f"got {batch.shape[1:]}"
            )
        return batch


class Identity(Layer):
    """Pass-through (useful as a named output tap)."""

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 1:
            raise LayerBuildError(f"Identity {self.name!r} takes exactly one parent")
        return input_shapes[0]

    def _forward(self, inputs, training, cache):
        return inputs[0]

    def _backward(self, grad_output, cache):
        return [grad_output]


class FullyConnected(Layer):
    """Affine map ``y = x @ W + b`` over flattened per-sample features.

    Inputs of higher rank are flattened per sample; the FLOP count is the
    usual ``2 * n_in * n_out`` multiply-adds per sample.
    """

    def __init__(
        self,
        name: str,
        units: int,
        kernel_init: Initializer | None = None,
        bias_init: Initializer | None = None,
        use_bias: bool = True,
    ) -> None:
        super().__init__(name)
        if units <= 0:
            raise ValueError(f"units must be positive, got {units}")
        self.units = int(units)
        self.kernel_init = kernel_init or GlorotUniform()
        self.bias_init = bias_init or Zeros()
        self.use_bias = bool(use_bias)
        self.kernel = None
        self.bias = None

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 1:
            raise LayerBuildError(
                f"FullyConnected {self.name!r} takes exactly one parent"
            )
        n_in = int(np.prod(input_shapes[0]))
        self.kernel = self.add_weight("kernel", (n_in, self.units), self.kernel_init)
        if self.use_bias:
            self.bias = self.add_weight("bias", (self.units,), self.bias_init)
        return (self.units,)

    def _forward(self, inputs, training, cache):
        x = inputs[0]
        if x.ndim > 2:
            x = x.reshape(x.shape[0], -1)
        cache["x"] = x
        y = x @ self.kernel.value
        if self.use_bias:
            y += self.bias.value
        return y

    def _backward(self, grad_output, cache):
        x = cache["x"]
        self.kernel.accumulate_grad(x.T @ grad_output)
        if self.use_bias:
            self.bias.accumulate_grad(grad_output.sum(axis=0))
        dx = grad_output @ self.kernel.value.T
        return [dx.reshape((x.shape[0],) + self.input_shapes[0])]

    def flops_per_sample(self) -> int:
        n_in = int(np.prod(self.input_shapes[0]))
        return 2 * n_in * self.units


class Activation(Layer):
    """Elementwise nonlinearity from the :data:`repro.tensorlib.functional.ACTIVATIONS` registry."""

    def __init__(self, name: str, kind: str, **kwargs: float) -> None:
        super().__init__(name)
        if kind not in F.ACTIVATIONS:
            raise ValueError(
                f"unknown activation {kind!r}; available: {sorted(F.ACTIVATIONS)}"
            )
        self.kind = kind
        self.kwargs = dict(kwargs)
        self._fn, self._grad_fn = F.ACTIVATIONS[kind]

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 1:
            raise LayerBuildError(f"Activation {self.name!r} takes exactly one parent")
        return input_shapes[0]

    def _forward(self, inputs, training, cache):
        x = inputs[0]
        y = self._fn(x, **self.kwargs)
        cache["x"], cache["y"] = x, y
        return y

    def _backward(self, grad_output, cache):
        local = self._grad_fn(cache["x"], cache["y"], **self.kwargs)
        return [grad_output * local]

    def flops_per_sample(self) -> int:
        # A handful of elementwise flops; 4 is a reasonable uniform estimate.
        return 4 * int(np.prod(self.input_shapes[0]))


class Dropout(Layer):
    """Inverted dropout: active only when ``training=True``.

    Draws its mask from the generator supplied at build time, so models are
    reproducible given their seed.
    """

    def __init__(self, name: str, rate: float) -> None:
        super().__init__(name)
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 1:
            raise LayerBuildError(f"Dropout {self.name!r} takes exactly one parent")
        return input_shapes[0]

    def _forward(self, inputs, training, cache):
        x = inputs[0]
        if not training or self.rate == 0.0:
            cache["mask"] = None
            return x
        keep = 1.0 - self.rate
        mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / np.float32(keep)
        cache["mask"] = mask
        return x * mask

    def _backward(self, grad_output, cache):
        mask = cache["mask"]
        if mask is None:
            return [grad_output]
        return [grad_output * mask]


class BatchNorm(Layer):
    """Batch normalization over the feature axis of rank-2 activations.

    Maintains running statistics as non-trainable weights so they travel
    with the model state during LTFB exchanges (a winning model's
    normalization statistics must move with it or evaluation on the new
    trainer's data would be inconsistent).
    """

    def __init__(
        self, name: str, momentum: float = 0.9, epsilon: float = 1e-5
    ) -> None:
        super().__init__(name)
        if not 0.0 < momentum < 1.0:
            raise ValueError(f"momentum must be in (0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 1 or len(input_shapes[0]) != 1:
            raise LayerBuildError(
                f"BatchNorm {self.name!r} requires a single rank-1 feature input"
            )
        (n,) = input_shapes[0]
        self.gamma = self.add_weight("gamma", (n,), Constant(1.0))
        self.beta = self.add_weight("beta", (n,), Zeros())
        self.running_mean = self.add_weight(
            "running_mean", (n,), Zeros(), trainable=False
        )
        self.running_var = self.add_weight(
            "running_var", (n,), Constant(1.0), trainable=False
        )
        return input_shapes[0]

    def _forward(self, inputs, training, cache):
        x = inputs[0]
        if training:
            mean = x.mean(axis=0)
            var = x.var(axis=0)
            m = self.momentum
            self.running_mean.value[...] = m * self.running_mean.value + (1 - m) * mean
            self.running_var.value[...] = m * self.running_var.value + (1 - m) * var
        else:
            mean = self.running_mean.value
            var = self.running_var.value
        inv_std = 1.0 / np.sqrt(var + self.epsilon)
        x_hat = (x - mean) * inv_std
        cache.update(x_hat=x_hat, inv_std=inv_std, training=training)
        return self.gamma.value * x_hat + self.beta.value

    def _backward(self, grad_output, cache):
        x_hat, inv_std = cache["x_hat"], cache["inv_std"]
        self.gamma.accumulate_grad((grad_output * x_hat).sum(axis=0))
        self.beta.accumulate_grad(grad_output.sum(axis=0))
        g = grad_output * self.gamma.value
        if not cache["training"]:
            return [g * inv_std]
        n = x_hat.shape[0]
        # Standard batch-norm backward through the batch statistics.
        dx = (
            g - g.mean(axis=0) - x_hat * (g * x_hat).mean(axis=0)
        ) * inv_std
        return [dx]

    def flops_per_sample(self) -> int:
        return 8 * int(np.prod(self.input_shapes[0]))


class Concatenation(Layer):
    """Concatenate rank-1 feature inputs along the feature axis."""

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if not input_shapes:
            raise LayerBuildError(f"Concatenation {self.name!r} needs >= 1 parent")
        for s in input_shapes:
            if len(s) != 1:
                raise LayerBuildError(
                    f"Concatenation {self.name!r} requires rank-1 inputs, got {s}"
                )
        return (sum(s[0] for s in input_shapes),)

    def _forward(self, inputs, training, cache):
        cache["widths"] = [a.shape[1] for a in inputs]
        return np.concatenate(inputs, axis=1)

    def _backward(self, grad_output, cache):
        splits = np.cumsum(cache["widths"])[:-1]
        return list(np.split(grad_output, splits, axis=1))


class Slice(Layer):
    """Select a half-open feature range ``[start, stop)`` of a rank-1 input."""

    def __init__(self, name: str, start: int, stop: int) -> None:
        super().__init__(name)
        if start < 0 or stop <= start:
            raise ValueError(f"invalid slice [{start}, {stop})")
        self.start, self.stop = int(start), int(stop)

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) != 1 or len(input_shapes[0]) != 1:
            raise LayerBuildError(f"Slice {self.name!r} requires one rank-1 input")
        (n,) = input_shapes[0]
        if self.stop > n:
            raise LayerBuildError(
                f"Slice {self.name!r}: stop {self.stop} exceeds input width {n}"
            )
        return (self.stop - self.start,)

    def _forward(self, inputs, training, cache):
        cache["width"] = inputs[0].shape[1]
        # A view, not a copy — the guide's "views over copies" idiom; the
        # consumer layers never mutate activations in place.
        return inputs[0][:, self.start : self.stop]

    def _backward(self, grad_output, cache):
        dx = np.zeros((grad_output.shape[0], cache["width"]), dtype=grad_output.dtype)
        dx[:, self.start : self.stop] = grad_output
        return [dx]


class Sum(Layer):
    """Elementwise sum of same-shaped inputs (residual connections)."""

    def _build(self, input_shapes: list[Shape]) -> Shape:
        if len(input_shapes) < 2:
            raise LayerBuildError(f"Sum {self.name!r} needs >= 2 parents")
        if len(set(input_shapes)) != 1:
            raise LayerBuildError(
                f"Sum {self.name!r} requires identical input shapes, got {input_shapes}"
            )
        return input_shapes[0]

    def _forward(self, inputs, training, cache):
        cache["n"] = len(inputs)
        out = inputs[0].copy()
        for a in inputs[1:]:
            out += a
        return out

    def _backward(self, grad_output, cache):
        return [grad_output] * cache["n"]

    def flops_per_sample(self) -> int:
        return (len(self.input_shapes) - 1) * int(np.prod(self.input_shapes[0]))
