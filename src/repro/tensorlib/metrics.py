"""Streaming evaluation metrics.

Metrics accumulate over mini-batches (``update``) and report a final value
(``result``) so validation passes never need to materialize the full
prediction set — important when the validation partition is itself large.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Metric",
    "Mean",
    "MeanAbsoluteError",
    "MeanSquaredError",
    "R2Score",
    "PSNR",
    "Accuracy",
]


class Metric(ABC):
    """Base streaming metric."""

    @abstractmethod
    def update(self, pred: np.ndarray, target: np.ndarray) -> None: ...

    @abstractmethod
    def result(self) -> float: ...

    @abstractmethod
    def reset(self) -> None: ...


class Mean(Metric):
    """Weighted running mean of scalar values (e.g. per-batch losses).

    ``update(value, weight)`` — the signature is (pred, target)-shaped for
    uniformity but interprets its arguments as (value, weight).
    """

    def __init__(self) -> None:
        self._total = 0.0
        self._weight = 0.0

    def update(self, pred, target=1.0) -> None:  # (value, weight)
        self._total += float(pred) * float(target)
        self._weight += float(target)

    def result(self) -> float:
        if self._weight == 0:
            return math.nan
        return self._total / self._weight

    def reset(self) -> None:
        self._total = 0.0
        self._weight = 0.0


class _ElementwiseMean(Metric):
    """Shared machinery for metrics that average an elementwise error."""

    def __init__(self) -> None:
        self._sum = 0.0
        self._count = 0

    def update(self, pred: np.ndarray, target: np.ndarray) -> None:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        self._sum += float(self._error(pred, target))
        self._count += pred.size

    @staticmethod
    def _error(pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def result(self) -> float:
        if self._count == 0:
            return math.nan
        return self._sum / self._count

    def reset(self) -> None:
        self._sum = 0.0
        self._count = 0


class MeanAbsoluteError(_ElementwiseMean):
    @staticmethod
    def _error(pred: np.ndarray, target: np.ndarray) -> float:
        return float(np.abs(pred - target).sum())


class MeanSquaredError(_ElementwiseMean):
    @staticmethod
    def _error(pred: np.ndarray, target: np.ndarray) -> float:
        return float(np.square(pred - target, dtype=np.float64).sum())


class R2Score(Metric):
    """Coefficient of determination, streamed via sufficient statistics.

    Accumulates sums needed for ``1 - SS_res / SS_tot`` where the target
    mean is computed over everything seen so far.
    """

    def __init__(self) -> None:
        self.reset()

    def update(self, pred: np.ndarray, target: np.ndarray) -> None:
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: {pred.shape} vs {target.shape}")
        p = np.asarray(pred, dtype=np.float64).ravel()
        t = np.asarray(target, dtype=np.float64).ravel()
        self._ss_res += float(np.square(p - t).sum())
        self._t_sum += float(t.sum())
        self._t_sq_sum += float(np.square(t).sum())
        self._n += t.size

    def result(self) -> float:
        if self._n == 0:
            return math.nan
        ss_tot = self._t_sq_sum - self._t_sum**2 / self._n
        if ss_tot <= 0:
            return math.nan
        return 1.0 - self._ss_res / ss_tot

    def reset(self) -> None:
        self._ss_res = 0.0
        self._t_sum = 0.0
        self._t_sq_sum = 0.0
        self._n = 0


class Accuracy(Metric):
    """Top-1 classification accuracy.

    ``update(logits_or_probs, labels)``: predictions are argmaxed over the
    trailing axis; labels are integer class ids.
    """

    def __init__(self) -> None:
        self._correct = 0
        self._total = 0

    def update(self, pred: np.ndarray, target: np.ndarray) -> None:
        pred = np.asarray(pred)
        target = np.asarray(target)
        if pred.ndim != 2 or target.shape != (pred.shape[0],):
            raise ValueError(
                f"expected (batch, classes) predictions and (batch,) labels, "
                f"got {pred.shape} and {target.shape}"
            )
        self._correct += int((pred.argmax(axis=1) == target).sum())
        self._total += pred.shape[0]

    def result(self) -> float:
        if self._total == 0:
            return math.nan
        return self._correct / self._total

    def reset(self) -> None:
        self._correct = 0
        self._total = 0


class PSNR(Metric):
    """Peak signal-to-noise ratio for image batches.

    ``data_range`` is the dynamic range of the (normalized) images; the
    JAG images in this repo are scaled to [0, 1].
    """

    def __init__(self, data_range: float = 1.0) -> None:
        if data_range <= 0:
            raise ValueError(f"data_range must be positive, got {data_range}")
        self.data_range = float(data_range)
        self._mse = MeanSquaredError()

    def update(self, pred: np.ndarray, target: np.ndarray) -> None:
        self._mse.update(pred, target)

    def result(self) -> float:
        mse = self._mse.result()
        if math.isnan(mse):
            return math.nan
        if mse == 0:
            return math.inf
        return 10.0 * math.log10(self.data_range**2 / mse)

    def reset(self) -> None:
        self._mse.reset()
