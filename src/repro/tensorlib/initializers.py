"""Weight initialization schemes.

Each initializer is a callable ``(shape, rng) -> ndarray`` returning a
float32 array.  Fan-in/fan-out conventions follow Glorot & Bengio (2010)
and He et al. (2015) for 2-D weight matrices of shape ``(fan_in, fan_out)``;
for 1-D shapes (biases) both fans equal the length.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "Initializer",
    "Constant",
    "Zeros",
    "NormalInit",
    "UniformInit",
    "GlorotUniform",
    "GlorotNormal",
    "HeNormal",
    "HeUniform",
]

DTYPE = np.float32


def _fans(shape: Sequence[int]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for a weight shape."""
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return int(shape[0]), int(shape[0])
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return int(shape[0]) * receptive, int(shape[1]) * receptive


class Initializer(ABC):
    """Base class for weight initializers."""

    @abstractmethod
    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        """Return a freshly initialized float32 array of the given shape."""

    def __repr__(self) -> str:
        attrs = ", ".join(f"{k}={v!r}" for k, v in vars(self).items())
        return f"{type(self).__name__}({attrs})"


class Constant(Initializer):
    """Fill with a constant value."""

    def __init__(self, value: float) -> None:
        self.value = float(value)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return np.full(shape, self.value, dtype=DTYPE)


class Zeros(Constant):
    """Fill with zeros (the conventional bias initializer)."""

    def __init__(self) -> None:
        super().__init__(0.0)


class NormalInit(Initializer):
    """Gaussian with the given mean and standard deviation."""

    def __init__(self, mean: float = 0.0, stddev: float = 0.05) -> None:
        if stddev < 0:
            raise ValueError(f"stddev must be non-negative, got {stddev}")
        self.mean = float(mean)
        self.stddev = float(stddev)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.normal(self.mean, self.stddev, size=shape).astype(DTYPE)


class UniformInit(Initializer):
    """Uniform on [low, high)."""

    def __init__(self, low: float = -0.05, high: float = 0.05) -> None:
        if high < low:
            raise ValueError(f"high ({high}) must be >= low ({low})")
        self.low = float(low)
        self.high = float(high)

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=shape).astype(DTYPE)


class GlorotUniform(Initializer):
    """Glorot/Xavier uniform: U(±sqrt(6 / (fan_in + fan_out)))."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fans(shape)
        limit = np.sqrt(6.0 / (fan_in + fan_out))
        return rng.uniform(-limit, limit, size=shape).astype(DTYPE)


class GlorotNormal(Initializer):
    """Glorot/Xavier normal: N(0, 2 / (fan_in + fan_out))."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, fan_out = _fans(shape)
        stddev = np.sqrt(2.0 / (fan_in + fan_out))
        return rng.normal(0.0, stddev, size=shape).astype(DTYPE)


class HeNormal(Initializer):
    """He normal: N(0, 2 / fan_in); preferred for ReLU-family stacks."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fans(shape)
        stddev = np.sqrt(2.0 / fan_in)
        return rng.normal(0.0, stddev, size=shape).astype(DTYPE)


class HeUniform(Initializer):
    """He uniform: U(±sqrt(6 / fan_in))."""

    def __call__(self, shape: Sequence[int], rng: np.random.Generator) -> np.ndarray:
        fan_in, _ = _fans(shape)
        limit = np.sqrt(6.0 / fan_in)
        return rng.uniform(-limit, limit, size=shape).astype(DTYPE)
