"""A from-scratch, vectorized NumPy neural-network substrate (LBANN analog).

The paper's LBANN framework represents a *model* as a directed acyclic
graph of tensor operations ("layers") plus trainable parameter tensors
("weights"), driven by an optimizer and fed by data readers.  This package
reproduces that architecture in pure NumPy:

- :mod:`repro.tensorlib.initializers` — weight initialization schemes.
- :mod:`repro.tensorlib.functional` — vectorized activations/losses and
  their derivatives (the numerical kernels).
- :mod:`repro.tensorlib.layers` — layer classes with explicit
  ``forward``/``backward`` and per-sample FLOP accounting.
- :mod:`repro.tensorlib.graph` — the layer DAG (networkx-backed) with
  topological forward/backward execution.
- :mod:`repro.tensorlib.model` — ``Model``: graph + weights + state
  (de)serialization for LTFB model exchange.
- :mod:`repro.tensorlib.optimizers` — SGD / Momentum / Adam with
  learning-rate schedules.
- :mod:`repro.tensorlib.metrics` — streaming evaluation metrics.

All layer math is float32 by default, matching the paper's
single-precision training.
"""

from repro.tensorlib.initializers import (
    Constant,
    GlorotNormal,
    GlorotUniform,
    HeNormal,
    HeUniform,
    Initializer,
    NormalInit,
    UniformInit,
    Zeros,
)
from repro.tensorlib.weights import Weight
from repro.tensorlib.layers import (
    Activation,
    BatchNorm,
    Concatenation,
    Dropout,
    FullyConnected,
    Identity,
    Input,
    Layer,
    Slice,
    Sum,
)
from repro.tensorlib.graph import LayerGraph
from repro.tensorlib.model import Model, mlp
from repro.tensorlib.optimizers import (
    SGD,
    Adam,
    ConstantLR,
    CosineDecayLR,
    LearningRateSchedule,
    Momentum,
    Optimizer,
    StepDecayLR,
)
from repro.tensorlib import functional, losses, metrics

__all__ = [
    "Initializer",
    "Constant",
    "Zeros",
    "NormalInit",
    "UniformInit",
    "GlorotUniform",
    "GlorotNormal",
    "HeNormal",
    "HeUniform",
    "Weight",
    "Layer",
    "Input",
    "Identity",
    "FullyConnected",
    "Activation",
    "Dropout",
    "BatchNorm",
    "Concatenation",
    "Slice",
    "Sum",
    "LayerGraph",
    "Model",
    "mlp",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
    "LearningRateSchedule",
    "ConstantLR",
    "StepDecayLR",
    "CosineDecayLR",
    "functional",
    "losses",
    "metrics",
]
