"""Loss functions as (value, gradient) pairs.

Each loss returns ``(scalar_value, grad_wrt_predictions)`` so callers can
compose multi-term objectives — the CycleGAN training step combines
surrogate-fidelity (MAE), adversarial (BCE-with-logits), and
cycle-consistency (MAE) terms with per-term weights, backpropagating each
gradient through the relevant sub-model chain.

Reductions are means over *all* elements (batch and features), so loss
magnitudes are comparable across batch sizes and output widths.
"""

from __future__ import annotations

import numpy as np

from repro.tensorlib import functional as F

__all__ = [
    "mean_absolute_error",
    "mean_squared_error",
    "bce_with_logits",
    "softmax_cross_entropy",
    "weighted_sum",
]


def _check_shapes(pred: np.ndarray, target: np.ndarray, name: str) -> None:
    if pred.shape != target.shape:
        raise ValueError(
            f"{name}: prediction shape {pred.shape} != target shape {target.shape}"
        )


def mean_absolute_error(
    pred: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray]:
    """L1 loss, mean over all elements; subgradient sign(pred - target)/N."""
    _check_shapes(pred, target, "mean_absolute_error")
    diff = pred - target
    n = diff.size
    value = float(np.abs(diff).sum() / n)
    grad = np.sign(diff, dtype=np.float32) / np.float32(n)
    return value, grad


def mean_squared_error(
    pred: np.ndarray, target: np.ndarray
) -> tuple[float, np.ndarray]:
    """L2 loss, mean over all elements; gradient 2(pred - target)/N."""
    _check_shapes(pred, target, "mean_squared_error")
    diff = (pred - target).astype(np.float32)
    n = diff.size
    value = float(np.square(diff).sum() / n)
    grad = (2.0 / n) * diff
    return value, grad


def bce_with_logits(
    logits: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Binary cross-entropy on raw logits (numerically stable).

    ``loss = mean( softplus(z) - t*z )`` with gradient
    ``(sigmoid(z) - t) / N``.  Targets may be soft labels in [0, 1].
    """
    _check_shapes(logits, targets, "bce_with_logits")
    z = np.asarray(logits, dtype=np.float32)
    t = np.asarray(targets, dtype=np.float32)
    if np.any(t < 0) or np.any(t > 1):
        raise ValueError("bce_with_logits targets must lie in [0, 1]")
    n = z.size
    value = float((F.softplus(z) - t * z).sum() / n)
    grad = (F.sigmoid(z) - t) / np.float32(n)
    return value, grad


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Multi-class cross-entropy on raw logits (stable log-sum-exp).

    ``labels`` are integer class ids of shape ``(batch,)``.  Reduction is
    the mean over the batch; gradient is ``(softmax(z) - onehot) / batch``.
    Used by the classic (classification) LTFB workload of the paper's
    prior work [Jacobs et al., MLHPC'17].
    """
    # Computed in float64: the log-sum-exp reduction loses enough mantissa
    # in float32 to perturb small-batch gradients.
    z = np.asarray(logits, dtype=np.float64)
    if z.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {z.shape}")
    y = np.asarray(labels)
    if y.shape != (z.shape[0],):
        raise ValueError(
            f"labels must be shape ({z.shape[0]},), got {y.shape}"
        )
    if y.min() < 0 or y.max() >= z.shape[1]:
        raise ValueError("labels out of range for the number of classes")
    n = z.shape[0]
    shifted = z - z.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_norm
    value = float(-log_probs[np.arange(n), y].mean())
    grad = np.exp(log_probs)
    grad[np.arange(n), y] -= 1.0
    return value, (grad / np.float32(n)).astype(np.float32)


def weighted_sum(
    *terms: tuple[float, tuple[float, np.ndarray]],
) -> tuple[float, list[np.ndarray]]:
    """Combine loss terms: ``weighted_sum((w1, loss1), (w2, loss2), ...)``.

    Each ``lossN`` is a ``(value, grad)`` pair; returns the combined scalar
    and the list of *scaled* gradients in order, ready to backpropagate
    through each term's own path.
    """
    total = 0.0
    grads: list[np.ndarray] = []
    for weight, (value, grad) in terms:
        total += float(weight) * value
        grads.append(np.float32(weight) * grad)
    return total, grads
