"""First-order optimizers and learning-rate schedules.

The paper trains the CycleGAN with Adam at an initial learning rate of
1e-3; SGD and momentum are provided for the baselines and tests.  Optimizer
slot state is keyed by weight name, so an optimizer can be checkpointed and
restored alongside its model.

All updates are performed in place on the weight value buffers (no
reallocation per step — the NumPy guide's in-place idiom).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Iterable, Mapping

import numpy as np

from repro.tensorlib.weights import Weight

__all__ = [
    "LearningRateSchedule",
    "ConstantLR",
    "StepDecayLR",
    "CosineDecayLR",
    "Optimizer",
    "SGD",
    "Momentum",
    "Adam",
]


class LearningRateSchedule(ABC):
    """Maps a 0-based step index to a learning rate."""

    @abstractmethod
    def learning_rate(self, step: int) -> float: ...


class ConstantLR(LearningRateSchedule):
    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def learning_rate(self, step: int) -> float:
        return self.lr


class StepDecayLR(LearningRateSchedule):
    """Multiply the rate by ``factor`` every ``every`` steps."""

    def __init__(self, lr: float, factor: float = 0.5, every: int = 10_000) -> None:
        if lr <= 0 or not 0 < factor <= 1 or every <= 0:
            raise ValueError("invalid StepDecayLR parameters")
        self.lr, self.factor, self.every = float(lr), float(factor), int(every)

    def learning_rate(self, step: int) -> float:
        return self.lr * self.factor ** (step // self.every)


class CosineDecayLR(LearningRateSchedule):
    """Cosine decay from ``lr`` to ``final`` over ``total_steps``."""

    def __init__(self, lr: float, total_steps: int, final: float = 0.0) -> None:
        if lr <= 0 or total_steps <= 0 or final < 0:
            raise ValueError("invalid CosineDecayLR parameters")
        self.lr, self.total_steps, self.final = float(lr), int(total_steps), float(final)

    def learning_rate(self, step: int) -> float:
        t = min(step, self.total_steps) / self.total_steps
        return self.final + 0.5 * (self.lr - self.final) * (1 + math.cos(math.pi * t))


def _as_schedule(lr: "float | LearningRateSchedule") -> LearningRateSchedule:
    if isinstance(lr, LearningRateSchedule):
        return lr
    return ConstantLR(float(lr))


class Optimizer(ABC):
    """Base optimizer: applies accumulated gradients to trainable weights."""

    def __init__(self, lr: "float | LearningRateSchedule") -> None:
        self.schedule = _as_schedule(lr)
        self.step_count = 0
        self._slots: dict[str, dict[str, np.ndarray]] = {}

    @property
    def learning_rate(self) -> float:
        return self.schedule.learning_rate(self.step_count)

    def step(self, weights: Iterable[Weight]) -> None:
        """Apply one update using each weight's accumulated gradient.

        Non-trainable weights are skipped.  Gradients are *not* cleared —
        that is the training loop's job (so multiple loss phases can share
        one step).
        """
        lr = self.learning_rate
        for w in weights:
            if not w.trainable:
                continue
            self._apply(w, lr)
        self.step_count += 1

    def _slot(self, w: Weight, name: str) -> np.ndarray:
        slots = self._slots.setdefault(w.name, {})
        if name not in slots:
            slots[name] = np.zeros_like(w.value)
        return slots[name]

    @abstractmethod
    def _apply(self, w: Weight, lr: float) -> None: ...

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> dict:
        return {
            "step_count": self.step_count,
            "slots": {
                wname: {k: v.copy() for k, v in slots.items()}
                for wname, slots in self._slots.items()
            },
        }

    def set_state(self, state: Mapping) -> None:
        self.step_count = int(state["step_count"])
        self._slots = {
            wname: {k: np.array(v) for k, v in slots.items()}
            for wname, slots in state["slots"].items()
        }

    def reset(self) -> None:
        """Drop all slot state (used when a trainer adopts a foreign model)."""
        self._slots.clear()
        self.step_count = 0


class SGD(Optimizer):
    """Plain stochastic gradient descent."""

    def _apply(self, w: Weight, lr: float) -> None:
        w.value -= lr * w.grad


class Momentum(Optimizer):
    """SGD with (optionally Nesterov) momentum."""

    def __init__(
        self,
        lr: "float | LearningRateSchedule",
        momentum: float = 0.9,
        nesterov: bool = False,
    ) -> None:
        super().__init__(lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _apply(self, w: Weight, lr: float) -> None:
        v = self._slot(w, "velocity")
        v *= self.momentum
        v -= lr * w.grad
        if self.nesterov:
            w.value += self.momentum * v - lr * w.grad
        else:
            w.value += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        lr: "float | LearningRateSchedule" = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        super().__init__(lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1 or epsilon <= 0:
            raise ValueError("invalid Adam hyperparameters")
        self.beta1, self.beta2, self.epsilon = float(beta1), float(beta2), float(epsilon)

    def _apply(self, w: Weight, lr: float) -> None:
        m = self._slot(w, "m")
        v = self._slot(w, "v")
        t = self.step_count + 1
        m *= self.beta1
        m += (1 - self.beta1) * w.grad
        v *= self.beta2
        v += (1 - self.beta2) * np.square(w.grad)
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        w.value -= lr * m_hat / (np.sqrt(v_hat) + self.epsilon)
