"""Vectorized numerical kernels: activations and their derivatives.

Every activation is exposed as a pair ``f(x)`` and ``f_grad(x, y)`` where
``y = f(x)`` — passing the forward output into the gradient lets several
derivatives (sigmoid, tanh, elu) be computed without re-evaluating the
transcendental, an in-place-friendly idiom that keeps the backward pass
memory-light (see the NumPy optimization guidance on in-place operations
and views).

All kernels accept and return float32 arrays and never mutate their inputs.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "identity",
    "identity_grad",
    "relu",
    "relu_grad",
    "leaky_relu",
    "leaky_relu_grad",
    "elu",
    "elu_grad",
    "sigmoid",
    "sigmoid_grad",
    "tanh",
    "tanh_grad",
    "softplus",
    "softplus_grad",
    "ACTIVATIONS",
    "log_sigmoid",
]


def identity(x: np.ndarray) -> np.ndarray:
    return x


def identity_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return np.ones_like(x)


def relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def relu_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return (x > 0.0).astype(x.dtype)


def leaky_relu(x: np.ndarray, alpha: float = 0.2) -> np.ndarray:
    return np.where(x > 0.0, x, alpha * x)


def leaky_relu_grad(x: np.ndarray, y: np.ndarray, alpha: float = 0.2) -> np.ndarray:
    return np.where(x > 0.0, np.float32(1.0), np.float32(alpha)).astype(x.dtype)


def elu(x: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    # expm1 is accurate near zero; clip the negative branch input to avoid
    # overflow warnings for very negative pre-activations.
    neg = alpha * np.expm1(np.minimum(x, 0.0))
    return np.where(x > 0.0, x, neg).astype(x.dtype)


def elu_grad(x: np.ndarray, y: np.ndarray, alpha: float = 1.0) -> np.ndarray:
    # For x <= 0, d/dx alpha*(e^x - 1) = alpha*e^x = y + alpha.
    return np.where(x > 0.0, np.float32(1.0), y + np.float32(alpha)).astype(x.dtype)


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic sigmoid.

    Split on sign so ``exp`` is only ever evaluated on non-positive values,
    avoiding overflow for large-magnitude logits.
    """
    out = np.empty_like(x)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


def sigmoid_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return y * (1.0 - y)


def log_sigmoid(x: np.ndarray) -> np.ndarray:
    """log(sigmoid(x)) computed stably: -softplus(-x)."""
    return -softplus(-x)


def tanh(x: np.ndarray) -> np.ndarray:
    return np.tanh(x)


def tanh_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return 1.0 - y * y


def softplus(x: np.ndarray) -> np.ndarray:
    """Stable softplus: max(x, 0) + log1p(exp(-|x|))."""
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def softplus_grad(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    return sigmoid(x)


# Registry used by the Activation layer: name -> (forward, grad).
ACTIVATIONS: dict[str, tuple[Callable, Callable]] = {
    "identity": (identity, identity_grad),
    "relu": (relu, relu_grad),
    "leaky_relu": (leaky_relu, leaky_relu_grad),
    "elu": (elu, elu_grad),
    "sigmoid": (sigmoid, sigmoid_grad),
    "tanh": (tanh, tanh_grad),
    "softplus": (softplus, softplus_grad),
}
