"""The model DAG: layers wired by name, executed in topological order.

Uses :mod:`networkx` for cycle detection and topological sorting, matching
LBANN's representation of a model as a DAG of tensor operations.  Parent
*order* is semantically meaningful (e.g. ``Slice`` vs ``Concatenation``
operands), so ordered parent lists are kept alongside the graph edges.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import networkx as nx
import numpy as np

from repro.tensorlib.layers import Input, Layer
from repro.utils.rng import RngFactory

__all__ = ["LayerGraph", "GraphError"]


class GraphError(RuntimeError):
    """Raised for structural problems: duplicate names, cycles, bad wiring."""


class LayerGraph:
    """A directed acyclic graph of layers.

    Layers are added with :meth:`add` together with their (ordered)
    parents, then the whole graph is shape-inferred and weight-initialized
    in one :meth:`build` call.

    Example
    -------
    >>> from repro.tensorlib import layers as L
    >>> from repro.utils.rng import RngFactory
    >>> g = LayerGraph()
    >>> _ = g.add(L.Input("x", shape=(5,)))
    >>> _ = g.add(L.FullyConnected("fc", units=3), parents=["x"])
    >>> g.build(RngFactory(0))
    >>> import numpy as np
    >>> out = g.forward({"x": np.zeros((2, 5))}, outputs=["fc"])
    >>> out["fc"].shape
    (2, 3)
    """

    def __init__(self) -> None:
        self._nx = nx.DiGraph()
        self._layers: dict[str, Layer] = {}
        self._parents: dict[str, list[str]] = {}
        self._order: list[str] | None = None
        self._activations: dict[str, np.ndarray] = {}

    # -- construction --------------------------------------------------------

    def add(self, layer: Layer, parents: Sequence[str] = ()) -> Layer:
        """Register a layer below the named parents; returns the layer."""
        if layer.name in self._layers:
            raise GraphError(f"duplicate layer name {layer.name!r}")
        if self._order is not None:
            raise GraphError("cannot add layers after build()")
        for p in parents:
            if p not in self._layers:
                raise GraphError(
                    f"layer {layer.name!r} references unknown parent {p!r}"
                )
        if isinstance(layer, Input) and parents:
            raise GraphError(f"Input layer {layer.name!r} cannot have parents")
        self._layers[layer.name] = layer
        self._parents[layer.name] = list(parents)
        self._nx.add_node(layer.name)
        for p in parents:
            self._nx.add_edge(p, layer.name)
        return layer

    def build(self, rngs: RngFactory) -> None:
        """Infer shapes and initialize weights in topological order."""
        if self._order is not None:
            raise GraphError("graph already built")
        if not nx.is_directed_acyclic_graph(self._nx):
            cycle = nx.find_cycle(self._nx)
            raise GraphError(f"layer graph contains a cycle: {cycle}")
        # Deterministic topological order: lexicographic tie-breaking keeps
        # builds (and hence weight init draws) independent of dict order.
        self._order = list(nx.lexicographical_topological_sort(self._nx))
        for name in self._order:
            layer = self._layers[name]
            parent_shapes = [self._layers[p].output_shape for p in self._parents[name]]
            layer.build(parent_shapes, rngs.generator(name))

    # -- introspection ---------------------------------------------------------

    @property
    def layers(self) -> dict[str, Layer]:
        return dict(self._layers)

    @property
    def input_names(self) -> list[str]:
        return [n for n, l in self._layers.items() if isinstance(l, Input)]

    def parents_of(self, name: str) -> list[str]:
        return list(self._parents[name])

    def topological_order(self) -> list[str]:
        if self._order is None:
            raise GraphError("graph not built")
        return list(self._order)

    def all_weights(self) -> list:
        """All weights, in deterministic topological-layer order."""
        out = []
        for name in self.topological_order():
            out.extend(self._layers[name].weights)
        return out

    def flops_per_sample(self) -> int:
        """Total forward FLOPs per sample across all layers."""
        return sum(l.flops_per_sample() for l in self._layers.values() if l.built)

    # -- execution ---------------------------------------------------------------

    def forward(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        training: bool = False,
    ) -> dict[str, np.ndarray]:
        """Run a forward pass.

        Parameters
        ----------
        feeds:
            Batch arrays keyed by ``Input`` layer name.  All inputs must be
            fed and all batches must agree on the leading dimension.
        outputs:
            Names of layers whose activations to return (default: all sink
            layers).
        training:
            Enables dropout masks and batch-statistics updates.
        """
        order = self.topological_order()
        missing = set(self.input_names) - set(feeds)
        if missing:
            raise GraphError(f"missing feeds for inputs: {sorted(missing)}")
        unknown = set(feeds) - set(self.input_names)
        if unknown:
            raise GraphError(f"feeds for non-input layers: {sorted(unknown)}")
        batch_sizes = {np.asarray(v).shape[0] for v in feeds.values()}
        if len(batch_sizes) > 1:
            raise GraphError(f"inconsistent batch sizes in feeds: {batch_sizes}")

        acts: dict[str, np.ndarray] = {}
        for name in order:
            layer = self._layers[name]
            if isinstance(layer, Input):
                acts[name] = layer.feed(feeds[name])
            else:
                parent_acts = [acts[p] for p in self._parents[name]]
                acts[name] = layer.forward(parent_acts, training)
        self._activations = acts

        if outputs is None:
            sinks = [n for n in order if self._nx.out_degree(n) == 0]
            outputs = sinks
        result = {}
        for n in outputs:
            if n not in acts:
                raise GraphError(f"unknown output layer {n!r}")
            result[n] = acts[n]
        return result

    def backward(
        self, output_grads: Mapping[str, np.ndarray]
    ) -> dict[str, np.ndarray]:
        """Back-propagate from the given output gradients.

        Accumulates weight gradients in every traversed layer and returns
        the gradients that reach each ``Input`` layer (useful when chaining
        models, e.g. pushing the adversarial gradient from a discriminator
        into a generator).
        """
        if not self._activations:
            raise GraphError("backward() without a preceding forward()")
        order = self.topological_order()
        grads: dict[str, np.ndarray] = {}
        for name, g in output_grads.items():
            if name not in self._activations:
                raise GraphError(f"gradient for layer {name!r} not in last forward")
            expected = self._activations[name].shape
            g = np.asarray(g, dtype=np.float32)
            if g.shape != expected:
                raise GraphError(
                    f"gradient shape {g.shape} != activation shape {expected} "
                    f"for layer {name!r}"
                )
            grads[name] = g.copy()

        for name in reversed(order):
            layer = self._layers[name]
            if isinstance(layer, Input) or name not in grads:
                continue
            parent_grads = layer.backward(grads.pop(name))
            for p, pg in zip(self._parents[name], parent_grads):
                if p in grads:
                    grads[p] = grads[p] + pg
                else:
                    grads[p] = pg

        input_grads = {n: grads[n] for n in self.input_names if n in grads}
        self._activations = {}
        return input_grads
