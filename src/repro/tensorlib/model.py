"""The Model abstraction: a built layer graph plus its trainable state.

In the paper's terminology a *model* is "a neural network, comprised of a
DAG of tensor operations (layers), trainable parameter tensors (weights),
and data readers"; trainers train models and LTFB exchanges model state
between trainers.  Data readers live in :mod:`repro.datastore`; this class
owns the graph and the state, including (de)serialization used by the
tournament exchange.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.tensorlib.graph import LayerGraph
from repro.tensorlib.layers import Activation, BatchNorm, Dropout, FullyConnected, Input
from repro.tensorlib.weights import Weight
from repro.utils.rng import RngFactory
from repro.utils.serialization import nbytes_of, pack_arrays, unpack_arrays

__all__ = ["Model", "mlp"]


class Model:
    """A built layer graph with named weights.

    Parameters
    ----------
    name:
        Model name; scopes the RNG streams used for weight init and dropout.
    graph:
        An *unbuilt* :class:`LayerGraph`; the model builds it.
    rngs:
        RNG factory. The model derives per-layer streams under
        ``"<name>/<layer>"``.
    """

    def __init__(self, name: str, graph: LayerGraph, rngs: RngFactory) -> None:
        if not name:
            raise ValueError("model name must be non-empty")
        self.name = name
        self.graph = graph
        graph.build(rngs.child(name))
        self._weights = graph.all_weights()
        by_name = {}
        for w in self._weights:
            # Qualify with the model name so weights from different models
            # never alias in optimizer slot state or merged state dicts.
            w.name = f"{name}/{w.name}"
            if w.name in by_name:
                raise ValueError(f"duplicate weight name {w.name!r} in model {name!r}")
            by_name[w.name] = w
        self._weights_by_name = by_name

    # -- execution -------------------------------------------------------

    def forward(
        self,
        feeds: Mapping[str, np.ndarray],
        outputs: Iterable[str] | None = None,
        training: bool = False,
    ) -> dict[str, np.ndarray]:
        return self.graph.forward(feeds, outputs=outputs, training=training)

    def backward(self, output_grads: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
        return self.graph.backward(output_grads)

    def predict(self, feeds: Mapping[str, np.ndarray], output: str) -> np.ndarray:
        """Convenience single-output inference call."""
        return self.forward(feeds, outputs=[output], training=False)[output]

    # -- weights and state -------------------------------------------------

    @property
    def weights(self) -> list[Weight]:
        return list(self._weights)

    @property
    def trainable_weights(self) -> list[Weight]:
        return [w for w in self._weights if w.trainable]

    def weight(self, name: str) -> Weight:
        """Look up a weight by qualified name or model-local suffix."""
        if name in self._weights_by_name:
            return self._weights_by_name[name]
        return self._weights_by_name[f"{self.name}/{name}"]

    def zero_grad(self) -> None:
        for w in self._weights:
            w.zero_grad()

    def param_count(self) -> int:
        return sum(w.size for w in self._weights if w.trainable)

    def state_nbytes(self) -> int:
        """Bytes of the full state — what an LTFB exchange transfers."""
        return nbytes_of({w.name: w.value for w in self._weights})

    def get_state(self) -> dict[str, np.ndarray]:
        """Copy out all weight values (trainable and running statistics)."""
        return {w.name: w.value.copy() for w in self._weights}

    def set_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Load a state produced by :meth:`get_state` (strict name match)."""
        missing = set(self._weights_by_name) - set(state)
        extra = set(state) - set(self._weights_by_name)
        if missing or extra:
            raise ValueError(
                f"state mismatch for model {self.name!r}: "
                f"missing={sorted(missing)}, unexpected={sorted(extra)}"
            )
        for name, value in state.items():
            self._weights_by_name[name].assign(value)

    def serialize_state(self) -> bytes:
        """Pack the state into one buffer (the LTFB wire format)."""
        return pack_arrays(self.get_state())

    def load_state_bytes(self, payload: bytes) -> None:
        self.set_state(unpack_arrays(payload))

    # -- cost accounting -----------------------------------------------------

    def flops_per_sample(self, training: bool = False) -> int:
        """FLOPs per sample: forward only, or forward+backward (3x) when
        training — the standard dense-layer estimate (backward costs two
        matmuls per forward matmul)."""
        fwd = self.graph.flops_per_sample()
        return 3 * fwd if training else fwd

    def __repr__(self) -> str:
        return (
            f"Model({self.name!r}, layers={len(self.graph.layers)}, "
            f"params={self.param_count()})"
        )


def mlp(
    name: str,
    rngs: RngFactory,
    input_dim: int,
    hidden: Sequence[int],
    output_dim: int,
    activation: str = "relu",
    output_activation: str | None = None,
    dropout: float = 0.0,
    batchnorm: bool = False,
    input_name: str = "in",
    output_name: str = "out",
    activation_kwargs: Mapping[str, float] | None = None,
) -> Model:
    """Build a plain multilayer perceptron model.

    The paper's CycleGAN components (forward, inverse, discriminator, and
    the multimodal autoencoder halves) are all "standard fully-connected
    neural networks"; this is the shared constructor for them.

    The returned model has one input layer (``input_name``) and one output
    layer (``output_name``).
    """
    if input_dim <= 0 or output_dim <= 0:
        raise ValueError("input_dim and output_dim must be positive")
    g = LayerGraph()
    g.add(Input(input_name, shape=(input_dim,)))
    prev = input_name
    kwargs = dict(activation_kwargs or {})
    for i, width in enumerate(hidden):
        fc = f"fc{i}"
        g.add(FullyConnected(fc, units=int(width)), parents=[prev])
        prev = fc
        if batchnorm:
            bn = f"bn{i}"
            g.add(BatchNorm(bn), parents=[prev])
            prev = bn
        act = f"act{i}"
        g.add(Activation(act, activation, **kwargs), parents=[prev])
        prev = act
        if dropout > 0.0:
            dp = f"drop{i}"
            g.add(Dropout(dp, dropout), parents=[prev])
            prev = dp
    head = "head"
    g.add(FullyConnected(head, units=output_dim), parents=[prev])
    prev = head
    if output_activation is not None:
        g.add(Activation(output_name, output_activation), parents=[prev])
    else:
        from repro.tensorlib.layers import Identity

        g.add(Identity(output_name), parents=[prev])
    return Model(name, g, rngs)
