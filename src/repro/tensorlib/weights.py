"""Trainable parameter tensors.

A :class:`Weight` pairs a value array with a same-shaped gradient
accumulator.  Layers *accumulate* into ``grad`` during backward (so one
weight may be shared by several layers, and multiple backward passes per
optimizer step — the GAN phases — compose additively); optimizers consume
``grad`` and the training loop calls :meth:`Weight.zero_grad` between
steps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Weight"]


class Weight:
    """A named trainable tensor with a gradient accumulator.

    Parameters
    ----------
    name:
        Unique name within the owning model, e.g. ``"fc1/kernel"``.
    value:
        Initial value; stored as float32 and owned by this object.
    trainable:
        Non-trainable weights (e.g. batch-norm running statistics) are part
        of the model state exchanged by LTFB but are skipped by optimizers.
    """

    __slots__ = ("name", "value", "grad", "trainable")

    def __init__(self, name: str, value: np.ndarray, trainable: bool = True) -> None:
        if not name:
            raise ValueError("weight name must be non-empty")
        self.name = name
        self.value = np.asarray(value, dtype=np.float32).copy()
        self.grad = np.zeros_like(self.value)
        self.trainable = bool(trainable)

    @property
    def shape(self) -> tuple[int, ...]:
        return self.value.shape

    @property
    def size(self) -> int:
        return int(self.value.size)

    @property
    def nbytes(self) -> int:
        return int(self.value.nbytes)

    def zero_grad(self) -> None:
        """Reset the gradient accumulator in place (no reallocation)."""
        self.grad[...] = 0.0

    def accumulate_grad(self, g: np.ndarray) -> None:
        """Add a gradient contribution in place."""
        if g.shape != self.grad.shape:
            raise ValueError(
                f"gradient shape {g.shape} does not match weight "
                f"{self.name!r} shape {self.grad.shape}"
            )
        self.grad += g

    def assign(self, value: np.ndarray) -> None:
        """Overwrite the value in place (shape-checked)."""
        value = np.asarray(value, dtype=np.float32)
        if value.shape != self.value.shape:
            raise ValueError(
                f"cannot assign shape {value.shape} to weight {self.name!r} "
                f"of shape {self.value.shape}"
            )
        self.value[...] = value

    def __repr__(self) -> str:
        kind = "trainable" if self.trainable else "frozen"
        return f"Weight({self.name!r}, shape={self.shape}, {kind})"
