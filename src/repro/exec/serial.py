"""SerialBackend: the reference in-process, one-at-a-time executor."""

from __future__ import annotations

from repro.exec.base import ExecutionBackend, relay_worker_alerts
from repro.telemetry.resources import emit_resource_sample

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Train trainers sequentially in the driver process.

    This is exactly the pre-backend behaviour of the drivers: trainers
    emit their telemetry directly into the driver's hub as they train,
    and the driver's trainer objects are the executing state, so
    ``mark_dirty`` has nothing to do.  Span tracing needs no relay
    plumbing either — trainers see the hub itself as their sink, so the
    hub's tracer (and its clock) is used directly.
    """

    name = "serial"

    def __init__(
        self,
        max_workers: int | None = None,
        prefetch_depth: int | None = None,
    ) -> None:
        # max_workers is accepted (and ignored) so every backend shares
        # one construction signature; serial is definitionally 1 slot.
        # prefetch_depth still matters here: the data pipeline can
        # materialize ahead even when trainers run one at a time.
        super().__init__(prefetch_depth=prefetch_depth)

    def _on_bind(self) -> None:
        for t in self._trainers:
            t.backend_name = self.name
            t.worker_index = 0

    def train_round(
        self, round_index: int, n_steps: int
    ) -> dict[str, dict[str, float]]:
        results = {}
        for t in self._trainers:
            results[t.name] = t.train_steps(n_steps)
            if self._telemetry is not None and self._telemetry.active:
                relay_worker_alerts(
                    self._telemetry, t.name, results[t.name],
                    backend=self.name, worker=0,
                )
        # All trainer work runs in the driver process, so one sample per
        # train phase is the complete resource picture.
        emit_resource_sample(
            self._telemetry, source="driver", backend=self.name, worker=0
        )
        return results
