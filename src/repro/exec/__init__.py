"""Execution backends: *where* population trainer work runs.

The population drivers (:mod:`repro.core.driver`) describe *what* a round
computes — train every trainer for an interval, hold the tournament,
evaluate — while this subsystem decides *where/how* the per-trainer work
executes.  The paper's core scaling claim (Jacobs et al., CLUSTER 2019)
is that LTFB populations scale because trainers are independent between
tournaments; the backends exploit exactly that independence:

- :class:`SerialBackend` — one trainer after another in the driver
  process (the reference behaviour, and the default);
- :class:`ThreadBackend` — a thread pool; NumPy/BLAS kernels release the
  GIL, so train intervals of different trainers overlap;
- :class:`ProcessBackend` — a persistent ``multiprocessing`` worker pool
  holding trainer replicas, fed per-round train/apply commands, with
  state shipped via the checkpoint flat-buffer codec and telemetry
  relayed back into the driver's hub.

All three produce bit-identical results at round boundaries: within a
round trainers share no mutable state (each has its own model, optimizers
and RNG streams), so execution order/placement cannot change the math.
``resolve_backend`` coerces the driver-facing spec (``None``, a name, or
an instance) into a backend.
"""

from repro.exec.base import (
    BACKEND_NAMES,
    EventRecorder,
    ExecutionBackend,
    resolve_backend,
)
from repro.exec.serial import SerialBackend
from repro.exec.thread import ThreadBackend
from repro.exec.process import ProcessBackend

__all__ = [
    "ExecutionBackend",
    "EventRecorder",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "BACKEND_NAMES",
]
