"""ThreadBackend: overlap train intervals on a thread pool.

NumPy/BLAS kernels release the GIL for the matrix products that dominate
a train step, so threads genuinely overlap trainer work without any
state shipping.  The one piece of *shared mutable* state between trainers
is the frozen autoencoder: its weights never change, but its layer graph
caches activations and gradient buffers during ``train_step`` (the
generator phase back-propagates *through* the frozen decoder).  The
backend therefore gives every trainer a private deep copy of the
autoencoder for the duration of the run — weight-identical, so results
are bit-identical to serial — and restores the shared instance on
release.
"""

from __future__ import annotations

import copy
import os
from concurrent.futures import ThreadPoolExecutor, as_completed

from repro.exec.base import (
    EventRecorder,
    ExecutionBackend,
    relay_worker_alerts,
)
from repro.telemetry.resources import emit_resource_sample

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """Train trainers concurrently on a :class:`ThreadPoolExecutor`.

    During each train phase every trainer's telemetry sink is swapped for
    a private :class:`~repro.exec.base.EventRecorder`; after the barrier
    the recorders replay into the driver's hub in population order, so a
    threaded trace is indistinguishable from a serial one apart from the
    ``backend``/``worker`` attributes and wall-clock values.
    """

    name = "thread"

    def __init__(
        self,
        max_workers: int | None = None,
        prefetch_depth: int | None = None,
    ) -> None:
        super().__init__(prefetch_depth=prefetch_depth)
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._max_workers = max_workers
        self._pool: ThreadPoolExecutor | None = None
        self._shared_autoencoders: list = []

    @property
    def num_workers(self) -> int:
        if not self._trainers:
            return self._max_workers or (os.cpu_count() or 1)
        return min(
            self._max_workers or (os.cpu_count() or 1), len(self._trainers)
        )

    def _on_bind(self) -> None:
        n = self.num_workers
        self._pool = ThreadPoolExecutor(
            max_workers=n, thread_name_prefix="repro-exec"
        )
        self._shared_autoencoders = []
        for i, t in enumerate(self._trainers):
            t.backend_name = self.name
            t.worker_index = self.worker_of(i, n)
            # Privatize the (weight-frozen but cache-mutable) autoencoder.
            self._shared_autoencoders.append(t.surrogate.autoencoder)
            t.surrogate.autoencoder = copy.deepcopy(t.surrogate.autoencoder)

    def _on_release(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for t, shared in zip(self._trainers, self._shared_autoencoders):
            t.surrogate.autoencoder = shared
        self._shared_autoencoders = []

    def train_round(
        self, round_index: int, n_steps: int
    ) -> dict[str, dict[str, float]]:
        assert self._pool is not None and self._telemetry is not None
        hub_tracer = self._telemetry.tracer
        recorders = []
        saved_hubs = []
        for t in self._trainers:
            rec = EventRecorder()
            if hub_tracer is not None:
                # Same process, same monotonic clock: a child tracer
                # sharing the hub's epoch needs no realignment at replay.
                rec.tracer = hub_tracer.child(rec)
            recorders.append(rec)
            saved_hubs.append(t.telemetry)
            t.telemetry = rec
        try:
            futures = [
                self._pool.submit(t.train_steps, n_steps)
                for t in self._trainers
            ]
            losses = [f.result() for f in futures]
        finally:
            for t, hub in zip(self._trainers, saved_hubs):
                t.telemetry = hub
        for t, rec, loss in zip(self._trainers, recorders, losses):
            # Fast-flag non-finite losses into the recorder so the alert
            # replays in-order with the trainer's own events.
            relay_worker_alerts(
                rec, t.name, loss, backend=self.name, worker=t.worker_index
            )
            rec.replay_into(self._telemetry)
        # Threads share the driver's address space, so one driver-process
        # sample per train phase covers every worker.
        emit_resource_sample(
            self._telemetry, source="driver", backend=self.name, worker=0
        )
        return {t.name: loss for t, loss in zip(self._trainers, losses)}

    def train_round_async(
        self, round_index: int, n_steps: int, on_ready
    ) -> dict[str, dict[str, float]]:
        """Barrier-free: report trainers in true completion order.

        Each trainer's recorder replays (and its hub is restored) the
        moment its future resolves, *before* ``on_ready`` — so a
        tournament run from the callback touches only finished trainers
        and its telemetry lands after theirs.  Other trainers keep
        training on the pool throughout.
        """
        assert self._pool is not None and self._telemetry is not None
        hub_tracer = self._telemetry.tracer
        swapped: dict = {}
        for t in self._trainers:
            rec = EventRecorder()
            if hub_tracer is not None:
                rec.tracer = hub_tracer.child(rec)
            swapped[t.name] = (t, rec, t.telemetry)
            t.telemetry = rec
        losses: dict[str, dict[str, float]] = {}
        try:
            futures = {
                self._pool.submit(t.train_steps, n_steps): t.name
                for t, _, _ in swapped.values()
            }
            for future in as_completed(futures):
                name = futures[future]
                t, rec, hub = swapped.pop(name)
                t.telemetry = hub
                losses[name] = future.result()
                relay_worker_alerts(
                    rec, name, losses[name],
                    backend=self.name, worker=t.worker_index,
                )
                rec.replay_into(self._telemetry)
                on_ready(name)
        finally:
            for t, _, hub in swapped.values():  # only on error paths
                t.telemetry = hub
        emit_resource_sample(
            self._telemetry, source="driver", backend=self.name, worker=0
        )
        return {t.name: losses[t.name] for t in self._trainers}
