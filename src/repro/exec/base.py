"""The :class:`ExecutionBackend` contract and shared relay plumbing.

A backend's lifecycle mirrors one driver run: the driver calls
:meth:`~ExecutionBackend.bind` with its trainers and telemetry hub before
the first round, :meth:`~ExecutionBackend.train_round` once per round,
:meth:`~ExecutionBackend.mark_dirty` whenever it mutates a trainer's
model/optimizer state outside the backend (tournament adoption), and
:meth:`~ExecutionBackend.release` after the last round.

Backends must preserve two invariants the drivers rely on:

- **round-boundary determinism** — after ``train_round`` returns, the
  driver-side trainer objects hold exactly the state a serial run would
  have produced (trainers are independent within a round and all RNG is
  scoped per trainer, so this is achievable for any placement);
- **telemetry ordering** — events produced during the train phase are
  delivered to the driver's hub grouped per trainer, in population order,
  exactly as the serial loop emits them.

The barrier-free variant, :meth:`~ExecutionBackend.train_round_async`,
relaxes the second invariant by design: trainer readiness is reported in
*completion* order (population order on the serial default), telemetry
replays per trainer as it completes, and the driver's ``on_ready``
callback may run tournaments against already-finished trainers while the
rest of the round is still training.  State determinism still holds —
only finished trainers are touched, and trainers are independent within
a round.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

from repro.telemetry.events import EVENT_TYPES

if TYPE_CHECKING:
    from repro.core.trainer import Trainer
    from repro.telemetry import TelemetryHub

__all__ = [
    "ExecutionBackend",
    "EventRecorder",
    "relay_worker_alerts",
    "resolve_backend",
    "BACKEND_NAMES",
]


def relay_worker_alerts(
    sink, trainer_name: str, losses, *, backend: str, worker: int
) -> None:
    """Fast-flag non-finite losses at the execution site.

    Every backend calls this right after a trainer's interval, with the
    sink the trainer just emitted into — the driver's hub (serial) or the
    interval's :class:`EventRecorder` (thread/process, where the ``alert``
    event rides the existing replay path back to the driver).  A worker
    process thus reports a NaN the moment it happens, without the driver
    having to re-scan losses, and the live plane's
    :class:`~repro.telemetry.live.LiveAggregator` routes the relayed
    alert (``origin="worker"``) through its engine exactly once.
    """
    import math

    if sink is None:
        return
    for term, value in (losses or {}).items():
        if not math.isfinite(float(value)):
            sink.emit(
                "alert",
                kind="nan_loss",
                severity="critical",
                source="train",
                round=None,
                trainer=trainer_name,
                message=(
                    f"worker {worker} ({backend}): trainer {trainer_name} "
                    f"loss term {term!r} is {float(value)}"
                ),
                value=None,
                threshold=None,
                origin="worker",
            )
            return


class EventRecorder:
    """A hub stand-in that buffers ``(type, payload)`` pairs.

    Parallel backends attach one per trainer during the train phase so
    instrumented components can emit off the driver thread/process; the
    backend then replays the buffer into the real hub, in population
    order, restoring the serial trace ordering.  Payloads must stay
    picklable (they cross process boundaries under the process backend).

    Recorders mirror the hub's :attr:`~repro.telemetry.events.
    TelemetryHub.tracer` attribute: instrumented components look up
    ``getattr(sink, "tracer", None)``, so a backend that wants spans from
    worker-side code points a tracer at the recorder (thread backend: a
    ``child()`` of the hub tracer sharing its clock; process backend: the
    worker's own tracer, realigned at relay time).
    """

    def __init__(self) -> None:
        self.events: list[tuple[str, dict]] = []
        self.tracer = None

    def emit(self, event_type: str, /, **payload) -> None:
        if event_type not in EVENT_TYPES:
            raise ValueError(
                f"unknown event type {event_type!r}; "
                f"expected one of {sorted(EVENT_TYPES)}"
            )
        self.events.append((event_type, payload))

    def replay_into(self, hub: "TelemetryHub") -> None:
        for event_type, payload in self.events:
            hub.emit(event_type, **payload)
        self.events.clear()


class ExecutionBackend(ABC):
    """Where/how per-trainer population work executes.

    Subclasses define :attr:`name` (the CLI/telemetry identifier), the
    worker count they actually use, and the four lifecycle hooks.  A
    backend instance is reusable: ``bind`` after ``release`` starts a
    fresh session (the process backend re-spawns its pool).
    """

    name: str = "abstract"

    def __init__(self, prefetch_depth: int | None = None) -> None:
        if prefetch_depth is not None and prefetch_depth < 0:
            raise ValueError(
                f"prefetch_depth must be >= 0, got {prefetch_depth}"
            )
        # Data-pipeline depth imposed on every bound trainer for the
        # duration of a run (None = leave each trainer's own depth).  Any
        # depth is bit-identical: batch plans are independent of
        # materialization (see repro.datastore.pipeline).
        self.prefetch_depth = prefetch_depth
        self._trainers: list["Trainer"] = []
        self._telemetry: "TelemetryHub | None" = None
        self._bound = False
        self._saved_depths: list[int] = []

    # -- lifecycle -----------------------------------------------------------

    def bind(
        self, trainers: Sequence["Trainer"], telemetry: "TelemetryHub"
    ) -> None:
        """Attach to a driver's population for the duration of one run."""
        if self._bound:
            raise RuntimeError(f"{self.name} backend is already bound")
        self._trainers = list(trainers)
        self._telemetry = telemetry
        self._bound = True
        if self.prefetch_depth is not None:
            self._saved_depths = [t.prefetch_depth for t in self._trainers]
            for t in self._trainers:
                t.set_prefetch_depth(self.prefetch_depth)
        self._on_bind()

    def release(self) -> None:
        """Detach from the population; idempotent."""
        if not self._bound:
            return
        try:
            self._on_release()
        finally:
            if self._saved_depths:
                # Restoring the pre-bind depth also folds any live
                # prefetch pipeline back into its plan cursor (stopping
                # its thread) whenever the depth actually changed.
                for t, depth in zip(self._trainers, self._saved_depths):
                    t.set_prefetch_depth(depth)
            self._saved_depths = []
            self._trainers = []
            self._telemetry = None
            self._bound = False

    def _on_bind(self) -> None:
        """Subclass hook: start workers, tag trainers, ship replicas."""

    def _on_release(self) -> None:
        """Subclass hook: stop workers, restore trainer attributes."""

    # -- per-round work -------------------------------------------------------

    @abstractmethod
    def train_round(
        self, round_index: int, n_steps: int
    ) -> dict[str, dict[str, float]]:
        """Train every trainer ``n_steps``; return per-trainer mean losses.

        On return the driver-side trainer objects hold the post-train
        state (weights, optimizers, counters), whatever process executed
        the steps.  The result dict is keyed by trainer name in
        population order.
        """

    def train_round_async(
        self,
        round_index: int,
        n_steps: int,
        on_ready,
    ) -> dict[str, dict[str, float]]:
        """Barrier-free train phase: call ``on_ready(trainer_name)`` on
        the driver thread as each trainer's interval completes, instead of
        waiting for the whole population.

        The default implementation is the degenerate (but correct)
        barrier-full form — train everyone, then report readiness in
        population order — which is exactly the deterministic semantics
        the serial backend wants: trainers are independent within a round,
        so pairing trainer 0 and 1 before trainer 2 trains yields the
        same states as pairing after.  Parallel backends override this to
        report true completion order.

        ``on_ready`` may mutate the finished trainer (tournament
        adoption) and call :meth:`mark_dirty`; backends must tolerate
        both mid-round.
        """
        losses = self.train_round(round_index, n_steps)
        for t in self._trainers:
            on_ready(t.name)
        return losses

    def mark_dirty(self, trainer_name: str) -> None:
        """The driver mutated this trainer's model/optimizer state.

        Called after tournament adoption; backends holding remote
        replicas must re-sync that trainer before its next train step.
        In-process backends need not do anything — the driver's trainer
        objects *are* the executing state.
        """

    def ingest_admit(self, samples: Sequence, version: int) -> None:
        """The driver's sample universe grew: streamed ``samples`` were
        admitted and the universe is now at ``version``.

        Called by a :class:`~repro.ingest.StreamingSource` poll, after the
        driver-side readers have admitted the batch and suspended their
        pipelines.  Backends holding remote replicas must mirror the
        growth there (admit into each replica reader's universe/store and
        suspend replica pipelines) so worker-side epoch plans freeze the
        same snapshots the driver's would.  In-process backends need not
        do anything — the driver's trainer objects (and hence readers and
        universe) *are* the executing state.
        """

    @property
    def num_workers(self) -> int:
        """How many concurrent execution slots this backend uses."""
        return 1

    # -- convenience -----------------------------------------------------------

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "bound" if self._bound else "idle"
        return f"{type(self).__name__}({state}, workers={self.num_workers})"

    @staticmethod
    def worker_of(trainer_index: int, num_workers: int) -> int:
        """The deterministic trainer -> worker-slot assignment every
        backend uses (round-robin), so traces are placement-stable."""
        return trainer_index % max(1, num_workers)


#: Names accepted by :func:`resolve_backend` and the ``--backend`` CLI flag.
BACKEND_NAMES = ("serial", "thread", "process")


def resolve_backend(
    spec: "ExecutionBackend | str | None",
    max_workers: int | None = None,
    prefetch_depth: int | None = None,
) -> "ExecutionBackend":
    """Coerce a backend spec into an :class:`ExecutionBackend`.

    ``None`` means the serial default; a string names one of
    :data:`BACKEND_NAMES`; an instance passes through unchanged (in which
    case ``max_workers``/``prefetch_depth`` must not also be given — the
    instance already chose its pool size and pipeline depth).
    """
    if isinstance(spec, ExecutionBackend):
        if max_workers is not None:
            raise ValueError(
                "max_workers cannot override an already-constructed backend"
            )
        if prefetch_depth is not None:
            raise ValueError(
                "prefetch_depth cannot override an already-constructed backend"
            )
        return spec
    if spec is None:
        spec = "serial"
    if isinstance(spec, str):
        try:
            cls = _registry()[spec]
        except KeyError:
            raise ValueError(
                f"unknown execution backend {spec!r}; "
                f"expected one of {BACKEND_NAMES}"
            ) from None
        return cls(max_workers=max_workers, prefetch_depth=prefetch_depth)
    raise TypeError(
        f"backend must be None, a name, or an ExecutionBackend, got {spec!r}"
    )


def _registry() -> dict:
    # Deferred import: serial/thread/process import this module.
    from repro.exec.process import ProcessBackend
    from repro.exec.serial import SerialBackend
    from repro.exec.thread import ThreadBackend

    return {
        "serial": SerialBackend,
        "thread": ThreadBackend,
        "process": ProcessBackend,
    }
