"""ProcessBackend: a persistent multiprocessing pool of trainer replicas.

Layout: the population is split round-robin over N worker processes; each
worker holds live replicas of its trainers (shipped once, at bind time)
and services per-round commands over a pipe:

- ``train`` — run the round's train interval on every local replica, in
  local population order, and reply with per-trainer losses, the buffered
  telemetry events, a state snapshot
  (:func:`~repro.core.checkpoint.capture_exec_state`, reader included),
  and one ``resource_sample`` payload of the *worker process itself*
  (peak RSS / CPU; see :mod:`repro.telemetry.resources`) which the driver
  re-emits into its hub after the trainer events.
  The command carries a *tracing* flag: when the driver's hub has a span
  tracer, workers produce spans too (each replica's recorder gets a child
  of one persistent worker tracer) and the reply includes the worker
  tracer's wall-clock origin.  Worker monotonic clocks are unrelated to
  the driver's, so at relay time the driver shifts every span's ``t0_s``
  by the wall-clock offset between the two origins — aligning all worker
  timelines onto the hub's axis (clock-offset alignment);
- ``train_one`` — the barrier-free variant: run the interval on *one*
  named replica and reply immediately with that trainer's losses, events,
  state snapshot, and the worker tracer's wall origin.  The driver queues
  one ``train_one`` per local trainer and multiplexes replies across all
  worker pipes as they arrive, reporting readiness in true completion
  order (see :meth:`ProcessBackend.train_round_async`);
- ``sample`` — reply with one ``resource_sample`` payload of the worker
  process (queued after a round of ``train_one`` commands, where the
  ``train`` command would have included it);
- ``apply`` — load driver-pushed state deltas (tournament adoptions) into
  named replicas, leaving their in-flight data pipelines untouched;
- ``admit`` — grow the worker-side sample universe: admit driver-streamed
  samples into every replica reader that has an ``ingest_admit`` hook and
  suspend its data pipeline, mirroring what the driver-side
  :class:`~repro.ingest.StreamingSource` poll just did;
- ``stop`` — exit.

Mid-epoch trainers ship cleanly: pickling a trainer folds its live data
pipeline into a serializable plan cursor (see ``Trainer.__getstate__``),
and the worker replica rebuilds the pipeline — at the trainer's prefetch
depth — on its first batch.

The driver-side trainers stay authoritative for everything the driver
computes (tournaments, evaluation, checkpoints): after every train
command their model/optimizer/counter/reader-RNG state is overwritten
with the worker snapshot, so the two copies agree at round boundaries and
the run is bit-identical to serial.  Telemetry events cross back over the
reply and are re-emitted into the driver's hub in population order.

Trainers within one worker share one pickled object graph, so replicas of
the frozen autoencoder stay shared per worker exactly as in the serial
process (and are mutated only by one trainer at a time, since a worker is
sequential).
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import traceback

from repro.exec.base import EventRecorder, ExecutionBackend

__all__ = ["ProcessBackend"]

_JOIN_TIMEOUT_S = 10.0


def _worker_main(conn, worker_index: int, trainers_payload: bytes) -> None:
    """Entry point of one worker process: replicas + command loop."""
    from repro.core.checkpoint import apply_exec_state, capture_exec_state
    from repro.exec.base import relay_worker_alerts
    from repro.telemetry.resources import sample_resources

    trainers = pickle.loads(trainers_payload)
    by_name = {t.name: t for t in trainers}
    for t in trainers:
        t.backend_name = "process"
        t.worker_index = worker_index
    # One persistent tracer per worker (lazily created on the first traced
    # train command) so every span this process ever produces shares one
    # epoch/wall-origin pair — the driver aligns them all with a single
    # per-worker offset.
    base_tracer = None
    try:
        while True:
            msg = conn.recv()
            cmd = msg[0]
            try:
                if cmd == "train":
                    n_steps = msg[1]
                    tracing = bool(msg[2]) if len(msg) > 2 else False
                    if tracing and base_tracer is None:
                        from repro.telemetry.spans import Tracer

                        base_tracer = Tracer(None)
                    results = []
                    for t in trainers:
                        recorder = EventRecorder()
                        if tracing:
                            recorder.tracer = base_tracer.child(recorder)
                        t.telemetry = recorder
                        try:
                            losses = t.train_steps(n_steps)
                        finally:
                            t.telemetry = None
                        # Worker-side alert relay: a NaN is flagged where
                        # it happened and rides the event replay home.
                        relay_worker_alerts(
                            recorder, t.name, losses,
                            backend="process", worker=worker_index,
                        )
                        results.append(
                            (
                                t.name,
                                losses,
                                # Snapshot: a live prefetch thread may still
                                # be appending to the recorder.
                                list(recorder.events),
                                capture_exec_state(t, include_reader=True),
                            )
                        )
                    wall_origin = base_tracer.wall_origin if tracing else None
                    # Sample *this* worker process after the interval; the
                    # driver re-emits it like it replays trainer events.
                    resource_payload = {
                        "source": f"worker{worker_index}",
                        "backend": "process",
                        "worker": worker_index,
                        **sample_resources(),
                    }
                    conn.send(("ok", (results, wall_origin, resource_payload)))
                elif cmd == "train_one":
                    name, n_steps = msg[1], msg[2]
                    tracing = bool(msg[3]) if len(msg) > 3 else False
                    if tracing and base_tracer is None:
                        from repro.telemetry.spans import Tracer

                        base_tracer = Tracer(None)
                    t = by_name[name]
                    recorder = EventRecorder()
                    if tracing:
                        recorder.tracer = base_tracer.child(recorder)
                    t.telemetry = recorder
                    try:
                        losses = t.train_steps(n_steps)
                    finally:
                        t.telemetry = None
                    relay_worker_alerts(
                        recorder, t.name, losses,
                        backend="process", worker=worker_index,
                    )
                    wall_origin = base_tracer.wall_origin if tracing else None
                    conn.send(
                        (
                            "ok",
                            (
                                name,
                                losses,
                                list(recorder.events),
                                capture_exec_state(t, include_reader=True),
                                wall_origin,
                            ),
                        )
                    )
                elif cmd == "sample":
                    conn.send(
                        (
                            "ok",
                            {
                                "source": f"worker{worker_index}",
                                "backend": "process",
                                "worker": worker_index,
                                **sample_resources(),
                            },
                        )
                    )
                elif cmd == "apply":
                    for name, payload in msg[1]:
                        apply_exec_state(by_name[name], payload)
                    conn.send(("ok", None))
                elif cmd == "admit":
                    samples, version = msg[1], msg[2]
                    # Replicas in this worker share one pickled object
                    # graph, so readers sharing a universe admit once and
                    # the version cross-check passes idempotently.
                    for t in trainers:
                        reader = getattr(t, "reader", None)
                        admit = getattr(reader, "ingest_admit", None)
                        if admit is None:
                            continue
                        admit(samples, version=version)
                        t.suspend_data_pipeline()
                    conn.send(("ok", None))
                elif cmd == "stop":
                    conn.send(("ok", None))
                    return
                else:  # pragma: no cover - protocol misuse
                    conn.send(("error", f"unknown command {cmd!r}"))
            except Exception:
                conn.send(("error", traceback.format_exc()))
    except (EOFError, KeyboardInterrupt):  # driver went away
        return
    finally:
        conn.close()


class ProcessBackend(ExecutionBackend):
    """Train trainers on a persistent pool of worker processes.

    Parameters
    ----------
    max_workers:
        Worker process count; defaults to ``min(cpu_count, len(trainers))``.
    mp_context:
        ``multiprocessing`` start-method name (``"fork"``/``"spawn"``/
        ``"forkserver"``); ``None`` uses the platform default.  Replicas
        are shipped as explicit pickle payloads either way, so behaviour
        is start-method independent.
    """

    name = "process"

    def __init__(
        self,
        max_workers: int | None = None,
        mp_context: str | None = None,
        prefetch_depth: int | None = None,
    ) -> None:
        super().__init__(prefetch_depth=prefetch_depth)
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self._max_workers = max_workers
        self._mp_context = mp_context
        self._procs: list = []
        self._conns: list = []
        self._owner: dict[str, int] = {}  # trainer name -> worker index
        self._dirty: set[str] = set()

    @property
    def num_workers(self) -> int:
        if not self._trainers:
            return self._max_workers or (os.cpu_count() or 1)
        return min(
            self._max_workers or (os.cpu_count() or 1), len(self._trainers)
        )

    # -- lifecycle -----------------------------------------------------------

    def _on_bind(self) -> None:
        ctx = multiprocessing.get_context(self._mp_context)
        n = self.num_workers
        groups: list[list] = [[] for _ in range(n)]
        for i, t in enumerate(self._trainers):
            wid = self.worker_of(i, n)
            groups[wid].append(t)
            self._owner[t.name] = wid
            t.backend_name = self.name
            t.worker_index = wid
        self._procs, self._conns = [], []
        for wid, group in enumerate(groups):
            # Strip driver-side telemetry before pickling (hubs may hold
            # open files); one payload per worker keeps objects shared by
            # its trainers (the frozen autoencoder) shared in the replica.
            saved = [t.telemetry for t in group]
            try:
                for t in group:
                    t.telemetry = None
                payload = pickle.dumps(group, protocol=pickle.HIGHEST_PROTOCOL)
            finally:
                for t, hub in zip(group, saved):
                    t.telemetry = hub
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, wid, payload),
                daemon=True,
                name=f"repro-exec-{wid}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._dirty = set()

    def _on_release(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(_JOIN_TIMEOUT_S):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT_S)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join()
        self._procs, self._conns = [], []
        self._owner, self._dirty = {}, set()

    # -- protocol ---------------------------------------------------------------

    def _send(self, worker_index: int, msg) -> None:
        try:
            self._conns[worker_index].send(msg)
        except (BrokenPipeError, OSError):
            raise RuntimeError(
                f"execution worker {worker_index} died unexpectedly"
            ) from None

    def _recv(self, worker_index: int):
        try:
            tag, data = self._conns[worker_index].recv()
        except EOFError:
            raise RuntimeError(
                f"execution worker {worker_index} died unexpectedly"
            ) from None
        if tag == "error":
            raise RuntimeError(
                f"execution worker {worker_index} failed:\n{data}"
            )
        return data

    def _flush_dirty(self) -> None:
        if not self._dirty:
            return
        from repro.core.checkpoint import capture_exec_state

        by_name = {t.name: t for t in self._trainers}
        per_worker: dict[int, list] = {}
        for name in sorted(self._dirty):
            payload = capture_exec_state(by_name[name], include_reader=False)
            per_worker.setdefault(self._owner[name], []).append((name, payload))
        for wid, updates in per_worker.items():
            self._send(wid, ("apply", updates))
        for wid in per_worker:
            self._recv(wid)
        self._dirty.clear()

    def mark_dirty(self, trainer_name: str) -> None:
        if trainer_name not in self._owner:
            raise ValueError(f"unknown trainer {trainer_name!r}")
        self._dirty.add(trainer_name)

    def ingest_admit(self, samples, version: int) -> None:
        """Broadcast freshly admitted streamed samples to every worker.

        Each worker grows its replica readers' (shared) universe to the
        same ``version`` the driver just reached and suspends replica
        pipelines, so the next worker-side epoch plan freezes the same
        snapshot the driver's plan cursor records.  Samples travel as
        plain :class:`~repro.ingest.StreamedSample` payloads over the
        pipe; admission is idempotent on sample id.
        """
        payload = list(samples)
        for wid in range(len(self._conns)):
            self._send(wid, ("admit", payload, version))
        for wid in range(len(self._conns)):
            self._recv(wid)

    # -- per-round work -------------------------------------------------------

    def train_round(
        self, round_index: int, n_steps: int
    ) -> dict[str, dict[str, float]]:
        assert self._telemetry is not None
        from repro.core.checkpoint import apply_exec_state
        from repro.telemetry.events import RESOURCE_SAMPLE, SPAN

        self._flush_dirty()
        tracing = self._telemetry.tracer is not None
        for wid in range(len(self._conns)):
            self._send(wid, ("train", n_steps, tracing))
        losses_by_name: dict[str, dict[str, float]] = {}
        events_by_name: dict[str, list] = {}
        worker_samples: list[dict] = []
        for wid in range(len(self._conns)):
            results, worker_wall, resource_payload = self._recv(wid)
            worker_samples.append(resource_payload)
            # Clock-offset alignment: worker span timestamps are offsets
            # from the *worker* tracer's epoch; shifting by the wall-clock
            # delta between the worker's and the hub's origins places them
            # on the hub's time axis (good to NTP-ish precision, which is
            # plenty within one host).
            offset = 0.0
            if worker_wall is not None:
                offset = worker_wall - self._telemetry.wall_origin
            for name, losses, events, state in results:
                trainer = next(t for t in self._trainers if t.name == name)
                apply_exec_state(trainer, state)
                losses_by_name[name] = losses
                if offset:
                    events = [
                        (etype, {**payload, "t0_s": payload["t0_s"] + offset})
                        if etype == SPAN
                        else (etype, payload)
                        for etype, payload in events
                    ]
                events_by_name[name] = events
        # Replay worker telemetry in population order, matching serial.
        for t in self._trainers:
            for event_type, payload in events_by_name.get(t.name, ()):
                self._telemetry.emit(event_type, **payload)
        # Then one resource series entry per worker process, worker order.
        if self._telemetry.active:
            for payload in worker_samples:
                self._telemetry.emit(RESOURCE_SAMPLE, **payload)
        return {t.name: losses_by_name[t.name] for t in self._trainers}

    def train_round_async(
        self, round_index: int, n_steps: int, on_ready
    ) -> dict[str, dict[str, float]]:
        """Barrier-free: one ``train_one`` command per trainer, replies
        multiplexed across worker pipes in arrival order.

        Workers service their queued commands sequentially, so a worker's
        trainers complete one at a time while other workers' trainers
        complete concurrently — the driver learns about each the moment
        its reply lands, applies the state snapshot, replays that
        trainer's telemetry, and only then calls ``on_ready`` (tournament
        adoptions from the callback are pushed with the next round's
        dirty flush).  A trailing ``sample`` command per worker replaces
        the resource payload the barrier protocol piggybacks on ``train``.
        """
        assert self._telemetry is not None
        from multiprocessing.connection import wait as conn_wait

        from repro.core.checkpoint import apply_exec_state
        from repro.telemetry.events import RESOURCE_SAMPLE, SPAN

        self._flush_dirty()
        tracing = self._telemetry.tracer is not None
        by_name = {t.name: t for t in self._trainers}
        pending: dict = {}  # conn -> number of outstanding replies
        for t in self._trainers:
            wid = self._owner[t.name]
            self._send(wid, ("train_one", t.name, n_steps, tracing))
            conn = self._conns[wid]
            pending[conn] = pending.get(conn, 0) + 1
        for wid in range(len(self._conns)):
            self._send(wid, ("sample",))
            conn = self._conns[wid]
            pending[conn] = pending.get(conn, 0) + 1
        conn_to_wid = {conn: wid for wid, conn in enumerate(self._conns)}
        losses_by_name: dict[str, dict[str, float]] = {}
        worker_samples: list[tuple[int, dict]] = []
        while pending:
            for conn in conn_wait(list(pending)):
                wid = conn_to_wid[conn]
                data = self._recv(wid)
                pending[conn] -= 1
                if pending[conn] == 0:
                    del pending[conn]
                if isinstance(data, dict):  # the trailing resource sample
                    worker_samples.append((wid, data))
                    continue
                name, losses, events, state, worker_wall = data
                apply_exec_state(by_name[name], state)
                losses_by_name[name] = losses
                offset = 0.0
                if worker_wall is not None:
                    offset = worker_wall - self._telemetry.wall_origin
                for event_type, payload in events:
                    if event_type == SPAN and offset:
                        payload = {**payload, "t0_s": payload["t0_s"] + offset}
                    self._telemetry.emit(event_type, **payload)
                on_ready(name)
        if self._telemetry.active:
            for _, payload in sorted(worker_samples, key=lambda ws: ws[0]):
                self._telemetry.emit(RESOURCE_SAMPLE, **payload)
        return {t.name: losses_by_name[t.name] for t in self._trainers}
