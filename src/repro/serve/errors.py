"""Typed failures of the serving plane.

Every way a request can fail maps to one exception type, so clients and
load generators classify outcomes without string matching: rejected at
the door (backpressure), expired in the queue (deadline), or arrived
after shutdown.  All inherit :class:`ServeError`.
"""

from __future__ import annotations

__all__ = [
    "ServeError",
    "ServerClosedError",
    "ServerOverloadedError",
    "DeadlineExceededError",
]


class ServeError(RuntimeError):
    """Base class of serving-plane failures."""


class ServerOverloadedError(ServeError):
    """The request queue is full; the request was rejected at admission.

    This is the backpressure signal: clients should back off (or shed
    load) rather than pile onto an already-saturated queue.
    """


class DeadlineExceededError(ServeError):
    """The request's deadline passed before a forward pass picked it up.

    Raised at dequeue time — the server sheds work that could only
    produce a stale answer instead of burning a batch slot on it.
    """


class ServerClosedError(ServeError):
    """The server is stopped (or stopping) and accepts no new requests."""
