"""Dynamic micro-batching queue.

Single surrogate queries are one GEMM row each — serving them
individually wastes the whole vectorization advantage the surrogate
exists for.  The batcher coalesces concurrent requests into one forward
pass under a two-knob policy:

- ``max_batch`` — never assemble more rows than the runtime's fixed
  forward shape;
- ``max_delay_s`` — never hold the first request of a batch longer than
  this waiting for company (the latency the thin-traffic case pays for
  throughput in the heavy-traffic case).

Admission is bounded (``max_queue``): a full queue rejects with
:class:`~repro.serve.errors.ServerOverloadedError` at submit time, which
is the backpressure contract — overload surfaces at the caller
immediately instead of as unbounded queueing delay.  Requests whose
deadline expires while queued are shed at assembly time via the
``expire`` callback and never occupy a batch slot.
"""

from __future__ import annotations

import dataclasses
import queue
import threading
import time
from concurrent.futures import Future
from typing import Callable

import numpy as np

from repro.serve.errors import ServerClosedError, ServerOverloadedError

__all__ = ["PendingRequest", "Batch", "MicroBatcher"]


@dataclasses.dataclass
class PendingRequest:
    """One enqueued query: its input row, completion future, and clocks.

    ``enqueued`` and ``deadline`` are ``time.perf_counter()`` values;
    ``deadline=None`` means the request waits indefinitely.
    """

    params: np.ndarray
    future: Future
    enqueued: float
    deadline: float | None = None


@dataclasses.dataclass
class Batch:
    """An assembled micro-batch plus its assembly interval.

    ``t_open`` is when the first request was popped, ``t_ready`` when
    assembly stopped (batch full, delay expired, or queue drained) —
    the executor records this interval as the batch-assembly span.
    """

    requests: list[PendingRequest]
    t_open: float
    t_ready: float


class MicroBatcher:
    """Background thread turning a request queue into :class:`Batch` calls.

    Parameters
    ----------
    execute:
        Called with each assembled :class:`Batch` on the batcher thread.
        It must complete every request's future (result or exception).
    expire:
        Called with each request shed for a passed deadline.  It must
        fail the request's future.
    """

    def __init__(
        self,
        execute: Callable[[Batch], None],
        expire: Callable[[PendingRequest], None],
        max_batch: int = 32,
        max_delay_s: float = 0.005,
        max_queue: int = 256,
    ) -> None:
        if max_batch <= 0 or max_queue <= 0:
            raise ValueError("max_batch and max_queue must be positive")
        if max_delay_s < 0:
            raise ValueError("max_delay_s must be >= 0")
        self._execute = execute
        self._expire = expire
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self._queue: queue.Queue[PendingRequest] = queue.Queue(
            maxsize=int(max_queue)
        )
        self._closed = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        """Stop admitting; drain what is queued, then stop the thread."""
        self._closed.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    @property
    def closed(self) -> bool:
        return self._closed.is_set()

    def depth(self) -> int:
        """Approximate number of queued (unassembled) requests."""
        return self._queue.qsize()

    # -- admission ----------------------------------------------------------

    def submit(self, request: PendingRequest) -> None:
        if self._closed.is_set():
            raise ServerClosedError("server is shut down")
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise ServerOverloadedError(
                f"request queue is full ({self._queue.maxsize} pending)"
            ) from None

    # -- the batching loop ---------------------------------------------------

    def _pop(self, timeout: float) -> PendingRequest | None:
        """One live request from the queue, shedding expired ones."""
        end = time.perf_counter() + timeout
        while True:
            remaining = end - time.perf_counter()
            if remaining <= 0:
                return None
            try:
                request = self._queue.get(timeout=remaining)
            except queue.Empty:
                return None
            if (
                request.deadline is not None
                and time.perf_counter() > request.deadline
            ):
                self._expire(request)
                continue
            return request

    def _run(self) -> None:
        while True:
            first = self._pop(timeout=0.05)
            if first is None:
                if self._closed.is_set() and self._queue.empty():
                    return
                continue
            t_open = time.perf_counter()
            batch = [first]
            close_at = t_open + self.max_delay_s
            while len(batch) < self.max_batch:
                wait = close_at - time.perf_counter()
                if wait <= 0:
                    break
                request = self._pop(timeout=wait)
                if request is None:
                    break
                batch.append(request)
            self._execute(
                Batch(
                    requests=batch,
                    t_open=t_open,
                    t_ready=time.perf_counter(),
                )
            )
