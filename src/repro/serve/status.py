"""The live status surface of a running surrogate server.

A tiny embedded HTTP endpoint (stdlib ``http.server``, daemon thread) so
operators and scrapers can ask a deployment "how are you doing" without
instrumenting the client:

- ``GET /status`` — one JSON document: the server's operational snapshot
  (:meth:`~repro.serve.server.SurrogateServer.stats`) plus, when a
  :class:`~repro.telemetry.live.LiveAggregator` is attached, the live
  plane's windowed rollups/alerts snapshot;
- ``GET /metrics`` — the server's :class:`~repro.telemetry.metrics.
  MetricsRegistry` in Prometheus text exposition format (the same
  rendering :func:`~repro.telemetry.metrics.write_metrics` publishes to
  files);
- ``GET /healthz`` — 200 ``ok`` while the batcher accepts work, 503
  after shutdown (load-balancer liveness).

Bind to port 0 (the default) to let the OS pick a free port —
:attr:`StatusServer.port` reports the chosen one.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.telemetry.metrics import render_metrics

__all__ = ["StatusServer"]


class StatusServer:
    """Serve ``/status``, ``/metrics`` and ``/healthz`` for one
    :class:`~repro.serve.server.SurrogateServer`.

    ``aggregator`` (optional) is a live-plane
    :class:`~repro.telemetry.live.LiveAggregator` whose :meth:`snapshot`
    is folded into ``/status`` under the ``"live"`` key.
    """

    def __init__(
        self,
        server,
        host: str = "127.0.0.1",
        port: int = 0,
        aggregator=None,
    ) -> None:
        self.server = server
        self.aggregator = aggregator
        status = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # quiet by design
                pass

            def do_GET(self) -> None:
                try:
                    body, content_type, code = status._respond(self.path)
                except Exception as exc:  # a snapshot race must not 500 loop
                    body = json.dumps({"error": repr(exc)}).encode()
                    content_type, code = "application/json", 500
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    def _respond(self, path: str) -> tuple[bytes, str, int]:
        path = path.split("?", 1)[0]
        if path in ("/status", "/"):
            return (
                json.dumps(self.status(), indent=2).encode(),
                "application/json",
                200,
            )
        if path == "/metrics":
            return (
                render_metrics(self.server.metrics, "prometheus").encode(),
                "text/plain; version=0.0.4; charset=utf-8",
                200,
            )
        if path == "/healthz":
            closed = self.server.batcher.closed
            return (
                b"closed\n" if closed else b"ok\n",
                "text/plain; charset=utf-8",
                503 if closed else 200,
            )
        return b"not found\n", "text/plain; charset=utf-8", 404

    def status(self) -> dict:
        """The ``/status`` document (also usable in-process)."""
        doc = {"serve": self.server.stats()}
        if self.aggregator is not None:
            doc["live"] = self.aggregator.snapshot()
        return doc

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "StatusServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="serve-status",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join()
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
