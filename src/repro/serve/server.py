"""The surrogate server: admission, micro-batching, cache, observability.

:class:`SurrogateServer` is the deployment composition root.  A request
travels: admission (cache lookup, backpressure) → micro-batch queue →
fixed-shape ensemble forward → response fan-out + cache fill.  Every
phase is instrumented through the existing telemetry stacks:

- ``repro_serve_*`` metrics in a :class:`~repro.telemetry.metrics.
  MetricsRegistry` — request/response/deadline-miss counters, queue-depth
  and model-version gauges, a labeled ``repro_serve_model_info`` family,
  and latency histograms (end-to-end, queue-wait, forward) whose
  ``percentiles()`` give the p50/p95/p99 the bench scenarios report;
- spans (``serve.queue_wait`` / ``serve.batch_assembly`` /
  ``serve.forward`` / ``serve.cache``) through the hub tracer, so served
  traffic lands on the same timeline as training when both share a hub;
- HealthMonitor-style ``health`` events for queue saturation and
  deadline misses.

Version consistency: executors capture the registry's current model once
per batch, and the response cache is cleared on every reload — no
response mixes versions, and no stale cache entry outlives a swap.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.serve.batcher import Batch, MicroBatcher, PendingRequest
from repro.serve.cache import ResponseCache
from repro.serve.errors import (
    DeadlineExceededError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.registry import GateDecision, ModelRegistry, ServingModel
from repro.telemetry.events import HEALTH, SERVE, TelemetryHub
from repro.telemetry.metrics import MetricsRegistry, TIME_BUCKETS

__all__ = ["ServeConfig", "ServeResponse", "SurrogateServer"]

#: Batch-size buckets: powers of two up to a generous ceiling.
BATCH_BUCKETS: tuple[float, ...] = tuple(float(2**i) for i in range(9))


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Serving policy knobs (see module docstrings for the semantics)."""

    max_batch: int = 32
    max_delay_s: float = 0.002
    max_queue: int = 256
    default_deadline_s: float | None = None
    cache_size: int = 1024
    cache_quantum: float = 1e-6
    aggregate_mode: str = "winner"
    reload_poll_s: float | None = None
    queue_warn_fraction: float = 0.8

    def __post_init__(self) -> None:
        if not 0.0 < self.queue_warn_fraction <= 1.0:
            raise ValueError("queue_warn_fraction must be in (0, 1]")


@dataclasses.dataclass(frozen=True)
class ServeResponse:
    """One answered query, stamped with the model version that produced it."""

    scalars: np.ndarray
    images: np.ndarray
    version: int
    tag: str
    cached: bool = False


class SurrogateServer:
    """In-process surrogate service over a :class:`ModelRegistry`."""

    def __init__(
        self,
        registry: ModelRegistry,
        config: ServeConfig | None = None,
        telemetry: TelemetryHub | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else ServeConfig()
        self.telemetry = telemetry
        self._tracer = (
            telemetry.start_tracing() if telemetry is not None else None
        )
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._register_metrics()
        self.cache = ResponseCache(
            capacity=self.config.cache_size,
            quantum=self.config.cache_quantum,
        )
        self.batcher = MicroBatcher(
            execute=self._execute,
            expire=self._expire,
            max_batch=self.config.max_batch,
            max_delay_s=self.config.max_delay_s,
            max_queue=self.config.max_queue,
        )
        self._poll_stop = threading.Event()
        self._poll_thread: threading.Thread | None = None
        self._status_server = None
        self._warned: set[str] = set()
        self._info_labels: tuple | None = None
        self._gate_checks = 0
        self._gate_refusals = 0
        registry.on_reload(self._on_reload)
        registry.on_quality_gate(self._on_quality_gate)
        if registry.loaded:
            self._stamp_model(registry.current())

    # -- metrics -------------------------------------------------------------

    def _register_metrics(self) -> None:
        r = self.metrics
        self.m_requests = r.counter(
            "repro_serve_requests_total", "requests admitted or rejected"
        )
        self.m_responses = r.counter(
            "repro_serve_responses_total", "requests answered successfully"
        )
        self.m_rejected = r.counter(
            "repro_serve_rejected_total",
            "requests rejected by queue backpressure",
        )
        self.m_deadline_misses = r.counter(
            "repro_serve_deadline_misses_total",
            "requests shed for an expired deadline",
        )
        self.m_batches = r.counter(
            "repro_serve_batches_total", "micro-batches executed"
        )
        self.m_reloads = r.counter(
            "repro_serve_reloads_total", "model hot-reloads performed"
        )
        self.m_cache_hits = r.counter(
            "repro_serve_cache_hits_total", "responses served from cache"
        )
        self.m_cache_misses = r.counter(
            "repro_serve_cache_misses_total", "requests that missed the cache"
        )
        self.m_queue_depth = r.gauge(
            "repro_serve_queue_depth", "requests waiting for batch assembly"
        )
        self.m_model_version = r.gauge(
            "repro_serve_model_version", "monotone version of the served model"
        )
        self.m_latency = r.histogram(
            "repro_serve_latency_seconds",
            "end-to-end request latency (admission to response)",
        )
        self.m_queue_wait = r.histogram(
            "repro_serve_queue_wait_seconds",
            "time from admission to batch assembly",
        )
        self.m_forward = r.histogram(
            "repro_serve_forward_seconds", "model forward time per batch"
        )
        self.m_batch_size = r.histogram(
            "repro_serve_batch_size",
            "assembled micro-batch sizes",
            buckets=BATCH_BUCKETS,
        )
        # The quality-gate family: one counter per verdict, so a scrape
        # can alert on refused > 0 while still rating gate activity.
        self.m_gate_passed = r.counter(
            "repro_serve_quality_gate",
            "refresh candidates checked by the serve-side quality gate",
            labels={"decision": "passed"},
        )
        self.m_gate_refused = r.counter(
            "repro_serve_quality_gate",
            "refresh candidates checked by the serve-side quality gate",
            labels={"decision": "refused"},
        )

    def _stamp_model(self, model: ServingModel) -> None:
        self.m_model_version.set(model.version)
        labels = {
            "tag": model.tag,
            "winner": model.winner,
            "topology": model.topology or "none",
        }
        info = self.metrics.gauge(
            "repro_serve_model_info",
            "1 on the series labeling the deployed model",
            labels=labels,
        )
        if self._info_labels is not None and self._info_labels != info.labels:
            self.metrics.gauge(
                "repro_serve_model_info", labels=dict(self._info_labels)
            ).set(0)
        info.set(1)
        self._info_labels = info.labels

    def _on_reload(self, model: ServingModel) -> None:
        # Clearing the cache is the mixed-version guard: everything cached
        # from here on was produced by `model`.
        self.cache.clear()
        self.m_reloads.inc()
        self._stamp_model(model)

    def _on_quality_gate(self, decision: GateDecision) -> None:
        self._gate_checks += 1
        if decision.allowed:
            self.m_gate_passed.inc()
            return
        self._gate_refusals += 1
        self.m_gate_refused.inc()
        # Per-tag dedup: a *new* refused candidate should warn again even
        # though the kind repeats.
        self._warned.discard("quality_gate_refusal")
        self._warn("quality_gate_refusal", decision.render())

    # -- health --------------------------------------------------------------

    def _warn(self, kind: str, message: str, severity: str = "warning") -> None:
        if kind in self._warned:
            return
        self._warned.add(kind)
        if self.telemetry is not None:
            self.telemetry.emit(
                HEALTH,
                kind=kind,
                severity=severity,
                round=-1,  # serving is out-of-campaign
                trainer=None,
                message=message,
            )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "SurrogateServer":
        if not self.registry.loaded and self.registry.refresh() is None:
            raise ServeError(
                "nothing to serve: the checkpoint store has no model tags"
            )
        self.batcher.start()
        if self.config.reload_poll_s is not None and self._poll_thread is None:
            self._poll_thread = threading.Thread(
                target=self._poll_loop, name="serve-reload-poll", daemon=True
            )
            self._poll_thread.start()
        return self

    def start_status(
        self, host: str = "127.0.0.1", port: int = 0, aggregator=None
    ):
        """Expose the live status surface over HTTP (idempotent).

        Starts a :class:`~repro.serve.status.StatusServer` serving
        ``/status`` (JSON: :meth:`stats` plus the ``aggregator``
        snapshot when one is given), ``/metrics`` (Prometheus scrape of
        the server's registry) and ``/healthz``.  Stops with the server.
        """
        if self._status_server is None:
            from repro.serve.status import StatusServer

            self._status_server = StatusServer(
                self, host=host, port=port, aggregator=aggregator
            ).start()
        return self._status_server

    def stop(self) -> None:
        """Stop admitting, drain queued requests, stop background threads."""
        self._poll_stop.set()
        if self._poll_thread is not None:
            self._poll_thread.join()
            self._poll_thread = None
        if self._status_server is not None:
            self._status_server.stop()
            self._status_server = None
        self.batcher.close()

    def __enter__(self) -> "SurrogateServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _poll_loop(self) -> None:
        while not self._poll_stop.wait(self.config.reload_poll_s):
            try:
                self.registry.refresh()
            except ServeError:
                # A half-written or incompatible tag must not kill the
                # poller; the previous version keeps serving.
                pass

    # -- request path --------------------------------------------------------

    def submit(
        self,
        params: np.ndarray,
        deadline_s: float | None = None,
    ) -> Future:
        """Admit one query (a single parameter row); returns a future.

        The future resolves to a :class:`ServeResponse`, or raises one of
        the :mod:`repro.serve.errors` types.  ``deadline_s`` (default:
        the config's) bounds how long the request may wait in the queue.
        """
        if self.batcher.closed:
            raise ServerClosedError("server is shut down")
        row = np.asarray(params, dtype=np.float32).ravel()
        self.m_requests.inc()
        now = time.perf_counter()
        key = self.cache.key(row)
        cached = self.cache.get(key)
        if self._tracer is not None:
            self._tracer.record(
                "serve.cache", cat="serve", track="serve",
                t0=now, end=time.perf_counter(), hit=cached is not None,
            )
        future: Future = Future()
        if cached is not None:
            self.m_cache_hits.inc()
            self.m_responses.inc()
            self.m_latency.observe(time.perf_counter() - now)
            future.set_result(
                dataclasses.replace(cached, cached=True)
            )
            return future
        self.m_cache_misses.inc()
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        request = PendingRequest(
            params=row,
            future=future,
            enqueued=now,
            deadline=None if deadline_s is None else now + deadline_s,
        )
        try:
            self.batcher.submit(request)
        except ServerOverloadedError:
            self.m_rejected.inc()
            self._warn(
                "serve_overload",
                f"request queue saturated at {self.config.max_queue}; "
                f"rejecting requests",
                severity="critical",
            )
            raise
        depth = self.batcher.depth()
        self.m_queue_depth.set(depth)
        if depth >= self.config.queue_warn_fraction * self.config.max_queue:
            self._warn(
                "serve_queue_depth",
                f"queue depth {depth} exceeds "
                f"{self.config.queue_warn_fraction:.0%} of capacity "
                f"{self.config.max_queue}",
            )
        return future

    def predict(
        self,
        params: np.ndarray,
        deadline_s: float | None = None,
        timeout: float | None = 30.0,
    ) -> ServeResponse:
        """Blocking single-query convenience over :meth:`submit`."""
        return self.submit(params, deadline_s=deadline_s).result(
            timeout=timeout
        )

    # -- batcher callbacks (batcher thread) ----------------------------------

    def _expire(self, request: PendingRequest) -> None:
        self.m_deadline_misses.inc()
        self._warn(
            "serve_deadline_miss",
            "requests are expiring in the queue before execution",
        )
        request.future.set_exception(
            DeadlineExceededError(
                "request deadline passed while queued"
            )
        )

    def _execute(self, batch: Batch) -> None:
        requests = batch.requests
        try:
            # One registry read per batch: the whole batch runs on this
            # version even if a hot-reload lands mid-forward.
            model = self.registry.current()
            if self._tracer is not None:
                self._tracer.record(
                    "serve.batch_assembly", cat="serve", track="serve",
                    t0=batch.t_open, end=batch.t_ready, size=len(requests),
                )
                for r in requests:
                    self._tracer.record(
                        "serve.queue_wait", cat="serve", track="serve",
                        t0=r.enqueued, end=batch.t_ready,
                    )
            for r in requests:
                self.m_queue_wait.observe(batch.t_ready - r.enqueued)
            params = np.stack([r.params for r in requests])
            t0 = time.perf_counter()
            if self._tracer is not None:
                with self._tracer.span(
                    "serve.forward", cat="serve", track="serve",
                    size=len(requests), version=model.version,
                ):
                    scalars, images = model.runtime.predict(params)
            else:
                scalars, images = model.runtime.predict(params)
            forward_s = time.perf_counter() - t0
            self.m_forward.observe(forward_s)
            self.m_batches.inc()
            self.m_batch_size.observe(len(requests))
        except Exception as exc:
            for r in requests:
                if not r.future.done():
                    r.future.set_exception(exc)
            return
        end = time.perf_counter()
        for i, r in enumerate(requests):
            response = ServeResponse(
                scalars=scalars[i],
                images=images[i],
                version=model.version,
                tag=model.tag,
            )
            self.cache.put(self.cache.key(r.params), response)
            r.future.set_result(response)
            self.m_responses.inc()
            self.m_latency.observe(end - r.enqueued)
        depth = self.batcher.depth()
        self.m_queue_depth.set(depth)
        if self.telemetry is not None and self.telemetry.active:
            # One serve event per micro-batch: the live plane's window
            # feed (queue depth, wait, forward) without per-request cost.
            self.telemetry.emit(
                SERVE,
                size=len(requests),
                queue_depth=depth,
                forward_s=forward_s,
                wait_s=sum(batch.t_ready - r.enqueued for r in requests)
                / len(requests),
                version=model.version,
            )

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        """A JSON-encodable operational snapshot."""
        model = self.registry.current() if self.registry.loaded else None
        return {
            "model": None
            if model is None
            else {
                "version": model.version,
                "tag": model.tag,
                "winner": model.winner,
                "topology": model.topology,
                "members": len(model.runtime.members),
                "aggregate_mode": model.runtime.aggregate_mode,
            },
            "queue_depth": self.batcher.depth(),
            "requests": self.m_requests.value,
            "responses": self.m_responses.value,
            "rejected": self.m_rejected.value,
            "deadline_misses": self.m_deadline_misses.value,
            "batches": self.m_batches.value,
            "reloads": self.m_reloads.value,
            "cache": self.cache.stats(),
            "latency": self.m_latency.percentiles(),
            "quality_gate": self._gate_stats(),
        }

    def _gate_stats(self) -> dict:
        last = self.registry.last_gate
        return {
            "checks": self._gate_checks,
            "refusals": self._gate_refusals,
            "last": None
            if last is None
            else {
                "tag": last.tag,
                "allowed": last.allowed,
                "reason": last.reason,
                "metric": last.metric,
                "candidate": last.candidate,
                "incumbent": last.incumbent,
            },
        }
