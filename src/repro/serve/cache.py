"""LRU response cache keyed on quantized inputs.

ICF design-space exploration hammers the surrogate with near-duplicate
parameter vectors (line searches, grid refinements around an optimum).
Two queries within ``quantum`` of each other would get outputs closer
than the surrogate's own fidelity, so they share a cache entry: keys are
the parameter vector snapped to a ``quantum`` grid.  ``quantum=0``
disables snapping (exact float equality only).

The cache is version-blind by design — the server *clears* it on every
hot-reload instead of tagging entries, which is what makes the
"no mixed-version responses" guarantee trivial to audit: everything in
the cache was produced by the currently served model.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

import numpy as np

__all__ = ["ResponseCache"]


class ResponseCache:
    """Thread-safe fixed-capacity LRU over quantized parameter keys."""

    def __init__(self, capacity: int = 1024, quantum: float = 1e-6) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        if quantum < 0:
            raise ValueError("quantum must be >= 0")
        self.capacity = int(capacity)
        self.quantum = float(quantum)
        self._entries: OrderedDict[bytes, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def key(self, params: np.ndarray) -> bytes:
        """Quantized lookup key of one parameter row."""
        row = np.asarray(params, dtype=np.float64).ravel()
        if self.quantum > 0.0:
            # rint keeps ties-to-even, so keys are reproducible across
            # platforms; int64 avoids -0.0 vs 0.0 aliasing pitfalls.
            row = np.rint(row / self.quantum).astype(np.int64)
        return row.tobytes()

    def get(self, key: bytes):
        """The cached value, or ``None``; refreshes recency on hit."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: bytes, value) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (hot-reload path); stats survive."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
