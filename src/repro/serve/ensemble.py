"""Ensemble aggregation across population members.

LTFB trains a *population*; the tournament picks a winner, but MD-GAN's
multi-model aggregation argument applies at inference too: averaging the
members' predictions is a cheap variance-reduction ensemble.  Three
modes:

- ``"winner"`` — serve only the recorded tournament winner (the paper's
  deployment story);
- ``"mean"`` — elementwise mean over member outputs;
- ``"median"`` — elementwise median (robust to one diverged member).

Aggregation is row-wise and elementwise, so it preserves the fixed-shape
forward guarantee: a row's aggregate depends only on that row's member
outputs, never on batch composition.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["AGGREGATE_MODES", "aggregate"]

AGGREGATE_MODES: tuple[str, ...] = ("winner", "mean", "median")


def aggregate(member_outputs: Sequence[np.ndarray], mode: str) -> np.ndarray:
    """Combine per-member output arrays of identical shape.

    ``"winner"`` is intentionally rejected here: winner-only serving
    skips the non-winning forwards entirely (see
    :class:`~repro.serve.runtime.EnsembleRuntime`), so reaching this
    function in winner mode is a bug, not a reduction.
    """
    if mode not in AGGREGATE_MODES:
        raise ValueError(
            f"unknown aggregation mode {mode!r}; expected one of "
            f"{AGGREGATE_MODES}"
        )
    if not member_outputs:
        raise ValueError("aggregate() needs at least one member output")
    if mode == "winner":
        raise ValueError(
            "winner-only aggregation selects a member upstream; "
            "aggregate() never sees it"
        )
    if len(member_outputs) == 1:
        return np.asarray(member_outputs[0])
    stacked = np.stack(member_outputs, axis=0)
    if mode == "mean":
        return stacked.mean(axis=0)
    return np.median(stacked, axis=0)
