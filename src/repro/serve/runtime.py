"""Inference runtimes: deployable generators rebuilt from snapshots.

A :class:`GeneratorRuntime` turns one
:class:`~repro.core.checkpoint.GeneratorSnapshot` back into a runnable
forward model — widths are inferred from the kernel shapes, so serving
needs no access to the training-side ``SurrogateConfig``.  An
:class:`EnsembleRuntime` holds one runtime per population member plus
the aggregation mode.  Both are immutable after construction; the serve
registry swaps whole runtimes atomically on hot-reload.

Fixed-shape forwards (the bit-identity contract)
------------------------------------------------
BLAS picks different kernels (and hence different float32 summation
orders) for different GEMM ``M`` dimensions, so ``f(batch)[i]`` is *not*
in general bit-equal to ``f(batch[i:i+1])[0]``.  What *is* stable is
that with the GEMM shape fixed, each output row depends only on its own
input row.  Every runtime forward therefore pads the batch to exactly
``max_batch`` rows and slices the result: micro-batched responses are
bit-identical to single-request responses by construction, the same
trick as XLA-style shape bucketing.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING

import numpy as np

from repro.serve.ensemble import AGGREGATE_MODES, aggregate
from repro.serve.errors import ServeError
from repro.tensorlib.model import mlp
from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.checkpoint import EnsembleSnapshot, GeneratorSnapshot
    from repro.models.autoencoder import MultimodalAutoencoder

__all__ = ["GeneratorRuntime", "EnsembleRuntime"]

_FC_KERNEL_RE = re.compile(r"^forward/fc(\d+)/kernel$")


def _forward_widths(weights) -> tuple[int, tuple[int, ...], int]:
    """(input_dim, hidden widths, output_dim) from snapshot kernel shapes."""
    indices = sorted(
        int(m.group(1))
        for k in weights
        if (m := _FC_KERNEL_RE.match(k)) is not None
    )
    if indices != list(range(len(indices))):
        raise ServeError(
            f"snapshot forward kernels are not contiguous fc0..fcN: {indices}"
        )
    if "forward/head/kernel" not in weights:
        raise ServeError("snapshot has no forward/head/kernel")
    hidden = tuple(
        int(weights[f"forward/fc{i}/kernel"].shape[1]) for i in indices
    )
    first = weights["forward/fc0/kernel" if indices else "forward/head/kernel"]
    return int(first.shape[0]), hidden, int(weights["forward/head/kernel"].shape[1])


class GeneratorRuntime:
    """One deployable generator: ``decoder(F(params))`` at fixed shape."""

    def __init__(
        self,
        snapshot: "GeneratorSnapshot",
        autoencoder: "MultimodalAutoencoder",
        max_batch: int = 64,
    ) -> None:
        if max_batch <= 0:
            raise ValueError("max_batch must be positive")
        input_dim, hidden, latent_dim = _forward_widths(snapshot.weights)
        if latent_dim != autoencoder.latent_dim:
            raise ServeError(
                f"snapshot {snapshot.tag!r} emits {latent_dim}-d latents but "
                f"the autoencoder decodes {autoencoder.latent_dim}-d"
            )
        self.snapshot = snapshot
        self.autoencoder = autoencoder
        self.max_batch = int(max_batch)
        self.input_dim = input_dim
        self.latent_dim = latent_dim
        # The init below is throwaway — set_state overwrites every weight.
        self.forward_model = mlp(
            "forward",
            RngFactory(0),
            input_dim=input_dim,
            hidden=hidden,
            output_dim=latent_dim,
            activation="leaky_relu",
        )
        self.forward_model.set_state(
            {
                k: v
                for k, v in snapshot.weights.items()
                if k.startswith("forward/")
            }
        )

    def _pad(self, params: np.ndarray) -> np.ndarray:
        pad = self.max_batch - params.shape[0]
        if pad == 0:
            return params
        return np.concatenate(
            [params, np.zeros((pad, params.shape[1]), dtype=params.dtype)]
        )

    def predict(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(scalars_hat, images_hat) for up to ``max_batch`` parameter rows.

        Larger inputs are processed in ``max_batch`` chunks, so results
        stay identical to submitting the rows one at a time.
        """
        params = np.asarray(params, dtype=np.float32)
        if params.ndim != 2 or params.shape[1] != self.input_dim:
            raise ValueError(
                f"params must be (n, {self.input_dim}), got {params.shape}"
            )
        scalars, images = [], []
        for start in range(0, params.shape[0], self.max_batch):
            chunk = params[start:start + self.max_batch]
            n = chunk.shape[0]
            latent = self.forward_model.predict(
                {"in": self._pad(chunk)}, "out"
            )
            s, i = self.autoencoder.decode(latent)
            scalars.append(s[:n])
            images.append(i[:n])
        if len(scalars) == 1:
            return scalars[0], images[0]
        return np.concatenate(scalars), np.concatenate(images)


class EnsembleRuntime:
    """Population members behind one ``predict``, with aggregation.

    Winner-only mode forwards through the recorded tournament winner and
    skips the other members entirely; mean/median run every member and
    reduce elementwise.
    """

    def __init__(
        self,
        snapshot: "EnsembleSnapshot",
        autoencoder: "MultimodalAutoencoder",
        max_batch: int = 64,
        aggregate_mode: str = "winner",
    ) -> None:
        if aggregate_mode not in AGGREGATE_MODES:
            raise ValueError(
                f"unknown aggregation mode {aggregate_mode!r}; expected one "
                f"of {AGGREGATE_MODES}"
            )
        self.snapshot = snapshot
        self.aggregate_mode = aggregate_mode
        self.members = tuple(
            GeneratorRuntime(m, autoencoder, max_batch)
            for m in snapshot.members
        )
        winner = snapshot.winner_member
        self.winner = next(
            r for r in self.members if r.snapshot is winner
        )
        self.max_batch = int(max_batch)
        self.input_dim = self.winner.input_dim

    @property
    def tag(self) -> str:
        return self.snapshot.tag

    def predict(self, params: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if self.aggregate_mode == "winner" or len(self.members) == 1:
            return self.winner.predict(params)
        outputs = [m.predict(params) for m in self.members]
        return (
            aggregate([s for s, _ in outputs], self.aggregate_mode),
            aggregate([i for _, i in outputs], self.aggregate_mode),
        )
