"""Production serving of trained surrogates.

The deployment half of the paper's story: LTFB campaigns checkpoint
tournament winners into a :class:`~repro.core.checkpoint.CheckpointStore`,
and this package turns the newest winner into a service answering 5-D
JAG parameter queries under heavy traffic.

- :mod:`repro.serve.registry` — versioned model loading with atomic
  hot-reload when a better winner is checkpointed;
- :mod:`repro.serve.runtime` — fixed-shape generator/ensemble forwards
  (micro-batched responses bit-identical to single-request ones);
- :mod:`repro.serve.batcher` — dynamic micro-batching with backpressure
  and per-request deadlines;
- :mod:`repro.serve.cache` — LRU response cache over quantized inputs;
- :mod:`repro.serve.ensemble` — mean/median/winner-only aggregation;
- :mod:`repro.serve.server` — the composition root, instrumented with
  ``repro_serve_*`` metrics, spans, and health warnings;
- :mod:`repro.serve.loadgen` — closed- and open-loop load drivers;
- :mod:`repro.serve.status` — the embedded ``/status`` + ``/metrics`` +
  ``/healthz`` HTTP surface (JSON snapshot, Prometheus scrape).

Quickstart::

    store = CheckpointStore("ckpts")
    server = SurrogateServer(ModelRegistry(store))
    with server:
        response = server.predict(params_row)
"""

from repro.serve.batcher import Batch, MicroBatcher, PendingRequest
from repro.serve.cache import ResponseCache
from repro.serve.ensemble import AGGREGATE_MODES, aggregate
from repro.serve.errors import (
    DeadlineExceededError,
    ServeError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve.loadgen import (
    LoadReport,
    closed_loop,
    open_loop,
    stepped_open_loop,
)
from repro.serve.registry import ModelRegistry, ServingModel
from repro.serve.runtime import EnsembleRuntime, GeneratorRuntime
from repro.serve.server import ServeConfig, ServeResponse, SurrogateServer
from repro.serve.status import StatusServer

__all__ = [
    "AGGREGATE_MODES",
    "aggregate",
    "Batch",
    "MicroBatcher",
    "PendingRequest",
    "ResponseCache",
    "ServeError",
    "ServerClosedError",
    "ServerOverloadedError",
    "DeadlineExceededError",
    "LoadReport",
    "closed_loop",
    "open_loop",
    "stepped_open_loop",
    "ModelRegistry",
    "ServingModel",
    "EnsembleRuntime",
    "GeneratorRuntime",
    "ServeConfig",
    "ServeResponse",
    "SurrogateServer",
    "StatusServer",
]
