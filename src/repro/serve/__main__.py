"""Command-line entry points for the serving plane.

Usage::

    # Train a tiny population and publish it (autoencoder + winner):
    python -m repro.serve demo-checkpoint --checkpoint-dir ckpts --quick

    # Serve the newest tag and drive load against it:
    python -m repro.serve load-test --checkpoint-dir ckpts \\
        --mode open --qps 200 --requests 400 --metrics-out serve.prom

``demo-checkpoint`` runs a short LTFB campaign and saves the population
with its tournament winner through the public checkpoint API — exactly
what a real campaign does with ``--checkpoint-dir``.  ``load-test``
starts an in-process :class:`~repro.serve.SurrogateServer` on the
store's newest tag and runs a closed-loop, open-loop, or stepped
open-loop drive, printing one JSON report line per step.  All serving
policy knobs are the shared ``--serve-*`` flags.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.experiments.common import (
    add_runtime_options,
    add_serve_options,
    serve_config_from_args,
)

DEMO_TAG = "demo"


def _store(args):
    from repro.core.checkpoint import CheckpointStore

    if args.checkpoint_dir is None:
        raise SystemExit("--checkpoint-dir is required")
    return CheckpointStore(args.checkpoint_dir)


def cmd_demo_checkpoint(args) -> int:
    from repro.experiments.common import QualityWorkbench

    bench = QualityWorkbench(
        seed=args.seed,
        n_samples=1024 if args.quick else 4096,
        backend=args.backend,
        workers=args.workers,
        prefetch_depth=args.prefetch_depth,
        checkpoint_dir=args.checkpoint_dir,
    )
    schedule = (
        dict(rounds=2, steps_per_round=4)
        if args.quick
        else dict(rounds=6, steps_per_round=20)
    )
    bench.train_ltfb(DEMO_TAG, k=args.k, **schedule)
    store = bench.store
    print(
        json.dumps(
            {"tags": store.list_tags(), "latest": store.latest()},
            sort_keys=True,
        )
    )
    return 0


def _query_params(store, tag: str, n: int, seed: int) -> np.ndarray:
    """Synthetic query traffic shaped like the snapshot's input space."""
    snapshot = store.load_ensemble(tag)
    n_params = snapshot.winner_member.weights["forward/fc0/kernel"].shape[0]
    rng = np.random.default_rng(seed)
    return rng.random((n, n_params), dtype=np.float32)


def cmd_load_test(args) -> int:
    from repro.serve import (
        ModelRegistry,
        ServeError,
        SurrogateServer,
        closed_loop,
        stepped_open_loop,
    )

    store = _store(args)
    config = serve_config_from_args(args)
    registry = ModelRegistry(
        store,
        max_batch=config.max_batch,
        aggregate_mode=config.aggregate_mode,
    )
    if args.tag is not None:
        registry.load(args.tag)
    metrics = None
    server = SurrogateServer(registry, config)
    reports = []
    try:
        server.start()
    except (ServeError, ValueError) as exc:
        raise SystemExit(f"load-test: {exc}") from None
    with server:
        tag = registry.current().tag
        params = _query_params(store, tag, n=256, seed=args.seed)
        deadline_s = config.default_deadline_s
        if args.mode == "closed":
            reports = [
                closed_loop(
                    server,
                    params,
                    clients=args.clients,
                    requests_per_client=args.requests // max(args.clients, 1),
                    deadline_s=deadline_s,
                )
            ]
        else:
            steps = (
                [args.qps]
                if args.mode == "open"
                else [args.qps * f for f in (0.25, 0.5, 1.0)]
            )
            reports = stepped_open_loop(
                server,
                params,
                qps_steps=steps,
                requests_per_step=args.requests,
                deadline_s=deadline_s,
            )
        for report in reports:
            print(json.dumps(report.to_json(), sort_keys=True))
        print(json.dumps({"stats": server.stats()}, sort_keys=True))
        metrics = server.metrics
    if args.metrics_out is not None:
        from repro.telemetry.metrics import write_metrics

        write_metrics(metrics, args.metrics_out)
        print(f"metrics written: {args.metrics_out}", file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser(
        "demo-checkpoint",
        help="train a small population and publish it to a store",
    )
    add_runtime_options(demo)
    demo.add_argument("--k", type=int, default=2, help="population size")
    demo.set_defaults(fn=cmd_demo_checkpoint)

    load = sub.add_parser(
        "load-test", help="serve the newest tag and drive load against it"
    )
    add_runtime_options(load)
    add_serve_options(load)
    load.add_argument(
        "--tag", default=None, help="serve this tag (default: newest)"
    )
    load.add_argument(
        "--mode",
        choices=["closed", "open", "stepped"],
        default="open",
        help="load shape: closed loop, open loop, or stepped open loop",
    )
    load.add_argument(
        "--qps", type=float, default=200.0, help="offered open-loop rate"
    )
    load.add_argument(
        "--requests",
        type=int,
        default=256,
        help="requests per run (per step in stepped mode)",
    )
    load.add_argument(
        "--clients", type=int, default=4, help="closed-loop client threads"
    )
    load.set_defaults(fn=cmd_load_test)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
