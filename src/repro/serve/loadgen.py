"""Load generators for the serving plane.

Two canonical drivers:

- **closed loop** — ``clients`` threads, each issuing its next request
  only after the previous response arrives.  Throughput self-limits to
  the service rate; this measures best-case latency under a fixed
  concurrency.
- **open loop** — requests arrive on a fixed schedule (``qps``) whether
  or not earlier ones finished, like real exploration traffic.  This is
  the honest regime for tail latency: queueing delay accumulates when
  offered load exceeds capacity instead of silently throttling the
  generator (the coordinated-omission trap).

Both return a :class:`LoadReport` with outcome counts and latency
percentiles; the serve bench scenarios step ``qps`` upward and record
p50/p95/p99 per step.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Sequence

import numpy as np

from repro.serve.errors import DeadlineExceededError, ServerOverloadedError
from repro.serve.server import SurrogateServer

__all__ = ["LoadReport", "closed_loop", "open_loop", "stepped_open_loop"]


@dataclasses.dataclass
class LoadReport:
    """Outcome of one load run."""

    mode: str
    duration_s: float
    offered_qps: float | None
    n_requests: int
    n_ok: int
    n_deadline_miss: int
    n_rejected: int
    n_failed: int
    latencies_s: list[float]

    @property
    def achieved_qps(self) -> float:
        return self.n_ok / self.duration_s if self.duration_s > 0 else 0.0

    def percentiles(self) -> dict[str, float]:
        if not self.latencies_s:
            return {"p50": float("nan"), "p95": float("nan"),
                    "p99": float("nan")}
        p50, p95, p99 = np.percentile(self.latencies_s, [50, 95, 99])
        return {"p50": float(p50), "p95": float(p95), "p99": float(p99)}

    def to_json(self) -> dict:
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "offered_qps": self.offered_qps,
            "achieved_qps": self.achieved_qps,
            "n_requests": self.n_requests,
            "n_ok": self.n_ok,
            "n_deadline_miss": self.n_deadline_miss,
            "n_rejected": self.n_rejected,
            "n_failed": self.n_failed,
            **self.percentiles(),
        }


class _Outcomes:
    """Thread-safe accumulator shared by the generator threads."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.ok = 0
        self.deadline_miss = 0
        self.rejected = 0
        self.failed = 0
        self.latencies: list[float] = []

    def record(self, kind: str, latency_s: float | None = None) -> None:
        with self.lock:
            setattr(self, kind, getattr(self, kind) + 1)
            if latency_s is not None:
                self.latencies.append(latency_s)


def closed_loop(
    server: SurrogateServer,
    params: np.ndarray,
    clients: int = 4,
    requests_per_client: int = 32,
    deadline_s: float | None = None,
) -> LoadReport:
    """``clients`` synchronous callers cycling through ``params`` rows."""
    params = np.asarray(params, dtype=np.float32)
    outcomes = _Outcomes()

    def client(index: int) -> None:
        for j in range(requests_per_client):
            row = params[(index * requests_per_client + j) % len(params)]
            t0 = time.perf_counter()
            try:
                server.predict(row, deadline_s=deadline_s)
            except DeadlineExceededError:
                outcomes.record("deadline_miss")
            except ServerOverloadedError:
                outcomes.record("rejected")
            except Exception:
                outcomes.record("failed")
            else:
                outcomes.record("ok", time.perf_counter() - t0)

    threads = [
        threading.Thread(target=client, args=(i,), daemon=True)
        for i in range(clients)
    ]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    duration = time.perf_counter() - t0
    total = clients * requests_per_client
    return LoadReport(
        mode="closed",
        duration_s=duration,
        offered_qps=None,
        n_requests=total,
        n_ok=outcomes.ok,
        n_deadline_miss=outcomes.deadline_miss,
        n_rejected=outcomes.rejected,
        n_failed=outcomes.failed,
        latencies_s=outcomes.latencies,
    )


def open_loop(
    server: SurrogateServer,
    params: np.ndarray,
    qps: float,
    n_requests: int = 128,
    deadline_s: float | None = None,
) -> LoadReport:
    """Fixed-rate arrivals: one request every ``1/qps`` seconds."""
    if qps <= 0:
        raise ValueError("qps must be positive")
    params = np.asarray(params, dtype=np.float32)
    outcomes = _Outcomes()
    pending: list[threading.Event] = []
    interval = 1.0 / qps
    start = time.perf_counter()
    for i in range(n_requests):
        wait = start + i * interval - time.perf_counter()
        if wait > 0:
            time.sleep(wait)
        row = params[i % len(params)]
        submitted = time.perf_counter()
        done = threading.Event()
        pending.append(done)
        try:
            future = server.submit(row, deadline_s=deadline_s)
        except ServerOverloadedError:
            outcomes.record("rejected")
            done.set()
            continue

        def on_done(f, submitted=submitted, done=done) -> None:
            try:
                f.result()
            except DeadlineExceededError:
                outcomes.record("deadline_miss")
            except Exception:
                outcomes.record("failed")
            else:
                outcomes.record("ok", time.perf_counter() - submitted)
            done.set()

        future.add_done_callback(on_done)
    for done in pending:
        done.wait(timeout=60.0)
    duration = time.perf_counter() - start
    return LoadReport(
        mode="open",
        duration_s=duration,
        offered_qps=qps,
        n_requests=n_requests,
        n_ok=outcomes.ok,
        n_deadline_miss=outcomes.deadline_miss,
        n_rejected=outcomes.rejected,
        n_failed=outcomes.failed,
        latencies_s=outcomes.latencies,
    )


def stepped_open_loop(
    server: SurrogateServer,
    params: np.ndarray,
    qps_steps: Sequence[float],
    requests_per_step: int = 128,
    deadline_s: float | None = None,
) -> list[LoadReport]:
    """One open-loop run per offered rate, lowest to highest."""
    return [
        open_loop(
            server,
            params,
            qps=qps,
            n_requests=requests_per_step,
            deadline_s=deadline_s,
        )
        for qps in sorted(qps_steps)
    ]
