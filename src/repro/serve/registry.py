"""Model registry: versioned serving models with atomic hot-reload.

The registry bridges the training plane (a
:class:`~repro.core.checkpoint.CheckpointStore` that LTFB campaigns
publish winners into) and the serving plane.  It tracks what is
currently deployed as an immutable :class:`ServingModel` — version
counter, source tag, runtime — and swaps in newer checkpoints with a
single reference assignment under a lock.

The swap discipline is what makes hot-reload safe without request
draining: executors capture ``registry.current()`` *once* per
micro-batch and run the whole batch against that object.  A reload
mid-batch only affects batches assembled afterwards, so every response
is computed by exactly one model version and in-flight requests finish
on the version they started on.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Callable

from repro.core.checkpoint import CheckpointError, CheckpointStore
from repro.eval.probe import summary_value
from repro.serve.errors import ServeError
from repro.serve.runtime import EnsembleRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.models.autoencoder import MultimodalAutoencoder

__all__ = ["ServingModel", "GateDecision", "ModelRegistry"]


@dataclasses.dataclass(frozen=True)
class ServingModel:
    """One deployed model version (immutable; shared across threads)."""

    version: int
    tag: str
    runtime: EnsembleRuntime

    @property
    def winner(self) -> str:
        return self.runtime.winner.snapshot.trainer_name

    @property
    def topology(self) -> str | None:
        """Population topology the checkpoint was trained under, if the
        campaign recorded one (``None`` for single-trainer checkpoints
        and pre-topology manifests)."""
        return self.runtime.snapshot.topology


@dataclasses.dataclass(frozen=True)
class GateDecision:
    """One quality-gate check of a refresh candidate.

    ``allowed`` is the verdict; ``reason`` explains it:
    ``"improved"``/``"within_tolerance"`` (candidate quality is no worse
    than the tolerance allows), ``"no_candidate_summary"`` /
    ``"no_incumbent"`` / ``"no_incumbent_summary"`` (the gate passes
    *open* — refusing on missing data would wedge deployments that never
    ran a probe), or ``"regressed"`` (the refusal).  ``candidate`` /
    ``incumbent`` are the compared divergence values (lower is better;
    ``None`` when a side had no summary).
    """

    tag: str
    allowed: bool
    reason: str
    candidate: float | None = None
    incumbent: float | None = None
    metric: str | None = None

    def render(self) -> str:
        values = ""
        if self.candidate is not None and self.incumbent is not None:
            values = (
                f" (candidate {self.metric or 'divergence'} "
                f"{self.candidate:.4f} vs serving {self.incumbent:.4f})"
            )
        verdict = "pass" if self.allowed else "refused"
        return f"quality gate {verdict} for {self.tag!r}: {self.reason}{values}"


class ModelRegistry:
    """Loads, versions, and hot-reloads serving models from a store.

    ``refresh()`` runs every candidate through a **quality gate**: the
    candidate checkpoint's recorded eval summary (stamped into the
    population manifest by a :class:`~repro.eval.QualityProbe`) is
    compared against the summary of the tag currently serving, and a
    candidate whose winner divergence regressed beyond
    ``quality_tolerance`` (relative) is refused — the current model
    keeps serving and the refusal is reported through
    :meth:`on_quality_gate` hooks (the server turns those into the
    ``repro_serve_quality_gate`` metric, a status field, and a health
    warning).  Checkpoints without a summary pass open.  An explicit
    :meth:`load` is the operator override: it never consults the gate.
    """

    def __init__(
        self,
        store: CheckpointStore,
        autoencoder: "MultimodalAutoencoder | None" = None,
        max_batch: int = 32,
        aggregate_mode: str = "winner",
        autoencoder_tag: str = "autoencoder",
        quality_tolerance: float = 0.05,
    ) -> None:
        self.store = store
        self.autoencoder_tag = autoencoder_tag
        self._autoencoder = autoencoder
        self.max_batch = int(max_batch)
        self.aggregate_mode = aggregate_mode
        self.quality_tolerance = float(quality_tolerance)
        self._lock = threading.Lock()
        self._current: ServingModel | None = None
        self._reload_hooks: list[Callable[[ServingModel], None]] = []
        self._gate_hooks: list[Callable[[GateDecision], None]] = []
        #: The last gate verdict (refusals and passes), for status surfaces.
        self.last_gate: GateDecision | None = None
        self._refused_tag: str | None = None

    @property
    def autoencoder(self) -> "MultimodalAutoencoder":
        """The shared decoder, loaded from the store on first use.

        Lazy so a registry can be constructed against a store that a
        training campaign has not published into yet.
        """
        if self._autoencoder is None:
            self._autoencoder = self.store.load_autoencoder(
                self.autoencoder_tag
            )
        return self._autoencoder

    # -- observation ---------------------------------------------------------

    def current(self) -> ServingModel:
        """The deployed model; raises if nothing is loaded yet."""
        model = self._current
        if model is None:
            raise ServeError(
                "no model loaded; call load()/refresh() before serving"
            )
        return model

    @property
    def loaded(self) -> bool:
        return self._current is not None

    def on_reload(self, hook: Callable[[ServingModel], None]) -> None:
        """Run ``hook(new_model)`` after every swap (cache invalidation,
        metrics stamping).  Hooks run under the registry lock, so they
        observe swaps in order."""
        self._reload_hooks.append(hook)

    def on_quality_gate(self, hook: Callable[[GateDecision], None]) -> None:
        """Run ``hook(decision)`` after every gate check a ``refresh()``
        performs — refusals *and* passes, so consumers can count checks
        and surface the latest verdict."""
        self._gate_hooks.append(hook)

    # -- loading -------------------------------------------------------------

    def load(self, tag: str) -> ServingModel:
        """Deploy ``tag`` (trainer or population checkpoint), atomically.

        The runtime is fully constructed *before* the swap: a failed or
        corrupt checkpoint leaves the previous version serving.
        """
        runtime = EnsembleRuntime(
            self.store.load_ensemble(tag),
            self.autoencoder,
            max_batch=self.max_batch,
            aggregate_mode=self.aggregate_mode,
        )
        with self._lock:
            version = (
                1 if self._current is None else self._current.version + 1
            )
            model = ServingModel(version=version, tag=tag, runtime=runtime)
            self._current = model
            for hook in self._reload_hooks:
                hook(model)
        return model

    def refresh(self) -> ServingModel | None:
        """Deploy the newest store tag if it differs from what is serving
        *and* it clears the quality gate.

        Returns the new :class:`ServingModel` when a swap happened,
        ``None`` otherwise.  This is the hot-reload poll: a training
        campaign checkpoints a better tournament winner, the next
        ``refresh()`` picks it up — unless its recorded eval summary
        shows a quality regression vs the model currently serving, in
        which case the candidate is refused (and remembered, so the poll
        loop does not re-judge the same tag every period; a newer tag
        clears the memory).
        """
        tag = self.store.latest(exclude=(self.autoencoder_tag,))
        if tag is None:
            return None
        current = self._current
        if current is not None and current.tag == tag:
            return None
        if tag == self._refused_tag:
            return None
        decision = self._quality_check(tag, current)
        self.last_gate = decision
        for hook in self._gate_hooks:
            hook(decision)
        if not decision.allowed:
            self._refused_tag = tag
            return None
        self._refused_tag = None
        return self.load(tag)

    # -- the quality gate ----------------------------------------------------

    def _recorded_summary(self, tag: str) -> dict | None:
        try:
            return self.store.eval_summary(tag)
        except CheckpointError:
            # Trainer tags (no manifest) and unreadable manifests: the
            # gate has nothing to judge on — load() will surface corrupt
            # checkpoints with a real error.
            return None

    def _quality_check(
        self, tag: str, current: ServingModel | None
    ) -> GateDecision:
        candidate_summary = self._recorded_summary(tag)
        candidate = summary_value(candidate_summary)
        metric = (
            candidate_summary.get("metric") if candidate_summary else None
        )
        if candidate is None:
            return GateDecision(
                tag=tag, allowed=True, reason="no_candidate_summary"
            )
        if current is None:
            return GateDecision(
                tag=tag, allowed=True, reason="no_incumbent",
                candidate=candidate, metric=metric,
            )
        incumbent = summary_value(self._recorded_summary(current.tag))
        if incumbent is None:
            return GateDecision(
                tag=tag, allowed=True, reason="no_incumbent_summary",
                candidate=candidate, metric=metric,
            )
        if candidate <= incumbent:
            reason = "improved"
        elif candidate <= incumbent * (1.0 + self.quality_tolerance):
            reason = "within_tolerance"
        else:
            return GateDecision(
                tag=tag, allowed=False, reason="regressed",
                candidate=candidate, incumbent=incumbent, metric=metric,
            )
        return GateDecision(
            tag=tag, allowed=True, reason=reason,
            candidate=candidate, incumbent=incumbent, metric=metric,
        )
