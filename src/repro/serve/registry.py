"""Model registry: versioned serving models with atomic hot-reload.

The registry bridges the training plane (a
:class:`~repro.core.checkpoint.CheckpointStore` that LTFB campaigns
publish winners into) and the serving plane.  It tracks what is
currently deployed as an immutable :class:`ServingModel` — version
counter, source tag, runtime — and swaps in newer checkpoints with a
single reference assignment under a lock.

The swap discipline is what makes hot-reload safe without request
draining: executors capture ``registry.current()`` *once* per
micro-batch and run the whole batch against that object.  A reload
mid-batch only affects batches assembled afterwards, so every response
is computed by exactly one model version and in-flight requests finish
on the version they started on.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import TYPE_CHECKING, Callable

from repro.core.checkpoint import CheckpointStore
from repro.serve.errors import ServeError
from repro.serve.runtime import EnsembleRuntime

if TYPE_CHECKING:  # pragma: no cover
    from repro.models.autoencoder import MultimodalAutoencoder

__all__ = ["ServingModel", "ModelRegistry"]


@dataclasses.dataclass(frozen=True)
class ServingModel:
    """One deployed model version (immutable; shared across threads)."""

    version: int
    tag: str
    runtime: EnsembleRuntime

    @property
    def winner(self) -> str:
        return self.runtime.winner.snapshot.trainer_name

    @property
    def topology(self) -> str | None:
        """Population topology the checkpoint was trained under, if the
        campaign recorded one (``None`` for single-trainer checkpoints
        and pre-topology manifests)."""
        return self.runtime.snapshot.topology


class ModelRegistry:
    """Loads, versions, and hot-reloads serving models from a store."""

    def __init__(
        self,
        store: CheckpointStore,
        autoencoder: "MultimodalAutoencoder | None" = None,
        max_batch: int = 32,
        aggregate_mode: str = "winner",
        autoencoder_tag: str = "autoencoder",
    ) -> None:
        self.store = store
        self.autoencoder_tag = autoencoder_tag
        self._autoencoder = autoencoder
        self.max_batch = int(max_batch)
        self.aggregate_mode = aggregate_mode
        self._lock = threading.Lock()
        self._current: ServingModel | None = None
        self._reload_hooks: list[Callable[[ServingModel], None]] = []

    @property
    def autoencoder(self) -> "MultimodalAutoencoder":
        """The shared decoder, loaded from the store on first use.

        Lazy so a registry can be constructed against a store that a
        training campaign has not published into yet.
        """
        if self._autoencoder is None:
            self._autoencoder = self.store.load_autoencoder(
                self.autoencoder_tag
            )
        return self._autoencoder

    # -- observation ---------------------------------------------------------

    def current(self) -> ServingModel:
        """The deployed model; raises if nothing is loaded yet."""
        model = self._current
        if model is None:
            raise ServeError(
                "no model loaded; call load()/refresh() before serving"
            )
        return model

    @property
    def loaded(self) -> bool:
        return self._current is not None

    def on_reload(self, hook: Callable[[ServingModel], None]) -> None:
        """Run ``hook(new_model)`` after every swap (cache invalidation,
        metrics stamping).  Hooks run under the registry lock, so they
        observe swaps in order."""
        self._reload_hooks.append(hook)

    # -- loading -------------------------------------------------------------

    def load(self, tag: str) -> ServingModel:
        """Deploy ``tag`` (trainer or population checkpoint), atomically.

        The runtime is fully constructed *before* the swap: a failed or
        corrupt checkpoint leaves the previous version serving.
        """
        runtime = EnsembleRuntime(
            self.store.load_ensemble(tag),
            self.autoencoder,
            max_batch=self.max_batch,
            aggregate_mode=self.aggregate_mode,
        )
        with self._lock:
            version = (
                1 if self._current is None else self._current.version + 1
            )
            model = ServingModel(version=version, tag=tag, runtime=runtime)
            self._current = model
            for hook in self._reload_hooks:
                hook(model)
        return model

    def refresh(self) -> ServingModel | None:
        """Deploy the newest store tag if it differs from what is serving.

        Returns the new :class:`ServingModel` when a swap happened,
        ``None`` otherwise.  This is the hot-reload poll: a training
        campaign checkpoints a better tournament winner, the next
        ``refresh()`` picks it up.
        """
        tag = self.store.latest(exclude=(self.autoencoder_tag,))
        if tag is None:
            return None
        current = self._current
        if current is not None and current.tag == tag:
            return None
        return self.load(tag)
