"""repro: reproduction of "Parallelizing Training of Deep Generative
Models on Massive Scientific Datasets" (Jacobs et al., CLUSTER 2019).

Subpackages (see README.md for the architecture overview):

- :mod:`repro.tensorlib` — NumPy neural-network substrate (LBANN analog);
- :mod:`repro.comm` — SPMD communicator and collective cost models
  (Aluminum analog);
- :mod:`repro.cluster` — simulated Lassen-class machine: compute and
  parallel-file-system models;
- :mod:`repro.datastore` — the distributed in-memory data store;
- :mod:`repro.jag` — synthetic JAG ICF data generator;
- :mod:`repro.workflow` — ensemble workflow engine (Merlin analog);
- :mod:`repro.models` — multimodal autoencoder + CycleGAN surrogate;
- :mod:`repro.core` — trainers, the LTFB tournament algorithm, baselines,
  checkpointing, and the paper-scale performance models;
- :mod:`repro.telemetry` — event-bus + callback observability layer
  (LBANN-callback analog): trace writing, timing, counters;
- :mod:`repro.exec` — pluggable execution backends (serial/thread/
  process) deciding where population trainer work runs;
- :mod:`repro.experiments` — one harness per paper figure, plus ablations.

The most common entry points are re-exported here.
"""

from repro.core import (
    AdoptOptimizer,
    EnsembleSpec,
    ExchangeScope,
    History,
    KIndependentDriver,
    LtfbConfig,
    LtfbDriver,
    PopulationDriver,
    Trainer,
    TrainerConfig,
    build_population,
    pretrain_autoencoder,
)
from repro.exec import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    resolve_backend,
)
from repro.jag import JagDatasetConfig, JagSchema, generate_dataset
from repro.models import ICFSurrogate, MultimodalAutoencoder, SurrogateConfig
from repro.telemetry import (
    Callback,
    CounterAggregator,
    JsonlTraceWriter,
    ProgressLogger,
    TelemetryHub,
    WallClockTimer,
)
from repro.utils.rng import RngFactory

__version__ = "1.0.0"

__all__ = [
    "RngFactory",
    "JagDatasetConfig",
    "JagSchema",
    "generate_dataset",
    "MultimodalAutoencoder",
    "ICFSurrogate",
    "SurrogateConfig",
    "EnsembleSpec",
    "TrainerConfig",
    "Trainer",
    "ExchangeScope",
    "AdoptOptimizer",
    "LtfbConfig",
    "LtfbDriver",
    "KIndependentDriver",
    "PopulationDriver",
    "History",
    "build_population",
    "pretrain_autoencoder",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "resolve_backend",
    "TelemetryHub",
    "Callback",
    "JsonlTraceWriter",
    "WallClockTimer",
    "CounterAggregator",
    "ProgressLogger",
    "__version__",
]
