"""The end-to-end JAG campaign under the workflow engine.

Reproduces the paper's data-production pipeline: draw a space-filling
design over the 5-D input space, run the (synthetic) JAG simulator for
every point as workflow tasks, post-process scalars, and pack the samples
— in exploration order — into bundle files on the simulated parallel file
system.  The real JAG takes ~1 CPU-minute per sample including
post-processing; the default simulated task time matches that, so the
workflow-overhead economics mirror the paper's.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.filesystem import SimulatedFilesystem
from repro.jag.dataset import JagDataset, JagDatasetConfig, generate_dataset
from repro.workflow.engine import EnsembleWorkflow, WorkerPoolSpec, WorkflowStats

__all__ = ["CampaignReport", "run_campaign"]


@dataclass
class CampaignReport:
    """Everything a campaign produced."""

    dataset: JagDataset
    bundle_paths: list[str]
    stats: WorkflowStats
    simulated_task_seconds: float

    @property
    def samples_per_simulated_hour(self) -> float:
        return 3600.0 * self.stats.tasks_completed / self.stats.makespan


def run_campaign(
    dataset_config: JagDatasetConfig,
    fs: SimulatedFilesystem,
    pool: WorkerPoolSpec | None = None,
    samples_per_bundle: int = 100,
    task_seconds: float = 60.0,
    bundle_prefix: str = "jag",
) -> CampaignReport:
    """Generate the dataset under the workflow engine and bundle it.

    The JAG physics actually runs (via
    :func:`repro.jag.dataset.generate_dataset`); the workflow engine
    accounts the simulated schedule for ``n_samples`` tasks of
    ``task_seconds`` each over the worker pool, which is where the
    "workflow overhead dominates fast simulations" effect shows up.
    """
    if task_seconds <= 0:
        raise ValueError("task_seconds must be positive")
    pool = pool or WorkerPoolSpec()
    dataset = generate_dataset(dataset_config)
    workflow = EnsembleWorkflow(pool)
    _, stats = workflow.run([task_seconds] * dataset_config.n_samples)
    bundle_paths = dataset.write_bundles(
        fs, samples_per_bundle, prefix=bundle_prefix
    )
    return CampaignReport(
        dataset=dataset,
        bundle_paths=bundle_paths,
        stats=stats,
        simulated_task_seconds=task_seconds,
    )
