"""Ensemble workflow engine (Merlin analog).

The paper's dataset came from ~10M JAG runs driven by an extension of the
Merlin workflow system; because each JAG run takes only ~a minute, "a
workflow system's runtime can be dominated by the overhead of scheduling,
placing, and executing jobs".  This package reproduces that layer:

- :mod:`repro.workflow.engine` — a discrete-event simulator of a worker
  pool executing an ensemble of tasks, with per-task scheduling/placement
  overheads, so the throughput effect the paper motivates is measurable;
- :mod:`repro.workflow.campaign` — the end-to-end JAG campaign: sample the
  design, run the simulator (for real) under the workflow engine, bundle
  outputs onto the simulated PFS.
"""

from repro.workflow.engine import (
    EnsembleWorkflow,
    TaskResult,
    WorkerPoolSpec,
    WorkflowConfigError,
    WorkflowStats,
)
from repro.workflow.campaign import CampaignReport, run_campaign

__all__ = [
    "WorkflowConfigError",
    "WorkerPoolSpec",
    "TaskResult",
    "WorkflowStats",
    "EnsembleWorkflow",
    "run_campaign",
    "CampaignReport",
]
