"""Discrete-event ensemble workflow engine.

Executes an ensemble of short tasks on a simulated worker pool.  Each
task costs (simulated) scheduling overhead + placement overhead +
execution time; workers pull tasks greedily, batched ``tasks_per_job``
at a time — the Merlin-style optimization that amortizes scheduler
overhead over many fast simulations.  The engine optionally *actually
executes* a Python callable per task (the JAG campaign does), but its
clock is the simulated one.

The observable the paper motivates: with one-task-per-job scheduling,
overhead dominates runtime for ~minute-long JAG tasks; batching restores
throughput.  ``WorkflowStats.overhead_fraction`` measures exactly that.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

__all__ = [
    "WorkflowConfigError",
    "WorkerPoolSpec",
    "TaskResult",
    "WorkflowStats",
    "EnsembleWorkflow",
]


class WorkflowConfigError(ValueError):
    """An invalid worker-pool geometry or an empty/negative ensemble.

    Subclasses ``ValueError`` so existing ``except ValueError`` call sites
    keep working while new code can catch the workflow layer precisely.
    """


@dataclass(frozen=True)
class WorkerPoolSpec:
    """The execution fabric and its overheads (seconds, simulated)."""

    num_workers: int = 16
    schedule_overhead: float = 3.0  # batch-queue decision per job
    placement_overhead: float = 1.5  # job launch/placement per job
    tasks_per_job: int = 100  # Merlin-style batching factor

    def __post_init__(self) -> None:
        if self.num_workers <= 0 or self.tasks_per_job <= 0:
            raise WorkflowConfigError(
                "num_workers and tasks_per_job must be positive, got "
                f"num_workers={self.num_workers}, "
                f"tasks_per_job={self.tasks_per_job}"
            )
        if self.schedule_overhead < 0 or self.placement_overhead < 0:
            raise WorkflowConfigError("overheads must be non-negative")


@dataclass
class TaskResult:
    """One task's execution record (simulated timestamps)."""

    task_id: int
    worker: int
    start_time: float
    end_time: float
    output: object = None


@dataclass
class WorkflowStats:
    """Aggregate accounting of one workflow run."""

    makespan: float = 0.0
    total_task_time: float = 0.0
    total_overhead_time: float = 0.0
    jobs_launched: int = 0
    tasks_completed: int = 0

    @property
    def overhead_fraction(self) -> float:
        busy = self.total_task_time + self.total_overhead_time
        return self.total_overhead_time / busy if busy > 0 else 0.0

    @property
    def worker_efficiency(self) -> float:
        """Useful task time / total worker-seconds consumed."""
        busy = self.total_task_time + self.total_overhead_time
        return self.total_task_time / busy if busy > 0 else 0.0


class EnsembleWorkflow:
    """Runs an ensemble of tasks over a simulated worker pool.

    Parameters
    ----------
    spec:
        Worker pool geometry and overheads.
    task_fn:
        Optional real work: called as ``task_fn(task_id)`` for every task;
        its return value lands in the :class:`TaskResult`.  The *simulated*
        duration comes from ``task_times``, not the wall clock.
    """

    def __init__(
        self,
        spec: WorkerPoolSpec,
        task_fn: Callable[[int], object] | None = None,
    ) -> None:
        self.spec = spec
        self.task_fn = task_fn

    def _schedule(
        self, task_times: Sequence[float]
    ) -> tuple[list[TaskResult], WorkflowStats]:
        """Pure timing: simulate the pool without running ``task_fn``.

        Tasks are grouped into jobs of ``tasks_per_job``; each job pays the
        scheduling + placement overhead once, then runs its tasks
        back-to-back on one worker.  Workers are assigned jobs
        earliest-available-first (a min-heap of worker clocks).  Results
        come back in job order with ``output=None``.
        """
        n = len(task_times)
        if n == 0:
            raise WorkflowConfigError("ensemble must contain at least one task")
        if any(t < 0 for t in task_times):
            raise WorkflowConfigError("task times must be non-negative")
        spec = self.spec
        # (available_time, worker_id) heap; worker_id breaks ties stably.
        workers = [(0.0, w) for w in range(spec.num_workers)]
        heapq.heapify(workers)
        results: list[TaskResult] = []
        stats = WorkflowStats()
        per_job_overhead = spec.schedule_overhead + spec.placement_overhead

        for job_start in range(0, n, spec.tasks_per_job):
            job_tasks = range(job_start, min(n, job_start + spec.tasks_per_job))
            available, worker = heapq.heappop(workers)
            clock = available + per_job_overhead
            stats.total_overhead_time += per_job_overhead
            stats.jobs_launched += 1
            for task_id in job_tasks:
                start = clock
                clock += float(task_times[task_id])
                results.append(
                    TaskResult(
                        task_id=task_id,
                        worker=worker,
                        start_time=start,
                        end_time=clock,
                    )
                )
                stats.total_task_time += float(task_times[task_id])
                stats.tasks_completed += 1
            heapq.heappush(workers, (clock, worker))

        stats.makespan = max(r.end_time for r in results)
        return results, stats

    def run(self, task_times: Sequence[float]) -> tuple[list[TaskResult], WorkflowStats]:
        """Execute tasks ``0..n-1`` with the given simulated durations.

        Raises :class:`WorkflowConfigError` when ``task_times`` is empty or
        contains negative durations.  ``task_fn`` (when set) runs once per
        task in task-id order; results come back in job order.
        """
        results, stats = self._schedule(task_times)
        if self.task_fn is not None:
            for r in results:
                r.output = self.task_fn(r.task_id)
        return results, stats

    def iter_results(self, task_times: Sequence[float]) -> Iterator[TaskResult]:
        """Yield :class:`TaskResult`\\ s in simulated *completion* order.

        The schedule is computed eagerly (it is pure timing arithmetic),
        then results are yielded sorted by ``(end_time, task_id)`` with
        ``task_fn`` executed lazily at yield time.  This is the streaming
        face of the engine: a consumer that stops pulling stops the
        remaining simulations from ever running — which is what lets an
        :class:`~repro.ingest.IngestChannel`'s backpressure propagate all
        the way into the campaign.
        """
        results, _ = self._schedule(task_times)
        for r in sorted(results, key=lambda r: (r.end_time, r.task_id)):
            if self.task_fn is not None:
                r.output = self.task_fn(r.task_id)
            yield r
