"""The shared population-driver API.

Both population algorithms — LTFB tournament training
(:class:`~repro.core.ltfb.LtfbDriver`) and the K-independent baseline
(:class:`~repro.core.kindependent.KIndependentDriver`) — extend
:class:`PopulationDriver` and share one contract:

- ``run(callbacks=[...]) -> History`` — run the configured rounds,
  streaming telemetry events to the attached callbacks;
- one :class:`History` shape for both (train losses, eval series, rounds;
  LTFB additionally fills tournaments/pairings/exchange bytes), so Fig.-13
  style code can swap drivers without branching;
- ``best_trainer(metric)`` — population-best selection on the global
  validation batch.

*What* a driver computes is separated from *where* trainer work runs: the
train phase is delegated to an :class:`~repro.exec.ExecutionBackend`
(``backend="serial"|"thread"|"process"``, or an instance), and all
backends are bit-identical at round boundaries because trainers are
independent within a round.

``run`` resumes from ``history.rounds_completed``: a driver constructed
with a partially-filled :class:`History` (e.g. after restoring a
population checkpoint mid-campaign) continues where the history stops.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.core.trainer import Trainer
from repro.exec import ExecutionBackend, resolve_backend
from repro.telemetry import Callback, TelemetryHub
from repro.telemetry.events import EVAL, PAIRING, ROUND_END

__all__ = ["TournamentRecord", "History", "PopulationDriver"]


@dataclass
class TournamentRecord:
    """Outcome of one pairwise tournament at one trainer."""

    round_index: int
    trainer: str
    partner: str
    own_score: float
    partner_score: float
    adopted_partner: bool


@dataclass
class History:
    """Everything a population run produced, for analysis and plots.

    One shape for every driver: LTFB fills all fields; drivers without
    tournaments (K-independent) leave ``tournaments``/``pairings`` empty
    and ``exchange_bytes`` at zero.
    """

    rounds_completed: int = 0
    train_losses: list[dict[str, dict[str, float]]] = field(default_factory=list)
    eval_series: list[dict[str, dict[str, float]]] = field(default_factory=list)
    tournaments: list[TournamentRecord] = field(default_factory=list)
    pairings: list[list[tuple[str, str]]] = field(default_factory=list)
    #: Per round, the trainers the topology deterministically sat out
    #: (odd populations, unmatched grid cells, async leftovers).
    byes: list[list[str]] = field(default_factory=list)
    exchange_bytes: int = 0
    #: Structured warnings from any attached
    #: :class:`~repro.telemetry.health.HealthMonitor` (empty when no
    #: monitor ran, or the run was healthy).
    health_warnings: list = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when no health monitor flagged anything."""
        return not self.health_warnings

    def adoption_rate(self) -> float:
        """Fraction of tournament decisions that adopted the partner."""
        if not self.tournaments:
            return 0.0
        adopted = sum(1 for t in self.tournaments if t.adopted_partner)
        return adopted / len(self.tournaments)

    def best_val_series(self, metric: str = "val_loss") -> list[float]:
        """Per-round best (min) value of ``metric`` across trainers, from
        the evaluation snapshots recorded by the driver."""
        return [
            min(per_trainer[metric] for per_trainer in snap.values())
            for snap in self.eval_series
        ]


class PopulationDriver:
    """Base class: owns the population, the history, and the telemetry hub.

    Parameters
    ----------
    trainers:
        The population (non-empty, unique names).
    config:
        The round schedule (:class:`~repro.core.ltfb.LtfbConfig`).
    eval_batch:
        Optional *global* validation batch; when given, every trainer is
        evaluated on it after every round and the series is recorded.
    history:
        Optional pre-filled :class:`History` to resume into; ``run`` picks
        up at ``history.rounds_completed``.
    backend:
        Where trainer work executes: ``None``/``"serial"`` (default),
        ``"thread"``, ``"process"``, or a constructed
        :class:`~repro.exec.ExecutionBackend`.
    topology:
        Who exchanges with whom, judged how, and when: ``None`` (no
        coordination — the K-independent shape), one of
        :data:`~repro.core.topology.TOPOLOGY_NAMES`, or a constructed
        :class:`~repro.core.topology.Topology`.  Subclasses override the
        default (LTFB resolves ``None`` to ``"random_pairwise"``).
    pairing_rng:
        RNG handed to topologies that draw random pairings.
    judge:
        What "better" means in tournaments: ``None``/``"loss"`` (the
        paper's tournament-holdout loss, bit-identical to the pre-seam
        behaviour), ``"divergence"`` (rank on distributional fidelity),
        or a constructed :class:`~repro.eval.judge.Judge`.
    source:
        Optional :class:`~repro.ingest.StreamingSource` polled at the top
        of every round: new streamed samples are admitted into the sample
        universe (and propagated to worker replicas through the backend)
        before any training of the round plans against it.  ``None`` for
        the classic fixed-corpus run.
    """

    def __init__(
        self,
        trainers: Sequence[Trainer],
        config,
        eval_batch: Mapping[str, np.ndarray] | None = None,
        history: History | None = None,
        backend: ExecutionBackend | str | None = None,
        topology=None,
        pairing_rng: np.random.Generator | None = None,
        judge=None,
        source=None,
    ) -> None:
        # Deferred imports: repro.core.topology imports this module, and
        # repro.eval.judge sits above core in the layering.
        from repro.core.topology import resolve_topology
        from repro.eval.judge import resolve_judge

        if not trainers:
            raise ValueError("need at least one trainer")
        names = [t.name for t in trainers]
        if len(set(names)) != len(names):
            raise ValueError(f"trainer names must be unique, got {names}")
        self.trainers = list(trainers)
        self.config = config
        self.eval_batch = dict(eval_batch) if eval_batch is not None else None
        self.history = history if history is not None else History()
        self.telemetry = TelemetryHub()
        self.backend = resolve_backend(backend)
        self.topology = resolve_topology(topology)
        self.topology.bind(names, pairing_rng)
        self.judge = resolve_judge(judge)
        self.source = source

    # -- the one run signature ------------------------------------------------

    def run(self, callbacks: Iterable[Callback] = ()) -> History:
        """Run the remaining rounds; returns the (shared-shape) history.

        ``callbacks`` subscribe to the driver's telemetry hub for the
        duration of the run and get the ``on_run_begin``/``on_run_end``
        lifecycle calls.
        """
        attached = list(callbacks)
        for cb in attached:
            self.telemetry.subscribe(cb)
        # Span tracing is opt-in per run: enabled only when an attached
        # callback asks for it (e.g. JsonlTraceWriter(spans=True)), so the
        # permanent instrumentation stays a `tracer is None` branch
        # everywhere else.
        if any(getattr(cb, "wants_spans", False) for cb in attached):
            self.telemetry.start_tracing()
        tracer = self.telemetry.tracer
        for t in self.trainers:
            t.telemetry = self.telemetry
        self.backend.bind(self.trainers, self.telemetry)
        try:
            for cb in attached:
                cb.on_run_begin(self)
            run_span = (
                tracer.span(
                    "run",
                    cat="run",
                    track="driver",
                    driver=type(self).__name__,
                    backend=self.backend.name,
                    workers=self.backend.num_workers,
                    trainers=len(self.trainers),
                )
                if tracer is not None
                else nullcontext()
            )
            with run_span:
                for r in range(self.history.rounds_completed, self.config.rounds):
                    if tracer is not None:
                        with tracer.span("round", cat="round", round=r):
                            self.run_round(r)
                    else:
                        self.run_round(r)
        except BaseException as exc:
            # Crash hook: callbacks get one look at the failure while the
            # population/backend state is still live (the flight recorder
            # dumps its bundle here).  Hook failures must not mask `exc`.
            for cb in attached:
                try:
                    cb.on_run_error(self, exc)
                except Exception:
                    pass
            raise
        finally:
            self.backend.release()
            # Two passes: events emitted from one callback's on_run_end
            # (e.g. ResourceSampler's final sample) must still reach every
            # other callback, so nobody unsubscribes until all have ended.
            for cb in attached:
                cb.on_run_end(self, self.history)
            for cb in attached:
                self.telemetry.unsubscribe(cb)
        return self.history

    def _ingest_phase(self, round_index: int) -> None:
        """Poll the streaming source (when one is attached) before the
        round trains: pump the campaign, drain the channel, grow the
        universe, re-sync every trainer's data pipeline."""
        if self.source is None:
            return
        self.source.telemetry = self.telemetry
        with self._phase_span("ingest", round=round_index):
            self.source.poll(
                self.trainers, backend=self.backend, round_index=round_index
            )

    def run_round(self, round_index: int) -> None:
        """Advance the population by one round: ingest (when streaming),
        train, coordinate per the topology, evaluate."""
        self._ingest_phase(round_index)
        if self.topology.barrier_free:
            self._run_async_round(round_index)
            return
        train_s = self._train_phase(round_index)
        tournament_s = exchange_s = 0.0
        if self.topology.active:
            t0 = time.perf_counter()
            with self._phase_span(
                "tournament", round=round_index, topology=self.topology.name
            ):
                exchange_s = self.topology.exchange(self, round_index)
            tournament_s = time.perf_counter() - t0 - exchange_s
        eval_s = self._eval_phase(round_index)
        self._end_round(
            round_index,
            train_s=train_s,
            tournament_s=tournament_s,
            exchange_s=exchange_s,
            eval_s=eval_s,
        )

    def _run_async_round(self, round_index: int) -> None:
        """One barrier-free round: tournaments fire *during* the train
        phase, as soon as both members of a pair have finished their
        intervals (``backend.train_round_async`` reports readiness).

        The ``pairing`` event is emitted at round end — only then is the
        realized pairing order known — and tournament events appear in
        completion order, interleaved with training telemetry.
        """
        # Deferred import: repro.core.topology imports this module.
        from repro.core.topology import RoundPlan, run_pairwise_tournament

        topology = self.topology
        topology.begin_round(round_index)
        name_to_index = {t.name: i for i, t in enumerate(self.trainers)}
        pairs = []
        timing = {"tournament_s": 0.0, "exchange_s": 0.0}

        def on_ready(trainer_name: str) -> None:
            pair = topology.on_ready(name_to_index[trainer_name])
            if pair is None:
                return
            pairs.append(pair)
            t0 = time.perf_counter()
            exchange_s = run_pairwise_tournament(
                self, round_index, pair, topology
            )
            timing["exchange_s"] += exchange_s
            timing["tournament_s"] += time.perf_counter() - t0 - exchange_s

        t0 = time.perf_counter()
        with self._phase_span(
            "train", round=round_index, topology=topology.name, barrier=False
        ):
            losses = self.backend.train_round_async(
                round_index, self.config.steps_per_round, on_ready
            )
        self.history.train_losses.append(losses)
        train_s = (
            time.perf_counter() - t0
            - timing["tournament_s"] - timing["exchange_s"]
        )
        plan = RoundPlan(pairs=tuple(pairs), byes=topology.finish_round())
        self.record_pairings(round_index, plan, topology)
        eval_s = self._eval_phase(round_index)
        self._end_round(
            round_index,
            train_s=train_s,
            tournament_s=timing["tournament_s"],
            exchange_s=timing["exchange_s"],
            eval_s=eval_s,
        )

    def record_pairings(self, round_index: int, plan, topology) -> None:
        """Book one round's realized pairing plan: history rows
        (``pairings``/``byes``) plus the ``pairing`` telemetry event."""
        names = [t.name for t in self.trainers]
        pair_names = [(names[p.a], names[p.b]) for p in plan.pairs]
        bye_names = [names[i] for i in plan.byes]
        self.history.pairings.append(pair_names)
        self.history.byes.append(bye_names)
        self.telemetry.emit(
            PAIRING,
            round=round_index,
            topology=topology.name,
            pairs=[list(p) for p in pair_names],
            bye=bye_names,
            neighborhoods=[p.neighborhood for p in plan.pairs],
        )

    # -- shared round phases --------------------------------------------------

    def _phase_span(self, phase: str, **attrs):
        """A ``phase:<name>`` span on the driver track, or a no-op context
        when tracing is off (the common case)."""
        tracer = self.telemetry.tracer
        if tracer is None:
            return nullcontext()
        return tracer.span(f"phase:{phase}", cat="phase", **attrs)

    def _train_phase(self, round_index: int) -> float:
        """Train every trainer for one interval; returns elapsed seconds.

        Execution is delegated to the backend; on return the driver's
        trainer objects hold the post-train state regardless of where the
        steps ran.  Per-trainer ``step_end`` events reach the hub either
        directly (serial) or relayed in population order (thread/process).
        """
        t0 = time.perf_counter()
        with self._phase_span("train", round=round_index):
            losses = self.backend.train_round(
                round_index, self.config.steps_per_round
            )
        self.history.train_losses.append(losses)
        return time.perf_counter() - t0

    def _eval_phase(self, round_index: int) -> float:
        """Evaluate the population on the global batch; returns elapsed."""
        if self.eval_batch is None:
            return 0.0
        t0 = time.perf_counter()
        with self._phase_span("eval", round=round_index):
            snap = {t.name: t.evaluate(self.eval_batch) for t in self.trainers}
        self.history.eval_series.append(snap)
        elapsed = time.perf_counter() - t0
        self.telemetry.emit(
            EVAL, round=round_index, metrics=snap, elapsed_s=elapsed
        )
        return elapsed

    def _end_round(
        self,
        round_index: int,
        train_s: float,
        tournament_s: float = 0.0,
        exchange_s: float = 0.0,
        eval_s: float = 0.0,
    ) -> None:
        """Record round completion and emit the ``round_end`` timing event."""
        self.history.rounds_completed += 1
        self.telemetry.emit(
            ROUND_END,
            round=round_index,
            train_s=train_s,
            tournament_s=tournament_s,
            exchange_s=exchange_s,
            eval_s=eval_s,
            backend=self.backend.name,
            workers=self.backend.num_workers,
        )

    # -- results --------------------------------------------------------------

    def best_trainer(self, metric: str = "val_loss") -> tuple[Trainer, float]:
        """The population's best model by a metric on the global eval batch
        (paper: the final surviving model is selected on validation loss)."""
        if self.eval_batch is None:
            raise ValueError("no global eval batch configured")
        scored = [
            (t, t.evaluate(self.eval_batch)[metric]) for t in self.trainers
        ]
        return min(scored, key=lambda pair: pair[1])

    def best_val_series(self, metric: str = "val_loss") -> list[float]:
        """Per-round best value of ``metric`` across the population."""
        return self.history.best_val_series(metric)
