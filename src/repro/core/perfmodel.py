"""Analytic performance models for paper-scale training (Figs. 9-11).

These models price what the functional code *does* (the algorithms run
for real at laptop scale elsewhere in this repo) at Lassen scale, from
three calibrated cost components:

- compute: :class:`repro.cluster.compute.ComputeModel` over the symbolic
  :class:`repro.models.cyclegan.SurrogateArchitecture`;
- communication: :class:`repro.comm.costmodel.CollectiveCostModel`
  (gradient allreduces, data-store shuffle, LTFB generator exchange);
- file system: :class:`repro.cluster.filesystem.PfsCostModel`
  (naive per-sample ingestion, bulk preload with contention).

Memory model (documented in DESIGN.md):

- *preloading* preallocates per process within its resource-set share of
  node memory (``memory_share`` of the usable node memory, default
  ``1/gpus_per_node``); exceeding it raises
  :class:`~repro.datastore.store.InsufficientMemoryError` — the paper's
  missing preload bars at 1-2 GPUs (Fig. 10) and the reason the Fig. 11
  single-trainer baseline runs 1 rank per node across 16 nodes with full
  node memory.
- *dynamic* caching grows at runtime out of the trainer's pooled usable
  node memory; when the partition exceeds the pool, the store caches what
  fits and the remainder is re-read from the PFS every epoch (partial
  caching).
- a data store occupying a large fraction of node memory slows the
  host-side step path (``PerfCalibration.cache_pressure_penalty``) — the
  paper's "cache effects" behind the super-linear Fig. 11 speedup.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum

from repro.cluster.compute import ComputeModel
from repro.cluster.filesystem import PfsCostModel
from repro.cluster.machine import MachineSpec
from repro.comm.costmodel import CollectiveCostModel
from repro.comm.topology import RankPlacement, contiguous_placement
from repro.datastore.store import InsufficientMemoryError
from repro.models.cyclegan import SurrogateArchitecture

__all__ = [
    "IngestionMode",
    "PerfDataset",
    "TrainerResources",
    "StepBreakdown",
    "TrainerPerfModel",
    "LtfbScalePoint",
    "LtfbPerfModel",
]


class IngestionMode(str, Enum):
    """How a trainer gets its samples (the three Fig. 10 configurations)."""

    NAIVE = "naive"  # "Dynamic Loading" in the paper's figures: no store
    STORE_DYNAMIC = "store_dynamic"
    STORE_PRELOAD = "store_preload"


@dataclass(frozen=True)
class PerfDataset:
    """Dataset geometry as the performance model sees it."""

    n_samples: int
    sample_nbytes: int
    samples_per_bundle: int = 1000

    def __post_init__(self) -> None:
        if min(self.n_samples, self.sample_nbytes, self.samples_per_bundle) <= 0:
            raise ValueError("PerfDataset fields must be positive")

    @property
    def total_bytes(self) -> int:
        return self.n_samples * self.sample_nbytes

    @property
    def n_bundles(self) -> int:
        return -(-self.n_samples // self.samples_per_bundle)

    def subset(self, n_samples: int) -> "PerfDataset":
        if not 0 < n_samples <= self.n_samples:
            raise ValueError(
                f"subset size {n_samples} out of range (1..{self.n_samples})"
            )
        return replace(self, n_samples=n_samples)


@dataclass(frozen=True)
class TrainerResources:
    """Compute allocation of one trainer.

    ``memory_share`` is the per-rank preload budget as a fraction of
    usable node memory; ``None`` means the default resource-set share
    ``1/gpus_per_node``.  The Fig.-11 baseline overrides it to 1.0
    (1 rank per node owning the whole node).
    """

    num_ranks: int = 16
    ranks_per_node: int = 4
    memory_share: float | None = None

    def __post_init__(self) -> None:
        if self.num_ranks <= 0 or self.ranks_per_node <= 0:
            raise ValueError("ranks must be positive")
        if self.memory_share is not None and not 0 < self.memory_share <= 1:
            raise ValueError("memory_share must be in (0, 1]")

    @property
    def num_nodes(self) -> int:
        return -(-self.num_ranks // self.ranks_per_node)

    def placement(self) -> RankPlacement:
        return contiguous_placement(self.num_ranks, self.ranks_per_node)

    def preload_bytes_per_rank(self, machine: MachineSpec) -> int:
        node = machine.node
        usable = node.memory_bytes * node.usable_memory_fraction
        share = (
            self.memory_share
            if self.memory_share is not None
            else 1.0 / node.gpus_per_node
        )
        return int(usable * share)

    def pooled_bytes(self, machine: MachineSpec) -> int:
        node = machine.node
        return int(
            self.num_nodes * node.memory_bytes * node.usable_memory_fraction
        )


@dataclass(frozen=True)
class StepBreakdown:
    """Where one training step's time goes (seconds)."""

    compute: float
    overhead: float
    pressure_penalty: float
    allreduce: float
    shuffle_exposed: float
    store_residual: float
    io: float

    @property
    def total(self) -> float:
        return (
            (self.compute + self.overhead) * self.pressure_penalty
            + self.allreduce
            + self.shuffle_exposed
            + self.store_residual
            + self.io
        )


class TrainerPerfModel:
    """Epoch/step/preload times for one trainer at paper scale."""

    def __init__(
        self,
        machine: MachineSpec,
        arch: SurrogateArchitecture,
        resources: TrainerResources,
        train: PerfDataset,
        mode: IngestionMode,
        val: PerfDataset | None = None,
        global_batch: int = 128,
        external_concurrent_readers: int = 0,
    ) -> None:
        if global_batch <= 0:
            raise ValueError("global_batch must be positive")
        if global_batch % resources.num_ranks != 0:
            raise ValueError(
                f"global_batch {global_batch} must divide evenly over "
                f"{resources.num_ranks} ranks"
            )
        self.machine = machine
        self.arch = arch
        self.resources = resources
        self.train = train
        self.val = val
        self.mode = IngestionMode(mode)
        self.global_batch = global_batch
        self.external_readers = int(external_concurrent_readers)
        self.placement = resources.placement()
        self._compute = ComputeModel(machine)
        self._comm = CollectiveCostModel(
            machine.node.intra_node, machine.node.inter_node
        )
        self._pfs = PfsCostModel(machine.filesystem)
        self._check_memory()

    # -- memory ------------------------------------------------------------

    def _store_footprint(self) -> int:
        """Bytes the store must hold: training partition, plus validation
        when preloading (the paper preloads "training, evaluation, and
        potentially test data")."""
        total = self.train.total_bytes
        if self.mode is IngestionMode.STORE_PRELOAD and self.val is not None:
            total += self.val.total_bytes
        return total

    def _check_memory(self) -> None:
        if self.mode is IngestionMode.STORE_PRELOAD:
            capacity = self.resources.num_ranks * self.resources.preload_bytes_per_rank(
                self.machine
            )
            needed = self._store_footprint()
            if needed > capacity:
                raise InsufficientMemoryError(
                    f"preload needs {needed} bytes but "
                    f"{self.resources.num_ranks} ranks x "
                    f"{self.resources.preload_bytes_per_rank(self.machine)} "
                    f"bytes = {capacity} available"
                )

    def dynamic_hit_fraction(self) -> float:
        """Fraction of the partition the dynamic store can keep resident."""
        if self.mode is not IngestionMode.STORE_DYNAMIC:
            return 1.0
        pool = self.resources.pooled_bytes(self.machine)
        return min(1.0, pool / self.train.total_bytes)

    def occupancy(self) -> float:
        """Data-store occupancy of the trainer's pooled node memory."""
        if self.mode is IngestionMode.NAIVE:
            return 0.0
        pool = self.resources.pooled_bytes(self.machine)
        if self.mode is IngestionMode.STORE_DYNAMIC:
            resident = self.dynamic_hit_fraction() * self.train.total_bytes
        else:
            resident = self._store_footprint()
        return resident / pool

    # -- per-step pieces --------------------------------------------------------

    @property
    def per_gpu_batch(self) -> int:
        return self.global_batch // self.resources.num_ranks

    def steps_per_epoch(self) -> int:
        return self.train.n_samples // self.global_batch

    def compute_time(self) -> float:
        return self._compute.step_compute_time(
            self.arch.train_flops_per_sample, self.per_gpu_batch
        )

    def allreduce_time(self) -> float:
        """The two gradient allreduces of one GAN step (D phase, FG phase)."""
        return self._comm.allreduce_time(
            self.arch.disc_grad_nbytes, self.placement
        ) + self._comm.allreduce_time(self.arch.gen_grad_nbytes, self.placement)

    def shuffle_time(self) -> float:
        recv = self.per_gpu_batch * self.train.sample_nbytes
        return self._comm.shuffle_time(recv, self.placement)

    def naive_io_time_per_step(self) -> float:
        """Per-rank time to pull its mini-batch share straight from the
        PFS: one (contended) open per distinct bundle touched plus random
        sample-sized reads."""
        b = self.per_gpu_batch
        n_bundles = self.train.n_bundles
        # Expected distinct bundles among b uniform draws.
        distinct = n_bundles * (1.0 - (1.0 - 1.0 / n_bundles) ** b)
        clients = self.resources.num_ranks + self.external_readers
        t_open = distinct * self._pfs.open_time(clients, access="random")
        t_read = b * self._pfs.random_sample_read_time(
            self.train.sample_nbytes, clients
        )
        return t_open + t_read

    # -- step / epoch assembly ------------------------------------------------------

    def step_breakdown(self, steady: bool) -> StepBreakdown:
        calib = self.machine.calibration
        compute = self.compute_time()
        pressure = calib.cache_pressure_penalty(self.occupancy())
        allreduce = self.allreduce_time()
        shuffle_exposed = 0.0
        residual = 0.0
        io = 0.0
        mode = self.mode
        # Background I/O prefetch threads hide up to io_overlap of the
        # compute+overhead window; only the excess is exposed.
        io_budget = calib.io_overlap * (compute + calib.step_overhead)
        if mode is IngestionMode.NAIVE:
            io = max(0.0, self.naive_io_time_per_step() - io_budget)
        elif mode is IngestionMode.STORE_DYNAMIC and not steady:
            # Epoch 0: naive ingestion plus cache-insert bookkeeping.
            io = max(0.0, self.naive_io_time_per_step() - io_budget)
            residual = calib.dynamic_store_residual
        else:
            # Store-served batches: the shuffle overlaps with compute.
            shuffle = self.shuffle_time()
            shuffle_exposed = max(
                0.0, shuffle - calib.shuffle_overlap * compute
            )
            if mode is IngestionMode.STORE_DYNAMIC:
                residual = calib.dynamic_store_residual
                miss = 1.0 - self.dynamic_hit_fraction()
                io = max(
                    0.0, miss * self.naive_io_time_per_step() - io_budget
                )
        return StepBreakdown(
            compute=compute,
            overhead=calib.step_overhead,
            pressure_penalty=pressure,
            allreduce=allreduce,
            shuffle_exposed=shuffle_exposed,
            store_residual=residual,
            io=io,
        )

    def preload_time(self) -> float:
        """Wall time of the preload phase (zero for other modes)."""
        if self.mode is not IngestionMode.STORE_PRELOAD:
            return 0.0
        footprint = self._store_footprint()
        ranks = self.resources.num_ranks
        bytes_per_rank = footprint / ranks
        n_bundles = self.train.n_bundles
        if self.val is not None:
            n_bundles += self.val.n_bundles
        files_per_rank = n_bundles / ranks
        readers = ranks + self.external_readers
        return self._pfs.bulk_preload_time(bytes_per_rank, files_per_rank, readers)

    def epoch_time(self, steady: bool = True) -> float:
        """Wall time of one epoch.

        ``steady=False`` is the *initial* epoch: for preload mode it
        includes the preload phase; for dynamic mode it is the caching
        epoch (file reads + inserts); naive mode is identical every epoch.
        """
        t = self.steps_per_epoch() * self.step_breakdown(steady).total
        if not steady:
            t += self.preload_time()
        return t


@dataclass(frozen=True)
class LtfbScalePoint:
    """One x-axis point of the Fig.-11 sweep."""

    num_trainers: int
    total_gpus: int
    epoch_time: float
    preload_time: float
    tournament_time_per_epoch: float
    speedup: float
    parallel_efficiency: float


class LtfbPerfModel:
    """Multi-trainer LTFB scaling (Fig. 11) over the single-trainer model.

    The baseline (``num_trainers == 1``) uses ``baseline_resources``
    (paper: 16 nodes x 1 rank with full node memory — the only allocation
    whose data store holds the full 10M-sample set); every multi-trainer
    point uses ``trainer_resources`` per trainer (paper: 4 nodes x 16
    GPUs) on a 1/k partition.
    """

    def __init__(
        self,
        machine: MachineSpec,
        arch: SurrogateArchitecture,
        train: PerfDataset,
        val: PerfDataset | None = None,
        global_batch: int = 128,
        trainer_resources: TrainerResources = TrainerResources(16, 4),
        baseline_resources: TrainerResources = TrainerResources(
            16, 1, memory_share=1.0
        ),
        tournament_interval_steps: int = 250,
        tournament_set_samples: int = 2048,
        mode: IngestionMode = IngestionMode.STORE_PRELOAD,
    ) -> None:
        if tournament_interval_steps <= 0 or tournament_set_samples <= 0:
            raise ValueError("invalid tournament schedule")
        self.machine = machine
        self.arch = arch
        self.train = train
        self.val = val
        self.global_batch = global_batch
        self.trainer_resources = trainer_resources
        self.baseline_resources = baseline_resources
        self.tournament_interval = tournament_interval_steps
        self.tournament_samples = tournament_set_samples
        self.mode = IngestionMode(mode)
        self._comm = CollectiveCostModel(
            machine.node.intra_node, machine.node.inter_node
        )
        self._compute = ComputeModel(machine)
        self._baseline_epoch: float | None = None

    def _trainer_model(self, num_trainers: int) -> TrainerPerfModel:
        resources = (
            self.baseline_resources if num_trainers == 1 else self.trainer_resources
        )
        partition = self.train.subset(self.train.n_samples // num_trainers)
        external = (num_trainers - 1) * resources.num_ranks
        return TrainerPerfModel(
            self.machine,
            self.arch,
            resources,
            partition,
            self.mode,
            val=self.val if num_trainers == 1 else None,
            global_batch=self.global_batch,
            external_concurrent_readers=external,
        )

    def tournament_time_per_round(self, resources: TrainerResources) -> float:
        """One LTFB round at one trainer: swap generators with the partner
        (full-duplex inter-node transfer) and evaluate both candidates on
        the local tournament set, data-parallel over the trainer's GPUs."""
        exchange = self._comm.model_exchange_time(self.arch.generator_state_nbytes)
        per_rank = max(1, self.tournament_samples // resources.num_ranks)
        eval_time = 2 * self._compute.inference_time(
            self.arch.eval_flops_per_sample, per_rank
        )
        return exchange + eval_time

    def scale_point(self, num_trainers: int) -> LtfbScalePoint:
        """Epoch time, preload time, and speedup at ``num_trainers``."""
        if num_trainers < 1:
            raise ValueError("num_trainers must be >= 1")
        model = self._trainer_model(num_trainers)
        epoch = model.epoch_time(steady=True)
        tournament = 0.0
        if num_trainers > 1:
            rounds_per_epoch = model.steps_per_epoch() / self.tournament_interval
            tournament = rounds_per_epoch * self.tournament_time_per_round(
                model.resources
            )
        epoch += tournament
        if self._baseline_epoch is None:
            base_model = self._trainer_model(1)
            self._baseline_epoch = base_model.epoch_time(steady=True)
        speedup = self._baseline_epoch / epoch
        return LtfbScalePoint(
            num_trainers=num_trainers,
            total_gpus=num_trainers * model.resources.num_ranks,
            epoch_time=epoch,
            preload_time=model.preload_time(),
            tournament_time_per_epoch=tournament,
            speedup=speedup,
            parallel_efficiency=speedup / num_trainers,
        )

    def sweep(self, trainer_counts: list[int]) -> list[LtfbScalePoint]:
        return [self.scale_point(k) for k in trainer_counts]
