"""Partitioned K-independent training — the Fig. 13 baseline.

"One simpler alternative to LTFB would be to train K independent models
and simply select the best final result."  Each trainer keeps its 1/k data
silo and never communicates; at the end the best model on a held-out
validation set is selected.  Same compute, same memory footprint, no model
exchange — so every model only ever sees its own silo, and with
exploration-ordered (non-IID) partitions it generalizes progressively
worse as k grows.

:class:`KIndependentDriver` shares the
:class:`~repro.core.driver.PopulationDriver` API with
:class:`~repro.core.ltfb.LtfbDriver` — identical ``run(callbacks=[...])
-> History`` signatures and ``best_trainer(metric)`` — so experiments can
swap the two on equal schedules ("roughly equal runtimes ... and equal
memory footprints") without branching.  It is the shared driver loop run
under the :class:`~repro.core.topology.Isolated` topology: no pairing, no
tournament phase, no exchange telemetry.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.core.driver import History, PopulationDriver
from repro.core.ltfb import LtfbConfig
from repro.core.trainer import Trainer

__all__ = ["KIndependentDriver"]


class KIndependentDriver(PopulationDriver):
    """Trains a population with no tournaments.

    The history's tournament fields stay empty (no communication ever
    happens); ``train_losses``/``eval_series``/``rounds_completed`` remain
    readable directly on the driver for backwards compatibility.
    """

    def __init__(
        self,
        trainers: Sequence[Trainer],
        config: LtfbConfig,
        eval_batch: Mapping[str, np.ndarray] | None = None,
        history: History | None = None,
        backend=None,
        source=None,
    ) -> None:
        super().__init__(
            trainers, config, eval_batch=eval_batch, history=history,
            backend=backend, topology="isolated", source=source,
        )

    # -- backwards-compatible views onto the shared history -------------------

    @property
    def train_losses(self) -> list[dict[str, dict[str, float]]]:
        return self.history.train_losses

    @property
    def eval_series(self) -> list[dict[str, dict[str, float]]]:
        return self.history.eval_series

    @property
    def rounds_completed(self) -> int:
        return self.history.rounds_completed
