"""Partitioned K-independent training — the Fig. 13 baseline.

"One simpler alternative to LTFB would be to train K independent models
and simply select the best final result."  Each trainer keeps its 1/k data
silo and never communicates; at the end the best model on a held-out
validation set is selected.  Same compute, same memory footprint, no model
exchange — so every model only ever sees its own silo, and with
exploration-ordered (non-IID) partitions it generalizes progressively
worse as k grows.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.ltfb import LtfbConfig
from repro.core.trainer import Trainer

__all__ = ["KIndependentDriver"]


class KIndependentDriver:
    """Trains a population with no tournaments; mirrors
    :class:`~repro.core.ltfb.LtfbDriver`'s interface so experiments can
    swap the two on equal schedules ("roughly equal runtimes ... and equal
    memory footprints")."""

    def __init__(
        self,
        trainers: Sequence[Trainer],
        config: LtfbConfig,
        eval_batch: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        if not trainers:
            raise ValueError("need at least one trainer")
        self.trainers = list(trainers)
        self.config = config
        self.eval_batch = dict(eval_batch) if eval_batch is not None else None
        self.train_losses: list[dict[str, dict[str, float]]] = []
        self.eval_series: list[dict[str, dict[str, float]]] = []
        self.rounds_completed = 0

    def run_round(self, round_index: int) -> None:
        losses = {
            t.name: t.train_steps(self.config.steps_per_round)
            for t in self.trainers
        }
        self.train_losses.append(losses)
        if self.eval_batch is not None:
            self.eval_series.append(
                {t.name: t.evaluate(self.eval_batch) for t in self.trainers}
            )
        self.rounds_completed += 1

    def run(
        self, on_round: Callable[[int, "KIndependentDriver"], None] | None = None
    ) -> None:
        for r in range(self.config.rounds):
            self.run_round(r)
            if on_round is not None:
                on_round(r, self)

    def best_trainer(self, metric: str = "val_loss") -> tuple[Trainer, float]:
        """Select the best final model on the global validation batch —
        the K-independent selection rule."""
        if self.eval_batch is None:
            raise ValueError("no global eval batch configured")
        scored = [(t, t.evaluate(self.eval_batch)[metric]) for t in self.trainers]
        return min(scored, key=lambda pair: pair[1])

    def best_val_series(self, metric: str = "val_loss") -> list[float]:
        """Per-round best value of ``metric`` across the population."""
        return [
            min(per_trainer[metric] for per_trainer in snap.values())
            for snap in self.eval_series
        ]
