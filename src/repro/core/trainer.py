"""The trainer abstraction (paper Section III-A).

"A trainer is a collection of compute resources that operate together as a
unit ... responsible for training models, usually with a variant of
stochastic gradient descent."  Here a trainer owns one CycleGAN surrogate,
a reader over its data silo, a local *tournament* holdout (drawn from the
silo, used to judge LTFB candidates), and the two optimizers of the GAN.

Data parallelism inside the trainer is a performance concern: the
mathematical result of a data-parallel step equals a single-process step
on the global mini-batch (gradient averaging), so the functional trainer
computes exactly that, and :mod:`repro.core.perfmodel` prices how long the
real 16-GPU version would take.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.datastore.reader import Reader
from repro.models.cyclegan import ICFSurrogate, SurrogateConfig
from repro.tensorlib.optimizers import Adam, Optimizer

__all__ = ["TrainerConfig", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Per-trainer knobs; defaults follow the paper (batch 128, Adam 1e-3)."""

    batch_size: int = 128
    tournament_metric: str = "val_loss"  # or "discriminator"
    # What happens to the generator optimizer when a foreign generator is
    # adopted:
    # - "exchange": the winner's optimizer slots travel with its weights
    #   (PBT-style; default — with frequent tournaments, stale Adam
    #   moments otherwise poison every post-adoption step);
    # - "keep": keep the local slots (weights-only exchange);
    # - "reset": drop the slots.
    adopt_optimizer: str = "exchange"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.tournament_metric not in ("val_loss", "discriminator"):
            raise ValueError(
                f"tournament_metric must be 'val_loss' or 'discriminator', "
                f"got {self.tournament_metric!r}"
            )
        if self.adopt_optimizer not in ("exchange", "keep", "reset"):
            raise ValueError(
                "adopt_optimizer must be 'exchange', 'keep' or 'reset'"
            )


class Trainer:
    """One LTFB trainer: surrogate + silo reader + tournament data.

    Parameters
    ----------
    name:
        Trainer id, e.g. ``"trainer03"``.
    surrogate:
        The CycleGAN this trainer trains (with its *local* discriminator).
    reader:
        Mini-batch source over this trainer's data silo.
    tournament_batch:
        Held-out local samples (field dict) used to score tournament
        candidates.
    config:
        Behavioural knobs.
    """

    def __init__(
        self,
        name: str,
        surrogate: ICFSurrogate,
        reader: Reader,
        tournament_batch: Mapping[str, np.ndarray],
        config: TrainerConfig = TrainerConfig(),
    ) -> None:
        self.name = name
        self.surrogate = surrogate
        self.reader = reader
        self.tournament_batch = dict(tournament_batch)
        self.config = config
        scfg: SurrogateConfig = surrogate.config
        self.disc_optimizer: Optimizer = Adam(scfg.disc_learning_rate)
        self.gen_optimizer: Optimizer = Adam(scfg.learning_rate)
        self.steps_done = 0
        self.tournaments_won = 0
        self.tournaments_lost = 0
        self._batch_iter = None

    # -- training ----------------------------------------------------------

    def _next_batch(self):
        if self._batch_iter is None:
            self._batch_iter = self.reader.epoch(self.config.batch_size)
        try:
            return next(self._batch_iter)
        except StopIteration:
            self._batch_iter = self.reader.epoch(self.config.batch_size)
            return next(self._batch_iter)

    def train_steps(self, n_steps: int) -> dict[str, float]:
        """Run ``n_steps`` GAN steps; returns mean loss terms."""
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        sums: dict[str, float] = {}
        for _ in range(n_steps):
            mb = self._next_batch()
            terms = self.surrogate.train_step(
                mb.feeds, self.disc_optimizer, self.gen_optimizer
            )
            for k, v in terms.items():
                sums[k] = sums.get(k, 0.0) + v
        self.steps_done += n_steps
        return {k: v / n_steps for k, v in sums.items()}

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, batch: Mapping[str, np.ndarray]) -> dict[str, float]:
        """Full surrogate metrics on an arbitrary batch (e.g. global val)."""
        return self.surrogate.evaluate(batch)

    def tournament_score(self) -> float:
        """Score the *current* generator on the local tournament set with
        the configured metric (lower is better for both metrics)."""
        if self.config.tournament_metric == "val_loss":
            return self.surrogate.evaluate(self.tournament_batch)["val_loss"]
        return self.surrogate.discriminator_score(self.tournament_batch)

    def score_candidate(
        self,
        weights: Mapping[str, np.ndarray],
        scope: str = "generator",
    ) -> float:
        """Score foreign weights on the local tournament set, leaving this
        trainer's own model untouched.

        With ``scope="generator"`` only the candidate's generator is
        swapped in (the paper's GAN tournament); with ``"full"`` the whole
        model is (classic LTFB).
        """
        getter, setter = self._scope_accessors(scope)
        own = getter()
        try:
            setter(weights)
            return self.tournament_score()
        finally:
            setter(own)

    # -- LTFB plumbing ----------------------------------------------------------

    def _scope_accessors(self, scope: str):
        if scope == "generator":
            return (
                self.surrogate.get_generator_state,
                self.surrogate.set_generator_state,
            )
        if scope == "full":
            return self.surrogate.get_full_state, self.surrogate.set_full_state
        raise ValueError(f"scope must be 'generator' or 'full', got {scope!r}")

    def generator_state(self) -> dict[str, np.ndarray]:
        return self.surrogate.get_generator_state()

    def exchange_package(self, scope: str = "generator") -> dict:
        """The tournament exchange payload: weights in the given scope
        plus, under ``adopt_optimizer="exchange"``, the matching optimizer
        state (generator optimizer always; discriminator optimizer too
        when the full model travels)."""
        getter, _ = self._scope_accessors(scope)
        package: dict = {"scope": scope, "weights": getter()}
        if self.config.adopt_optimizer == "exchange":
            package["gen_optimizer"] = self.gen_optimizer.get_state()
            if scope == "full":
                package["disc_optimizer"] = self.disc_optimizer.get_state()
        return package

    def generator_package(self) -> dict:
        """Backwards-compatible alias for the GAN exchange payload."""
        return self.exchange_package("generator")

    def adopt_generator(
        self,
        generator_state: Mapping[str, np.ndarray],
        optimizer_state: Mapping | None = None,
    ) -> None:
        """Replace the local generator with a tournament winner's.

        The local discriminator and its optimizer state stay (the
        "multiple teachers" property of LTFB-GAN); the generator optimizer
        follows :class:`TrainerConfig`: adopt the winner's slots
        ("exchange", when provided), keep the local ones ("keep"), or
        start fresh ("reset").
        """
        self.adopt_package(
            {
                "scope": "generator",
                "weights": generator_state,
                "gen_optimizer": optimizer_state,
            }
        )

    def adopt_package(self, package: Mapping) -> None:
        """Adopt an :meth:`exchange_package` payload."""
        scope = package.get("scope", "generator")
        _, setter = self._scope_accessors(scope)
        setter(package["weights"])
        mode = self.config.adopt_optimizer
        if mode == "reset":
            self.gen_optimizer.reset()
            if scope == "full":
                self.disc_optimizer.reset()
            return
        if mode == "exchange":
            if package.get("gen_optimizer") is not None:
                self.gen_optimizer.set_state(package["gen_optimizer"])
            if scope == "full" and package.get("disc_optimizer") is not None:
                self.disc_optimizer.set_state(package["disc_optimizer"])

    def __repr__(self) -> str:
        return (
            f"Trainer({self.name!r}, steps={self.steps_done}, "
            f"silo={self.reader.num_samples})"
        )
