"""The trainer abstraction (paper Section III-A).

"A trainer is a collection of compute resources that operate together as a
unit ... responsible for training models, usually with a variant of
stochastic gradient descent."  Here a trainer owns one CycleGAN surrogate,
a reader over its data silo, a local *tournament* holdout (drawn from the
silo, used to judge LTFB candidates), and the two optimizers of the GAN.

Data parallelism inside the trainer is a performance concern: the
mathematical result of a data-parallel step equals a single-process step
on the global mini-batch (gradient averaging), so the functional trainer
computes exactly that, and :mod:`repro.core.perfmodel` prices how long the
real 16-GPU version would take.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.core.enums import AdoptOptimizer, ExchangeScope
from repro.datastore.pipeline import build_pipeline
from repro.datastore.reader import Reader
from repro.models.cyclegan import ICFSurrogate, SurrogateConfig
from repro.tensorlib.optimizers import Adam, Optimizer

if TYPE_CHECKING:
    from repro.telemetry import TelemetryHub

__all__ = ["TrainerConfig", "Trainer"]


@dataclass(frozen=True)
class TrainerConfig:
    """Per-trainer knobs; defaults follow the paper (batch 128, Adam 1e-3)."""

    batch_size: int = 128
    tournament_metric: str = "val_loss"  # or "discriminator"
    # What happens to the generator optimizer when a foreign generator is
    # adopted; see :class:`repro.core.enums.AdoptOptimizer` (a member or
    # its string value).
    adopt_optimizer: AdoptOptimizer | str = AdoptOptimizer.EXCHANGE

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.tournament_metric not in ("val_loss", "discriminator"):
            raise ValueError(
                f"tournament_metric must be 'val_loss' or 'discriminator', "
                f"got {self.tournament_metric!r}"
            )
        object.__setattr__(
            self, "adopt_optimizer", AdoptOptimizer.coerce(self.adopt_optimizer)
        )


class Trainer:
    """One LTFB trainer: surrogate + silo reader + tournament data.

    Parameters
    ----------
    name:
        Trainer id, e.g. ``"trainer03"``.
    surrogate:
        The CycleGAN this trainer trains (with its *local* discriminator).
    reader:
        Mini-batch source over this trainer's data silo.
    tournament_batch:
        Held-out local samples (field dict) used to score tournament
        candidates.
    config:
        Behavioural knobs.
    prefetch_depth:
        How many batches the data pipeline materializes ahead of training
        (0 = synchronous).  A performance knob, not a config: execution
        backends overwrite it at bind time, and any depth yields
        bit-identical training because batch *plans* are independent of
        materialization (see :mod:`repro.datastore.pipeline`).
    """

    def __init__(
        self,
        name: str,
        surrogate: ICFSurrogate,
        reader: Reader,
        tournament_batch: Mapping[str, np.ndarray],
        config: TrainerConfig = TrainerConfig(),
        prefetch_depth: int = 0,
    ) -> None:
        self.name = name
        self.surrogate = surrogate
        self.reader = reader
        self.tournament_batch = dict(tournament_batch)
        self.config = config
        scfg: SurrogateConfig = surrogate.config
        self.disc_optimizer: Optimizer = Adam(scfg.disc_learning_rate)
        self.gen_optimizer: Optimizer = Adam(scfg.learning_rate)
        self.steps_done = 0
        self.tournaments_won = 0
        self.tournaments_lost = 0
        # Data pipeline over the reader: built lazily on the first batch
        # (so an untrained trainer never touches the reader RNG), or
        # rebuilt from a pending plan-cursor state (checkpoint restore /
        # arrival in a worker process).
        self.prefetch_depth = int(prefetch_depth)
        self._pipeline = None
        self._pipeline_state: dict | None = None
        # Telemetry sink: population drivers attach their hub here so
        # train_steps can emit step_end events; None means uninstrumented.
        self.telemetry: TelemetryHub | None = None
        # Execution placement, stamped into step_end events.  Backends
        # (repro.exec) overwrite these when they bind/ship the trainer;
        # a bare trainer trains in-process, hence the serial defaults.
        self.backend_name: str = "serial"
        self.worker_index: int = 0

    # -- training ----------------------------------------------------------

    def _data_pipeline(self):
        if self._pipeline is None:
            self._pipeline = build_pipeline(
                self.reader, self.config.batch_size, self.prefetch_depth
            )
            if self._pipeline_state is not None:
                self._pipeline.restore(self._pipeline_state)
                self._pipeline_state = None
        return self._pipeline

    def _next_batch(self):
        pipeline = self._data_pipeline()
        pipeline.telemetry = self.telemetry
        pipeline.context = {
            "trainer": self.name,
            "backend": self.backend_name,
            "worker": self.worker_index,
        }
        return pipeline.next_batch()

    # -- data-pipeline lifecycle --------------------------------------------

    def data_state(self) -> dict | None:
        """The plan cursor of the in-flight epoch (JSON-serializable), or
        ``None`` when the trainer has never drawn a batch."""
        if self._pipeline is not None:
            return self._pipeline.state()
        return self._pipeline_state

    def set_data_state(self, state: Mapping | None) -> None:
        """Adopt a plan cursor; the pipeline rebuilds lazily from it."""
        if self._pipeline is not None:
            self._pipeline.close()
            self._pipeline = None
        self._pipeline_state = dict(state) if state is not None else None

    def suspend_data_pipeline(self) -> None:
        """Fold a live pipeline back into its plan-cursor state.

        Stops any prefetch thread; prefetched-but-undelivered batches are
        dropped (they are re-materialized from the plan on resume)."""
        if self._pipeline is not None:
            state = self._pipeline.state()
            self._pipeline.close()
            self._pipeline = None
            self._pipeline_state = state

    def set_prefetch_depth(self, depth: int) -> None:
        """Change the pipeline depth without changing what gets trained."""
        if depth < 0:
            raise ValueError(f"prefetch_depth must be >= 0, got {depth}")
        if depth != self.prefetch_depth:
            self.suspend_data_pipeline()
            self.prefetch_depth = int(depth)

    def __getstate__(self) -> dict:
        # Live pipelines hold threads and queues; fold them into their
        # serializable plan cursor so trainers can ship mid-epoch (the
        # process backend pickles trainers over pipes).
        self.suspend_data_pipeline()
        return self.__dict__.copy()

    @property
    def span_track(self) -> str:
        """The timeline lane this trainer's spans render on."""
        return f"{self.backend_name}:w{self.worker_index}/{self.name}"

    def train_steps(self, n_steps: int) -> dict[str, float]:
        """Run ``n_steps`` GAN steps; returns mean loss terms.

        Emits one ``step_end`` telemetry event per call when a hub is
        attached (drivers attach theirs for the duration of a run).  When
        the hub is tracing, the interval and every step within it become
        spans on this trainer's :attr:`span_track` (with materialization
        and store fetches nesting under the step that consumed them).
        """
        if n_steps <= 0:
            raise ValueError("n_steps must be positive")
        t0 = time.perf_counter()
        sums: dict[str, float] = {}
        tracer = getattr(self.telemetry, "tracer", None)
        if tracer is None:
            for _ in range(n_steps):
                mb = self._next_batch()
                terms = self.surrogate.train_step(
                    mb.feeds, self.disc_optimizer, self.gen_optimizer
                )
                for k, v in terms.items():
                    sums[k] = sums.get(k, 0.0) + v
        else:
            track = self.span_track
            with tracer.span(
                "train_interval", cat="train", track=track,
                trainer=self.name, steps=n_steps,
            ):
                for i in range(n_steps):
                    with tracer.span(
                        "train_step", cat="step", track=track,
                        step=self.steps_done + i,
                    ):
                        mb = self._next_batch()
                        terms = self.surrogate.train_step(
                            mb.feeds, self.disc_optimizer, self.gen_optimizer
                        )
                    for k, v in terms.items():
                        sums[k] = sums.get(k, 0.0) + v
        self.steps_done += n_steps
        means = {k: v / n_steps for k, v in sums.items()}
        if self.telemetry is not None:
            self.telemetry.emit(
                "step_end",
                trainer=self.name,
                steps=n_steps,
                steps_done=self.steps_done,
                losses=means,
                elapsed_s=time.perf_counter() - t0,
                backend=self.backend_name,
                worker=self.worker_index,
            )
        return means

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, batch: Mapping[str, np.ndarray]) -> dict[str, float]:
        """Full surrogate metrics on an arbitrary batch (e.g. global val)."""
        return self.surrogate.evaluate(batch)

    def tournament_score(self) -> float:
        """Score the *current* generator on the local tournament set with
        the configured metric (lower is better for both metrics)."""
        if self.config.tournament_metric == "val_loss":
            return self.surrogate.evaluate(self.tournament_batch)["val_loss"]
        return self.surrogate.discriminator_score(self.tournament_batch)

    def score_candidate(
        self,
        weights: Mapping[str, np.ndarray],
        scope: ExchangeScope | str = ExchangeScope.GENERATOR,
    ) -> float:
        """Score foreign weights on the local tournament set, leaving this
        trainer's own model untouched.

        With ``scope="generator"`` only the candidate's generator is
        swapped in (the paper's GAN tournament); with ``"full"`` the whole
        model is (classic LTFB).
        """
        with self.swapped_weights(weights, scope):
            return self.tournament_score()

    def swapped_weights(self, weights: Mapping[str, np.ndarray], scope):
        """Context manager: the foreign ``weights`` swapped in for the
        block, the trainer's own weights restored on exit (even on error).
        The swap-score-restore primitive behind :meth:`score_candidate`,
        also used by judges that score candidates with other metrics
        (:class:`~repro.eval.judge.DivergenceJudge`)."""
        return _SwappedWeights(self, weights, scope)

    # -- LTFB plumbing ----------------------------------------------------------

    def _scope_accessors(self, scope: ExchangeScope | str):
        scope = ExchangeScope.coerce(scope)
        if scope is ExchangeScope.GENERATOR:
            return (
                self.surrogate.get_generator_state,
                self.surrogate.set_generator_state,
            )
        return self.surrogate.get_full_state, self.surrogate.set_full_state

    def generator_state(self) -> dict[str, np.ndarray]:
        return self.surrogate.get_generator_state()

    def exchange_package(
        self, scope: ExchangeScope | str = ExchangeScope.GENERATOR
    ) -> dict:
        """The tournament exchange payload: weights in the given scope
        plus, under ``adopt_optimizer="exchange"``, the matching optimizer
        state (generator optimizer always; discriminator optimizer too
        when the full model travels)."""
        scope = ExchangeScope.coerce(scope)
        getter, _ = self._scope_accessors(scope)
        package: dict = {"scope": scope.value, "weights": getter()}
        if self.config.adopt_optimizer == AdoptOptimizer.EXCHANGE:
            package["gen_optimizer"] = self.gen_optimizer.get_state()
            if scope is ExchangeScope.FULL:
                package["disc_optimizer"] = self.disc_optimizer.get_state()
        return package

    def adopt_package(self, package: Mapping) -> None:
        """Adopt an :meth:`exchange_package` payload."""
        scope = ExchangeScope.coerce(package.get("scope", "generator"))
        _, setter = self._scope_accessors(scope)
        setter(package["weights"])
        mode = self.config.adopt_optimizer
        if mode == AdoptOptimizer.RESET:
            self.gen_optimizer.reset()
            if scope is ExchangeScope.FULL:
                self.disc_optimizer.reset()
            return
        if mode == AdoptOptimizer.EXCHANGE:
            if package.get("gen_optimizer") is not None:
                self.gen_optimizer.set_state(package["gen_optimizer"])
            if scope is ExchangeScope.FULL and package.get("disc_optimizer") is not None:
                self.disc_optimizer.set_state(package["disc_optimizer"])

    def __repr__(self) -> str:
        return (
            f"Trainer({self.name!r}, steps={self.steps_done}, "
            f"silo={self.reader.num_samples})"
        )


class _SwappedWeights:
    """Swap foreign weights in on entry, restore the trainer's own on exit."""

    def __init__(self, trainer: Trainer, weights: Mapping, scope) -> None:
        self._getter, self._setter = trainer._scope_accessors(scope)
        self._weights = weights
        self._own = None

    def __enter__(self) -> None:
        self._own = self._getter()
        self._setter(self._weights)

    def __exit__(self, *exc_info) -> None:
        self._setter(self._own)
