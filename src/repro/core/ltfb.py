"""LTFB: the "Let a Thousand Flowers Bloom" tournament algorithm.

From the paper (Section III-C): trainers construct models over partitioned
data silos and train them independently; "periodically, e.g. at predefined
mini-batch intervals, trainers are randomly paired up and made to exchange
models.  Each trainer will evaluate its two models on a local tournament
data set, keeps the one that achieves a better evaluation metric, and then
resumes training."  For GANs, only *generators* are exchanged and
discriminators stay local (Fig. 6).

Both trainers of a pair judge independently on their own tournament sets,
so a pair can end a round agreeing (one generator propagates — the usual
case once a model pulls ahead) or disagreeing (each keeps its own).
Surviving models "are likely to have been exposed to many trainers at
different times", which is how a winner becomes an encoded representation
of data silos it never read directly.

:class:`LtfbDriver` extends the shared
:class:`~repro.core.driver.PopulationDriver` API — ``run(callbacks=[...])
-> History`` — adding the pairing/exchange/tournament phase and emitting
``tournament`` and ``exchange`` telemetry events.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.driver import History, PopulationDriver, TournamentRecord
from repro.core.enums import ExchangeScope
from repro.core.trainer import Trainer
from repro.telemetry.events import EXCHANGE, TOURNAMENT
from repro.utils.serialization import nbytes_of

__all__ = [
    "LtfbConfig",
    "TournamentRecord",
    "LtfbHistory",
    "LtfbDriver",
]

#: Backwards-compatible name: LTFB and K-independent runs now share one
#: history shape (see :class:`repro.core.driver.History`).
LtfbHistory = History


@dataclass(frozen=True)
class LtfbConfig:
    """Tournament schedule and exchange policy.

    ``steps_per_round`` is the paper's "predefined mini-batch interval"
    between tournaments; ``rounds`` is how many (train, tournament) cycles
    to run.  ``exchange`` selects what crosses the wire (an
    :class:`~repro.core.enums.ExchangeScope` or its string value).
    """

    steps_per_round: int = 50
    rounds: int = 10
    exchange: ExchangeScope | str = ExchangeScope.GENERATOR

    def __post_init__(self) -> None:
        if self.steps_per_round <= 0 or self.rounds <= 0:
            raise ValueError("steps_per_round and rounds must be positive")
        object.__setattr__(self, "exchange", ExchangeScope.coerce(self.exchange))

    @property
    def total_steps(self) -> int:
        return self.steps_per_round * self.rounds


class LtfbDriver(PopulationDriver):
    """Runs LTFB over a population of trainers.

    Parameters
    ----------
    trainers:
        The population.  A single trainer degenerates to plain training
        (no tournaments), which is the paper's baseline configuration.
    rng:
        Drives the random pairing each round.
    config:
        Tournament schedule.
    eval_batch:
        Optional *global* validation batch; when given, every trainer is
        evaluated on it after every round and the series is recorded
        (Figs. 12-13 read this).
    history:
        Optional pre-filled history to resume a checkpointed campaign.
    backend:
        Where trainer work executes (``"serial"``/``"thread"``/
        ``"process"`` or an :class:`~repro.exec.ExecutionBackend`); see
        :class:`~repro.core.driver.PopulationDriver`.
    """

    def __init__(
        self,
        trainers: Sequence[Trainer],
        rng: np.random.Generator,
        config: LtfbConfig,
        eval_batch: Mapping[str, np.ndarray] | None = None,
        history: History | None = None,
        backend=None,
    ) -> None:
        super().__init__(
            trainers, config, eval_batch=eval_batch, history=history,
            backend=backend,
        )
        self._rng = rng

    # -- pairing -------------------------------------------------------------

    def _draw_pairs(self) -> list[tuple[int, int]]:
        """Random disjoint pairs; with an odd population one trainer sits
        the round out."""
        k = len(self.trainers)
        perm = self._rng.permutation(k)
        return [
            (int(perm[i]), int(perm[i + 1])) for i in range(0, k - 1, 2)
        ]

    # -- one round ---------------------------------------------------------------

    def run_round(self, round_index: int) -> None:
        """Train all trainers for one interval, then hold the tournament."""
        train_s = self._train_phase(round_index)

        t0 = time.perf_counter()
        exchange_s = 0.0
        pairs = self._draw_pairs()
        self.history.pairings.append(
            [(self.trainers[a].name, self.trainers[b].name) for a, b in pairs]
        )
        scope = self.config.exchange
        tracer = self.telemetry.tracer
        with self._phase_span("tournament", round=round_index, pairs=len(pairs)):
            for a_idx, b_idx in pairs:
                a, b = self.trainers[a_idx], self.trainers[b_idx]
                # Exchange models (the only inter-trainer communication).
                x0 = time.perf_counter()
                pkg_a = a.exchange_package(scope)
                pkg_b = b.exchange_package(scope)
                nbytes = nbytes_of(pkg_a["weights"]) + nbytes_of(pkg_b["weights"])
                x1 = time.perf_counter()
                exchange_s += x1 - x0
                if tracer is not None:
                    tracer.record(
                        "exchange", cat="exchange", t0=x0, end=x1,
                        trainer_a=a.name, trainer_b=b.name, nbytes=nbytes,
                    )
                self.history.exchange_bytes += nbytes
                self.telemetry.emit(
                    EXCHANGE,
                    round=round_index,
                    trainer_a=a.name,
                    trainer_b=b.name,
                    scope=scope.value,
                    nbytes=nbytes,
                )
                for me, theirs, partner in ((a, pkg_b, b), (b, pkg_a, a)):
                    own_score = me.tournament_score()
                    partner_score = me.score_candidate(theirs["weights"], scope)
                    adopt = partner_score < own_score
                    if adopt:
                        me.adopt_package(theirs)
                        me.tournaments_lost += 1
                        partner.tournaments_won += 1
                        # Remote replicas must re-sync before the next train
                        # interval (no-op for in-process backends).
                        self.backend.mark_dirty(me.name)
                    self.history.tournaments.append(
                        TournamentRecord(
                            round_index=round_index,
                            trainer=me.name,
                            partner=partner.name,
                            own_score=own_score,
                            partner_score=partner_score,
                            adopted_partner=adopt,
                        )
                    )
                    self.telemetry.emit(
                        TOURNAMENT,
                        round=round_index,
                        trainer=me.name,
                        partner=partner.name,
                        own_score=own_score,
                        partner_score=partner_score,
                        adopted=adopt,
                    )
        tournament_s = time.perf_counter() - t0 - exchange_s

        eval_s = self._eval_phase(round_index)
        self._end_round(
            round_index,
            train_s=train_s,
            tournament_s=tournament_s,
            exchange_s=exchange_s,
            eval_s=eval_s,
        )
