"""LTFB: the "Let a Thousand Flowers Bloom" tournament algorithm.

From the paper (Section III-C): trainers construct models over partitioned
data silos and train them independently; "periodically, e.g. at predefined
mini-batch intervals, trainers are randomly paired up and made to exchange
models.  Each trainer will evaluate its two models on a local tournament
data set, keeps the one that achieves a better evaluation metric, and then
resumes training."  For GANs, only *generators* are exchanged and
discriminators stay local (Fig. 6).

Both trainers of a pair judge independently on their own tournament sets,
so a pair can end a round agreeing (one generator propagates — the usual
case once a model pulls ahead) or disagreeing (each keeps its own).
Surviving models "are likely to have been exposed to many trainers at
different times", which is how a winner becomes an encoded representation
of data silos it never read directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.core.trainer import Trainer
from repro.utils.serialization import nbytes_of

__all__ = ["LtfbConfig", "TournamentRecord", "LtfbHistory", "LtfbDriver"]


@dataclass(frozen=True)
class LtfbConfig:
    """Tournament schedule and exchange policy.

    ``steps_per_round`` is the paper's "predefined mini-batch interval"
    between tournaments; ``rounds`` is how many (train, tournament) cycles
    to run.  ``exchange`` selects what crosses the wire:

    - ``"generator"`` — the paper's GAN extension: only generators are
      exchanged, discriminators stay local ("educating a student with
      multiple teachers", and less communication);
    - ``"full"`` — classic LTFB (Jacobs et al., MLHPC'17): the whole model
      including the discriminator moves with the winner.
    """

    steps_per_round: int = 50
    rounds: int = 10
    exchange: str = "generator"

    def __post_init__(self) -> None:
        if self.steps_per_round <= 0 or self.rounds <= 0:
            raise ValueError("steps_per_round and rounds must be positive")
        if self.exchange not in ("generator", "full"):
            raise ValueError(
                f"exchange must be 'generator' or 'full', got {self.exchange!r}"
            )

    @property
    def total_steps(self) -> int:
        return self.steps_per_round * self.rounds


@dataclass
class TournamentRecord:
    """Outcome of one pairwise tournament at one trainer."""

    round_index: int
    trainer: str
    partner: str
    own_score: float
    partner_score: float
    adopted_partner: bool


@dataclass
class LtfbHistory:
    """Everything a tournament run produced, for analysis and plots."""

    rounds_completed: int = 0
    train_losses: list[dict[str, dict[str, float]]] = field(default_factory=list)
    tournaments: list[TournamentRecord] = field(default_factory=list)
    eval_series: list[dict[str, dict[str, float]]] = field(default_factory=list)
    exchange_bytes: int = 0
    pairings: list[list[tuple[str, str]]] = field(default_factory=list)

    def adoption_rate(self) -> float:
        """Fraction of tournament decisions that adopted the partner."""
        if not self.tournaments:
            return 0.0
        adopted = sum(1 for t in self.tournaments if t.adopted_partner)
        return adopted / len(self.tournaments)

    def best_val_series(self, metric: str = "val_loss") -> list[float]:
        """Per-round best (min) value of ``metric`` across trainers, from
        the evaluation snapshots recorded by the driver."""
        return [
            min(per_trainer[metric] for per_trainer in snap.values())
            for snap in self.eval_series
        ]


class LtfbDriver:
    """Runs LTFB over a population of trainers.

    Parameters
    ----------
    trainers:
        The population.  A single trainer degenerates to plain training
        (no tournaments), which is the paper's baseline configuration.
    rng:
        Drives the random pairing each round.
    config:
        Tournament schedule.
    eval_batch:
        Optional *global* validation batch; when given, every trainer is
        evaluated on it after every round and the series is recorded
        (Figs. 12-13 read this).
    """

    def __init__(
        self,
        trainers: Sequence[Trainer],
        rng: np.random.Generator,
        config: LtfbConfig,
        eval_batch: Mapping[str, np.ndarray] | None = None,
    ) -> None:
        if not trainers:
            raise ValueError("need at least one trainer")
        names = [t.name for t in trainers]
        if len(set(names)) != len(names):
            raise ValueError(f"trainer names must be unique, got {names}")
        self.trainers = list(trainers)
        self._rng = rng
        self.config = config
        self.eval_batch = dict(eval_batch) if eval_batch is not None else None
        self.history = LtfbHistory()

    # -- pairing -------------------------------------------------------------

    def _draw_pairs(self) -> list[tuple[int, int]]:
        """Random disjoint pairs; with an odd population one trainer sits
        the round out."""
        k = len(self.trainers)
        perm = self._rng.permutation(k)
        return [
            (int(perm[i]), int(perm[i + 1])) for i in range(0, k - 1, 2)
        ]

    # -- one round ---------------------------------------------------------------

    def run_round(self, round_index: int) -> None:
        """Train all trainers for one interval, then hold the tournament."""
        losses: dict[str, dict[str, float]] = {}
        for t in self.trainers:
            losses[t.name] = t.train_steps(self.config.steps_per_round)
        self.history.train_losses.append(losses)

        pairs = self._draw_pairs()
        self.history.pairings.append(
            [(self.trainers[a].name, self.trainers[b].name) for a, b in pairs]
        )
        scope = self.config.exchange
        for a_idx, b_idx in pairs:
            a, b = self.trainers[a_idx], self.trainers[b_idx]
            # Exchange models (the only inter-trainer communication).
            pkg_a = a.exchange_package(scope)
            pkg_b = b.exchange_package(scope)
            self.history.exchange_bytes += nbytes_of(pkg_a["weights"]) + nbytes_of(
                pkg_b["weights"]
            )
            for me, theirs, partner in ((a, pkg_b, b), (b, pkg_a, a)):
                own_score = me.tournament_score()
                partner_score = me.score_candidate(theirs["weights"], scope)
                adopt = partner_score < own_score
                if adopt:
                    me.adopt_package(theirs)
                    me.tournaments_lost += 1
                    partner.tournaments_won += 1
                self.history.tournaments.append(
                    TournamentRecord(
                        round_index=round_index,
                        trainer=me.name,
                        partner=partner.name,
                        own_score=own_score,
                        partner_score=partner_score,
                        adopted_partner=adopt,
                    )
                )

        if self.eval_batch is not None:
            snap = {
                t.name: t.evaluate(self.eval_batch) for t in self.trainers
            }
            self.history.eval_series.append(snap)
        self.history.rounds_completed += 1

    # -- full run -------------------------------------------------------------------

    def run(
        self, on_round: Callable[[int, "LtfbDriver"], None] | None = None
    ) -> LtfbHistory:
        """Run the configured number of rounds; returns the history."""
        for r in range(self.config.rounds):
            self.run_round(r)
            if on_round is not None:
                on_round(r, self)
        return self.history

    # -- results ---------------------------------------------------------------------

    def best_trainer(self, metric: str = "val_loss") -> tuple[Trainer, float]:
        """The population's best model by a metric on the global eval batch
        (paper: the final surviving model is selected on validation loss)."""
        if self.eval_batch is None:
            raise ValueError("no global eval batch configured")
        scored = [
            (t, t.evaluate(self.eval_batch)[metric]) for t in self.trainers
        ]
        return min(scored, key=lambda pair: pair[1])
