"""LTFB: the "Let a Thousand Flowers Bloom" tournament algorithm.

From the paper (Section III-C): trainers construct models over partitioned
data silos and train them independently; "periodically, e.g. at predefined
mini-batch intervals, trainers are randomly paired up and made to exchange
models.  Each trainer will evaluate its two models on a local tournament
data set, keeps the one that achieves a better evaluation metric, and then
resumes training."  For GANs, only *generators* are exchanged and
discriminators stay local (Fig. 6).

Both trainers of a pair judge independently on their own tournament sets,
so a pair can end a round agreeing (one generator propagates — the usual
case once a model pulls ahead) or disagreeing (each keeps its own).
Surviving models "are likely to have been exposed to many trainers at
different times", which is how a winner becomes an encoded representation
of data silos it never read directly.

:class:`LtfbDriver` extends the shared
:class:`~repro.core.driver.PopulationDriver` API — ``run(callbacks=[...])
-> History`` — and delegates *who exchanges with whom, judged how, and
when* to a pluggable :class:`~repro.core.topology.Topology`.  The default
:class:`~repro.core.topology.RandomPairwise` reproduces the paper's
random pairing bit-identically; ``topology="cellular_grid"`` /
``"multi_discriminator"`` / ``"async_pairwise"`` select the alternative
coordination schemes (see :mod:`repro.core.topology`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.driver import History, PopulationDriver, TournamentRecord
from repro.core.enums import ExchangeScope
from repro.core.trainer import Trainer

__all__ = [
    "LtfbConfig",
    "TournamentRecord",
    "LtfbHistory",
    "LtfbDriver",
]

#: Backwards-compatible name: LTFB and K-independent runs now share one
#: history shape (see :class:`repro.core.driver.History`).
LtfbHistory = History


@dataclass(frozen=True)
class LtfbConfig:
    """Tournament schedule and exchange policy.

    ``steps_per_round`` is the paper's "predefined mini-batch interval"
    between tournaments; ``rounds`` is how many (train, tournament) cycles
    to run.  ``exchange`` selects what crosses the wire (an
    :class:`~repro.core.enums.ExchangeScope` or its string value).
    """

    steps_per_round: int = 50
    rounds: int = 10
    exchange: ExchangeScope | str = ExchangeScope.GENERATOR

    def __post_init__(self) -> None:
        if self.steps_per_round <= 0 or self.rounds <= 0:
            raise ValueError("steps_per_round and rounds must be positive")
        object.__setattr__(self, "exchange", ExchangeScope.coerce(self.exchange))

    @property
    def total_steps(self) -> int:
        return self.steps_per_round * self.rounds


class LtfbDriver(PopulationDriver):
    """Runs LTFB over a population of trainers.

    Parameters
    ----------
    trainers:
        The population.  A single trainer degenerates to plain training
        (no tournaments), which is the paper's baseline configuration.
    rng:
        Drives the random pairing each round (handed to the topology).
    config:
        Tournament schedule.
    eval_batch:
        Optional *global* validation batch; when given, every trainer is
        evaluated on it after every round and the series is recorded
        (Figs. 12-13 read this).
    history:
        Optional pre-filled history to resume a checkpointed campaign.
    backend:
        Where trainer work executes (``"serial"``/``"thread"``/
        ``"process"`` or an :class:`~repro.exec.ExecutionBackend`); see
        :class:`~repro.core.driver.PopulationDriver`.
    topology:
        Coordination strategy: ``None`` (the paper's random pairwise
        tournaments), a :data:`~repro.core.topology.TOPOLOGY_NAMES` name,
        or a :class:`~repro.core.topology.Topology` instance.
    judge:
        What tournaments rank on: ``None``/``"loss"`` (the paper's local
        tournament-set metric — bit-identical to the pre-seam driver),
        ``"divergence"`` (distributional fidelity; the judged-LTFB
        ablation), one of :data:`~repro.eval.judge.JUDGE_NAMES`, or a
        :class:`~repro.eval.judge.Judge` instance.
    """

    def __init__(
        self,
        trainers: Sequence[Trainer],
        rng: np.random.Generator,
        config: LtfbConfig,
        eval_batch: Mapping[str, np.ndarray] | None = None,
        history: History | None = None,
        backend=None,
        topology=None,
        judge=None,
        source=None,
    ) -> None:
        super().__init__(
            trainers, config, eval_batch=eval_batch, history=history,
            backend=backend,
            topology=topology if topology is not None else "random_pairwise",
            pairing_rng=rng,
            judge=judge,
            source=source,
        )
        self._rng = rng
