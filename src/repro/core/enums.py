"""Typed knobs for the exchange and adoption policies.

These replace the stringly-typed ``exchange`` / ``scope`` /
``adopt_optimizer`` parameters that used to be validated independently in
:class:`~repro.core.ltfb.LtfbConfig`,
:class:`~repro.core.trainer.TrainerConfig`, and
``Trainer._scope_accessors``.  Each enum subclasses ``str`` so existing
string comparisons (``scope == "generator"``) and serialized payloads keep
working, and :meth:`coerce` accepts either the enum member or its string
value — the single validation point for all callers.
"""

from __future__ import annotations

import enum

__all__ = ["ExchangeScope", "AdoptOptimizer"]


class _CoercibleStrEnum(str, enum.Enum):
    """str-mixin enum with one shared validating constructor."""

    @classmethod
    def coerce(cls, value):
        """Accept a member or its string value; anything else raises."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            options = ", ".join(repr(m.value) for m in cls)
            raise ValueError(
                f"{cls.__name__} must be one of {options}, got {value!r}"
            ) from None


class ExchangeScope(_CoercibleStrEnum):
    """What crosses the wire in a tournament exchange.

    - ``GENERATOR`` — the paper's GAN extension: only generators are
      exchanged, discriminators stay local ("educating a student with
      multiple teachers", and less communication);
    - ``FULL`` — classic LTFB (Jacobs et al., MLHPC'17): the whole model
      including the discriminator moves with the winner.
    """

    GENERATOR = "generator"
    FULL = "full"


class AdoptOptimizer(_CoercibleStrEnum):
    """What happens to optimizer slots when a foreign model is adopted.

    - ``EXCHANGE`` — the winner's optimizer slots travel with its weights
      (PBT-style; with frequent tournaments, stale Adam moments otherwise
      poison every post-adoption step);
    - ``KEEP`` — keep the local slots (weights-only exchange);
    - ``RESET`` — drop the slots and restart the optimizer cold.
    """

    EXCHANGE = "exchange"
    KEEP = "keep"
    RESET = "reset"
