"""The paper's contribution: trainers, LTFB tournament training, baselines,
and the Lassen-scale performance models.

Functional side (real NumPy training at laptop scale):

- :mod:`repro.core.trainer` — a *trainer*: compute resources + a surrogate
  model + data readers + optimizers, trained with SGD/Adam.
- :mod:`repro.core.ltfb` — the "Let a Thousand Flowers Bloom" tournament:
  partitioned data silos, independent training, periodic random pairing,
  generator exchange, local-tournament winner selection.
- :mod:`repro.core.kindependent` — the K-independent baseline of Fig. 13.
- :mod:`repro.core.ensemble` — shared autoencoder pre-training and
  construction of trainer populations over dataset partitions.

Performance side (analytic, paper scale):

- :mod:`repro.core.perfmodel` — epoch/step/preload time models for a
  single trainer under the three ingestion modes (Figs. 9-10) and for
  multi-trainer LTFB (Fig. 11), built from the compute, collective, and
  file-system cost models.
"""

from repro.core.trainer import Trainer, TrainerConfig
from repro.core.enums import AdoptOptimizer, ExchangeScope
from repro.core.driver import History, PopulationDriver
from repro.core.ltfb import LtfbConfig, LtfbDriver, LtfbHistory, TournamentRecord
from repro.core.kindependent import KIndependentDriver
from repro.core.topology import (
    TOPOLOGY_NAMES,
    AsyncPairwise,
    CellularGrid,
    Isolated,
    MultiDiscriminator,
    Pairing,
    RandomPairwise,
    RoundPlan,
    Topology,
    resolve_topology,
)
from repro.core.ensemble import EnsembleSpec, build_population, pretrain_autoencoder
from repro.core.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    CheckpointNotFoundError,
    CheckpointStore,
    CheckpointVersionError,
    EnsembleSnapshot,
    GeneratorSnapshot,
    apply_exec_state,
    capture_exec_state,
    generator_snapshot,
    population_checkpoint,
    restore_population,
    restore_trainer,
    trainer_checkpoint,
)
from repro.core.perfmodel import (
    IngestionMode,
    LtfbPerfModel,
    LtfbScalePoint,
    PerfDataset,
    TrainerPerfModel,
    TrainerResources,
)

__all__ = [
    "Trainer",
    "TrainerConfig",
    "ExchangeScope",
    "AdoptOptimizer",
    "History",
    "PopulationDriver",
    "LtfbConfig",
    "LtfbDriver",
    "LtfbHistory",
    "TournamentRecord",
    "KIndependentDriver",
    "Topology",
    "TOPOLOGY_NAMES",
    "RandomPairwise",
    "CellularGrid",
    "MultiDiscriminator",
    "AsyncPairwise",
    "Isolated",
    "Pairing",
    "RoundPlan",
    "resolve_topology",
    "EnsembleSpec",
    "build_population",
    "pretrain_autoencoder",
    "IngestionMode",
    "PerfDataset",
    "TrainerResources",
    "TrainerPerfModel",
    "LtfbPerfModel",
    "LtfbScalePoint",
    "trainer_checkpoint",
    "restore_trainer",
    "population_checkpoint",
    "restore_population",
    "capture_exec_state",
    "apply_exec_state",
    "CheckpointError",
    "CheckpointNotFoundError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointMismatchError",
    "CheckpointStore",
    "GeneratorSnapshot",
    "EnsembleSnapshot",
    "generator_snapshot",
]
