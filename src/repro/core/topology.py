"""Pluggable population topologies: who exchanges with whom, judged how,
and when.

The paper's LTFB scheme (Section III-C) is one point in a design space —
synchronous, random, pairwise tournaments.  Related work explores the
rest of the axis: Pérez et al. exchange only within spatial neighborhoods
of a trainer grid (cellular training), and MD-GAN (Hardy et al.) rotates
many discriminators over data shards around aggregating generators.  A
:class:`Topology` makes that axis pluggable: drivers delegate the entire
coordination phase of a round to a strategy object, and the strategy
decides the pairing (or broadcast) structure, the judging, and — for
barrier-free topologies — the *timing* of exchanges relative to training.

Shipped implementations:

- :class:`RandomPairwise` — the paper's LTFB, bit-identical to the
  pre-topology driver (same RNG draw per round, same tournament order);
- :class:`CellularGrid` — von Neumann / Moore neighborhoods on a 1D ring
  or 2D wraparound grid; rounds cycle through neighborhood directions
  with an alternating brick phase so every edge is exercised;
- :class:`MultiDiscriminator` — MD-GAN-style: each round the population
  all-gathers generators, every trainer judges every candidate on its
  local tournament shard, the aggregate-best generator propagates to
  trainers it beats, and discriminators rotate one shard around the ring;
- :class:`AsyncPairwise` — no round barrier: trainers pair whenever both
  are ready (a readiness queue fed by the execution backend's
  ``train_round_async``), with seeded partner choice.  On the serial
  backend readiness arrives in population order, so async runs stay
  deterministic and testable; on thread/process backends readiness is
  true completion order;
- :class:`Isolated` — no exchange at all (the K-independent baseline).

Determinism contract (see DESIGN.md §9): a topology's plan may depend
only on the bound RNG, the round index, and its own checkpointable state
— never on wall-clock or trainer contents — so synchronous topologies
are bit-identical across execution backends.  ``state()``/``restore()``
round-trip everything a mid-campaign resume needs (grid shape, readiness
cursor, RNG state) through the population checkpoint manifest.
"""

from __future__ import annotations

import time
from abc import ABC
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.checkpoint import CheckpointMismatchError
from repro.core.driver import TournamentRecord
from repro.telemetry.events import EXCHANGE, TOURNAMENT
from repro.utils.serialization import nbytes_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.driver import PopulationDriver

__all__ = [
    "Pairing",
    "RoundPlan",
    "Topology",
    "RandomPairwise",
    "CellularGrid",
    "MultiDiscriminator",
    "AsyncPairwise",
    "Isolated",
    "TOPOLOGY_NAMES",
    "resolve_topology",
    "run_pairwise_tournament",
]


@dataclass(frozen=True)
class Pairing:
    """One planned exchange between trainers ``a`` and ``b`` (population
    indices), with an optional locality label for spatial topologies."""

    a: int
    b: int
    neighborhood: str | None = None


@dataclass(frozen=True)
class RoundPlan:
    """A topology's verdict for one round: disjoint pairs plus the
    trainers deterministically sitting the round out."""

    pairs: tuple[Pairing, ...] = ()
    byes: tuple[int, ...] = ()


class Topology(ABC):
    """Strategy object deciding population coordination for a driver.

    Lifecycle: the owning driver calls :meth:`bind` once at construction
    with the population's trainer names and its pairing RNG; afterwards
    the driver calls :meth:`exchange` once per round (synchronous
    topologies) or drives :meth:`begin_round`/:meth:`on_ready`/
    :meth:`finish_round` around a barrier-free train phase
    (``barrier_free = True``).

    Checkpointing: :meth:`state` returns a JSON-serializable dict (always
    carrying ``kind``) that :meth:`CheckpointStore.save_population
    <repro.core.checkpoint.CheckpointStore.save_population>` records in
    the population manifest; :meth:`restore` applies it back and raises
    :class:`~repro.core.checkpoint.CheckpointMismatchError` when the
    recorded kind (or structural state like a grid shape) does not match.
    """

    name: str = "abstract"
    #: True when the topology pairs trainers as they finish training,
    #: without a round barrier (drivers use ``train_round_async``).
    barrier_free: bool = False
    #: False for topologies that never exchange (no tournament phase,
    #: no pairing events) — the K-independent baseline.
    active: bool = True

    def __init__(self) -> None:
        self._names: list[str] = []
        self._rng: np.random.Generator | None = None
        self._bound = False

    # -- lifecycle -----------------------------------------------------------

    def bind(
        self, names: Sequence[str], rng: np.random.Generator | None
    ) -> None:
        """Attach to one driver's population (once per instance)."""
        if self._bound:
            raise RuntimeError(
                f"{self.name} topology is already bound to a population"
            )
        if not names:
            raise ValueError("cannot bind a topology to an empty population")
        self._names = list(names)
        self._rng = rng
        self._bound = True
        self._on_bind()

    def _on_bind(self) -> None:
        """Subclass hook: validate shapes, infer layout."""

    def _require_rng(self) -> np.random.Generator:
        if self._rng is None:
            raise ValueError(
                f"{self.name} topology needs a pairing RNG; construct the "
                f"driver with one (LtfbDriver's rng argument)"
            )
        return self._rng

    @property
    def names(self) -> list[str]:
        return self._names

    def neighborhood_of(self, index: int) -> str | None:
        """Locality label of one trainer (``None`` = non-spatial)."""
        return None

    # -- checkpoint surface --------------------------------------------------

    def state(self) -> dict:
        """JSON-serializable topology state for the population manifest."""
        return {"kind": self.name, **self._state()}

    def restore(self, state: Mapping | None) -> None:
        """Apply :meth:`state` output; typed error on topology mismatch."""
        if not self._bound:
            raise RuntimeError(
                f"bind the {self.name} topology (construct its driver) "
                f"before restoring checkpointed state"
            )
        kind = state.get("kind") if state else None
        if kind != self.name:
            raise CheckpointMismatchError(
                f"checkpoint records topology {kind!r}, cannot restore "
                f"into a {self.name!r} topology"
            )
        self._restore(state or {})

    def _state(self) -> dict:
        return {}

    def _restore(self, state: Mapping) -> None:
        pass

    # -- synchronous rounds --------------------------------------------------

    def plan_round(self, round_index: int) -> RoundPlan:
        """The round's pairing plan (synchronous topologies only)."""
        raise NotImplementedError(
            f"{self.name} topology does not plan synchronous rounds"
        )

    def exchange(self, driver: "PopulationDriver", round_index: int) -> float:
        """Run the whole coordination phase of one synchronous round.

        Default: plan disjoint pairs, record them (history + ``pairing``
        event), and hold one two-sided pairwise tournament per pair.
        Returns the seconds spent moving model bytes (the driver books
        the remainder of the phase as tournament/judging time).
        """
        plan = self.plan_round(round_index)
        driver.record_pairings(round_index, plan, self)
        exchange_s = 0.0
        for pair in plan.pairs:
            exchange_s += run_pairwise_tournament(driver, round_index, pair, self)
        return exchange_s

    # -- barrier-free rounds -------------------------------------------------

    def begin_round(self, round_index: int) -> None:
        """Reset per-round readiness state (barrier-free topologies)."""
        raise NotImplementedError(f"{self.name} topology is not barrier-free")

    def on_ready(self, index: int) -> Pairing | None:
        """One trainer finished its train interval; returns a pairing when
        a partner is available, else queues the trainer."""
        raise NotImplementedError(f"{self.name} topology is not barrier-free")

    def finish_round(self) -> tuple[int, ...]:
        """End of the round; returns the indices left unpaired (byes)."""
        raise NotImplementedError(f"{self.name} topology is not barrier-free")

    def __repr__(self) -> str:
        state = f"k={len(self._names)}" if self._bound else "unbound"
        return f"{type(self).__name__}({state})"


def run_pairwise_tournament(
    driver: "PopulationDriver",
    round_index: int,
    pair: Pairing,
    topology: Topology,
) -> float:
    """One pair's exchange plus both independent judgments.

    This is the paper's tournament mechanics, verbatim: the pair swaps
    exchange packages (the only inter-trainer communication), then each
    side scores its own model and the foreign weights with the driver's
    :class:`~repro.eval.judge.Judge` and adopts when the partner scores
    better (lower).  The default ``loss`` judge delegates to the
    trainer's local tournament-set scoring in the pre-seam call order,
    so loss-judged runs are bit-identical to the unjudged code.  Returns
    the seconds spent on the exchange itself; tournament records,
    history accounting, telemetry, and backend dirty-marking all happen
    here so every pairwise topology shares one implementation.
    """
    a, b = driver.trainers[pair.a], driver.trainers[pair.b]
    scope = driver.config.exchange
    tracer = driver.telemetry.tracer
    x0 = time.perf_counter()
    pkg_a = a.exchange_package(scope)
    pkg_b = b.exchange_package(scope)
    nbytes = nbytes_of(pkg_a["weights"]) + nbytes_of(pkg_b["weights"])
    x1 = time.perf_counter()
    if tracer is not None:
        tracer.record(
            "exchange", cat="exchange", t0=x0, end=x1,
            trainer_a=a.name, trainer_b=b.name, nbytes=nbytes,
        )
    driver.history.exchange_bytes += nbytes
    driver.telemetry.emit(
        EXCHANGE,
        round=round_index,
        trainer_a=a.name,
        trainer_b=b.name,
        scope=scope.value,
        nbytes=nbytes,
        topology=topology.name,
        neighborhood=pair.neighborhood,
    )
    judge = driver.judge
    for me_idx, me, theirs, partner in (
        (pair.a, a, pkg_b, b),
        (pair.b, b, pkg_a, a),
    ):
        own_score = judge.score(me)
        partner_score = judge.score_candidate(me, theirs["weights"], scope)
        adopt = partner_score < own_score
        if adopt:
            me.adopt_package(theirs)
            me.tournaments_lost += 1
            partner.tournaments_won += 1
            # Remote replicas must re-sync before the next train
            # interval (no-op for in-process backends).
            driver.backend.mark_dirty(me.name)
        driver.history.tournaments.append(
            TournamentRecord(
                round_index=round_index,
                trainer=me.name,
                partner=partner.name,
                own_score=own_score,
                partner_score=partner_score,
                adopted_partner=adopt,
            )
        )
        driver.telemetry.emit(
            TOURNAMENT,
            round=round_index,
            trainer=me.name,
            partner=partner.name,
            own_score=own_score,
            partner_score=partner_score,
            adopted=adopt,
            topology=topology.name,
            neighborhood=topology.neighborhood_of(me_idx),
            judge=judge.name,
        )
    return x1 - x0


class RandomPairwise(Topology):
    """The paper's LTFB pairing: one ``rng.permutation(k)`` per round,
    adjacent permutation entries pair up, and with an odd population the
    last entry deterministically sits the round out (the bye).

    Bit-identical to the pre-topology :class:`~repro.core.ltfb.LtfbDriver`
    — same single RNG draw per round, same pair order, same tournament
    order — so cross-backend determinism baselines carry over unchanged.
    """

    name = "random_pairwise"

    def plan_round(self, round_index: int) -> RoundPlan:
        k = len(self._names)
        perm = self._require_rng().permutation(k)
        pairs = tuple(
            Pairing(int(perm[i]), int(perm[i + 1]))
            for i in range(0, k - 1, 2)
        )
        byes = (int(perm[k - 1]),) if k % 2 else ()
        return RoundPlan(pairs=pairs, byes=byes)

    def _state(self) -> dict:
        # PCG64 (and every numpy bit generator) exposes a JSON-serializable
        # state dict; restoring it realigns the pairing stream so a resumed
        # campaign draws exactly the pairs the uninterrupted run would have.
        return {"rng_state": self._require_rng().bit_generator.state}

    def _restore(self, state: Mapping) -> None:
        rng_state = state.get("rng_state")
        if rng_state is not None:
            self._require_rng().bit_generator.state = rng_state


def _infer_grid(k: int) -> tuple[int, int]:
    """Most-square factorization of ``k`` (rows <= cols); primes and tiny
    populations fall back to a 1D ring ``(1, k)``."""
    best = (1, k)
    for rows in range(2, int(np.sqrt(k)) + 1):
        if k % rows == 0:
            best = (rows, k // rows)
    return best


class CellularGrid(Topology):
    """Cellular pairing on a 1D ring or 2D wraparound grid (Pérez et al.).

    Trainers occupy grid cells in population order (row-major).  Each
    round exchanges along one neighborhood direction — von Neumann cycles
    right/down, Moore adds the two diagonals — with an alternating brick
    phase, so over ``2 * len(directions)`` rounds every neighborhood edge
    is exercised.  Pairing is greedy and wholly deterministic: no RNG, so
    the plan is a pure function of the round index and the grid shape.
    Cells left unmatched along a direction (odd row/column lengths) are
    the round's byes, and rotate with the phase.

    Parameters
    ----------
    shape:
        ``(rows, cols)`` or ``(k,)``; ``None`` infers the most-square
        factorization (1D ring for primes).  ``rows * cols`` must equal
        the population size at bind.
    neighborhood:
        ``"von_neumann"`` (axis-aligned) or ``"moore"`` (adds diagonals;
        meaningful only on true 2D grids).
    """

    name = "cellular_grid"

    _NEIGHBORHOODS = ("von_neumann", "moore")

    def __init__(
        self,
        shape: Sequence[int] | None = None,
        neighborhood: str = "von_neumann",
    ) -> None:
        super().__init__()
        if neighborhood not in self._NEIGHBORHOODS:
            raise ValueError(
                f"neighborhood must be one of {self._NEIGHBORHOODS}, "
                f"got {neighborhood!r}"
            )
        if shape is not None:
            shape = tuple(int(s) for s in shape)
            if len(shape) not in (1, 2) or any(s <= 0 for s in shape):
                raise ValueError(
                    f"shape must be (k,) or (rows, cols) of positive ints, "
                    f"got {shape!r}"
                )
            if len(shape) == 1:
                shape = (1, shape[0])
        self._shape: tuple[int, int] | None = shape
        self.neighborhood = neighborhood

    def _on_bind(self) -> None:
        k = len(self._names)
        if self._shape is None:
            self._shape = _infer_grid(k)
        rows, cols = self._shape
        if rows * cols != k:
            raise ValueError(
                f"grid shape {self._shape} does not tile a population of "
                f"{k} trainers"
            )

    @property
    def shape(self) -> tuple[int, int]:
        if self._shape is None:
            raise RuntimeError("grid shape is inferred at bind")
        return self._shape

    def _directions(self) -> list[tuple[int, int]]:
        rows, cols = self.shape
        if rows == 1:
            return [(0, 1)]  # 1D ring
        if cols == 1:
            return [(1, 0)]
        dirs = [(0, 1), (1, 0)]
        if self.neighborhood == "moore":
            dirs += [(1, 1), (1, -1)]
        return dirs

    def neighborhood_of(self, index: int) -> str:
        rows, cols = self.shape
        return f"cell({index // cols},{index % cols})"

    def plan_round(self, round_index: int) -> RoundPlan:
        rows, cols = self.shape
        k = rows * cols
        if k < 2:
            return RoundPlan(byes=(0,))
        dirs = self._directions()
        dr, dc = dirs[round_index % len(dirs)]
        phase = (round_index // len(dirs)) % 2
        used = [False] * k
        pairs: list[Pairing] = []
        # Greedy matching in phase-shifted row-major order: the shift
        # alternates the brick pattern so consecutive passes along one
        # direction pair different neighbors (and rotate the byes).
        for i in range(k):
            cell = (i + phase) % k
            if used[cell]:
                continue
            r, c = divmod(cell, cols)
            nb = ((r + dr) % rows) * cols + (c + dc) % cols
            if nb == cell or used[nb]:
                continue
            used[cell] = used[nb] = True
            pairs.append(
                Pairing(
                    cell,
                    nb,
                    neighborhood=(
                        f"{self.neighborhood_of(cell)}|"
                        f"{self.neighborhood_of(nb)}"
                    ),
                )
            )
        byes = tuple(i for i in range(k) if not used[i])
        return RoundPlan(pairs=tuple(pairs), byes=byes)

    def _state(self) -> dict:
        rows, cols = self.shape
        return {"shape": [rows, cols], "neighborhood": self.neighborhood}

    def _restore(self, state: Mapping) -> None:
        shape = tuple(state.get("shape", ()))
        if shape != self.shape:
            raise CheckpointMismatchError(
                f"checkpoint records grid shape {shape}, cannot restore "
                f"into a {self.shape} grid"
            )
        if state.get("neighborhood") != self.neighborhood:
            raise CheckpointMismatchError(
                f"checkpoint records {state.get('neighborhood')!r} "
                f"neighborhoods, topology uses {self.neighborhood!r}"
            )


class MultiDiscriminator(Topology):
    """MD-GAN-style coordination: aggregating generators, rotating
    discriminators (Hardy et al., adapted to the tournament framework).

    Per round, two deterministic steps:

    1. **Generator aggregation** — the population all-gathers generator
       packages; every trainer scores every candidate on its local
       tournament shard; the candidate with the best (lowest) *mean*
       score across all shards is the consensus generator, and every
       trainer whose own aggregate score is worse adopts it.  Ties break
       to the lowest population index.
    2. **Discriminator rotation** — each trainer's discriminator (and its
       optimizer state) moves one position around the population ring, so
       over k rounds every discriminator has judged every data shard.

    Both steps mark the touched trainers dirty for replica re-sync and
    book their bytes into ``history.exchange_bytes``.  No RNG is
    consumed; the plan is a pure function of the round index.
    """

    name = "multi_discriminator"

    def __init__(self) -> None:
        super().__init__()
        self._rotations = 0

    def neighborhood_of(self, index: int) -> str:
        return f"shard{index}"

    def exchange(self, driver: "PopulationDriver", round_index: int) -> float:
        trainers = driver.trainers
        names = self._names
        k = len(trainers)
        if k < 2:
            driver.record_pairings(round_index, RoundPlan(byes=(0,)), self)
            return 0.0
        scope = driver.config.exchange
        exchange_s = 0.0

        # -- 1. generator aggregation ------------------------------------
        x0 = time.perf_counter()
        packages = [t.exchange_package(scope) for t in trainers]
        pkg_bytes = [nbytes_of(p["weights"]) for p in packages]
        x1 = time.perf_counter()
        exchange_s += x1 - x0
        # All-gather accounting: every package reaches the k-1 other
        # shards so each judge can score each candidate locally.
        for g in range(k):
            nbytes = (k - 1) * pkg_bytes[g]
            driver.history.exchange_bytes += nbytes
            driver.telemetry.emit(
                EXCHANGE,
                round=round_index,
                trainer_a=names[g],
                trainer_b="broadcast",
                scope=scope.value,
                nbytes=nbytes,
                topology=self.name,
                neighborhood=self.neighborhood_of(g),
            )
        judge = driver.judge
        own = [judge.score(t) for t in trainers]
        agg = [
            float(
                np.mean(
                    [
                        own[g] if j == g
                        else judge.score_candidate(
                            trainers[j], packages[g]["weights"], scope
                        )
                        for j in range(k)
                    ]
                )
            )
            for g in range(k)
        ]
        best = int(np.argmin(agg))
        plan = RoundPlan(
            pairs=tuple(
                Pairing(me, best, neighborhood=self.neighborhood_of(me))
                for me in range(k)
                if me != best
            )
        )
        driver.record_pairings(round_index, plan, self)
        for me_idx in range(k):
            if me_idx == best:
                continue
            me = trainers[me_idx]
            adopt = agg[best] < agg[me_idx]
            if adopt:
                me.adopt_package(packages[best])
                me.tournaments_lost += 1
                trainers[best].tournaments_won += 1
                driver.backend.mark_dirty(me.name)
            driver.history.tournaments.append(
                TournamentRecord(
                    round_index=round_index,
                    trainer=me.name,
                    partner=names[best],
                    own_score=agg[me_idx],
                    partner_score=agg[best],
                    adopted_partner=adopt,
                )
            )
            driver.telemetry.emit(
                TOURNAMENT,
                round=round_index,
                trainer=me.name,
                partner=names[best],
                own_score=agg[me_idx],
                partner_score=agg[best],
                adopted=adopt,
                topology=self.name,
                neighborhood=self.neighborhood_of(me_idx),
                judge=judge.name,
            )

        # -- 2. discriminator rotation -----------------------------------
        x0 = time.perf_counter()
        full_states = [t.surrogate.get_full_state() for t in trainers]
        disc_opts = [t.disc_optimizer.get_state() for t in trainers]
        for i, t in enumerate(trainers):
            src = (i + 1) % k
            disc = {
                key: value
                for key, value in full_states[src].items()
                if key.startswith("discriminator/")
            }
            merged = dict(t.surrogate.get_full_state())
            merged.update(disc)
            t.surrogate.set_full_state(merged)
            t.disc_optimizer.set_state(disc_opts[src])
            driver.backend.mark_dirty(t.name)
            nbytes = nbytes_of(disc)
            driver.history.exchange_bytes += nbytes
            driver.telemetry.emit(
                EXCHANGE,
                round=round_index,
                trainer_a=names[src],
                trainer_b=t.name,
                scope="discriminator",
                nbytes=nbytes,
                topology=self.name,
                neighborhood=self.neighborhood_of(i),
            )
        exchange_s += time.perf_counter() - x0
        self._rotations += 1
        return exchange_s

    def _state(self) -> dict:
        return {"rotations": self._rotations}

    def _restore(self, state: Mapping) -> None:
        self._rotations = int(state.get("rotations", 0))


class AsyncPairwise(Topology):
    """Barrier-free pairwise tournaments over a readiness queue.

    Trainers enter the queue as their train intervals complete (the
    execution backend's ``train_round_async`` reports readiness in
    completion order); a newly ready trainer pairs immediately with a
    seeded-random waiting trainer, and the tournament runs while the rest
    of the population is still training.  A trainer left waiting when the
    round drains is the round's bye.

    Determinism: the *pairing decision* given a readiness order is fully
    seeded (one ``rng.integers`` draw per pairing), and on the serial
    backend readiness order is population order — so serial async runs
    are reproducible end-to-end.  Thread/process backends deliver true
    completion order, which is the point of removing the barrier and is
    inherently schedule-dependent.

    ``state()`` carries the readiness cursor (total readiness events
    processed) and the pairing RNG state, so a resumed campaign continues
    the same seeded decision stream.
    """

    name = "async_pairwise"
    barrier_free = True

    def __init__(self) -> None:
        super().__init__()
        self._waiting: list[int] = []
        self._ready_cursor = 0

    def _on_bind(self) -> None:
        self._require_rng()

    def begin_round(self, round_index: int) -> None:
        self._waiting = []

    def on_ready(self, index: int) -> Pairing | None:
        self._ready_cursor += 1
        if self._waiting:
            pick = int(self._require_rng().integers(len(self._waiting)))
            partner = self._waiting.pop(pick)
            return Pairing(partner, index)
        self._waiting.append(index)
        return None

    def finish_round(self) -> tuple[int, ...]:
        byes = tuple(self._waiting)
        self._waiting = []
        return byes

    def _state(self) -> dict:
        return {
            "ready_cursor": self._ready_cursor,
            "rng_state": self._require_rng().bit_generator.state,
        }

    def _restore(self, state: Mapping) -> None:
        self._ready_cursor = int(state.get("ready_cursor", 0))
        rng_state = state.get("rng_state")
        if rng_state is not None:
            self._require_rng().bit_generator.state = rng_state


class Isolated(Topology):
    """No coordination at all — the K-independent baseline of Fig. 13.

    Exists so every population driver runs through one topology seam:
    ``active = False`` makes the driver skip the tournament phase (and
    its telemetry) entirely, preserving the historical K-independent
    round shape.
    """

    name = "isolated"
    active = False

    def plan_round(self, round_index: int) -> RoundPlan:
        return RoundPlan()

    def exchange(self, driver: "PopulationDriver", round_index: int) -> float:
        return 0.0


#: Names accepted by :func:`resolve_topology` and the ``--topology`` CLI
#: flags (bench, tests).
TOPOLOGY_NAMES = (
    "random_pairwise",
    "cellular_grid",
    "multi_discriminator",
    "async_pairwise",
    "isolated",
)


def resolve_topology(spec: "Topology | str | None") -> Topology:
    """Coerce a topology spec into a :class:`Topology`.

    ``None`` means :class:`Isolated` (drivers override their own default
    — LTFB resolves ``None`` to :class:`RandomPairwise`); a string names
    one of :data:`TOPOLOGY_NAMES`; an instance passes through unchanged.
    """
    if isinstance(spec, Topology):
        return spec
    if spec is None:
        return Isolated()
    if isinstance(spec, str):
        registry = {
            "random_pairwise": RandomPairwise,
            "cellular_grid": CellularGrid,
            "multi_discriminator": MultiDiscriminator,
            "async_pairwise": AsyncPairwise,
            "isolated": Isolated,
        }
        try:
            return registry[spec]()
        except KeyError:
            raise ValueError(
                f"unknown topology {spec!r}; expected one of {TOPOLOGY_NAMES}"
            ) from None
    raise TypeError(
        f"topology must be None, a name, or a Topology, got {spec!r}"
    )
