"""Checkpointing: serialize and restore trainer and population state.

Long LTFB campaigns on shared machines need to survive preemption; LBANN
checkpoints trainers independently (each trainer is a self-contained unit:
model weights, optimizer state, step counters, tournament tallies).  This
module packs exactly that into a single byte buffer per trainer — NumPy
arrays via the flat-buffer codec of :mod:`repro.utils.serialization`,
scalars via a small JSON header — so checkpoints are portable and contain
no pickled code.

Checkpoints also carry the silo reader's continuation as a *plan cursor*:
the RNG state the in-flight epoch was planned from, the next undelivered
step, and the prefetch depth.  Restoring re-plans the identical epoch and
skips the delivered batches, so a population restored into freshly built
(identical-seed) trainers replays exactly the batch sequence the
uninterrupted run would have seen — mid-LTFB resume is bit-deterministic
even mid-epoch, and regardless of prefetch depth (prefetched-but-
undelivered batches are re-materialized from the plan, never serialized).

Restoring requires an architecturally identical trainer (same config and
weight names); mismatches raise instead of silently corrupting state.

Both directions emit ``checkpoint`` telemetry events when a
:class:`~repro.telemetry.TelemetryHub` is passed (or attached to the
trainer by a running driver).

Public surface
--------------

:class:`CheckpointStore` is the durable, tagged front door: ``save(trainer,
tag)`` / ``load_trainer(tag, trainer)`` / ``load_generator(tag)`` /
``list_tags()`` / ``latest()`` over a directory of atomic-rename-published
payload files, plus population tags (one directory per tag with a manifest)
and the shared frozen autoencoder.  The byte-level functions
(:func:`trainer_checkpoint`, :func:`restore_trainer`,
:func:`population_checkpoint`, :func:`restore_population`) remain public
building blocks, and :func:`capture_exec_state` / :func:`apply_exec_state`
stay the execution backends' replica-shipping codec.  Everything
``_``-prefixed is internal — importing it from another module is an API
violation (enforced by ``tests/test_api_boundaries.py``).

Failures are typed: :class:`CheckpointNotFoundError` (unknown tag),
:class:`CheckpointCorruptError` (truncated or mangled payload),
:class:`CheckpointVersionError` (format-version mismatch), and
:class:`CheckpointMismatchError` (payload applied to the wrong trainer or
component).  All subclass :class:`CheckpointError`, itself a ``ValueError``
so pre-existing ``except ValueError`` call sites keep working.
"""

from __future__ import annotations

import dataclasses
import io
import json
import os
import re
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.trainer import Trainer

if TYPE_CHECKING:
    from repro.models.autoencoder import MultimodalAutoencoder
    from repro.telemetry import TelemetryHub

__all__ = [
    "CheckpointError",
    "CheckpointNotFoundError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointMismatchError",
    "GeneratorSnapshot",
    "EnsembleSnapshot",
    "CheckpointStore",
    "generator_snapshot",
    "trainer_checkpoint",
    "restore_trainer",
    "population_checkpoint",
    "restore_population",
    "capture_exec_state",
    "apply_exec_state",
]

_HEADER_KEY = "__checkpoint_header__"
_FORMAT_VERSION = 1


class CheckpointError(ValueError):
    """Base class of every checkpoint failure (a ``ValueError`` so legacy
    ``except ValueError`` call sites keep catching)."""


class CheckpointNotFoundError(CheckpointError):
    """No checkpoint exists under the requested tag."""


class CheckpointCorruptError(CheckpointError):
    """The payload is truncated, not an npz archive, or missing parts."""


class CheckpointVersionError(CheckpointError):
    """The payload's format version is not the one this code writes."""


class CheckpointMismatchError(CheckpointError):
    """A payload was applied to the wrong trainer or component kind."""


def _flatten_optimizer(prefix: str, state: Mapping) -> tuple[dict, dict]:
    """Split optimizer state into array leaves and scalar metadata."""
    arrays: dict[str, np.ndarray] = {}
    meta = {"step_count": int(state["step_count"]), "slots": []}
    for wname, slots in state["slots"].items():
        for slot_name, value in slots.items():
            key = f"{prefix}/{wname}\x1e{slot_name}"
            arrays[key] = np.asarray(value)
            meta["slots"].append([wname, slot_name])
    return arrays, meta


def _unflatten_optimizer(prefix: str, meta: Mapping, arrays: Mapping) -> dict:
    slots: dict[str, dict[str, np.ndarray]] = {}
    for wname, slot_name in meta["slots"]:
        key = f"{prefix}/{wname}\x1e{slot_name}"
        slots.setdefault(wname, {})[slot_name] = np.array(arrays[key])
    return {"step_count": int(meta["step_count"]), "slots": slots}


def _emit(trainer: Trainer, telemetry, action: str, nbytes: int) -> None:
    hub = telemetry if telemetry is not None else trainer.telemetry
    if hub is not None:
        hub.emit("checkpoint", action=action, trainer=trainer.name, nbytes=nbytes)


def _reader_meta(trainer: Trainer) -> dict:
    """The reader continuation: epoch counter + plan cursor.

    When an epoch is in flight the cursor's pre-plan RNG state is the
    authoritative ``rng_state`` (the live generator may have been advanced
    further by a prefetch thread planning ahead — restore re-plans from
    the cursor, which lands the generator in the identical place).
    """
    cursor = trainer.data_state()
    rng_state = (
        cursor["epoch_rng_state"]
        if cursor is not None
        else trainer.reader._rng.bit_generator.state
    )
    return {
        "epochs_completed": trainer.reader.epochs_completed,
        "rng_state": rng_state,
        "plan_cursor": cursor,
        "prefetch_depth": trainer.prefetch_depth,
    }


def _apply_reader_meta(
    trainer: Trainer, meta: Mapping, restore_depth: bool
) -> None:
    trainer.reader.epochs_completed = int(meta["epochs_completed"])
    trainer.reader._rng.bit_generator.state = meta["rng_state"]
    cursor = meta.get("plan_cursor")
    if cursor is None:
        # No epoch in flight: position the reader to plan the next epoch.
        trainer.reader._epochs_planned = trainer.reader.epochs_completed
    if restore_depth and meta.get("prefetch_depth") is not None:
        trainer.set_prefetch_depth(int(meta["prefetch_depth"]))
    # Discard any live pipeline; it rebuilds lazily from the cursor.
    trainer.set_data_state(cursor)


def _train_state_arrays(trainer: Trainer) -> tuple[dict, dict, dict]:
    """Model weights plus both flattened optimizer states and their meta."""
    arrays: dict[str, np.ndarray] = {
        f"model/{k}": v for k, v in trainer.surrogate.get_full_state().items()
    }
    gen_arrays, gen_meta = _flatten_optimizer(
        "opt_gen", trainer.gen_optimizer.get_state()
    )
    disc_arrays, disc_meta = _flatten_optimizer(
        "opt_disc", trainer.disc_optimizer.get_state()
    )
    arrays.update(gen_arrays)
    arrays.update(disc_arrays)
    return arrays, gen_meta, disc_meta


def _pack(arrays: Mapping[str, np.ndarray], header: Mapping) -> bytes:
    buf = io.BytesIO()
    escaped = {k.replace("/", "\x1f"): v for k, v in arrays.items()}
    escaped[_HEADER_KEY] = np.frombuffer(
        json.dumps(dict(header)).encode("utf-8"), dtype=np.uint8
    )
    np.savez(buf, **escaped)
    return buf.getvalue()


def _unpack(payload: bytes) -> tuple[dict[str, np.ndarray], dict]:
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as data:
            if _HEADER_KEY not in data.files:
                raise CheckpointCorruptError(
                    "checkpoint payload has no header record"
                )
            arrays = {
                k.replace("\x1f", "/"): np.array(data[k])
                for k in data.files
                if k != _HEADER_KEY
            }
            header = json.loads(bytes(data[_HEADER_KEY]).decode("utf-8"))
    except CheckpointError:
        raise
    except Exception as exc:
        # np.load on a truncated/mangled buffer surfaces zipfile.BadZipFile,
        # struct.error, OSError, or ValueError depending on where the
        # corruption bites; json adds its own decode errors.  All of them
        # mean the same thing to a caller: the payload is not a checkpoint.
        raise CheckpointCorruptError(
            f"corrupt checkpoint payload: {type(exc).__name__}: {exc}"
        ) from exc
    if not isinstance(header, dict):
        raise CheckpointCorruptError("checkpoint header is not an object")
    if header.get("version") != _FORMAT_VERSION:
        raise CheckpointVersionError(
            f"unsupported checkpoint version {header.get('version')!r} "
            f"(this code reads version {_FORMAT_VERSION})"
        )
    return arrays, header


def _apply_train_state(trainer: Trainer, arrays: Mapping, header: Mapping) -> None:
    model_state = {
        k.removeprefix("model/"): v
        for k, v in arrays.items()
        if k.startswith("model/")
    }
    trainer.surrogate.set_full_state(model_state)
    trainer.gen_optimizer.set_state(
        _unflatten_optimizer("opt_gen", header["gen_optimizer"], arrays)
    )
    trainer.disc_optimizer.set_state(
        _unflatten_optimizer("opt_disc", header["disc_optimizer"], arrays)
    )
    trainer.steps_done = int(header["steps_done"])
    trainer.surrogate.steps_trained = int(header["surrogate_steps"])


def trainer_checkpoint(
    trainer: Trainer, telemetry: "TelemetryHub | None" = None
) -> bytes:
    """Serialize one trainer: model, both optimizers, counters, reader."""
    arrays, gen_meta, disc_meta = _train_state_arrays(trainer)
    header = {
        "version": _FORMAT_VERSION,
        "kind": "trainer",
        "name": trainer.name,
        "steps_done": trainer.steps_done,
        "tournaments_won": trainer.tournaments_won,
        "tournaments_lost": trainer.tournaments_lost,
        "surrogate_steps": trainer.surrogate.steps_trained,
        "gen_optimizer": gen_meta,
        "disc_optimizer": disc_meta,
        # Reader continuation: epoch counter, shuffle generator state, and
        # the in-flight epoch's plan cursor + prefetch depth.  PCG64 (and
        # every numpy bit generator) exposes its state as a
        # JSON-serializable dict of ints/strings.
        "reader": _reader_meta(trainer),
    }
    payload = _pack(arrays, header)
    _emit(trainer, telemetry, "save", len(payload))
    return payload


def restore_trainer(
    trainer: Trainer, payload: bytes, telemetry: "TelemetryHub | None" = None
) -> None:
    """Load a checkpoint into an architecturally identical trainer."""
    arrays, header = _unpack(payload)
    _check_kind(header, "trainer")
    _apply_train_state(trainer, arrays, header)
    trainer.tournaments_won = int(header["tournaments_won"])
    trainer.tournaments_lost = int(header["tournaments_lost"])
    reader_meta = header.get("reader")
    if reader_meta is not None:
        _apply_reader_meta(trainer, reader_meta, restore_depth=True)
    _emit(trainer, telemetry, "restore", len(payload))


def capture_exec_state(trainer: Trainer, include_reader: bool = True) -> bytes:
    """Snapshot the state an execution backend ships between processes.

    Same flat-buffer format as :func:`trainer_checkpoint` but scoped to
    what worker/driver replicas need to stay consistent: model weights,
    both optimizer states, and step counters.  ``include_reader=True``
    (worker -> driver direction) additionally carries the reader's epoch
    counter, RNG state, and plan cursor so the driver-side trainer can be
    checkpointed after a run exactly as a serially trained one would be —
    including mid-epoch.  The driver -> worker direction (pushing
    tournament adoptions) omits the reader so the worker's in-flight data
    pipeline is left untouched.

    Tournament tallies never travel: the driver process is authoritative
    for those.  No telemetry is emitted; this is backend plumbing, not a
    user-visible checkpoint.
    """
    arrays, gen_meta, disc_meta = _train_state_arrays(trainer)
    header = {
        "version": _FORMAT_VERSION,
        "kind": "trainer",
        "name": trainer.name,
        "steps_done": trainer.steps_done,
        "surrogate_steps": trainer.surrogate.steps_trained,
        "gen_optimizer": gen_meta,
        "disc_optimizer": disc_meta,
    }
    if include_reader:
        header["reader"] = _reader_meta(trainer)
    return _pack(arrays, header)


def apply_exec_state(trainer: Trainer, payload: bytes) -> None:
    """Apply a :func:`capture_exec_state` snapshot to a trainer replica.

    Restores exactly what the payload carries: reader state (epoch
    counter, RNG, plan cursor) only when the snapshot included it, and
    never the tournament tallies.  The replica's own prefetch depth is
    kept — depth is an execution-placement knob, not trained state.
    """
    arrays, header = _unpack(payload)
    _check_kind(header, "trainer")
    if header["name"] != trainer.name:
        raise CheckpointMismatchError(
            f"exec state for trainer {header['name']!r} applied to "
            f"{trainer.name!r}"
        )
    _apply_train_state(trainer, arrays, header)
    reader_meta = header.get("reader")
    if reader_meta is not None:
        _apply_reader_meta(trainer, reader_meta, restore_depth=False)


def population_checkpoint(
    trainers: Sequence[Trainer], telemetry: "TelemetryHub | None" = None
) -> dict[str, bytes]:
    """Checkpoint every trainer of a population, keyed by trainer name."""
    names = [t.name for t in trainers]
    if len(set(names)) != len(names):
        raise ValueError(f"trainer names must be unique, got {names}")
    return {t.name: trainer_checkpoint(t, telemetry) for t in trainers}


def restore_population(
    trainers: Sequence[Trainer],
    checkpoints: Mapping[str, bytes],
    telemetry: "TelemetryHub | None" = None,
) -> None:
    """Restore a population from :func:`population_checkpoint` output."""
    missing = {t.name for t in trainers} - set(checkpoints)
    if missing:
        raise ValueError(f"no checkpoint for trainers: {sorted(missing)}")
    for t in trainers:
        restore_trainer(t, checkpoints[t.name], telemetry)


def _check_kind(header: Mapping, expected: str) -> None:
    # Headers written before the store existed carry no kind; they are all
    # trainer checkpoints, so absence only satisfies expected="trainer".
    kind = header.get("kind", "trainer")
    if kind != expected:
        raise CheckpointMismatchError(
            f"expected a {expected!r} checkpoint, got {kind!r}"
        )


# ---------------------------------------------------------------------------
# Inference-side snapshots
# ---------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class GeneratorSnapshot:
    """The deployable slice of one trainer checkpoint.

    Exactly what a surrogate server needs to answer forward queries:
    the generator weight tensors (``forward/*`` and ``inverse/*``; the
    discriminator and optimizer state stay behind) plus provenance.
    Immutable by convention — the serve registry shares one snapshot
    across threads without copying.
    """

    tag: str
    trainer_name: str
    steps_trained: int
    weights: Mapping[str, np.ndarray]

    @property
    def nbytes(self) -> int:
        return sum(int(v.nbytes) for v in self.weights.values())


@dataclasses.dataclass(frozen=True)
class EnsembleSnapshot:
    """A population's deployable generators, in manifest order.

    ``winner`` names the tournament winner when the saver recorded one
    (:meth:`CheckpointStore.save_population`); single-trainer tags load as
    one-member ensembles whose sole member is the winner.  ``topology``
    is the coordination strategy the population trained under (the
    recorded topology kind), when the saver supplied one — the serving
    plane surfaces it as model metadata.
    """

    tag: str
    members: tuple[GeneratorSnapshot, ...]
    winner: str | None = None
    topology: str | None = None

    def __post_init__(self) -> None:
        if not self.members:
            raise CheckpointCorruptError(f"ensemble {self.tag!r} has no members")
        names = [m.trainer_name for m in self.members]
        if self.winner is not None and self.winner not in names:
            raise CheckpointMismatchError(
                f"winner {self.winner!r} is not an ensemble member of "
                f"{self.tag!r} ({names})"
            )

    @property
    def winner_member(self) -> GeneratorSnapshot:
        """The winner's snapshot (first member when none was recorded)."""
        if self.winner is None:
            return self.members[0]
        return next(
            m for m in self.members if m.trainer_name == self.winner
        )


def generator_snapshot(payload: bytes, tag: str = "") -> GeneratorSnapshot:
    """Extract the deployable generator slice from a checkpoint payload."""
    arrays, header = _unpack(payload)
    _check_kind(header, "trainer")
    weights = {
        k.removeprefix("model/"): v
        for k, v in arrays.items()
        if k.startswith(("model/forward/", "model/inverse/"))
    }
    if not weights:
        raise CheckpointCorruptError(
            f"checkpoint {tag or header.get('name')!r} carries no "
            f"generator weights"
        )
    return GeneratorSnapshot(
        tag=tag,
        trainer_name=str(header["name"]),
        steps_trained=int(header["surrogate_steps"]),
        weights=weights,
    )


# ---------------------------------------------------------------------------
# The tagged, directory-backed store
# ---------------------------------------------------------------------------

#: Tags are slash-separated path-safe segments; no traversal, no hidden
#: files, no empty segments.
_TAG_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._@-]*(/[A-Za-z0-9][A-Za-z0-9._@-]*)*$")


class CheckpointStore:
    """Durable, tagged checkpoint storage over one directory.

    Every tag is published with write-to-temp + ``os.replace`` so a
    concurrent reader (a serving process polling :meth:`latest` for a new
    tournament winner) sees either the previous complete payload or the
    new one, never a torn write.  Two tag shapes exist:

    - **trainer tags** — one ``<tag>.ckpt`` file holding one
      :func:`trainer_checkpoint` payload;
    - **population tags** — a ``<tag>/`` directory of per-trainer payloads
      plus a ``MANIFEST.json`` naming the member order and (optionally)
      the tournament winner.  The manifest is written last, so the tag is
      invisible until every member is durable.

    ``latest()`` orders tags by publish time (file mtime of the payload or
    manifest), which is the contract the serve registry's hot-reload poll
    is built on: save a better model under a fresh tag and every watcher
    picks it up.
    """

    SUFFIX = ".ckpt"
    MANIFEST = "MANIFEST.json"

    def __init__(self, root, telemetry: "TelemetryHub | None" = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.telemetry = telemetry

    # -- tag bookkeeping -----------------------------------------------------

    @staticmethod
    def _check_tag(tag: str) -> str:
        if not isinstance(tag, str) or not _TAG_RE.match(tag):
            raise ValueError(
                f"invalid checkpoint tag {tag!r}: use path-safe segments "
                f"([A-Za-z0-9._@-], '/'-separated, no leading dots)"
            )
        return tag

    def _file(self, tag: str) -> Path:
        return self.root / (self._check_tag(tag) + self.SUFFIX)

    def _dir(self, tag: str) -> Path:
        return self.root / self._check_tag(tag)

    def _publish(self, path: Path, payload: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f".{path.name}.tmp-{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    def _stamp(self, tag: str) -> int:
        """Publish instant of a tag in mtime ns (manifest for populations)."""
        path = self._file(tag)
        if not path.is_file():
            path = self._dir(tag) / self.MANIFEST
        return path.stat().st_mtime_ns

    def list_tags(self) -> list[str]:
        """Every published tag (trainer and population), sorted by name."""
        tags: list[str] = []
        for path in self.root.rglob(f"*{self.SUFFIX}"):
            if path.name.startswith("."):
                continue
            rel = path.relative_to(self.root)
            # Files inside a population directory are members, not tags.
            if (path.parent / self.MANIFEST).is_file():
                continue
            tags.append(str(rel)[: -len(self.SUFFIX)])
        for manifest in self.root.rglob(self.MANIFEST):
            tags.append(str(manifest.parent.relative_to(self.root)))
        return sorted(tags)

    def latest(self, exclude: Sequence[str] = ()) -> str | None:
        """The most recently published tag, or ``None`` on an empty store.

        ``exclude`` skips tags that are not deployment candidates (the
        serve registry passes its autoencoder tag so saving the frozen
        decoder never looks like a new model version).
        """
        tags = [t for t in self.list_tags() if t not in set(exclude)]
        if not tags:
            return None
        return max(tags, key=lambda t: (self._stamp(t), t))

    def __contains__(self, tag: str) -> bool:
        return self._file(tag).is_file() or (
            self._dir(tag) / self.MANIFEST
        ).is_file()

    # -- trainer tags --------------------------------------------------------

    def save(self, trainer: Trainer, tag: str | None = None) -> str:
        """Checkpoint one trainer under ``tag`` (default:
        ``<name>-s<steps>``); returns the tag."""
        if tag is None:
            tag = f"{trainer.name}-s{trainer.steps_done:08d}"
        path = self._file(tag)
        self._publish(path, trainer_checkpoint(trainer, self.telemetry))
        return tag

    def payload(self, tag: str) -> bytes:
        """The raw checkpoint bytes of a trainer tag."""
        path = self._file(tag)
        if not path.is_file():
            raise CheckpointNotFoundError(
                f"no checkpoint tagged {tag!r} under {self.root}"
            )
        return path.read_bytes()

    def load_trainer(self, tag: str, trainer: Trainer) -> Trainer:
        """Restore a trainer tag into an architecturally identical trainer."""
        restore_trainer(trainer, self.payload(tag), self.telemetry)
        return trainer

    def load_generator(self, tag: str) -> GeneratorSnapshot:
        """The deployable generator slice of a trainer tag."""
        return generator_snapshot(self.payload(tag), tag=tag)

    # -- population tags -----------------------------------------------------

    def save_population(
        self,
        trainers: Sequence[Trainer],
        tag: str,
        winner: str | None = None,
        topology=None,
        ingest=None,
        eval_summary=None,
    ) -> str:
        """Checkpoint a whole population under one tag.

        ``winner`` (a member trainer name) records the tournament verdict
        so servers in winner-only mode know which member to serve.
        ``topology`` records the population's coordination strategy — a
        :class:`~repro.core.topology.Topology` instance (its
        ``state()`` is captured: kind, grid shape, readiness cursor, RNG
        state) or a pre-built state mapping — so a resume restores the
        same pairing stream and the serving plane can expose the
        topology as model metadata.  ``ingest`` records the streaming
        ingestion cursor (a :meth:`~repro.ingest.StreamingSource.state`
        mapping: poll count, channel cursor, universe snapshot
        version/size) so a resume can
        :meth:`~repro.ingest.StreamingSource.replay` the exact same
        sample universe before trainers re-plan their in-flight epochs.
        ``eval_summary`` records the run's quality-probe verdict (a
        :meth:`~repro.eval.probe.QualityProbe.summary` mapping) — the
        serve-side quality gate compares candidate checkpoints on it
        before hot-reloading.  The manifest publishes last: a
        concurrently polling reader never sees a partial population.
        """
        names = [t.name for t in trainers]
        if len(set(names)) != len(names):
            raise ValueError(f"trainer names must be unique, got {names}")
        if winner is not None and winner not in names:
            raise ValueError(f"winner {winner!r} is not in {names}")
        topology_state = None
        if topology is not None:
            topology_state = (
                dict(topology) if isinstance(topology, Mapping)
                else topology.state()
            )
            if "kind" not in topology_state:
                raise ValueError(
                    "topology state must carry a 'kind' entry "
                    "(use Topology.state())"
                )
        directory = self._dir(tag)
        for t in trainers:
            self._publish(
                directory / f"{t.name}{self.SUFFIX}",
                trainer_checkpoint(t, self.telemetry),
            )
        ingest_state = None
        if ingest is not None:
            ingest_state = dict(ingest)
            if "cursor" not in ingest_state:
                raise ValueError(
                    "ingest state must carry a 'cursor' entry "
                    "(use StreamingSource.state())"
                )
        manifest = {
            "members": names,
            "winner": winner,
            "topology": topology_state,
            "ingest": ingest_state,
            "eval_summary": dict(eval_summary) if eval_summary is not None
            else None,
            "version": _FORMAT_VERSION,
        }
        self._publish(
            directory / self.MANIFEST,
            json.dumps(manifest, indent=2).encode("utf-8"),
        )
        return tag

    def _manifest(self, tag: str) -> dict:
        path = self._dir(tag) / self.MANIFEST
        if not path.is_file():
            raise CheckpointNotFoundError(
                f"no population checkpoint tagged {tag!r} under {self.root}"
            )
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorruptError(
                f"population manifest for {tag!r} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("members"), list
        ):
            raise CheckpointCorruptError(
                f"population manifest for {tag!r} has no member list"
            )
        return manifest

    def ingest_state(self, tag: str) -> dict | None:
        """The streaming-ingestion cursor recorded with a population tag.

        ``None`` when the tag was saved without one (fixed-universe run).
        Feed the mapping to :meth:`~repro.ingest.StreamingSource.replay`
        on a freshly rebuilt campaign/channel/universe *before* restoring
        trainers, so their plan cursors re-freeze the snapshots they were
        planned against.
        """
        state = self._manifest(tag).get("ingest")
        return dict(state) if state is not None else None

    def eval_summary(self, tag: str) -> dict | None:
        """The quality-probe summary recorded with a population tag.

        ``None`` when the tag was saved without one (no probe attached,
        or a pre-eval checkpoint format) — the serve-side quality gate
        passes open on those.  Trainer tags have no manifest and raise
        :class:`CheckpointNotFoundError` like every manifest accessor.
        """
        summary = self._manifest(tag).get("eval_summary")
        return dict(summary) if summary is not None else None

    def stamp_eval_summary(self, tag: str, summary: Mapping | None) -> None:
        """Record (or replace) a population tag's eval summary in place.

        Re-publishes the manifest atomically with the new summary — the
        path for probes that finish scoring after the checkpoint was
        written, and for operators re-grading an archived population.
        """
        manifest = self._manifest(tag)
        manifest["eval_summary"] = (
            dict(summary) if summary is not None else None
        )
        self._publish(
            self._dir(tag) / self.MANIFEST,
            json.dumps(manifest, indent=2).encode("utf-8"),
        )

    def load_population(
        self, tag: str, trainers: Sequence[Trainer], topology=None
    ) -> Sequence[Trainer]:
        """Restore a population tag into identically named trainers.

        When ``topology`` (a bound :class:`~repro.core.topology.Topology`)
        is given, the manifest's recorded topology state is restored into
        it — pairing RNG, readiness cursor — and a
        :class:`CheckpointMismatchError` is raised when the recorded kind
        (or grid shape) does not match the topology supplied.
        """
        manifest = self._manifest(tag)
        if topology is not None:
            topology.restore(manifest.get("topology"))
        directory = self._dir(tag)
        checkpoints: dict[str, bytes] = {}
        for name in manifest["members"]:
            member = directory / f"{name}{self.SUFFIX}"
            if not member.is_file():
                raise CheckpointCorruptError(
                    f"population {tag!r} manifest names {name!r} but the "
                    f"member payload is missing"
                )
            checkpoints[name] = member.read_bytes()
        restore_population(trainers, checkpoints, self.telemetry)
        return trainers

    def load_ensemble(self, tag: str) -> EnsembleSnapshot:
        """Deployable generators of a tag — population or single trainer.

        A trainer tag yields a one-member ensemble whose member is the
        winner; a population tag yields members in manifest order with the
        recorded winner (if any).
        """
        if self._file(tag).is_file():
            member = self.load_generator(tag)
            return EnsembleSnapshot(
                tag=tag, members=(member,), winner=member.trainer_name
            )
        manifest = self._manifest(tag)
        directory = self._dir(tag)
        members = []
        for name in manifest["members"]:
            member = directory / f"{name}{self.SUFFIX}"
            if not member.is_file():
                raise CheckpointCorruptError(
                    f"population {tag!r} manifest names {name!r} but the "
                    f"member payload is missing"
                )
            members.append(
                generator_snapshot(member.read_bytes(), tag=f"{tag}/{name}")
            )
        topology_state = manifest.get("topology")
        return EnsembleSnapshot(
            tag=tag,
            members=tuple(members),
            winner=manifest.get("winner"),
            topology=(
                topology_state.get("kind")
                if isinstance(topology_state, dict)
                else None
            ),
        )

    # -- the shared frozen autoencoder ---------------------------------------

    def save_autoencoder(
        self, autoencoder: "MultimodalAutoencoder", tag: str = "autoencoder"
    ) -> str:
        """Persist the frozen multimodal autoencoder under ``tag``.

        Generator checkpoints alone cannot answer a surrogate query — the
        decoder half of the latent space lives here.  Serving loads this
        once and every generator snapshot against it.
        """
        header = {
            "version": _FORMAT_VERSION,
            "kind": "autoencoder",
            "schema": dataclasses.asdict(autoencoder.schema),
            "hidden": [int(h) for h in autoencoder.hidden],
            "latent_dim": autoencoder.latent_dim,
            "image_loss_weight": autoencoder.image_loss_weight,
        }
        arrays = {
            f"model/{k}": v for k, v in autoencoder.get_state().items()
        }
        self._publish(self._file(tag), _pack(arrays, header))
        return tag

    def load_autoencoder(self, tag: str = "autoencoder") -> "MultimodalAutoencoder":
        """Rebuild the frozen autoencoder saved under ``tag``."""
        from repro.jag.dataset import JagSchema
        from repro.models.autoencoder import MultimodalAutoencoder
        from repro.utils.rng import RngFactory

        arrays, header = _unpack(self.payload(tag))
        _check_kind(header, "autoencoder")
        autoencoder = MultimodalAutoencoder(
            RngFactory(0),  # init is immediately overwritten by set_state
            JagSchema(**header["schema"]),
            hidden=tuple(header["hidden"]),
            latent_dim=int(header["latent_dim"]),
            image_loss_weight=float(header.get("image_loss_weight", 1.0)),
        )
        autoencoder.set_state(
            {k.removeprefix("model/"): v for k, v in arrays.items()}
        )
        return autoencoder
