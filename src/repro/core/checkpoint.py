"""Checkpointing: serialize and restore trainer and population state.

Long LTFB campaigns on shared machines need to survive preemption; LBANN
checkpoints trainers independently (each trainer is a self-contained unit:
model weights, optimizer state, step counters, tournament tallies).  This
module packs exactly that into a single byte buffer per trainer — NumPy
arrays via the flat-buffer codec of :mod:`repro.utils.serialization`,
scalars via a small JSON header — so checkpoints are portable and contain
no pickled code.

Checkpoints also carry the silo reader's continuation as a *plan cursor*:
the RNG state the in-flight epoch was planned from, the next undelivered
step, and the prefetch depth.  Restoring re-plans the identical epoch and
skips the delivered batches, so a population restored into freshly built
(identical-seed) trainers replays exactly the batch sequence the
uninterrupted run would have seen — mid-LTFB resume is bit-deterministic
even mid-epoch, and regardless of prefetch depth (prefetched-but-
undelivered batches are re-materialized from the plan, never serialized).

Restoring requires an architecturally identical trainer (same config and
weight names); mismatches raise instead of silently corrupting state.

Both directions emit ``checkpoint`` telemetry events when a
:class:`~repro.telemetry.TelemetryHub` is passed (or attached to the
trainer by a running driver).
"""

from __future__ import annotations

import io
import json
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.core.trainer import Trainer

if TYPE_CHECKING:
    from repro.telemetry import TelemetryHub

__all__ = [
    "trainer_checkpoint",
    "restore_trainer",
    "population_checkpoint",
    "restore_population",
    "capture_exec_state",
    "apply_exec_state",
]

_HEADER_KEY = "__checkpoint_header__"
_FORMAT_VERSION = 1


def _flatten_optimizer(prefix: str, state: Mapping) -> tuple[dict, dict]:
    """Split optimizer state into array leaves and scalar metadata."""
    arrays: dict[str, np.ndarray] = {}
    meta = {"step_count": int(state["step_count"]), "slots": []}
    for wname, slots in state["slots"].items():
        for slot_name, value in slots.items():
            key = f"{prefix}/{wname}\x1e{slot_name}"
            arrays[key] = np.asarray(value)
            meta["slots"].append([wname, slot_name])
    return arrays, meta


def _unflatten_optimizer(prefix: str, meta: Mapping, arrays: Mapping) -> dict:
    slots: dict[str, dict[str, np.ndarray]] = {}
    for wname, slot_name in meta["slots"]:
        key = f"{prefix}/{wname}\x1e{slot_name}"
        slots.setdefault(wname, {})[slot_name] = np.array(arrays[key])
    return {"step_count": int(meta["step_count"]), "slots": slots}


def _emit(trainer: Trainer, telemetry, action: str, nbytes: int) -> None:
    hub = telemetry if telemetry is not None else trainer.telemetry
    if hub is not None:
        hub.emit("checkpoint", action=action, trainer=trainer.name, nbytes=nbytes)


def _reader_meta(trainer: Trainer) -> dict:
    """The reader continuation: epoch counter + plan cursor.

    When an epoch is in flight the cursor's pre-plan RNG state is the
    authoritative ``rng_state`` (the live generator may have been advanced
    further by a prefetch thread planning ahead — restore re-plans from
    the cursor, which lands the generator in the identical place).
    """
    cursor = trainer.data_state()
    rng_state = (
        cursor["epoch_rng_state"]
        if cursor is not None
        else trainer.reader._rng.bit_generator.state
    )
    return {
        "epochs_completed": trainer.reader.epochs_completed,
        "rng_state": rng_state,
        "plan_cursor": cursor,
        "prefetch_depth": trainer.prefetch_depth,
    }


def _apply_reader_meta(
    trainer: Trainer, meta: Mapping, restore_depth: bool
) -> None:
    trainer.reader.epochs_completed = int(meta["epochs_completed"])
    trainer.reader._rng.bit_generator.state = meta["rng_state"]
    cursor = meta.get("plan_cursor")
    if cursor is None:
        # No epoch in flight: position the reader to plan the next epoch.
        trainer.reader._epochs_planned = trainer.reader.epochs_completed
    if restore_depth and meta.get("prefetch_depth") is not None:
        trainer.set_prefetch_depth(int(meta["prefetch_depth"]))
    # Discard any live pipeline; it rebuilds lazily from the cursor.
    trainer.set_data_state(cursor)


def _train_state_arrays(trainer: Trainer) -> tuple[dict, dict, dict]:
    """Model weights plus both flattened optimizer states and their meta."""
    arrays: dict[str, np.ndarray] = {
        f"model/{k}": v for k, v in trainer.surrogate.get_full_state().items()
    }
    gen_arrays, gen_meta = _flatten_optimizer(
        "opt_gen", trainer.gen_optimizer.get_state()
    )
    disc_arrays, disc_meta = _flatten_optimizer(
        "opt_disc", trainer.disc_optimizer.get_state()
    )
    arrays.update(gen_arrays)
    arrays.update(disc_arrays)
    return arrays, gen_meta, disc_meta


def _pack(arrays: Mapping[str, np.ndarray], header: Mapping) -> bytes:
    buf = io.BytesIO()
    escaped = {k.replace("/", "\x1f"): v for k, v in arrays.items()}
    escaped[_HEADER_KEY] = np.frombuffer(
        json.dumps(dict(header)).encode("utf-8"), dtype=np.uint8
    )
    np.savez(buf, **escaped)
    return buf.getvalue()


def _unpack(payload: bytes) -> tuple[dict[str, np.ndarray], dict]:
    with np.load(io.BytesIO(payload), allow_pickle=False) as data:
        arrays = {
            k.replace("\x1f", "/"): np.array(data[k])
            for k in data.files
            if k != _HEADER_KEY
        }
        header = json.loads(bytes(data[_HEADER_KEY]).decode("utf-8"))
    if header.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {header.get('version')!r}"
        )
    return arrays, header


def _apply_train_state(trainer: Trainer, arrays: Mapping, header: Mapping) -> None:
    model_state = {
        k.removeprefix("model/"): v
        for k, v in arrays.items()
        if k.startswith("model/")
    }
    trainer.surrogate.set_full_state(model_state)
    trainer.gen_optimizer.set_state(
        _unflatten_optimizer("opt_gen", header["gen_optimizer"], arrays)
    )
    trainer.disc_optimizer.set_state(
        _unflatten_optimizer("opt_disc", header["disc_optimizer"], arrays)
    )
    trainer.steps_done = int(header["steps_done"])
    trainer.surrogate.steps_trained = int(header["surrogate_steps"])


def trainer_checkpoint(
    trainer: Trainer, telemetry: "TelemetryHub | None" = None
) -> bytes:
    """Serialize one trainer: model, both optimizers, counters, reader."""
    arrays, gen_meta, disc_meta = _train_state_arrays(trainer)
    header = {
        "version": _FORMAT_VERSION,
        "name": trainer.name,
        "steps_done": trainer.steps_done,
        "tournaments_won": trainer.tournaments_won,
        "tournaments_lost": trainer.tournaments_lost,
        "surrogate_steps": trainer.surrogate.steps_trained,
        "gen_optimizer": gen_meta,
        "disc_optimizer": disc_meta,
        # Reader continuation: epoch counter, shuffle generator state, and
        # the in-flight epoch's plan cursor + prefetch depth.  PCG64 (and
        # every numpy bit generator) exposes its state as a
        # JSON-serializable dict of ints/strings.
        "reader": _reader_meta(trainer),
    }
    payload = _pack(arrays, header)
    _emit(trainer, telemetry, "save", len(payload))
    return payload


def restore_trainer(
    trainer: Trainer, payload: bytes, telemetry: "TelemetryHub | None" = None
) -> None:
    """Load a checkpoint into an architecturally identical trainer."""
    arrays, header = _unpack(payload)
    _apply_train_state(trainer, arrays, header)
    trainer.tournaments_won = int(header["tournaments_won"])
    trainer.tournaments_lost = int(header["tournaments_lost"])
    reader_meta = header.get("reader")
    if reader_meta is not None:
        _apply_reader_meta(trainer, reader_meta, restore_depth=True)
    _emit(trainer, telemetry, "restore", len(payload))


def capture_exec_state(trainer: Trainer, include_reader: bool = True) -> bytes:
    """Snapshot the state an execution backend ships between processes.

    Same flat-buffer format as :func:`trainer_checkpoint` but scoped to
    what worker/driver replicas need to stay consistent: model weights,
    both optimizer states, and step counters.  ``include_reader=True``
    (worker -> driver direction) additionally carries the reader's epoch
    counter, RNG state, and plan cursor so the driver-side trainer can be
    checkpointed after a run exactly as a serially trained one would be —
    including mid-epoch.  The driver -> worker direction (pushing
    tournament adoptions) omits the reader so the worker's in-flight data
    pipeline is left untouched.

    Tournament tallies never travel: the driver process is authoritative
    for those.  No telemetry is emitted; this is backend plumbing, not a
    user-visible checkpoint.
    """
    arrays, gen_meta, disc_meta = _train_state_arrays(trainer)
    header = {
        "version": _FORMAT_VERSION,
        "name": trainer.name,
        "steps_done": trainer.steps_done,
        "surrogate_steps": trainer.surrogate.steps_trained,
        "gen_optimizer": gen_meta,
        "disc_optimizer": disc_meta,
    }
    if include_reader:
        header["reader"] = _reader_meta(trainer)
    return _pack(arrays, header)


def apply_exec_state(trainer: Trainer, payload: bytes) -> None:
    """Apply a :func:`capture_exec_state` snapshot to a trainer replica.

    Restores exactly what the payload carries: reader state (epoch
    counter, RNG, plan cursor) only when the snapshot included it, and
    never the tournament tallies.  The replica's own prefetch depth is
    kept — depth is an execution-placement knob, not trained state.
    """
    arrays, header = _unpack(payload)
    if header["name"] != trainer.name:
        raise ValueError(
            f"exec state for trainer {header['name']!r} applied to "
            f"{trainer.name!r}"
        )
    _apply_train_state(trainer, arrays, header)
    reader_meta = header.get("reader")
    if reader_meta is not None:
        _apply_reader_meta(trainer, reader_meta, restore_depth=False)


def population_checkpoint(
    trainers: Sequence[Trainer], telemetry: "TelemetryHub | None" = None
) -> dict[str, bytes]:
    """Checkpoint every trainer of a population, keyed by trainer name."""
    names = [t.name for t in trainers]
    if len(set(names)) != len(names):
        raise ValueError(f"trainer names must be unique, got {names}")
    return {t.name: trainer_checkpoint(t, telemetry) for t in trainers}


def restore_population(
    trainers: Sequence[Trainer],
    checkpoints: Mapping[str, bytes],
    telemetry: "TelemetryHub | None" = None,
) -> None:
    """Restore a population from :func:`population_checkpoint` output."""
    missing = {t.name for t in trainers} - set(checkpoints)
    if missing:
        raise ValueError(f"no checkpoint for trainers: {sorted(missing)}")
    for t in trainers:
        restore_trainer(t, checkpoints[t.name], telemetry)
