"""Population construction: shared autoencoder, silos, trainers.

Sequencing follows the paper: the multimodal autoencoder is trained *a
priori* (once, before the GAN phase) and defines the 20-D latent space all
trainers share; then k trainers are built over a k-way partition of the
training data, each with its own weight initialization, (optionally
jittered) hyperparameters, local tournament holdout, and local
discriminator.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.core.trainer import Trainer, TrainerConfig
from repro.datastore.partition import partition_indices
from repro.jag.dataset import JagDataset
from repro.models.autoencoder import MultimodalAutoencoder
from repro.models.cyclegan import ICFSurrogate, SurrogateConfig
from repro.tensorlib.optimizers import Adam
from repro.utils.rng import RngFactory

__all__ = ["EnsembleSpec", "pretrain_autoencoder", "build_population"]


@dataclass(frozen=True)
class EnsembleSpec:
    """How to build a k-trainer population."""

    k: int = 4
    surrogate: SurrogateConfig = dataclasses.field(default_factory=SurrogateConfig)
    trainer: TrainerConfig = dataclasses.field(default_factory=TrainerConfig)
    partition_mode: str = "contiguous"  # the paper's file-range silos
    tournament_fraction: float = 0.10  # held-out share of the training ids
    # "global": one unbiased tournament holdout shared by every trainer
    # (each trainer's data store holds a copy of the evaluation data, as
    # the paper's does).  "local": each trainer judges on a holdout from
    # its *own* silo — an ablation that cripples tournament propagation,
    # because a silo-local judge always favours the silo-local model.
    tournament_scope: str = "global"
    ae_epochs: int = 10
    ae_max_samples: int = 4096  # AE pre-training subsample cap
    # Log10 half-range of per-trainer learning-rate jitter: the paper's
    # populations differ in "weights and hyperparameters"; 0 disables.
    hyperparam_jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise ValueError("k must be positive")
        if not 0.0 < self.tournament_fraction < 0.5:
            raise ValueError("tournament_fraction must be in (0, 0.5)")
        if self.tournament_scope not in ("global", "local"):
            raise ValueError(
                f"tournament_scope must be 'global' or 'local', "
                f"got {self.tournament_scope!r}"
            )
        if self.ae_epochs <= 0 or self.ae_max_samples <= 0:
            raise ValueError("invalid autoencoder pre-training settings")
        if self.hyperparam_jitter < 0:
            raise ValueError("hyperparam_jitter must be >= 0")


def pretrain_autoencoder(
    dataset: JagDataset,
    train_ids: np.ndarray,
    rngs: RngFactory,
    spec: EnsembleSpec,
) -> MultimodalAutoencoder:
    """Train the shared multimodal autoencoder a priori.

    Uses an unbiased (strided) subsample of the training ids so the latent
    space covers the whole parameter range even though individual silos
    will not.
    """
    cfg = spec.surrogate
    ae = MultimodalAutoencoder(
        rngs.child("autoencoder"),
        cfg.schema,
        hidden=cfg.ae_hidden,
        latent_dim=cfg.latent_dim,
    )
    ids = np.asarray(train_ids)
    if ids.size > spec.ae_max_samples:
        stride = ids.size // spec.ae_max_samples
        ids = ids[::stride][: spec.ae_max_samples]
    reader = dataset.reader(ids, rngs.generator("autoencoder/reader"))
    optimizer = Adam(cfg.learning_rate)
    for _ in range(spec.ae_epochs):
        for mb in reader.epoch(min(cfg.batch_size, ids.size)):
            ae.train_step(mb.feeds, optimizer)
    return ae


def _jittered_config(
    cfg: SurrogateConfig, jitter: float, rng: np.random.Generator
) -> SurrogateConfig:
    if jitter == 0.0:
        return cfg
    factor_gen = 10.0 ** rng.uniform(-jitter, jitter)
    factor_disc = 10.0 ** rng.uniform(-jitter, jitter)
    return dataclasses.replace(
        cfg,
        learning_rate=cfg.learning_rate * factor_gen,
        disc_learning_rate=cfg.disc_learning_rate * factor_disc,
    )


def build_population(
    dataset: JagDataset,
    train_ids: np.ndarray,
    rngs: RngFactory,
    spec: EnsembleSpec,
    autoencoder: MultimodalAutoencoder,
) -> list[Trainer]:
    """Build k trainers over a k-way partition of ``train_ids``.

    With ``tournament_scope="global"`` (default), ``tournament_fraction``
    of the training ids is held out *before* partitioning (strided, so it
    spans the whole parameter space) and every trainer judges tournaments
    on a copy of it — matching the paper's data store, which holds
    evaluation data alongside the training partition.  With ``"local"``,
    each silo holds out its own tournament set instead.

    Trainers share the frozen autoencoder but have independent generator /
    discriminator initializations, hyperparameter jitter, and reader
    shuffles.
    """
    train_ids = np.asarray(train_ids)
    stride = max(2, int(round(1.0 / spec.tournament_fraction)))

    global_tournament: dict[str, np.ndarray] | None = None
    silo_source = train_ids
    if spec.tournament_scope == "global":
        tournament_ids = train_ids[::stride]
        mask = np.ones(train_ids.size, dtype=bool)
        mask[::stride] = False
        silo_source = train_ids[mask]
        global_tournament = {
            k: v[tournament_ids] for k, v in dataset.fields.items()
        }

    silos = partition_indices(
        silo_source.size,
        spec.k,
        mode=spec.partition_mode,
        rng=rngs.generator("partition"),
    )
    trainers: list[Trainer] = []
    for i, silo_pos in enumerate(silos):
        name = f"trainer{i:02d}"
        child = rngs.child(name)
        silo = silo_source[silo_pos]
        if global_tournament is not None:
            train_silo = silo
            tournament_batch = global_tournament
        else:
            local_ids = silo[::stride]
            mask = np.ones(silo.size, dtype=bool)
            mask[::stride] = False
            train_silo = silo[mask]
            tournament_batch = {
                k: v[local_ids] for k, v in dataset.fields.items()
            }
        if train_silo.size == 0:
            raise ValueError(
                f"silo {i} too small ({silo.size} samples) for the "
                f"tournament holdout"
            )
        cfg = _jittered_config(
            spec.surrogate, spec.hyperparam_jitter, child.generator("hyper")
        )
        surrogate = ICFSurrogate(child, cfg, autoencoder)
        reader = dataset.reader(train_silo, child.generator("reader"))
        trainers.append(
            Trainer(name, surrogate, reader, tournament_batch, spec.trainer)
        )
    return trainers
