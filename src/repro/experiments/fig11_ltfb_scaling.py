"""Figure 11: LTFB strong scaling of CycleGAN training to 1024 GPUs.

The paper trains on a 10M-sample set with 1, 8, 16, 32 and 64 trainers
(16 GPUs over 4 nodes each; the single-trainer baseline instead uses 16
nodes with 1 GPU per node so its data store can hold the full set), all
with preloaded data stores.  Reported: "64 trainers achieve a speedup of
70.2x over the 1 trainer baseline, and an effective 109% parallel
efficiency"; super-linear speedup is attributed to cache effects; and "at
64 trainers, the total time for all trainers to load the data has
degraded over the 32 trainer test point" due to file-system contention.
"""

from __future__ import annotations

from repro.cluster.machine import MachineSpec, lassen
from repro.core.perfmodel import LtfbPerfModel, PerfDataset
from repro.experiments.common import ExperimentReport
from repro.jag.dataset import paper_schema
from repro.models.cyclegan import SurrogateArchitecture, paper_architecture

__all__ = ["run", "PAPER_SPEEDUP_64", "PAPER_EFFICIENCY_64"]

PAPER_SPEEDUP_64 = 70.2
PAPER_EFFICIENCY_64 = 1.09


def run(
    machine: MachineSpec | None = None,
    arch: SurrogateArchitecture | None = None,
    n_samples: int = 10_000_000,
    val_samples: int = 1_000_000,
    global_batch: int = 128,
    trainer_counts: tuple[int, ...] = (1, 8, 16, 32, 64),
) -> ExperimentReport:
    """Sweep LTFB trainer counts; returns the Fig.-11 series (average
    epoch time and data-preload time per point)."""
    machine = machine or lassen()
    arch = arch or paper_architecture()
    schema = paper_schema()
    model = LtfbPerfModel(
        machine,
        arch,
        PerfDataset(n_samples, schema.sample_nbytes),
        val=PerfDataset(val_samples, schema.sample_nbytes),
        global_batch=global_batch,
    )
    report = ExperimentReport(
        experiment="Figure 11",
        description=(
            f"LTFB strong scaling on {n_samples:,} samples, preloaded data "
            "store, 16 GPUs/trainer (baseline: 16 nodes x 1 GPU)"
        ),
        columns=[
            "trainers",
            "gpus",
            "epoch_s",
            "preload_s",
            "tournament_s_per_epoch",
            "speedup",
            "efficiency_pct",
        ],
    )
    points = model.sweep(list(trainer_counts))
    for pt in points:
        report.add_row(
            trainers=pt.num_trainers,
            gpus=pt.total_gpus,
            epoch_s=pt.epoch_time,
            preload_s=pt.preload_time,
            tournament_s_per_epoch=pt.tournament_time_per_epoch,
            speedup=pt.speedup,
            efficiency_pct=100.0 * pt.parallel_efficiency,
        )
    by_k = {pt.num_trainers: pt for pt in points}
    if 64 in by_k:
        report.add_check(
            "speedup at 64 trainers (1024 GPUs)",
            PAPER_SPEEDUP_64,
            by_k[64].speedup,
            0.10,
        )
        report.add_check(
            "parallel efficiency at 64 trainers (super-linear)",
            PAPER_EFFICIENCY_64,
            by_k[64].parallel_efficiency,
            0.10,
        )
    if 32 in by_k and 64 in by_k:
        report.add_check(
            "preload degradation 64 vs 32 trainers (ratio > 1)",
            1.9,  # paper's figure shows a clear (~2x) degradation
            by_k[64].preload_time / by_k[32].preload_time,
            0.5,
            note="PFS contention from inter-trainer interference",
        )
    report.notes.append(
        "baseline uses 16 nodes x 1 rank with full node memory — the only "
        "allocation whose preloaded store fits the 10M-sample set, as in "
        "the paper"
    )
    return report
