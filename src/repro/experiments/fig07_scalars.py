"""Figure 7: ground truth vs predicted 15-D scalars on validation samples.

The paper shows 16 validation samples whose 15 predicted scalar outputs
(red) nearly cover the ground truth (blue).  We train the surrogate with
LTFB, predict the scalar block for validation samples, and quantify the
overlay quality with per-scalar R^2 and MAE (in z-scored units), plus a
compact per-sample error table for the same 16-sample view the paper
plots.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentReport,
    QualityWorkbench,
    note_health,
)
from repro.jag.postprocess import SCALAR_NAMES
from repro.tensorlib.metrics import R2Score

__all__ = ["run"]


def run(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 10,
    steps_per_round: int = 40,
    n_display_samples: int = 16,
) -> ExperimentReport:
    """Train with LTFB, then score scalar predictions on validation data."""
    driver = bench.train_ltfb(
        "fig07_08", k=k, rounds=rounds, steps_per_round=steps_per_round
    )
    best, best_loss = driver.best_trainer()

    scalars_hat, _ = best.surrogate.predict_outputs(bench.val_batch["params"])
    truth = bench.val_batch["scalars"]

    report = ExperimentReport(
        experiment="Figure 7",
        description=(
            f"ground truth vs LTFB-CycleGAN predicted 15-D scalars "
            f"(k={k}, {rounds}x{steps_per_round} steps; z-scored units)"
        ),
        columns=["scalar", "r2", "mae", "truth_std"],
    )
    overall_r2 = R2Score()
    overall_r2.update(scalars_hat, truth)
    for i, name in enumerate(SCALAR_NAMES):
        r2 = R2Score()
        r2.update(scalars_hat[:, i], truth[:, i])
        report.add_row(
            scalar=name,
            r2=r2.result(),
            mae=float(np.abs(scalars_hat[:, i] - truth[:, i]).mean()),
            truth_std=float(truth[:, i].std()),
        )

    # The paper's criterion is visual ("ground truth ... mostly covered by
    # the GAN's prediction"); we require a strong aggregate fit.
    report.add_check(
        "aggregate scalar R^2 (paper: visually overlapping)",
        0.9,
        overall_r2.result(),
        0.12,
        note="R^2 of all 15 scalars over the full validation set",
    )
    worst16 = np.abs(scalars_hat[:n_display_samples] - truth[:n_display_samples])
    report.notes.append(
        f"best trainer {best.name} val_loss={best_loss:.4f}; on the first "
        f"{n_display_samples} validation samples (the paper's view), mean "
        f"|error| = {worst16.mean():.4f}, max |error| = {worst16.max():.4f} "
        f"(z-scored units)"
    )
    note_health(report, driver.history)
    return report
