"""Ablation: what judges the LTFB tournament — loss or divergence.

The stock tournament judge is the trainer's own scalar score (validation
loss, or the discriminator's verdict for GAN trainers) — cheap, local,
and exactly what the paper runs.  The :mod:`repro.eval` judge seam makes
the criterion pluggable, so this ablation swaps in the
``divergence`` judge — each candidate generator is scored by the JS
divergence between its outputs and the JAG ground truth on the shared
tournament batch — and re-runs the *identical* campaign: same initial
population, same pairing stream, same schedule.  The two runs differ in
nothing but who wins the tournaments.

What to look for: divergence judging selects directly for the
distribution-level quality the serve gate cares about, so the winner's
probed divergence should be no worse (typically better) than under loss
judging, while validation loss stays in the same band — the loss and the
divergence disagree about *rankings* more than about *reachable
quality*.
"""

from __future__ import annotations

from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.eval import JUDGE_NAMES, QualityProbe
from repro.experiments.common import (
    ExperimentReport,
    QualityWorkbench,
    note_health,
)

__all__ = ["run"]


def run(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 8,
    steps_per_round: int = 20,
    hyperparam_jitter: float = 0.2,
) -> ExperimentReport:
    """Loss-judged vs divergence-judged tournaments on identical seeds."""
    report = ExperimentReport(
        experiment="Ablation: tournament judge",
        description=(
            "what the tournament optimizes: trainer loss vs JS divergence "
            f"from the JAG ground truth (k={k}, identical populations and "
            "pairings; divergence probed every round by repro.eval)"
        ),
        columns=[
            "judge",
            "adoption_rate",
            "best_val_loss",
            "winner_js_div",
            "best_js_div",
        ],
    )
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    results: dict[str, dict[str, float]] = {}
    for judge in JUDGE_NAMES:
        # Same tag for population and pairing: the two runs share their
        # initial weights, hyperparameters, and pairing stream, so the
        # judge is the only thing that differs.
        trainers = bench.population(
            k, tag="abl_judge", hyperparam_jitter=hyperparam_jitter
        )
        driver = LtfbDriver(
            trainers,
            bench.pairing_rng("abl_judge"),
            config,
            eval_batch=bench.val_batch,
            judge=judge,
        )
        probe = QualityProbe(capacity=256, seed=bench.seed)
        history = driver.run(
            callbacks=[probe, *bench.run_callbacks(f"abl_judge_{judge}")]
        )
        winner, _ = driver.best_trainer()
        summary = probe.summary(winner=winner.name)
        divergences = [
            row["js"] for row in summary["trainers"].values()
        ]
        results[judge] = dict(
            adoption_rate=history.adoption_rate(),
            best_val_loss=min(
                v["val_loss"] for v in history.eval_series[-1].values()
            ),
            winner_js_div=summary["winner_value"],
            best_js_div=min(divergences),
        )
        report.add_row(judge=judge, **results[judge])
        note_health(report, history)

    loss, div = results["loss"], results["divergence"]
    report.add_check(
        "divergence judging matches or beats the winner divergence of "
        "loss judging (ratio divergence/loss)",
        1.0,
        div["winner_js_div"] / loss["winner_js_div"],
        0.5,
        note="selecting on the serve-gate criterion should not hurt it",
    )
    report.add_check(
        "validation loss stays in the same band under divergence judging "
        "(ratio divergence/loss)",
        1.0,
        div["best_val_loss"] / loss["best_val_loss"],
        0.35,
        note="the judges disagree on rankings, not reachable quality",
    )
    report.notes.append(
        "loss judging is bit-identical to the pre-seam tournament path; "
        "see tests/test_eval.py determinism checks"
    )
    return report
