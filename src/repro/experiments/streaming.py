"""Streaming ingestion study: train a population from a live campaign.

Every other quality experiment stages its dataset up front (generate,
bundle, partition, read).  This study runs the data plane the way the
paper's production campaign actually ran: an ensemble campaign simulates
JAG points *concurrently with training*, finished samples stream through
a bounded :class:`~repro.ingest.IngestChannel` into a growing
:class:`~repro.ingest.SampleUniverse`, and every trainer's
:class:`~repro.ingest.StreamReader` plans each epoch against an immutable
universe snapshot.  Zero files are pre-staged — the only data trainers
ever see arrived through the channel.

The study runs the same streamed schedule twice:

- **uninterrupted** — prime the universe, pretrain the shared
  autoencoder on what has streamed in, then run R LTFB rounds, each
  beginning with an ingestion poll that grows the universe;
- **interrupted** — identical build, run R/2 rounds, checkpoint the
  population *with the ingestion cursor*
  (``save_population(..., ingest=source.state())``), tear everything
  down, rebuild from seeds, replay the ingestion history
  (:meth:`~repro.ingest.StreamingSource.replay`), restore the
  population, and run the remaining rounds.

The headline check is bit-identity: the resumed run's history (train
losses and eval series) must equal the uninterrupted run's exactly, even
though the universe grew between rounds and the checkpoint usually lands
mid-epoch.  That is the determinism contract of the snapshot-pinned data
plane (see :mod:`repro.ingest`).
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass

import numpy as np

from repro.core.checkpoint import CheckpointStore
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.core.trainer import Trainer, TrainerConfig
from repro.datastore.reader import ArrayReader
from repro.datastore.store import DistributedDataStore
from repro.exec import resolve_backend
from repro.experiments.common import (
    ExperimentReport,
    note_health,
    observability_callbacks,
)
from repro.ingest import (
    IngestChannel,
    SampleUniverse,
    StreamingCampaign,
    StreamingSource,
    StreamReader,
)
from repro.jag.dataset import JagDatasetConfig, JagSchema
from repro.models.autoencoder import MultimodalAutoencoder
from repro.models.cyclegan import ICFSurrogate, SurrogateConfig
from repro.telemetry.callbacks import Callback
from repro.tensorlib.optimizers import Adam
from repro.utils.rng import RngFactory
from repro.workflow.engine import WorkerPoolSpec

__all__ = ["run", "StreamingSpec", "build_streaming_run"]


@dataclass(frozen=True)
class StreamingSpec:
    """Geometry of one streaming study run (campaign, channel, population).

    Everything a build needs to be reproducible from ``seed`` alone — the
    interrupted run rebuilds from the same spec and must replay the
    original ingestion history exactly.
    """

    seed: int = 2019
    k: int = 4
    n_design: int = 1024
    prime_samples: int = 224
    channel_capacity: int = 64
    high_watermark: float = 0.75
    low_watermark: float = 0.25
    # One poll pumps ~3 worker waves (48 tasks / 16 workers x 60 s); a
    # 100 s freshness bound ages the oldest wave out every poll — steady,
    # deterministic eviction pressure on the channel.
    max_age_s: float = 100.0
    retention: str = "recency"
    tasks_per_poll: int = 48
    task_seconds: float = 60.0
    pool_workers: int = 16
    pool_tasks_per_job: int = 8
    calibration: int = 128
    store_ranks: int = 2
    # Per-rank store budget in samples; sized below the universe so live
    # admissions force LRU evictions (the regime under test).
    store_samples_per_rank: int = 96
    ae_epochs: int = 2
    batch_size: int = 32


class _IngestLog(Callback):
    """Collects the per-poll ``ingest`` event payloads of one run."""

    def __init__(self) -> None:
        self.polls: list[dict] = []

    def on_ingest(self, event) -> None:
        self.polls.append(dict(event.payload))


@dataclass
class _StreamingRun:
    """One fully built streamed-training setup (pre-driver)."""

    spec: StreamingSpec
    rngs: RngFactory
    campaign: StreamingCampaign
    channel: IngestChannel
    universe: SampleUniverse
    source: StreamingSource
    autoencoder: MultimodalAutoencoder
    trainers: list[Trainer]
    eval_batch: dict[str, np.ndarray]


def _surrogate_config() -> SurrogateConfig:
    """A laptop-scale surrogate over the small JAG schema."""
    return SurrogateConfig(
        schema=JagSchema(image_size=8, views=2, channels=2),
        ae_hidden=(48, 32),
        forward_hidden=(24, 24),
        inverse_hidden=(24, 24),
        disc_hidden=(16, 8),
        batch_size=32,
    )


def build_streaming_run(spec: StreamingSpec) -> _StreamingRun:
    """Build a streamed-training setup from seeds, with no staged files.

    Deterministic end to end: campaign schedule, channel policy, priming
    polls, autoencoder pretraining, and population construction are all
    pure functions of ``spec`` — which is what lets the interrupted run
    rebuild and replay the uninterrupted run's ingestion history.
    """
    rngs = RngFactory(spec.seed)
    surrogate_cfg = _surrogate_config()
    campaign = StreamingCampaign(
        JagDatasetConfig(
            n_samples=spec.n_design,
            schema=surrogate_cfg.schema,
            seed=spec.seed,
        ),
        pool=WorkerPoolSpec(
            num_workers=spec.pool_workers,
            tasks_per_job=spec.pool_tasks_per_job,
        ),
        task_seconds=spec.task_seconds,
        calibration=spec.calibration,
    )
    channel = IngestChannel(
        spec.channel_capacity,
        retention=spec.retention,
        high_watermark=spec.high_watermark,
        low_watermark=spec.low_watermark,
        max_age_s=spec.max_age_s,
        seed=spec.seed,
    )
    universe = SampleUniverse()
    source = StreamingSource(
        campaign, channel, universe, tasks_per_poll=spec.tasks_per_poll
    )
    source.prime(spec.prime_samples)

    # The shared autoencoder pretrains on exactly what has streamed in so
    # far (the primed snapshot) — there is no staged dataset to read.
    fields = universe.stack_fields()
    n = next(iter(fields.values())).shape[0]
    autoencoder = MultimodalAutoencoder(
        rngs.child("autoencoder"),
        surrogate_cfg.schema,
        hidden=surrogate_cfg.ae_hidden,
        latent_dim=surrogate_cfg.latent_dim,
    )
    ae_reader = ArrayReader(
        fields, np.arange(n), rngs.generator("autoencoder/reader")
    )
    ae_optimizer = Adam(surrogate_cfg.learning_rate)
    for _ in range(spec.ae_epochs):
        for mb in ae_reader.epoch(min(spec.batch_size, n)):
            autoencoder.train_step(mb.feeds, ae_optimizer)

    # Per-sample footprint sizes the evicting stores: each holds a slice
    # of the universe, so streamed growth keeps displacing LRU residents.
    sample_nbytes = sum(
        np.asarray(v).nbytes
        for v in universe.fields_of(int(universe.snapshot_ids(1)[0])).values()
    )
    bytes_per_rank = sample_nbytes * spec.store_samples_per_rank

    eval_batch = campaign.calibration_fields()
    trainer_cfg = TrainerConfig(batch_size=spec.batch_size)
    trainers: list[Trainer] = []
    for i in range(spec.k):
        name = f"trainer{i:02d}"
        child = rngs.child(name)
        store = DistributedDataStore(
            num_ranks=spec.store_ranks,
            bytes_per_rank=bytes_per_rank,
            evicting=True,
        )
        universe.warm(store)
        reader = StreamReader(universe, child.generator("reader"), store=store)
        surrogate = ICFSurrogate(child, surrogate_cfg, autoencoder)
        trainers.append(
            Trainer(name, surrogate, reader, eval_batch, trainer_cfg)
        )
    return _StreamingRun(
        spec=spec,
        rngs=rngs,
        campaign=campaign,
        channel=channel,
        universe=universe,
        source=source,
        autoencoder=autoencoder,
        trainers=trainers,
        eval_batch=eval_batch,
    )


def _driver(
    setup: _StreamingRun,
    rounds: int,
    steps_per_round: int,
    backend: str,
    workers: int | None,
    prefetch_depth: int | None,
    history=None,
) -> LtfbDriver:
    return LtfbDriver(
        setup.trainers,
        setup.rngs.generator("pairing"),
        LtfbConfig(steps_per_round=steps_per_round, rounds=rounds),
        eval_batch=setup.eval_batch,
        history=history,
        backend=resolve_backend(
            backend, max_workers=workers, prefetch_depth=prefetch_depth
        ),
        source=setup.source,
    )


def _history_delta(a, b) -> float:
    """Largest absolute difference between two histories' numeric series
    (0.0 means bit-identical losses and eval curves)."""
    if len(a.train_losses) != len(b.train_losses) or len(a.eval_series) != len(
        b.eval_series
    ):
        return float("inf")
    worst = 0.0
    for series_a, series_b in (
        (a.train_losses, b.train_losses),
        (a.eval_series, b.eval_series),
    ):
        for row_a, row_b in zip(series_a, series_b):
            if set(row_a) != set(row_b):
                return float("inf")
            for name in row_a:
                if set(row_a[name]) != set(row_b[name]):
                    return float("inf")
                for metric in row_a[name]:
                    worst = max(
                        worst, abs(row_a[name][metric] - row_b[name][metric])
                    )
    return worst


def run(
    seed: int = 2019,
    k: int = 4,
    rounds: int = 8,
    steps_per_round: int = 6,
    n_design: int = 1024,
    backend: str = "serial",
    workers: int | None = None,
    prefetch_depth: int | None = None,
    trace_out=None,
    metrics=None,
    trace_files=None,
    live: bool = False,
    flight_recorder=None,
) -> ExperimentReport:
    """The streaming-ingestion study: live universe + mid-run resume.

    Trains one population entirely from a concurrently running campaign
    (uninterrupted), then proves the interrupted path: checkpoint at
    round ``rounds // 2`` with the ingestion cursor, rebuild everything
    from seeds, replay ingestion, restore, finish — and require the two
    histories to be bit-identical.
    """
    if rounds < 2:
        raise ValueError("the study needs at least 2 rounds to interrupt")
    spec = StreamingSpec(
        seed=seed,
        k=k,
        n_design=n_design,
        # Leave most of the design unsimulated at build time: the point
        # is training against a universe that keeps growing.
        prime_samples=min(224, n_design // 4),
    )
    observability = dict(
        trace_out=trace_out,
        metrics=metrics,
        monitor_health=True,
        trace_files=trace_files,
        live=live,
        flight_recorder=flight_recorder,
    )

    # -- run A: uninterrupted ------------------------------------------------
    setup_a = build_streaming_run(spec)
    prime_polls = setup_a.source.polls
    size_at_build = setup_a.universe.size
    ingest_log = _IngestLog()
    driver_a = _driver(
        setup_a, rounds, steps_per_round, backend, workers, prefetch_depth
    )
    history_a = driver_a.run(
        callbacks=[
            ingest_log,
            *observability_callbacks("streaming/full", **observability),
        ]
    )

    # -- run B: interrupted at rounds // 2, checkpointed, resumed ------------
    half = rounds // 2
    setup_b = build_streaming_run(spec)
    driver_b = _driver(
        setup_b, half, steps_per_round, backend, workers, prefetch_depth
    )
    history_b = driver_b.run(
        callbacks=observability_callbacks("streaming/first-half", **observability)
    )
    mid_epoch = [
        t.name for t in setup_b.trainers if t.data_state() is not None
    ]
    with tempfile.TemporaryDirectory(prefix="repro-streaming-") as ckpt_dir:
        store = CheckpointStore(ckpt_dir)
        tag = store.save_population(
            setup_b.trainers,
            "streaming-mid",
            topology=driver_b.topology,
            ingest=setup_b.source.state(),
        )
        # Teardown is implicit: the resumed half starts from nothing but
        # the checkpoint directory, the seeds, and the recorded History.
        setup_c = build_streaming_run(spec)
        setup_c.source.replay(store.ingest_state(tag))
        for t in setup_c.trainers:
            # Replay polls are trainer-less; bring the evicting stores
            # back up to the retained universe (store state never affects
            # History bits — fallbacks return identical arrays).
            setup_c.universe.warm(t.reader.store)
        driver_c = _driver(
            setup_c, rounds, steps_per_round, backend, workers,
            prefetch_depth, history=history_b,
        )
        store.load_population(tag, setup_c.trainers, topology=driver_c.topology)
        history_c = driver_c.run(
            callbacks=observability_callbacks(
                "streaming/resumed", **observability
            )
        )

    # -- report ---------------------------------------------------------------
    report = ExperimentReport(
        experiment="Streaming ingestion",
        description=(
            f"population of {k} trained from a live campaign "
            f"(design={n_design}, {rounds} rounds x {steps_per_round} "
            f"steps, batch {spec.batch_size}, zero pre-staged files); "
            f"resume interrupted at round {half}"
        ),
        columns=[
            "round",
            "universe_size",
            "admitted",
            "evicted",
            "store_evictions",
            "channel_depth",
            "best_val",
        ],
    )
    by_round = {p.get("round"): p for p in ingest_log.polls}
    best_val = history_a.best_val_series()
    for r in range(rounds):
        poll = by_round.get(r, {})
        report.add_row(
            round=r,
            universe_size=poll.get("universe_size", size_at_build),
            admitted=poll.get("admitted", 0),
            evicted=poll.get("evicted", 0),
            store_evictions=poll.get("store_evictions", 0),
            channel_depth=poll.get("depth", 0),
            best_val=best_val[r],
        )

    delta = _history_delta(history_a, history_c)
    report.add_check(
        "resumed history bit-identical to uninterrupted (max |delta|)",
        0.0,
        delta,
        0.0,
        note="checkpoint carries snapshot version + ingestion cursor",
    )
    report.add_check(
        "pairing schedules identical across interrupt",
        1.0,
        float(history_a.pairings == history_c.pairings),
        0.0,
    )
    report.add_check(
        "both runs completed all rounds",
        float(2 * rounds),
        float(history_a.rounds_completed + history_c.rounds_completed),
        0.0,
    )
    grew = setup_a.universe.size > size_at_build
    report.add_check(
        "universe grew during training",
        1.0,
        float(grew),
        0.0,
        note=f"{size_at_build} -> {setup_a.universe.size} samples "
        f"(version {setup_a.universe.version})",
    )
    total_evicted = setup_a.channel.stats.evicted + sum(
        p.get("store_evictions", 0) for p in ingest_log.polls
    )
    report.add_check(
        "eviction pressure observed (channel stale + store LRU)",
        1.0,
        float(total_evicted > 0),
        0.0,
        note=f"channel evicted {setup_a.channel.stats.evicted}, "
        f"store evictions {sum(p.get('store_evictions', 0) for p in ingest_log.polls)}",
    )
    report.notes.append(
        f"ingestion: {prime_polls} priming polls + {rounds} round polls; "
        f"channel cursor {setup_a.channel.cursor}, "
        f"producer lag {setup_a.channel.producer_lag}, "
        f"campaign produced {setup_a.campaign.produced}/{n_design}"
    )
    report.notes.append(
        "checkpoint caught an in-flight epoch plan on: "
        + (", ".join(mid_epoch) if mid_epoch else "none (round landed on "
           "an epoch boundary)")
    )
    for history in (history_a, history_c):
        note_health(report, history)
    return report
