"""Command-line runner for the experiment harnesses.

Usage::

    python -m repro.experiments fig09 fig10 fig11        # performance figures
    python -m repro.experiments --all-perf               # all three
    python -m repro.experiments fig07 fig12 --quick      # quality figures
    python -m repro.experiments fig12 --backend process  # parallel training
    python -m repro.experiments backends                 # backend scaling
    python -m repro.experiments topology --quick         # topology study
    python -m repro.experiments trace-report trace.jsonl # summarize telemetry
    python -m repro.experiments trace-export trace.jsonl # Chrome/Perfetto JSON
    python -m repro.experiments fig12 --quick \\
        --trace-out traces/fig12.jsonl --metrics-out metrics.prom

Performance figures run in seconds (analytic models).  Quality figures
train real networks: the default scale takes minutes per figure; pass
``--quick`` for a structural smoke run.  ``--backend`` selects the
:mod:`repro.exec` execution backend the quality runs train under
(results are bit-identical across backends; only wall clock changes),
``--workers`` caps its worker count, and ``--prefetch-depth`` sets the
data-pipeline depth (0 = synchronous; any depth is bit-identical, only
fetch stall changes).  ``backends`` is the backend-scaling report itself,
run at depth 0 and the requested depth.  ``trace-report`` summarizes a
JSONL telemetry trace written by :class:`repro.telemetry.JsonlTraceWriter`
— per-phase wall-clock, adoption rate, exchange bytes, datastore fetch
locality, data-pipeline stall vs. overlap, per-worker train time, and
latency percentiles.  ``trace-export`` converts such a trace into Chrome
``trace_event`` JSON loadable in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``.

``--trace-out BASE.jsonl`` gives every training run a span-enabled JSONL
trace (run tag folded into the filename); ``--metrics-out PATH`` writes
the session's accumulated metrics registry (Prometheus text for ``.prom``
/``.txt``, JSON otherwise).  Both apply uniformly to the quality figures
and the ``backends`` report.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.experiments import (
    ablation_judge,
    backend_scaling,
    fig07_scalars,
    fig08_images,
    fig09_data_parallel,
    fig10_datastore,
    fig11_ltfb_scaling,
    fig12_quality,
    fig13_ltfb_vs_kindependent,
    streaming,
    topology_study,
)

PERF_FIGURES = {
    "fig09": lambda args: fig09_data_parallel.run(),
    "fig10": lambda args: fig10_datastore.run(),
    "fig11": lambda args: fig11_ltfb_scaling.run(),
}


def _quality_bench(args):
    from repro.experiments.common import QualityWorkbench

    if getattr(args, "_bench", None) is None:
        n = 1024 if args.quick else 12_288
        args._bench = QualityWorkbench(
            seed=args.seed,
            n_samples=n,
            backend=args.backend,
            workers=args.workers,
            prefetch_depth=args.prefetch_depth,
            trace_out=args.trace_out,
            metrics=args._metrics,
            trace_files=args._trace_files,
            checkpoint_dir=args.checkpoint_dir,
            live=args.live,
            flight_recorder=args.flight_recorder,
        )
    return args._bench


def _backend_scaling(args):
    depth = 2 if args.prefetch_depth is None else args.prefetch_depth
    observability = dict(
        trace_out=args.trace_out,
        metrics=args._metrics,
        trace_files=args._trace_files,
        live=args.live,
        flight_recorder=args.flight_recorder,
    )
    if args.quick:
        return backend_scaling.run(
            k=4, rounds=2, steps_per_round=4, workers=args.workers or 2,
            n_samples=768, seed=args.seed, prefetch_depth=depth,
            **observability,
        )
    return backend_scaling.run(
        workers=args.workers or 4, seed=args.seed, prefetch_depth=depth,
        **observability,
    )


def _quality_schedule(args) -> dict:
    if args.quick:
        return dict(rounds=3, steps_per_round=5)
    return dict(rounds=30, steps_per_round=10)


QUALITY_FIGURES = {
    "fig07": lambda args: fig07_scalars.run(
        _quality_bench(args), k=4, **_quality_schedule(args)
    ),
    "fig08": lambda args: fig08_images.run(
        _quality_bench(args), k=4, **_quality_schedule(args)
    ),
    "fig12": lambda args: fig12_quality.run(
        _quality_bench(args),
        trainer_counts=(1, 2, 4) if args.quick else (1, 2, 4, 8),
        **_quality_schedule(args),
    ),
    "fig13": lambda args: fig13_ltfb_vs_kindependent.run(
        _quality_bench(args),
        trainer_counts=(2,) if args.quick else (2, 4, 8),
        **_quality_schedule(args),
    ),
    "ablation-judge": lambda args: ablation_judge.run(
        _quality_bench(args),
        k=3 if args.quick else 4,
        **_quality_schedule(args),
    ),
    "backends": _backend_scaling,
    "topology": lambda args: topology_study.run(
        _quality_bench(args),
        k=3 if args.quick else 4,
        **_quality_schedule(args),
    ),
    # Streams its own universe from a live campaign — no QualityWorkbench
    # (that would pre-stage the dataset this study must do without).
    "streaming": lambda args: streaming.run(
        seed=args.seed,
        k=2 if args.quick else 4,
        rounds=4 if args.quick else 8,
        steps_per_round=3 if args.quick else 6,
        n_design=512 if args.quick else 1024,
        backend=args.backend,
        workers=args.workers,
        prefetch_depth=args.prefetch_depth,
        trace_out=args.trace_out,
        metrics=args._metrics,
        trace_files=args._trace_files,
        live=args.live,
        flight_recorder=args.flight_recorder,
    ),
}

ALL_FIGURES = {**PERF_FIGURES, **QUALITY_FIGURES}


def _trace_report(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace-report",
        description="Summarize a JSONL telemetry trace.",
    )
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="text: human-readable report (default); json: the full "
        "machine-readable summary (phases, counters, percentiles, "
        "resources, health) for the bench harness and CI",
    )
    args = parser.parse_args(argv)
    from repro.telemetry.report import render_trace_report, trace_summary

    try:
        if args.format == "json":
            print(json.dumps(trace_summary(args.trace), indent=2, sort_keys=True))
        else:
            print(render_trace_report(args.trace))
    except (OSError, ValueError) as exc:
        print(f"trace-report: {exc}", file=sys.stderr)
        return 1
    return 0


def _trace_export(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trace-export",
        description=(
            "Convert a JSONL telemetry trace into Chrome trace_event "
            "JSON, loadable in Perfetto (https://ui.perfetto.dev) or "
            "chrome://tracing.  The trace must contain span records "
            "(JsonlTraceWriter(spans=True) or --trace-out)."
        ),
    )
    parser.add_argument("trace", help="path to a trace.jsonl file")
    parser.add_argument(
        "-o",
        "--out",
        default=None,
        help="output path (default: the trace path with a .json suffix)",
    )
    args = parser.parse_args(argv)
    from pathlib import Path

    from repro.telemetry.export import export_chrome_trace

    out = args.out or str(Path(args.trace).with_suffix(".json"))
    try:
        doc = export_chrome_trace(args.trace, out)
    except (OSError, ValueError) as exc:
        print(f"trace-export: {exc}", file=sys.stderr)
        return 1
    print(f"trace-export: wrote {len(doc['traceEvents'])} events to {out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "trace-report":
        return _trace_report(argv[1:])
    if argv and argv[0] == "trace-export":
        return _trace_export(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments", description=__doc__
    )
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*ALL_FIGURES, []],
        help=f"figures to run: {', '.join(ALL_FIGURES)}",
    )
    parser.add_argument(
        "--all-perf", action="store_true", help="run fig09, fig10 and fig11"
    )
    from repro.experiments.common import add_runtime_options

    add_runtime_options(parser)
    args = parser.parse_args(argv)
    args._bench = None
    args._trace_files = []
    args._metrics = None
    if args.metrics_out is not None or args.trace_out is not None:
        from repro.telemetry import MetricsCollector

        args._metrics = MetricsCollector()

    names = list(args.figures)
    if args.all_perf:
        names.extend(n for n in PERF_FIGURES if n not in names)
    if not names:
        parser.error("no figures requested (try: fig09 fig10 fig11 or --all-perf)")

    failed = []
    for name in names:
        report = ALL_FIGURES[name](args)
        print(report.render())
        print()
        if not report.all_checks_pass:
            failed.append(name)
    for path in args._trace_files:
        print(f"trace written: {path}")
    if args.metrics_out is not None:
        from repro.telemetry import write_metrics

        write_metrics(args._metrics.registry, args.metrics_out)
        print(f"metrics written: {args.metrics_out}")
    if failed:
        print(f"figures with diverging shape checks: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
