"""Topology study: convergence under the pluggable population topologies.

The paper's LTFB uses random pairwise tournaments; the topology refactor
makes the pairing structure a strategy (:mod:`repro.core.topology`), so
the natural follow-on question is Fig.-13-style: *does the exchange
structure matter at equal budget?*  This study trains identical
populations (same initial weights, same silos, same round schedule)
under each topology and reports the population-best global validation
loss per round:

- ``isolated`` — no exchange at all: the K-independent lower bar;
- ``random_pairwise`` — the paper's LTFB tournament;
- ``cellular_grid`` — nearest-neighbour exchange on a wraparound grid
  (slower mixing, more diversity retained);
- ``multi_discriminator`` — MD-GAN-style consensus adoption with
  discriminator rotation among data shards;
- ``async_pairwise`` — barrier-free completion-order pairing (on the
  serial backend this is a deterministic reordering of LTFB's work, so
  any quality difference is pure pairing-structure effect).

Every run's :class:`~repro.telemetry.HealthMonitor` verdict is folded
into the report, so a topology that collapses the population (one model
sweeping every tournament or grid cell) is visible next to its loss
curve.
"""

from __future__ import annotations

from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.experiments.common import (
    ExperimentReport,
    QualityWorkbench,
    note_health,
)

__all__ = ["run", "STUDY_TOPOLOGIES"]

#: Topologies the study compares, in report-column order.
STUDY_TOPOLOGIES = (
    "isolated",
    "random_pairwise",
    "cellular_grid",
    "multi_discriminator",
    "async_pairwise",
)


def run(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 10,
    steps_per_round: int = 10,
    topologies: tuple[str, ...] = STUDY_TOPOLOGIES,
    hyperparam_jitter: float = 0.0,
) -> ExperimentReport:
    """Train the same population under each topology, compare convergence.

    Every run rebuilds the population from the same tag, so initial
    weights, silo assignments, and training streams are identical across
    topologies — the only varying factor is who exchanges with whom.
    ``hyperparam_jitter`` defaults to 0 for the same reason as the
    Fig.-13 study: jitter hands best-of-k selection a larger share of
    the variance, diluting the structural effect under test.
    """
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    series: dict[str, list[float]] = {}
    histories: dict[str, object] = {}
    for topology in topologies:
        driver = LtfbDriver(
            bench.population(
                k, tag="topology_study", hyperparam_jitter=hyperparam_jitter
            ),
            bench.pairing_rng(f"topology_study/{topology}"),
            config,
            eval_batch=bench.val_batch,
            topology=topology,
        )
        history = driver.run(
            callbacks=bench.run_callbacks(f"topology_study/{topology}")
        )
        series[topology] = history.best_val_series()
        histories[topology] = history

    report = ExperimentReport(
        experiment="Topology study",
        description=(
            "population-best validation loss per round under each "
            f"population topology (k={k}, {steps_per_round} steps/round, "
            f"{rounds} rounds, identical initial populations)"
        ),
        columns=["per_trainer_steps", *topologies],
    )
    for r in range(rounds):
        row: dict[str, object] = {
            "per_trainer_steps": (r + 1) * steps_per_round
        }
        for topology in topologies:
            row[topology] = series[topology][r]
        report.add_row(**row)

    finals = {t: series[t][-1] for t in topologies}
    if "isolated" in finals:
        for topology in topologies:
            if topology == "isolated":
                continue
            report.add_check(
                f"{topology} vs isolated (final loss ratio; exchange "
                f"helps: >1)",
                1.1,
                finals["isolated"] / finals[topology],
                0.9,
                note="Fig.-13 analogue: any exchange structure should "
                "beat no exchange; seed-noise-dominated at laptop scale",
            )
    for topology in topologies:
        report.add_check(
            f"{topology} run completed all rounds",
            float(rounds),
            float(histories[topology].rounds_completed),
            0.0,
        )
    report.notes.append(
        "final population-best val loss: "
        + ", ".join(f"{t}: {finals[t]:.4f}" for t in topologies)
    )
    for topology in topologies:
        pairings = histories[topology].pairings
        byes = histories[topology].byes
        report.notes.append(
            f"{topology}: {sum(len(p) for p in pairings)} pairings, "
            f"{sum(len(b) for b in byes)} byes over {rounds} rounds"
        )
    for history in histories.values():
        note_health(report, history)
    return report
