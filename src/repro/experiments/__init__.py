"""Experiment harnesses — one module per paper figure.

Each module exposes a ``run(...)`` function returning an
:class:`~repro.experiments.common.ExperimentReport` (rows + headline
comparisons against the paper's reported numbers) and is driven by the
corresponding benchmark under ``benchmarks/``.

- :mod:`repro.experiments.fig07_scalars` — predicted vs ground-truth 15-D
  scalars on validation samples (quality).
- :mod:`repro.experiments.fig08_images` — predicted vs ground-truth
  capsule images per view/channel (quality).
- :mod:`repro.experiments.fig09_data_parallel` — single-trainer
  data-parallel strong scaling, 1-16 GPUs (performance model).
- :mod:`repro.experiments.fig10_datastore` — ingestion modes x GPU count,
  initial vs steady epochs (performance model).
- :mod:`repro.experiments.fig11_ltfb_scaling` — LTFB strong scaling to
  1024 GPUs with preload times (performance model).
- :mod:`repro.experiments.fig12_quality` — validation-loss improvement
  over the single-trainer baseline vs per-trainer iterations (real
  training).
- :mod:`repro.experiments.fig13_ltfb_vs_kindependent` — LTFB vs
  partitioned K-independent training (real training).
- :mod:`repro.experiments.ablations` — mechanism ablations (tournament
  scope, adoption policy, exchange scope, interconnect, dataset order).
- :mod:`repro.experiments.backend_scaling` — one LTFB schedule under each
  :mod:`repro.exec` execution backend: determinism + wall-clock speedup
  (real training).
- :mod:`repro.experiments.streaming` — train from a live ensemble
  campaign through the streaming ingestion plane (zero pre-staged
  files), with a mid-run checkpoint/replay/resume bit-identity proof
  (real training).

Run the performance figures from the command line::

    python -m repro.experiments fig09 fig10 fig11
"""

from repro.experiments.common import ExperimentReport, Row

__all__ = ["ExperimentReport", "Row"]
