"""Ablations of the design choices DESIGN.md calls out.

Each ablation isolates one mechanism of the reproduction and shows what
breaks without it:

- **tournament scope** — judging on a shared, unbiased tournament set vs
  each trainer's own silo holdout.  A silo-local judge almost always
  prefers the silo-local model, so adoption collapses and LTFB degenerates
  into K-independent training.
- **adoption policy** — what happens to the generator's Adam state when a
  foreign generator is adopted.  With frequent tournaments, stale moments
  ("keep") or cold restarts ("reset") tax every post-adoption step;
  shipping the winner's optimizer state with its weights ("exchange",
  PBT-style) removes the tax.
- **exchange scope** — the paper's GAN-specific choice: exchanging
  generators only (discriminators stay local) vs classic full-model
  exchange, at 2x the communication.
- **interconnect** — how Fig. 9's strong-scaling headline responds to the
  fabric: rescaling NVLink/InfiniBand bandwidths around the Lassen
  calibration.
- **dataset ordering** — campaign enumeration order ("design":
  low-discrepancy, near-IID silos vs "sweep": drive-banded, strongly
  non-IID silos) and its effect on the LTFB vs K-independent gap.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.machine import lassen
from repro.comm.costmodel import LinkParams
from repro.core.kindependent import KIndependentDriver
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.experiments import fig09_data_parallel
from repro.experiments.common import ExperimentReport, QualityWorkbench

__all__ = [
    "tournament_scope_ablation",
    "adoption_policy_ablation",
    "exchange_scope_ablation",
    "interconnect_ablation",
    "dataset_ordering_ablation",
]


def _run_ltfb(bench, trainers, tag, config):
    driver = LtfbDriver(
        trainers, bench.pairing_rng(tag), config, eval_batch=bench.val_batch
    )
    history = driver.run()
    return driver, history


def tournament_scope_ablation(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 8,
    steps_per_round: int = 20,
) -> ExperimentReport:
    """Global vs silo-local tournament sets."""
    report = ExperimentReport(
        experiment="Ablation: tournament scope",
        description=(
            "who judges the tournament: a shared unbiased holdout vs each "
            f"trainer's own silo holdout (k={k})"
        ),
        columns=["scope", "adoption_rate", "best_val_loss"],
    )
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    results = {}
    for scope in ("global", "local"):
        trainers = bench.population(
            k, tag=f"abl_scope_{scope}", tournament_scope=scope
        )
        driver, history = _run_ltfb(bench, trainers, f"abl_scope_{scope}", config)
        best = min(
            v["val_loss"] for v in history.eval_series[-1].values()
        )
        results[scope] = history.adoption_rate()
        report.add_row(
            scope=scope,
            adoption_rate=history.adoption_rate(),
            best_val_loss=best,
        )
    report.add_check(
        "local judging collapses adoption (rate ratio local/global)",
        0.15,
        (results["local"] + 1e-9) / (results["global"] + 1e-9),
        1.0,
        note="a silo-local judge prefers the silo-local model",
    )
    return report


def adoption_policy_ablation(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 12,
    steps_per_round: int = 10,
) -> ExperimentReport:
    """Optimizer handling on adoption: exchange vs keep vs reset."""
    report = ExperimentReport(
        experiment="Ablation: adoption policy",
        description=(
            "generator Adam state when adopting a tournament winner "
            f"(k={k}, frequent tournaments: {steps_per_round} steps/round)"
        ),
        columns=["policy", "best_val_loss", "adoption_rate"],
    )
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    for policy in ("exchange", "keep", "reset"):
        trainer_cfg = dataclasses.replace(
            bench.base_spec.trainer, adopt_optimizer=policy
        )
        spec_overrides = dict(trainer=trainer_cfg, hyperparam_jitter=0.25)
        trainers = bench.population(k, tag=f"abl_adopt_{policy}", **spec_overrides)
        driver, history = _run_ltfb(bench, trainers, f"abl_adopt_{policy}", config)
        best = min(v["val_loss"] for v in history.eval_series[-1].values())
        report.add_row(
            policy=policy,
            best_val_loss=best,
            adoption_rate=history.adoption_rate(),
        )
    return report


def exchange_scope_ablation(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 8,
    steps_per_round: int = 20,
) -> ExperimentReport:
    """Generator-only exchange (the paper) vs full-model exchange."""
    report = ExperimentReport(
        experiment="Ablation: exchange scope",
        description=(
            "what travels in a tournament: generators only (local "
            f"discriminators, the paper's choice) vs the full model (k={k})"
        ),
        columns=["exchange", "best_val_loss", "exchanged_bytes"],
    )
    for scope in ("generator", "full"):
        config = LtfbConfig(
            steps_per_round=steps_per_round, rounds=rounds, exchange=scope
        )
        trainers = bench.population(
            k, tag=f"abl_xchg_{scope}", hyperparam_jitter=0.25
        )
        driver, history = _run_ltfb(bench, trainers, f"abl_xchg_{scope}", config)
        best = min(v["val_loss"] for v in history.eval_series[-1].values())
        report.add_row(
            exchange=scope,
            best_val_loss=best,
            exchanged_bytes=history.exchange_bytes,
        )
    gen_bytes = report.rows[0]["exchanged_bytes"]
    full_bytes = report.rows[1]["exchanged_bytes"]
    report.add_check(
        "generator-only exchange communicates less (bytes ratio)",
        0.9,
        gen_bytes / full_bytes,
        0.25,
        note="paper: exchanging only generators 'reduces the inter-trainer "
        "communication volume'",
    )
    return report


def interconnect_ablation(
    bandwidth_factors: tuple[float, ...] = (0.25, 0.5, 1.0, 2.0, 4.0),
) -> ExperimentReport:
    """Fig.-9 speedup at 16 GPUs as the fabric speeds up or slows down."""
    report = ExperimentReport(
        experiment="Ablation: interconnect bandwidth",
        description=(
            "data-parallel speedup at 16 GPUs when NVLink and InfiniBand "
            "bandwidths are rescaled around the Lassen calibration"
        ),
        columns=["bandwidth_factor", "speedup_16gpu", "efficiency_pct"],
    )
    base = lassen()
    for factor in bandwidth_factors:
        node = dataclasses.replace(
            base.node,
            intra_node=LinkParams(
                base.node.intra_node.latency,
                base.node.intra_node.bandwidth * factor,
            ),
            inter_node=LinkParams(
                base.node.inter_node.latency,
                base.node.inter_node.bandwidth * factor,
            ),
        )
        machine = base.with_(node=node)
        fig9 = fig09_data_parallel.run(machine=machine, gpu_counts=(1, 16))
        speedup = fig9.rows[-1]["speedup"]
        report.add_row(
            bandwidth_factor=factor,
            speedup_16gpu=speedup,
            efficiency_pct=100.0 * speedup / 16.0,
        )
    speeds = report.column("speedup_16gpu")
    report.add_check(
        "faster fabric helps strong scaling (4x BW vs 0.25x BW)",
        1.2,
        speeds[-1] / speeds[0],
        0.5,
    )
    return report


def dataset_ordering_ablation(
    design_bench: QualityWorkbench,
    sweep_bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 8,
    steps_per_round: int = 20,
) -> ExperimentReport:
    """Campaign ordering vs the LTFB-over-K-independent advantage.

    Both orderings are run with identical schedules; the K-independent
    handicap differs in *mechanism* (silo overfitting for near-IID
    "design" silos; distribution bias for "sweep" silos) but LTFB's
    exchange compensates in both.
    """
    report = ExperimentReport(
        experiment="Ablation: dataset ordering",
        description=(
            "campaign enumeration order vs the Fig.-13 gap "
            f"(k={k}, {rounds}x{steps_per_round} steps)"
        ),
        columns=["order", "ltfb_best", "kind_best", "gap"],
    )
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    for order, bench in (("design", design_bench), ("sweep", sweep_bench)):
        ltfb_trainers = bench.population(
            k, tag=f"abl_ord_ltfb_{order}", hyperparam_jitter=0.25
        )
        _, history = _run_ltfb(bench, ltfb_trainers, f"abl_ord_{order}", config)
        ltfb_best = min(v["val_loss"] for v in history.eval_series[-1].values())
        kind = KIndependentDriver(
            bench.population(k, tag=f"abl_ord_kind_{order}", hyperparam_jitter=0.25),
            config,
            eval_batch=bench.val_batch,
        )
        kind_history = kind.run()
        kind_best = min(
            v["val_loss"] for v in kind_history.eval_series[-1].values()
        )
        report.add_row(
            order=order,
            ltfb_best=ltfb_best,
            kind_best=kind_best,
            gap=kind_best / ltfb_best,
        )
    return report
