"""Figure 12: model quality vs per-trainer iterations, per trainer count.

The paper plots "improvement in quality (validation loss) over
single-trainer baseline at different iterations (steps) per-trainer
count" and concludes that "LTFB at bigger trainer sizes shows improved
learning quality and time to solution if measured by per-trainer number
of iterations" — i.e. at equal per-trainer step counts, larger
populations reach equal or better validation loss, so wall-clock time to
a given quality *improves* with trainer count.

We run real LTFB training at several population sizes on the same
partitioned dataset and report, per round, the population-best global
validation loss and its improvement ratio over the k=1 baseline at the
same per-trainer iteration count — plus the population-best JS
divergence between each generator's output distribution and the JAG
ground truth, measured every round by the shared
:mod:`repro.eval` streaming estimators (a
:class:`~repro.eval.QualityProbe` riding each run).  Validation loss and
divergence are deliberately different lenses: the loss is what the
tournament optimizes, the divergence is the distribution-level quality
the loss cannot certify.
"""

from __future__ import annotations

import math

from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.eval import QualityProbe
from repro.experiments.common import (
    ExperimentReport,
    QualityWorkbench,
    note_health,
)

__all__ = ["run"]


def _best_divergence_series(
    probe: QualityProbe, rounds: int, metric: str = "js"
) -> list[float]:
    """Population-best (lowest) probed divergence per round."""
    best = [math.inf] * rounds
    for points in probe.trajectory.values():
        for round_index, metrics in points:
            if 0 <= round_index < rounds:
                best[round_index] = min(
                    best[round_index], float(metrics[metric])
                )
    return best


def run(
    bench: QualityWorkbench,
    trainer_counts: tuple[int, ...] = (1, 2, 4, 8),
    rounds: int = 40,
    steps_per_round: int = 10,
    hyperparam_jitter: float = 0.3,
) -> ExperimentReport:
    """Sweep population size at a fixed per-trainer iteration schedule."""
    if 1 not in trainer_counts:
        raise ValueError("trainer_counts must include the k=1 baseline")
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    series: dict[int, list[float]] = {}
    div_series: dict[int, list[float]] = {}
    adoption: dict[int, float] = {}
    histories = []
    for k in trainer_counts:
        jitter = 0.0 if k == 1 else hyperparam_jitter
        trainers = bench.population(k, tag="fig12", hyperparam_jitter=jitter)
        driver = LtfbDriver(
            trainers,
            bench.pairing_rng(f"fig12/k{k}"),
            config,
            eval_batch=bench.val_batch,
        )
        probe = QualityProbe(capacity=256, seed=bench.seed)
        history = driver.run(
            callbacks=[probe, *bench.run_callbacks(f"fig12/k{k}")]
        )
        histories.append(history)
        series[k] = history.best_val_series()
        div_series[k] = _best_divergence_series(probe, rounds)
        adoption[k] = history.adoption_rate()

    report = ExperimentReport(
        experiment="Figure 12",
        description=(
            "population-best validation loss and JS divergence vs "
            f"per-trainer iterations ({steps_per_round} steps/round, "
            f"{rounds} rounds; improvement = baseline loss / k-trainer "
            "loss at equal iterations; divergence via repro.eval "
            "streaming estimators)"
        ),
        columns=["per_trainer_steps"]
        + [f"k{k}_val_loss" for k in trainer_counts]
        + [f"k{k}_improvement" for k in trainer_counts if k != 1]
        + [f"k{k}_js_div" for k in trainer_counts],
    )
    baseline = series[1]
    for r in range(rounds):
        row: dict[str, object] = {
            "per_trainer_steps": (r + 1) * steps_per_round
        }
        for k in trainer_counts:
            row[f"k{k}_val_loss"] = series[k][r]
            row[f"k{k}_js_div"] = div_series[k][r]
            if k != 1:
                row[f"k{k}_improvement"] = baseline[r] / series[k][r]
        report.add_row(**row)

    k_max = max(trainer_counts)
    final_improvement = baseline[-1] / series[k_max][-1]
    report.add_check(
        f"final improvement of k={k_max} over single trainer (>= 1)",
        1.15,
        final_improvement,
        0.3,
        note="paper plots improvement ratios above 1 that grow with k",
    )
    mid = rounds // 2
    report.add_check(
        f"mid-training improvement of k={k_max} (>= 1)",
        1.1,
        baseline[mid] / series[k_max][mid],
        0.35,
    )
    report.notes.append(
        "tournament adoption rates: "
        + ", ".join(f"k={k}: {adoption[k]:.2f}" for k in trainer_counts if k > 1)
    )
    report.notes.append(
        "final population-best JS divergence: "
        + ", ".join(
            f"k={k}: {div_series[k][-1]:.4f}" for k in trainer_counts
        )
    )
    for history in histories:
        note_health(report, history)
    return report
