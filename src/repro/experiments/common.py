"""Shared experiment infrastructure: reports, shape checks, fixtures.

An :class:`ExperimentReport` is the uniform product of every experiment:
ordered rows (the figure's series), headline *shape checks* comparing our
measured values against what the paper reports, and a plain-text renderer
the benchmarks print and archive.  Shape checks carry a tolerance because
the goal of the reproduction is the behaviour — who wins, by roughly what
factor, where crossovers fall — not the authors' absolute testbed numbers.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from repro.core.ensemble import EnsembleSpec, build_population, pretrain_autoencoder
from repro.jag.dataset import JagDataset, JagDatasetConfig, generate_dataset
from repro.models.autoencoder import MultimodalAutoencoder
from repro.utils.rng import RngFactory

__all__ = [
    "Row",
    "ShapeCheck",
    "ExperimentReport",
    "QualityWorkbench",
    "note_health",
    "observability_callbacks",
    "add_runtime_options",
    "add_serve_options",
    "serve_config_from_args",
]


def add_runtime_options(parser, seed_default: int = 2019) -> None:
    """Register the runtime flags every repro CLI shares.

    One definition for ``--quick``/``--seed``/``--backend``/``--workers``/
    ``--prefetch-depth``/``--trace-out``/``--metrics-out``/
    ``--checkpoint-dir`` — the experiments runner, the serve CLI, and any
    future entry point call this instead of re-declaring the boilerplate
    (and silently drifting on defaults or help text).
    """
    parser.add_argument(
        "--quick",
        action="store_true",
        help="miniature runs (structure only, minutes -> seconds)",
    )
    parser.add_argument("--seed", type=int, default=seed_default)
    parser.add_argument(
        "--backend",
        choices=["serial", "thread", "process"],
        default="serial",
        help="execution backend for training runs",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker cap for parallel backends (default: one per CPU)",
    )
    parser.add_argument(
        "--prefetch-depth",
        type=int,
        default=None,
        help=(
            "data-pipeline prefetch depth for training runs (default: "
            "trainer-configured; 0 = synchronous). Results are "
            "bit-identical at any depth."
        ),
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="BASE.jsonl",
        help=(
            "write a span-enabled JSONL telemetry trace per run (run tag "
            "folded into the filename); summarize with trace-report, "
            "convert with trace-export"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help=(
            "write the session's accumulated metrics registry on exit "
            "(Prometheus text for .prom/.txt, JSON otherwise)"
        ),
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "CheckpointStore root: training runs publish their population "
            "and tournament winner here; the serve CLI loads from it"
        ),
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help=(
            "attach the live observability plane to every training run: "
            "windowed rollups + anomaly alerts (LiveAggregator) feeding "
            "History.health_warnings during the run and 'alert' events "
            "into the trace; watch with `python -m repro.telemetry watch`"
        ),
    )
    parser.add_argument(
        "--flight-recorder",
        nargs="?",
        const="flightrec",
        default=None,
        metavar="DIR",
        help=(
            "attach a flight recorder to every training run: a bounded "
            "ring of recent events per subsystem, dumped to DIR (default "
            "flightrec/) as a JSON post-mortem bundle on crash, critical "
            "alert, or SIGTERM"
        ),
    )


def add_serve_options(parser) -> None:
    """Register the ``--serve-*`` policy flags (defined once, here).

    Maps one-to-one onto :class:`repro.serve.ServeConfig`; build the
    config with :func:`serve_config_from_args`.
    """
    group = parser.add_argument_group("serving policy")
    group.add_argument(
        "--serve-max-batch",
        type=int,
        default=32,
        help="micro-batch rows per forward pass (the fixed GEMM shape)",
    )
    group.add_argument(
        "--serve-max-delay-ms",
        type=float,
        default=2.0,
        help="longest a request waits for batch company (milliseconds)",
    )
    group.add_argument(
        "--serve-queue-depth",
        type=int,
        default=256,
        help="admission queue bound; beyond it requests are rejected",
    )
    group.add_argument(
        "--serve-deadline-ms",
        type=float,
        default=None,
        help="default per-request queueing deadline (milliseconds)",
    )
    group.add_argument(
        "--serve-cache-size",
        type=int,
        default=1024,
        help="LRU response-cache capacity (0 disables caching)",
    )
    group.add_argument(
        "--serve-cache-quantum",
        type=float,
        default=1e-6,
        help="input quantization grid for cache keys (0 = exact match)",
    )
    group.add_argument(
        "--serve-aggregate",
        choices=["winner", "mean", "median"],
        default="winner",
        help="ensemble aggregation across population members",
    )
    group.add_argument(
        "--serve-reload-poll-s",
        type=float,
        default=None,
        help="poll the checkpoint store for newer winners every N seconds",
    )


def serve_config_from_args(args):
    """A :class:`repro.serve.ServeConfig` from parsed ``--serve-*`` flags."""
    from repro.serve import ServeConfig

    return ServeConfig(
        max_batch=args.serve_max_batch,
        max_delay_s=args.serve_max_delay_ms / 1e3,
        max_queue=args.serve_queue_depth,
        default_deadline_s=(
            None
            if args.serve_deadline_ms is None
            else args.serve_deadline_ms / 1e3
        ),
        cache_size=args.serve_cache_size,
        cache_quantum=args.serve_cache_quantum,
        aggregate_mode=args.serve_aggregate,
        reload_poll_s=args.serve_reload_poll_s,
    )

Row = Mapping[str, object]


@dataclass
class ShapeCheck:
    """One headline comparison against the paper."""

    name: str
    paper_value: float
    measured_value: float
    rel_tolerance: float
    note: str = ""

    @property
    def passed(self) -> bool:
        if math.isnan(self.measured_value):
            return False
        if self.paper_value == 0:
            return abs(self.measured_value) <= self.rel_tolerance
        rel = abs(self.measured_value - self.paper_value) / abs(self.paper_value)
        return rel <= self.rel_tolerance

    def render(self) -> str:
        status = "ok " if self.passed else "DIVERGES"
        return (
            f"  [{status}] {self.name}: paper={self.paper_value:g} "
            f"measured={self.measured_value:.4g} "
            f"(tol {self.rel_tolerance:.0%}){'  # ' + self.note if self.note else ''}"
        )


@dataclass
class ExperimentReport:
    """Rows + shape checks + provenance for one figure."""

    experiment: str
    description: str
    columns: Sequence[str]
    rows: list[Row] = field(default_factory=list)
    checks: list[ShapeCheck] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: object) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"row missing columns {sorted(missing)}")
        self.rows.append(values)

    def add_check(
        self,
        name: str,
        paper: float,
        measured: float,
        tol: float,
        note: str = "",
    ) -> None:
        self.checks.append(ShapeCheck(name, paper, measured, tol, note))

    @property
    def all_checks_pass(self) -> bool:
        return all(c.passed for c in self.checks)

    def column(self, name: str) -> list:
        return [r[name] for r in self.rows]

    def render(self) -> str:
        """Plain-text report: header, table, shape checks, notes."""
        out = [f"== {self.experiment}: {self.description} =="]
        widths = {
            c: max(len(c), *(len(_fmt(r[c])) for r in self.rows)) if self.rows else len(c)
            for c in self.columns
        }
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        out.append(header)
        out.append("-" * len(header))
        for r in self.rows:
            out.append("  ".join(_fmt(r[c]).ljust(widths[c]) for c in self.columns))
        if self.checks:
            out.append("shape checks vs paper:")
            out.extend(c.render() for c in self.checks)
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)


def _fmt(v: object) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.3f}".rstrip("0").rstrip(".")
    return str(v)


def note_health(report: ExperimentReport, history) -> None:
    """Fold a run's :class:`~repro.telemetry.HealthMonitor` verdict into a
    report's notes (one note per warning; silent for healthy runs)."""
    for w in getattr(history, "health_warnings", ()):
        report.notes.append(f"health: {w.render()}")


def observability_callbacks(
    tag: str,
    trace_out: "str | Path | None" = None,
    metrics=None,
    monitor_health: bool = False,
    trace_files: "list[Path] | None" = None,
    sample_resources: bool = True,
    live: bool = False,
    flight_recorder: "str | Path | None" = None,
) -> list:
    """Build the per-run observability callback set experiments share.

    ``trace_out`` is the *base* trace path; each run gets its own file
    with the sanitized ``tag`` folded into the stem (one JSONL trace per
    training run, spans enabled).  ``metrics`` is a shared
    :class:`~repro.telemetry.MetricsCollector` accumulating across every
    run of a session.  ``monitor_health`` attaches a fresh
    :class:`~repro.telemetry.HealthMonitor` so warnings land in the run's
    :class:`~repro.core.driver.History`.  ``sample_resources`` attaches a
    :class:`~repro.telemetry.ResourceSampler` whenever a trace or metrics
    consumer is configured, so peak-RSS/CPU readings land in the trace
    (``trace-report`` resources section, Perfetto counter tracks) and the
    metrics gauges.  Opened trace paths are appended to ``trace_files``
    when given, so callers can report what they wrote.

    ``live`` attaches the live observability plane
    (:class:`~repro.telemetry.LiveAggregator`): windowed rollups with
    anomaly alerts fed into ``History.health_warnings`` during the run
    and emitted as ``alert`` trace events.  ``flight_recorder`` (a
    directory) attaches a :class:`~repro.telemetry.FlightRecorder` that
    dumps a post-mortem bundle there on crash/critical alert/SIGTERM.
    Each run gets a fresh instance of both (their state is per-run).
    """
    from repro.telemetry import HealthMonitor, JsonlTraceWriter, ResourceSampler

    callbacks: list = []
    if trace_out is not None:
        base = Path(trace_out)
        safe = re.sub(r"[^A-Za-z0-9._-]+", "-", tag).strip("-")
        path = base.with_name(
            f"{base.stem}-{safe}{base.suffix or '.jsonl'}"
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        callbacks.append(
            JsonlTraceWriter(path, metadata={"tag": tag}, spans=True)
        )
        if trace_files is not None:
            trace_files.append(path)
    if metrics is not None:
        callbacks.append(metrics)
    if monitor_health:
        callbacks.append(HealthMonitor())
    if sample_resources and (trace_out is not None or metrics is not None):
        callbacks.append(ResourceSampler())
    if live:
        from repro.telemetry import LiveAggregator

        callbacks.append(LiveAggregator())
    if flight_recorder is not None:
        from repro.telemetry import FlightRecorder

        callbacks.append(FlightRecorder(out_dir=flight_recorder))
    return callbacks


class QualityWorkbench:
    """Shared setup for the real-training experiments (Figs. 7, 8, 12, 13):
    one dataset, one train/val split, one pre-trained autoencoder.

    Building this is the expensive part of the quality experiments, so the
    benchmarks construct it once per session and pass it into several
    ``run(...)`` calls.
    """

    def __init__(
        self,
        seed: int = 2019,
        n_samples: int = 4096,
        val_fraction: float = 0.12,
        spec: EnsembleSpec | None = None,
        dataset_order: str = "design",
        max_val_samples: int = 2048,
        backend: str = "serial",
        workers: int | None = None,
        prefetch_depth: int | None = None,
        trace_out: "str | Path | None" = None,
        metrics=None,
        monitor_health: bool = True,
        trace_files: "list[Path] | None" = None,
        checkpoint_dir: "str | Path | None" = None,
        live: bool = False,
        flight_recorder: "str | Path | None" = None,
    ) -> None:
        self.seed = seed
        self.rngs = RngFactory(seed)
        self.base_spec = spec or EnsembleSpec()
        # Execution backend and data-pipeline depth for every LTFB run the
        # workbench launches; results are bit-identical across backends and
        # depths so figures don't care, only wall clock does.
        self.backend = backend
        self.workers = workers
        self.prefetch_depth = prefetch_depth
        # Observability: when trace_out is set, every training run the
        # workbench hosts writes its own span-enabled JSONL trace (tag
        # folded into the filename); metrics is a shared
        # MetricsCollector; monitor_health attaches a HealthMonitor per
        # run so History.health_warnings is populated.
        self.trace_out = trace_out
        self.metrics = metrics
        self.monitor_health = bool(monitor_health)
        # Live observability plane: each run gets a fresh LiveAggregator
        # (anomaly alerts during the run) and/or FlightRecorder dumping
        # post-mortem bundles under `flight_recorder`.
        self.live = bool(live)
        self.flight_recorder = flight_recorder
        # Callers may hand in a shared list to collect trace paths across
        # several workbenches/reports (the CLI does).
        self.trace_files: list[Path] = (
            trace_files if trace_files is not None else []
        )
        # When set, every LTFB run publishes its trained population (and
        # the frozen autoencoder, once) into a CheckpointStore, winner
        # recorded — the hand-off point to `repro.serve`.
        self.store = None
        if checkpoint_dir is not None:
            from repro.core.checkpoint import CheckpointStore

            self.store = CheckpointStore(checkpoint_dir)
        # Memoized LTFB runs, keyed by (tag, schedule) — see train_ltfb.
        self._ltfb_cache: dict[tuple, object] = {}
        # The campaign enumeration order: "design" (low-discrepancy, the
        # spectral design's natural order => near-IID silos) by default;
        # "sweep" gives the drive-band-ordered, strongly non-IID silos
        # used by the ordering ablation.
        self.dataset: JagDataset = generate_dataset(
            JagDatasetConfig(
                n_samples=n_samples,
                seed=seed,
                schema=self.base_spec.surrogate.schema,
                order=dataset_order,
            )
        )
        self.train_ids, self.val_ids = self.dataset.train_val_split(
            val_fraction, mode="strided"
        )
        # Evaluation happens every round for every trainer; cap the batch
        # so big-population experiments are not eval-bound.  Subsample by
        # STRIDE, never by prefix: under sweep ordering a prefix of the
        # (ascending) validation ids is a biased low-drive slice, which
        # would systematically favour low-band silo specialists.
        if self.val_ids.size > max_val_samples:
            stride = -(-self.val_ids.size // max_val_samples)
            self.val_ids = self.val_ids[::stride]
        self.val_batch = {
            k: v[self.val_ids] for k, v in self.dataset.fields.items()
        }
        self.autoencoder: MultimodalAutoencoder = pretrain_autoencoder(
            self.dataset, self.train_ids, self.rngs, self.base_spec
        )

    def population(self, k: int, tag: str, **spec_overrides):
        """Build a fresh k-trainer population under a distinct RNG scope."""
        import dataclasses

        spec = dataclasses.replace(self.base_spec, k=k, **spec_overrides)
        return build_population(
            self.dataset,
            self.train_ids,
            self.rngs.child(f"{tag}/k{k}"),
            spec,
            self.autoencoder,
        )

    def pairing_rng(self, tag: str) -> np.random.Generator:
        return self.rngs.generator(f"{tag}/pairing")

    def run_callbacks(self, tag: str) -> list:
        """Observability callbacks for one training run under ``tag``
        (trace writer, shared metrics collector, health monitor — each
        only when configured; see :func:`observability_callbacks`)."""
        return observability_callbacks(
            tag,
            trace_out=self.trace_out,
            metrics=self.metrics,
            monitor_health=self.monitor_health,
            trace_files=self.trace_files,
            live=self.live,
            flight_recorder=self.flight_recorder,
        )

    def train_ltfb(
        self,
        tag: str,
        k: int = 4,
        rounds: int = 10,
        steps_per_round: int = 40,
        hyperparam_jitter: float = 0.2,
        topology: str | None = None,
        callbacks=(),
    ):
        """Run (and memoize) one LTFB training under ``tag``.

        Figures that analyse the *same* trained surrogate (7 and 8) share
        a run by passing the same tag/schedule.  Returns the finished
        :class:`~repro.core.ltfb.LtfbDriver`.

        ``callbacks`` (e.g. a
        :class:`~repro.telemetry.JsonlTraceWriter`) are attached only on
        the run that populates the cache; on a cache hit they are
        **silently dropped** — the training already happened, so there is
        no event stream left to observe.  Callers that need a trace must
        use a fresh tag (or a fresh workbench).  The workbench's own
        observability callbacks (:meth:`run_callbacks`) are attached the
        same way, on the populating run only.

        The run executes under the workbench's configured execution
        backend (``backend``/``workers``); the backend is part of the memo
        key only through the workbench instance itself, because histories
        are bit-identical across backends.

        Every populating run carries a
        :class:`~repro.eval.QualityProbe`, so its trace has per-round
        divergence readings and — when the workbench publishes into a
        checkpoint store — the population manifest is stamped with the
        probe's eval summary, which is what the serve-side quality gate
        judges refresh candidates by.
        """
        from repro.core.ltfb import LtfbConfig, LtfbDriver
        from repro.eval import QualityProbe
        from repro.exec import resolve_backend

        key = (tag, k, rounds, steps_per_round, hyperparam_jitter, topology)
        if key not in self._ltfb_cache:
            trainers = self.population(
                k, tag=tag, hyperparam_jitter=hyperparam_jitter
            )
            driver = LtfbDriver(
                trainers,
                self.pairing_rng(tag),
                LtfbConfig(steps_per_round=steps_per_round, rounds=rounds),
                eval_batch=self.val_batch,
                backend=resolve_backend(
                    self.backend,
                    max_workers=self.workers,
                    prefetch_depth=self.prefetch_depth,
                ),
                topology=topology,
            )
            probe = QualityProbe(capacity=256, seed=self.seed)
            driver.run(
                callbacks=[probe, *callbacks, *self.run_callbacks(tag)]
            )
            if self.store is not None:
                if "autoencoder" not in self.store:
                    self.store.save_autoencoder(self.autoencoder)
                winner, _ = driver.best_trainer()
                safe = re.sub(r"[^A-Za-z0-9._-]+", "-", tag).strip("-")
                self.store.save_population(
                    trainers,
                    f"{safe}-k{k}",
                    winner=winner.name,
                    topology=driver.topology,
                    eval_summary=probe.summary(winner=winner.name),
                )
            self._ltfb_cache[key] = driver
        return self._ltfb_cache[key]
