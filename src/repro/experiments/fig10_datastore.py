"""Figure 10: epoch time with and without the distributed data store.

The paper compares three ingestion configurations on the 1M-sample set at
1-16 GPUs, each with its initial and steady-state epoch time:

- "Dynamic Loading" — no data store (naive file reads every epoch);
- "Data Store: dynamic mode" — cache-on-first-touch during epoch 0;
- "Data Store: preloaded" — populate before training.

Reported headlines: the store's steady-state benefit runs "from a massive
7.73x for a trainer using a single GPU to a 1.31x for a trainer with 4
nodes"; preloading "did not have sufficient memory ... with 1 or 2 GPUs";
at 4 nodes preloading gives "a 1.43x improvement versus no data store,
and a 1.10x improvement over the dynamically loaded data store".
"""

from __future__ import annotations

from repro.cluster.machine import MachineSpec, lassen
from repro.core.perfmodel import (
    IngestionMode,
    PerfDataset,
    TrainerPerfModel,
    TrainerResources,
)
from repro.datastore.store import InsufficientMemoryError
from repro.experiments.common import ExperimentReport
from repro.jag.dataset import paper_schema
from repro.models.cyclegan import SurrogateArchitecture, paper_architecture

__all__ = ["run", "PAPER_BENEFIT_1GPU", "PAPER_BENEFIT_16GPU", "PAPER_PRELOAD_VS_DYNAMIC"]

PAPER_BENEFIT_1GPU = 7.73
PAPER_BENEFIT_16GPU = 1.31
PAPER_PRELOAD_VS_NAIVE = 1.43
PAPER_PRELOAD_VS_DYNAMIC = 1.10


def run(
    machine: MachineSpec | None = None,
    arch: SurrogateArchitecture | None = None,
    n_samples: int = 1_000_000,
    val_samples: int = 100_000,
    global_batch: int = 128,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> ExperimentReport:
    """Sweep ingestion mode x GPU count; returns the Fig.-10 grid."""
    machine = machine or lassen()
    arch = arch or paper_architecture()
    schema = paper_schema()
    train = PerfDataset(n_samples, schema.sample_nbytes)
    val = PerfDataset(val_samples, schema.sample_nbytes)
    report = ExperimentReport(
        experiment="Figure 10",
        description=(
            "data-store modes vs naive ingestion, "
            f"{n_samples:,} train + {val_samples:,} val samples"
        ),
        columns=[
            "gpus",
            "naive_initial_s",
            "naive_steady_s",
            "dynamic_initial_s",
            "dynamic_steady_s",
            "preload_initial_s",
            "preload_steady_s",
        ],
    )

    grid: dict[tuple[int, IngestionMode], tuple[float, float] | None] = {}
    for gpus in gpu_counts:
        resources = TrainerResources(
            num_ranks=gpus, ranks_per_node=min(gpus, machine.node.gpus_per_node)
        )
        row: dict[str, object] = {"gpus": gpus}
        for mode, label in (
            (IngestionMode.NAIVE, "naive"),
            (IngestionMode.STORE_DYNAMIC, "dynamic"),
            (IngestionMode.STORE_PRELOAD, "preload"),
        ):
            try:
                model = TrainerPerfModel(
                    machine,
                    arch,
                    resources,
                    train,
                    mode,
                    val=val,
                    global_batch=global_batch,
                )
                initial = model.epoch_time(steady=False)
                steady = model.epoch_time(steady=True)
                grid[(gpus, mode)] = (initial, steady)
                row[f"{label}_initial_s"] = initial
                row[f"{label}_steady_s"] = steady
            except InsufficientMemoryError:
                grid[(gpus, mode)] = None
                row[f"{label}_initial_s"] = "OOM"
                row[f"{label}_steady_s"] = "OOM"
        report.add_row(**row)

    def steady(gpus: int, mode: IngestionMode) -> float:
        entry = grid[(gpus, mode)]
        assert entry is not None
        return entry[1]

    if 1 in gpu_counts:
        report.add_check(
            "dynamic-store steady benefit at 1 GPU",
            PAPER_BENEFIT_1GPU,
            steady(1, IngestionMode.NAIVE) / steady(1, IngestionMode.STORE_DYNAMIC),
            0.20,
        )
    if 16 in gpu_counts:
        report.add_check(
            "dynamic-store steady benefit at 16 GPUs",
            PAPER_BENEFIT_16GPU,
            steady(16, IngestionMode.NAIVE) / steady(16, IngestionMode.STORE_DYNAMIC),
            0.15,
        )
        report.add_check(
            "preload vs naive at 16 GPUs",
            PAPER_PRELOAD_VS_NAIVE,
            steady(16, IngestionMode.NAIVE) / steady(16, IngestionMode.STORE_PRELOAD),
            0.15,
        )
        report.add_check(
            "preload vs dynamic at 16 GPUs",
            PAPER_PRELOAD_VS_DYNAMIC,
            steady(16, IngestionMode.STORE_DYNAMIC)
            / steady(16, IngestionMode.STORE_PRELOAD),
            0.10,
        )
    oom_gpus = [
        g for g in gpu_counts if grid[(g, IngestionMode.STORE_PRELOAD)] is None
    ]
    report.notes.append(
        f"preload infeasible (InsufficientMemoryError) at GPU counts: "
        f"{oom_gpus or 'none'} — paper reports 1 and 2"
    )
    return report
