"""Figure 10: epoch time with and without the distributed data store.

The paper compares three ingestion configurations on the 1M-sample set at
1-16 GPUs, each with its initial and steady-state epoch time:

- "Dynamic Loading" — no data store (naive file reads every epoch);
- "Data Store: dynamic mode" — cache-on-first-touch during epoch 0;
- "Data Store: preloaded" — populate before training.

Reported headlines: the store's steady-state benefit runs "from a massive
7.73x for a trainer using a single GPU to a 1.31x for a trainer with 4
nodes"; preloading "did not have sufficient memory ... with 1 or 2 GPUs";
at 4 nodes preloading gives "a 1.43x improvement versus no data store,
and a 1.10x improvement over the dynamically loaded data store".

Alongside the analytic grid the report *measures* the data-plane overlap
on the functional stack: one store-backed reader driven through
:func:`repro.datastore.build_pipeline` at prefetch depth 0 (synchronous)
and depth k, with BLAS-heavy stand-in compute between batches.  The
depth-k run must hide batch materialization behind the compute — less
fetch stall than depth 0 — which is the mechanism behind the paper's
steady-state epoch times (Section III-B's background ingestion).
"""

from __future__ import annotations

import numpy as np

from repro.cluster.filesystem import SimulatedFilesystem
from repro.cluster.machine import MachineSpec, lassen
from repro.core.perfmodel import (
    IngestionMode,
    PerfDataset,
    TrainerPerfModel,
    TrainerResources,
)
from repro.datastore import DistributedDataStore, StoreReader, build_pipeline
from repro.datastore.store import InsufficientMemoryError
from repro.experiments.common import ExperimentReport
from repro.jag.dataset import JagDatasetConfig, generate_dataset, paper_schema, small_schema
from repro.models.cyclegan import SurrogateArchitecture, paper_architecture
from repro.telemetry import CounterAggregator, TelemetryHub

__all__ = ["run", "PAPER_BENEFIT_1GPU", "PAPER_BENEFIT_16GPU", "PAPER_PRELOAD_VS_DYNAMIC"]

PAPER_BENEFIT_1GPU = 7.73
PAPER_BENEFIT_16GPU = 1.31
PAPER_PRELOAD_VS_NAIVE = 1.43
PAPER_PRELOAD_VS_DYNAMIC = 1.10


def _measure_overlap(
    prefetch_depth: int,
    seed: int = 2019,
    steps: int = 80,
    batch: int = 32,
    n_samples: int = 512,
) -> dict[int, tuple[float, float]]:
    """Measured fetch stall/overlap per depth on a store-backed reader.

    Runs the same preloaded :class:`StoreReader` through the data
    pipeline at depth 0 and ``prefetch_depth``, interleaving every batch
    with matrix-product compute (NumPy releases the GIL there, so the
    prefetch thread genuinely materializes underneath it).  Returns
    ``{depth: (stall_s, overlap_s)}`` from the ``fetch_stall`` telemetry.
    """
    dataset = generate_dataset(
        JagDatasetConfig(n_samples=n_samples, schema=small_schema(8), seed=seed)
    )
    spb = 32
    # Stand-in train step, sized to dominate one batch materialization.
    work = np.random.default_rng(seed).standard_normal((384, 384))
    results: dict[int, tuple[float, float]] = {}
    for depth in sorted({0, int(prefetch_depth)}):
        fs = SimulatedFilesystem()
        paths = dataset.write_bundles(fs, spb)
        store = DistributedDataStore(4, bytes_per_rank=10**8)
        reader = StoreReader(
            fs,
            paths,
            spb,
            np.arange(n_samples),
            np.random.default_rng(seed),
            store,
            "preload",
        )
        hub = TelemetryHub()
        counters = CounterAggregator()
        hub.subscribe(counters)
        pipeline = build_pipeline(reader, batch, prefetch_depth=depth)
        pipeline.telemetry = hub
        try:
            for _ in range(steps):
                pipeline.next_batch()
                acc = work
                for _ in range(8):
                    acc = acc @ work
        finally:
            pipeline.close()
        results[depth] = (counters.fetch_stall_s, counters.fetch_overlap_s)
    return results


def run(
    machine: MachineSpec | None = None,
    arch: SurrogateArchitecture | None = None,
    n_samples: int = 1_000_000,
    val_samples: int = 100_000,
    global_batch: int = 128,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
    prefetch_depth: int = 2,
) -> ExperimentReport:
    """Sweep ingestion mode x GPU count; returns the Fig.-10 grid.

    ``prefetch_depth`` sets the overlapped depth for the measured
    stall-vs-overlap section (``0`` skips the measurement).
    """
    machine = machine or lassen()
    arch = arch or paper_architecture()
    schema = paper_schema()
    train = PerfDataset(n_samples, schema.sample_nbytes)
    val = PerfDataset(val_samples, schema.sample_nbytes)
    report = ExperimentReport(
        experiment="Figure 10",
        description=(
            "data-store modes vs naive ingestion, "
            f"{n_samples:,} train + {val_samples:,} val samples"
        ),
        columns=[
            "gpus",
            "naive_initial_s",
            "naive_steady_s",
            "dynamic_initial_s",
            "dynamic_steady_s",
            "preload_initial_s",
            "preload_steady_s",
        ],
    )

    grid: dict[tuple[int, IngestionMode], tuple[float, float] | None] = {}
    for gpus in gpu_counts:
        resources = TrainerResources(
            num_ranks=gpus, ranks_per_node=min(gpus, machine.node.gpus_per_node)
        )
        row: dict[str, object] = {"gpus": gpus}
        for mode, label in (
            (IngestionMode.NAIVE, "naive"),
            (IngestionMode.STORE_DYNAMIC, "dynamic"),
            (IngestionMode.STORE_PRELOAD, "preload"),
        ):
            try:
                model = TrainerPerfModel(
                    machine,
                    arch,
                    resources,
                    train,
                    mode,
                    val=val,
                    global_batch=global_batch,
                )
                initial = model.epoch_time(steady=False)
                steady = model.epoch_time(steady=True)
                grid[(gpus, mode)] = (initial, steady)
                row[f"{label}_initial_s"] = initial
                row[f"{label}_steady_s"] = steady
            except InsufficientMemoryError:
                grid[(gpus, mode)] = None
                row[f"{label}_initial_s"] = "OOM"
                row[f"{label}_steady_s"] = "OOM"
        report.add_row(**row)

    def steady(gpus: int, mode: IngestionMode) -> float:
        entry = grid[(gpus, mode)]
        assert entry is not None
        return entry[1]

    if 1 in gpu_counts:
        report.add_check(
            "dynamic-store steady benefit at 1 GPU",
            PAPER_BENEFIT_1GPU,
            steady(1, IngestionMode.NAIVE) / steady(1, IngestionMode.STORE_DYNAMIC),
            0.20,
        )
    if 16 in gpu_counts:
        report.add_check(
            "dynamic-store steady benefit at 16 GPUs",
            PAPER_BENEFIT_16GPU,
            steady(16, IngestionMode.NAIVE) / steady(16, IngestionMode.STORE_DYNAMIC),
            0.15,
        )
        report.add_check(
            "preload vs naive at 16 GPUs",
            PAPER_PRELOAD_VS_NAIVE,
            steady(16, IngestionMode.NAIVE) / steady(16, IngestionMode.STORE_PRELOAD),
            0.15,
        )
        report.add_check(
            "preload vs dynamic at 16 GPUs",
            PAPER_PRELOAD_VS_DYNAMIC,
            steady(16, IngestionMode.STORE_DYNAMIC)
            / steady(16, IngestionMode.STORE_PRELOAD),
            0.10,
        )
    oom_gpus = [
        g for g in gpu_counts if grid[(g, IngestionMode.STORE_PRELOAD)] is None
    ]
    report.notes.append(
        f"preload infeasible (InsufficientMemoryError) at GPU counts: "
        f"{oom_gpus or 'none'} — paper reports 1 and 2"
    )
    if prefetch_depth > 0:
        measured = _measure_overlap(prefetch_depth)
        stall_0, _ = measured[0]
        stall_k, overlap_k = measured[prefetch_depth]
        report.add_check(
            f"prefetch depth {prefetch_depth} reduces measured fetch stall",
            paper=1.0,
            measured=1.0 if stall_k < stall_0 else 0.0,
            tol=0.0,
            note=(
                f"store-backed reader, measured: stall {stall_0 * 1e3:.1f}ms "
                f"at depth 0 -> {stall_k * 1e3:.1f}ms at depth "
                f"{prefetch_depth} ({overlap_k * 1e3:.1f}ms of "
                f"materialization overlapped with compute)"
            ),
        )
        report.notes.append(
            "stall/overlap measured on the functional store-backed reader "
            "(preloaded, depth 0 vs. depth "
            f"{prefetch_depth}); the analytic grid above models the same "
            "overlap at paper scale"
        )
    return report
