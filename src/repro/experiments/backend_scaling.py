"""Backend scaling: wall-clock effect of the execution backends.

The paper's premise is that population training parallelizes trivially —
trainers are independent between tournaments — so the same LTFB campaign
should run faster when trainer work is spread over workers.  This report
measures that on the *real* (scaled-down) training stack: one 8-trainer
LTFB schedule executed under each :mod:`repro.exec` backend with a fixed
seed, timing the train phase (the only phase a backend parallelizes;
tournaments and evaluation stay in the main process).

Each backend runs at two data-pipeline depths — synchronous (``depth 0``)
and prefetching (``depth k``, the paper's overlap of batch assembly with
compute) — with per-run ``stall_s``/``overlap_s`` columns from the
``fetch_stall`` telemetry: how long trainers waited on their data path
vs. how much materialization was hidden behind training compute.

Two headline checks:

- **determinism** — every backend x depth combination must produce a
  bit-identical :class:`~repro.core.driver.History` (the subsystem's core
  invariant: plans are independent of materialization, so prefetching can
  never change what gets trained);
- **speedup** — on a multi-core host the best parallel backend must clear
  a 1.5x train-phase speedup floor over serial.  On a single-core host no
  speedup is physically available (workers timeshare one CPU), so the
  check degrades to bounding the parallel overhead instead, with a note.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.core.ensemble import EnsembleSpec, build_population, pretrain_autoencoder
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.exec import BACKEND_NAMES, resolve_backend
from repro.experiments.common import (
    ExperimentReport,
    note_health,
    observability_callbacks,
)
from repro.jag.dataset import JagDatasetConfig, generate_dataset
from repro.telemetry import CounterAggregator, WallClockTimer
from repro.utils.rng import RngFactory

__all__ = ["run", "SPEEDUP_FLOOR"]

#: Minimum train-phase speedup a parallel backend must deliver over the
#: serial baseline when the host actually has cores to parallelize over.
SPEEDUP_FLOOR = 1.5


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


def _histories_identical(a, b) -> bool:
    """Bit-exact comparison of two run histories."""
    return (
        a.rounds_completed == b.rounds_completed
        and a.train_losses == b.train_losses
        and a.eval_series == b.eval_series
        and a.tournaments == b.tournaments
        and a.pairings == b.pairings
        and a.exchange_bytes == b.exchange_bytes
    )


def run(
    k: int = 8,
    rounds: int = 2,
    steps_per_round: int = 12,
    workers: int = 4,
    n_samples: int = 2048,
    seed: int = 2019,
    backends: tuple[str, ...] = BACKEND_NAMES,
    prefetch_depth: int = 2,
    trace_out=None,
    metrics=None,
    monitor_health: bool = True,
    trace_files: list | None = None,
    live: bool = False,
    flight_recorder=None,
) -> ExperimentReport:
    """Run one fixed-seed LTFB schedule under each backend x depth.

    Every run gets a freshly built (identical) population — same dataset,
    same autoencoder, same :class:`~repro.utils.rng.RngFactory` scopes —
    so any divergence in the resulting histories is the backend's (or
    pipeline's) fault, not initialization noise.  ``prefetch_depth`` is
    the overlapped depth each backend is additionally run at (alongside
    the synchronous depth 0).

    ``trace_out``/``metrics``/``monitor_health``/``trace_files`` follow
    :func:`~repro.experiments.common.observability_callbacks`: every
    backend x depth run gets its own span-enabled trace file and a fresh
    health monitor, while ``metrics`` accumulates across all of them.
    """
    cores = _available_cores()
    depths = sorted({0, int(prefetch_depth)})
    spec = EnsembleSpec(k=k, ae_epochs=2, ae_max_samples=512)
    dataset = generate_dataset(
        JagDatasetConfig(
            n_samples=n_samples, seed=seed, schema=spec.surrogate.schema
        )
    )
    train_ids, val_ids = dataset.train_val_split(0.12, mode="strided")
    val_ids = val_ids[:128]
    eval_batch = {name: v[val_ids] for name, v in dataset.fields.items()}
    autoencoder = pretrain_autoencoder(
        dataset, train_ids, RngFactory(seed), spec
    )

    report = ExperimentReport(
        experiment="Backend scaling",
        description=(
            f"{k}-trainer LTFB ({rounds} rounds x {steps_per_round} steps) "
            f"under each execution backend at prefetch depths "
            f"{'/'.join(map(str, depths))}, {cores}-core host"
        ),
        columns=[
            "backend",
            "depth",
            "workers",
            "train_s",
            "stall_s",
            "overlap_s",
            "total_s",
            "train_speedup",
            "identical",
        ],
    )

    serial_train_s: float | None = None
    serial_history = None
    all_identical = True
    best_speedup = 0.0
    for backend_name in backends:
        for depth in depths:
            backend = resolve_backend(
                backend_name, max_workers=workers, prefetch_depth=depth
            )
            trainers = build_population(
                dataset, train_ids, RngFactory(seed).child("scaling"), spec,
                autoencoder,
            )
            driver = LtfbDriver(
                trainers,
                np.random.default_rng(seed),
                LtfbConfig(steps_per_round=steps_per_round, rounds=rounds),
                eval_batch=eval_batch,
                backend=backend,
            )
            timer = WallClockTimer()
            counters = CounterAggregator()
            extra = observability_callbacks(
                f"backends/{backend_name}-d{depth}",
                trace_out=trace_out,
                metrics=metrics,
                monitor_health=monitor_health,
                trace_files=trace_files,
                live=live,
                flight_recorder=flight_recorder,
            )
            t0 = time.perf_counter()
            history = driver.run(callbacks=[timer, counters, *extra])
            total_s = time.perf_counter() - t0
            train_s = timer.totals["train"]
            note_health(report, history)

            if serial_history is None:
                serial_train_s, serial_history = train_s, history
                identical, speedup = True, 1.0
            else:
                identical = _histories_identical(serial_history, history)
                all_identical = all_identical and identical
                speedup = (
                    serial_train_s / train_s if train_s > 0 else float("inf")
                )
                best_speedup = max(best_speedup, speedup)
            report.add_row(
                backend=backend.name,
                depth=depth,
                workers=backend.num_workers,
                train_s=train_s,
                stall_s=counters.fetch_stall_s,
                overlap_s=counters.fetch_overlap_s,
                total_s=total_s,
                train_speedup=speedup,
                identical=identical,
            )

    report.add_check(
        "cross-backend/depth determinism (identical histories)",
        paper=1.0,
        measured=1.0 if all_identical else 0.0,
        tol=0.0,
        note=(
            "every backend at every prefetch depth must reproduce the "
            "serial depth-0 History bit-exactly"
        ),
    )
    if cores >= 2:
        report.add_check(
            f"parallel train speedup over serial ({SPEEDUP_FLOOR:g}x floor)",
            paper=SPEEDUP_FLOOR,
            measured=min(best_speedup, SPEEDUP_FLOOR),
            tol=0.0,
            note=f"best measured {best_speedup:.2f}x with {workers} workers",
        )
    else:
        # One core: workers timeshare the CPU, so parallel backends can
        # only break even minus coordination overhead.  Check that the
        # overhead stays bounded rather than pretending a speedup exists.
        report.add_check(
            "parallel overhead bounded on single-core host",
            paper=1.0,
            measured=min(best_speedup, 1.0),
            tol=0.40,
            note=(
                f"single-core host: {SPEEDUP_FLOOR:g}x floor check needs "
                f">= 2 cores; best relative train time {best_speedup:.2f}x"
            ),
        )
    report.notes.append(
        "speedup is train-phase wall clock (the phase backends "
        "parallelize); tournaments/exchange/eval always run in the main "
        "process"
    )
    report.notes.append(
        "stall_s = time trainers waited on the data pipeline per run; "
        "overlap_s = batch-materialization time hidden behind training "
        "compute (nonzero only at depth >= 1); in-memory silo readers "
        "materialize cheaply, so the store-backed stall comparison lives "
        "in the fig10 report"
    )
    return report
