"""Figure 9: data-parallel strong scaling of a single trainer.

The paper trains the CycleGAN on a 1M-sample subset with naive ("dynamic
loading") ingestion, scaling one trainer from 1 GPU to 4 nodes x 16 GPUs
at a fixed global mini-batch of 128, and reports steady-state epoch time:
"there is a 9.36x improvement in steady state epoch time ... benefits of
data parallel scaling are starting to diminish around 4 nodes and 16
GPUs, with a decrease in parallel efficiency down to 58%."
"""

from __future__ import annotations

from repro.cluster.machine import MachineSpec, lassen
from repro.core.perfmodel import (
    IngestionMode,
    PerfDataset,
    TrainerPerfModel,
    TrainerResources,
)
from repro.experiments.common import ExperimentReport
from repro.jag.dataset import paper_schema
from repro.models.cyclegan import SurrogateArchitecture, paper_architecture

__all__ = ["run", "PAPER_SPEEDUP_16", "PAPER_EFFICIENCY_16"]

PAPER_SPEEDUP_16 = 9.36
PAPER_EFFICIENCY_16 = 0.58


def run(
    machine: MachineSpec | None = None,
    arch: SurrogateArchitecture | None = None,
    n_samples: int = 1_000_000,
    global_batch: int = 128,
    gpu_counts: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> ExperimentReport:
    """Sweep GPU counts for one naive-ingestion trainer; returns the
    Fig.-9 series (steady-state epoch time, speedup, efficiency)."""
    machine = machine or lassen()
    arch = arch or paper_architecture()
    dataset = PerfDataset(n_samples, paper_schema().sample_nbytes)
    report = ExperimentReport(
        experiment="Figure 9",
        description=(
            "single-trainer data-parallel strong scaling, naive ingestion, "
            f"{n_samples:,} samples, global batch {global_batch}"
        ),
        columns=[
            "gpus",
            "nodes",
            "epoch_s",
            "speedup",
            "efficiency_pct",
            "step_compute_ms",
            "step_allreduce_ms",
            "step_io_ms",
        ],
    )
    baseline = None
    for gpus in gpu_counts:
        resources = TrainerResources(
            num_ranks=gpus, ranks_per_node=min(gpus, machine.node.gpus_per_node)
        )
        model = TrainerPerfModel(
            machine,
            arch,
            resources,
            dataset,
            IngestionMode.NAIVE,
            global_batch=global_batch,
        )
        epoch = model.epoch_time(steady=True)
        if baseline is None:
            baseline = epoch
        breakdown = model.step_breakdown(steady=True)
        speedup = baseline / epoch
        report.add_row(
            gpus=gpus,
            nodes=resources.num_nodes,
            epoch_s=epoch,
            speedup=speedup,
            efficiency_pct=100.0 * speedup / gpus,
            step_compute_ms=breakdown.compute * 1e3,
            step_allreduce_ms=breakdown.allreduce * 1e3,
            step_io_ms=breakdown.io * 1e3,
        )
    if 16 in gpu_counts and 1 in gpu_counts:
        s16 = report.rows[-1]["speedup"] if gpu_counts[-1] == 16 else None
        for r in report.rows:
            if r["gpus"] == 16:
                s16 = r["speedup"]
        report.add_check(
            "speedup at 16 GPUs over 1 GPU", PAPER_SPEEDUP_16, float(s16), 0.15
        )
        report.add_check(
            "parallel efficiency at 16 GPUs",
            PAPER_EFFICIENCY_16,
            float(s16) / 16.0,
            0.15,
        )
    report.notes.append(
        "epoch times come from the calibrated Lassen performance model "
        "(see repro.cluster.machine defaults)"
    )
    return report
