"""Figure 13: LTFB vs partitioned K-independent training.

The paper compares "running LTFB with k trainers vs. k independent
trainers using a random 1/k subset of the data ... roughly equal runtimes
(i.e. equal number of iterations) and equal memory footprints", and finds
"the LTFB approach consistently achieves better results in validation
loss.  More importantly, with increasing k the gap widens", because
independent models only ever see their own shrinking silo while LTFB
model exchange composes silos.

We run both algorithms on identical contiguous (exploration-ordered,
non-IID) partitions with identical schedules and report the population-
best global validation loss per round, plus the LTFB/K-independent gap
at each k.
"""

from __future__ import annotations

from repro.core.kindependent import KIndependentDriver
from repro.core.ltfb import LtfbConfig, LtfbDriver
from repro.experiments.common import (
    ExperimentReport,
    QualityWorkbench,
    note_health,
)

__all__ = ["run"]


def run(
    bench: QualityWorkbench,
    trainer_counts: tuple[int, ...] = (2, 4, 8),
    rounds: int = 40,
    steps_per_round: int = 10,
    hyperparam_jitter: float = 0.0,
    n_seeds: int = 1,
) -> ExperimentReport:
    """LTFB-vs-K-independent at several k on identical silos/schedules.

    ``hyperparam_jitter`` defaults to 0: with equal configurations the
    comparison isolates exchange-vs-no-exchange.  (A jittered population
    hands best-of-k selection — which both algorithms enjoy — a larger
    share of the variance, diluting the effect under test.)
    """
    config = LtfbConfig(steps_per_round=steps_per_round, rounds=rounds)
    if n_seeds < 1:
        raise ValueError("n_seeds must be >= 1")
    ltfb_series: dict[int, list[float]] = {}
    kind_series: dict[int, list[float]] = {}
    histories = []
    for k in trainer_counts:
        # Population-construction seeds are averaged: at laptop scale a
        # single-seed LTFB-vs-K-independent comparison carries substantial
        # run-to-run variance (see EXPERIMENTS.md).
        ltfb_runs, kind_runs = [], []
        for s in range(n_seeds):
            ltfb = LtfbDriver(
                bench.population(
                    k, tag=f"fig13_ltfb/s{s}", hyperparam_jitter=hyperparam_jitter
                ),
                bench.pairing_rng(f"fig13/k{k}/s{s}"),
                config,
                eval_batch=bench.val_batch,
            )
            ltfb_hist = ltfb.run(
                callbacks=bench.run_callbacks(f"fig13_ltfb/k{k}/s{s}")
            )
            histories.append(ltfb_hist)
            ltfb_runs.append(ltfb_hist.best_val_series())

            kind = KIndependentDriver(
                bench.population(
                    k, tag=f"fig13_kind/s{s}", hyperparam_jitter=hyperparam_jitter
                ),
                config,
                eval_batch=bench.val_batch,
            )
            # Same run(...) -> History API as LtfbDriver: no branching.
            kind_hist = kind.run(
                callbacks=bench.run_callbacks(f"fig13_kind/k{k}/s{s}")
            )
            histories.append(kind_hist)
            kind_runs.append(kind_hist.best_val_series())
        ltfb_series[k] = [
            sum(run[r] for run in ltfb_runs) / n_seeds for r in range(rounds)
        ]
        kind_series[k] = [
            sum(run[r] for run in kind_runs) / n_seeds for r in range(rounds)
        ]

    report = ExperimentReport(
        experiment="Figure 13",
        description=(
            "population-best validation loss, LTFB vs K-independent on "
            "identical contiguous (non-IID) silos "
            f"({steps_per_round} steps/round, {rounds} rounds)"
        ),
        columns=["per_trainer_steps"]
        + [f"k{k}_ltfb" for k in trainer_counts]
        + [f"k{k}_kind" for k in trainer_counts],
    )
    for r in range(rounds):
        row: dict[str, object] = {"per_trainer_steps": (r + 1) * steps_per_round}
        for k in trainer_counts:
            row[f"k{k}_ltfb"] = ltfb_series[k][r]
            row[f"k{k}_kind"] = kind_series[k][r]
        report.add_row(**row)

    gaps = {
        k: kind_series[k][-1] / ltfb_series[k][-1] for k in trainer_counts
    }
    for k in trainer_counts:
        report.add_check(
            f"LTFB vs K-independent at k={k} (final loss ratio; paper: >1)",
            1.2,
            gaps[k],
            0.9,
            note="paper: LTFB consistently better; seed-noise-dominated at "
            "laptop scale (EXPERIMENTS.md)",
        )
    k_lo, k_hi = min(trainer_counts), max(trainer_counts)
    report.add_check(
        f"gap widens with k (ratio at k={k_hi} vs k={k_lo})",
        1.2,
        gaps[k_hi] / gaps[k_lo],
        0.9,
        note="paper: 'with increasing k the gap widens'",
    )
    report.notes.append(
        "final-loss gap (K-independent / LTFB): "
        + ", ".join(f"k={k}: {gaps[k]:.2f}x" for k in trainer_counts)
    )
    for history in histories:
        note_health(report, history)
    return report
