"""Figure 8: ground truth vs predicted capsule images.

The paper shows X-ray capsule images at selected views and channels from
the JAG output next to the LTFB-CycleGAN generator's predictions.  We
quantify the same comparison: per-(view, channel) PSNR and R^2 of the
predicted images over the validation set, using the same trained
surrogate as Figure 7.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentReport, QualityWorkbench
from repro.tensorlib.metrics import PSNR, R2Score

__all__ = ["run"]


def run(
    bench: QualityWorkbench,
    k: int = 4,
    rounds: int = 10,
    steps_per_round: int = 40,
) -> ExperimentReport:
    """Score image predictions of the Fig.-7 surrogate per view/channel."""
    driver = bench.train_ltfb(
        "fig07_08", k=k, rounds=rounds, steps_per_round=steps_per_round
    )
    best, best_loss = driver.best_trainer()
    schema = bench.dataset.schema

    _, images_hat = best.surrogate.predict_outputs(bench.val_batch["params"])
    n = images_hat.shape[0]
    shape5 = (n, schema.views, schema.channels, schema.image_size, schema.image_size)
    pred = images_hat.reshape(shape5)
    truth = bench.val_batch["images"].reshape(shape5)

    report = ExperimentReport(
        experiment="Figure 8",
        description=(
            "ground truth vs predicted capsule images per view/channel "
            f"(k={k}, best trainer {best.name}, val_loss={best_loss:.4f})"
        ),
        columns=["view", "channel", "psnr_db", "r2"],
    )
    overall_psnr = PSNR(data_range=1.0)
    for v in range(schema.views):
        for c in range(schema.channels):
            psnr = PSNR(data_range=1.0)
            psnr.update(pred[:, v, c], truth[:, v, c])
            r2 = R2Score()
            r2.update(pred[:, v, c], truth[:, v, c])
            overall_psnr.update(pred[:, v, c], truth[:, v, c])
            report.add_row(
                view=v, channel=c, psnr_db=psnr.result(), r2=r2.result()
            )
    # The paper's criterion is visual fidelity of selected views/channels;
    # >25 dB PSNR on [0,1] images is a conventional "visually close" bar.
    report.add_check(
        "aggregate image PSNR (dB, visual-fidelity proxy)",
        28.0,
        overall_psnr.result(),
        0.25,
        note="paper shows visually matching images; no number is published",
    )
    return report
