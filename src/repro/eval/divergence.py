"""Streaming f-divergence estimators over JAG scalar distributions.

The quality signal of the subsystem: how far is a surrogate's *output
distribution* from the simulation's ground truth?  Losses cannot see
mode collapse — a generator that emits one plausible sample forever can
keep a flat (even improving) loss while its distribution degenerates —
so the probe, the tournament judge, and the serve gate all consume the
estimators below instead.

Estimator protocol (fixed, so every consumer measures the same thing):

1. Both sample sets are projected per scalar dimension.
2. Each dimension is **z-scored by the reference statistics** (mean/std
   of the ground-truth sample only — the model sample must land on the
   reference's scale to be comparable; a degenerate reference std falls
   back to 1 rather than dividing by ~0).
3. Histograms use **shared fixed bin edges**: ``bins`` equal-width bins
   spanning ``[-span, +span]`` in reference z-units.  Values outside the
   span are clamped into the edge bins, so tail mass is never dropped —
   a model that walks off the support shows up as edge-bin mass, not as
   silently truncated data.
4. Counts are smoothed with ``eps`` mass per bin and renormalized before
   any log: the plug-in KL of raw counts is infinite whenever the model
   misses a populated bin, which makes early training unreadable.
5. Per-dimension divergences are averaged into the reported scalars;
   per-dimension values stay available for drill-down.

Bias/variance tradeoffs (documented, not hidden): the plug-in histogram
estimator is **biased upward** by binning (resolution ``2*span/bins`` in
z-units) and by the ``eps`` smoothing, and the bias grows as the sample
count per bin shrinks.  Variance shrinks as ``O(1/n)`` with the bounded
reservoir size feeding it.  The estimates are therefore *comparable
across rounds and trainers under the fixed protocol* — which is what a
monitoring signal needs — but are not unbiased divergence estimates, and
should not be read as absolute information-theoretic quantities.  All
estimates are deterministic functions of the two sample sets; the only
randomness upstream is the reservoir's seeded RNG.

Conventions: ``kl``/``js`` are in nats; ``hellinger`` is the Hellinger
*distance* in ``[0, 1]``; ``js <= log 2``; lower is better for every
metric.  Moment deltas are in reference z-units (``mean_delta`` = mean
absolute shift of the model mean; ``std_delta`` = mean absolute
deviation of the model std from 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "DivergenceResult",
    "METRIC_NAMES",
    "fixed_bin_edges",
    "histogram_probs",
    "kl_divergence",
    "js_divergence",
    "hellinger_distance",
    "scalar_divergences",
]

#: The reported divergence metrics, in reporting order.
METRIC_NAMES: tuple[str, ...] = ("kl", "js", "hellinger")

_TINY = 1e-12


@dataclass(frozen=True)
class DivergenceResult:
    """One estimator run: reference sample vs model sample.

    Scalar fields are means across scalar dimensions; ``per_dim_js``
    keeps the per-dimension JS values for drill-down (JS because it is
    the bounded, symmetric member of the family — the one the probe and
    the judge rank on by default).
    """

    kl: float
    js: float
    hellinger: float
    mean_delta: float
    std_delta: float
    n_reference: int
    n_model: int
    bins: int
    span: float
    per_dim_js: tuple[float, ...] = field(default=(), repr=False)

    def value(self, metric: str) -> float:
        """Look up one reported metric by name (``kl``/``js``/...)."""
        if metric not in METRIC_NAMES + ("mean_delta", "std_delta"):
            raise ValueError(f"unknown divergence metric {metric!r}")
        return float(getattr(self, metric))

    def as_dict(self) -> dict:
        """JSON-encodable summary (the telemetry/manifest payload shape)."""
        return {
            "kl": self.kl,
            "js": self.js,
            "hellinger": self.hellinger,
            "mean_delta": self.mean_delta,
            "std_delta": self.std_delta,
            "n_reference": self.n_reference,
            "n_model": self.n_model,
            "bins": self.bins,
            "span": self.span,
        }


def fixed_bin_edges(bins: int = 32, span: float = 4.0) -> np.ndarray:
    """The protocol's shared edges: ``bins`` equal-width bins on
    ``[-span, +span]`` in reference z-units."""
    if bins < 2:
        raise ValueError(f"bins must be >= 2, got {bins}")
    if span <= 0:
        raise ValueError(f"span must be positive, got {span}")
    return np.linspace(-span, span, bins + 1)


def histogram_probs(
    values: np.ndarray, edges: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Smoothed, normalized bin probabilities on the shared edges.

    Out-of-span values are clamped into the edge bins (tail mass is
    counted, not dropped); ``eps`` mass is added to every bin before
    normalization so downstream logs stay finite.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("cannot histogram an empty sample")
    clipped = np.clip(values, edges[0], edges[-1])
    counts, _ = np.histogram(clipped, bins=edges)
    probs = counts.astype(np.float64) + eps
    return probs / probs.sum()


def kl_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) in nats over two probability vectors."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    mask = p > _TINY
    return float(np.sum(p[mask] * np.log(p[mask] / np.maximum(q[mask], _TINY))))


def js_divergence(p: np.ndarray, q: np.ndarray) -> float:
    """Jensen-Shannon divergence in nats (symmetric, bounded by log 2)."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    m = 0.5 * (p + q)
    return 0.5 * kl_divergence(p, m) + 0.5 * kl_divergence(q, m)


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Hellinger distance in ``[0, 1]`` over two probability vectors."""
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    return float(np.linalg.norm(np.sqrt(p) - np.sqrt(q)) / np.sqrt(2.0))


def scalar_divergences(
    reference: np.ndarray,
    model: np.ndarray,
    *,
    bins: int = 32,
    span: float = 4.0,
    eps: float = 1e-6,
) -> DivergenceResult:
    """Run the full estimator protocol: reference sample vs model sample.

    ``reference`` and ``model`` are ``(n, d)`` scalar arrays (1-D inputs
    are treated as one dimension); they may have different ``n`` but must
    share ``d``.  Returns per-metric means across dimensions plus moment
    deltas, all deterministic in the inputs.
    """
    ref = np.asarray(reference, dtype=np.float64)
    out = np.asarray(model, dtype=np.float64)
    if ref.ndim == 1:
        ref = ref[:, None]
    if out.ndim == 1:
        out = out[:, None]
    if ref.ndim != 2 or out.ndim != 2:
        raise ValueError(
            f"samples must be (n, d) arrays, got {ref.shape} vs {out.shape}"
        )
    if ref.shape[1] != out.shape[1]:
        raise ValueError(
            f"dimension mismatch: reference has {ref.shape[1]} scalar dims, "
            f"model has {out.shape[1]}"
        )
    if ref.shape[0] == 0 or out.shape[0] == 0:
        raise ValueError("cannot estimate divergence from an empty sample")

    mu = ref.mean(axis=0)
    sigma = ref.std(axis=0)
    sigma = np.where(sigma < _TINY, 1.0, sigma)
    ref_z = (ref - mu) / sigma
    out_z = (out - mu) / sigma
    edges = fixed_bin_edges(bins, span)

    kl_dims, js_dims, hel_dims = [], [], []
    for dim in range(ref.shape[1]):
        p = histogram_probs(ref_z[:, dim], edges, eps)
        q = histogram_probs(out_z[:, dim], edges, eps)
        kl_dims.append(kl_divergence(p, q))
        js_dims.append(js_divergence(p, q))
        hel_dims.append(hellinger_distance(p, q))

    return DivergenceResult(
        kl=float(np.mean(kl_dims)),
        js=float(np.mean(js_dims)),
        hellinger=float(np.mean(hel_dims)),
        mean_delta=float(np.mean(np.abs(out_z.mean(axis=0)))),
        std_delta=float(np.mean(np.abs(out_z.std(axis=0) - 1.0))),
        n_reference=int(ref.shape[0]),
        n_model=int(out.shape[0]),
        bins=int(bins),
        span=float(span),
        per_dim_js=tuple(float(v) for v in js_dims),
    )
