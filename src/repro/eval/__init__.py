"""Quality observability: streaming divergence estimation and its consumers.

The subsystem turns *distributional fidelity* — how close a surrogate's
output distribution is to the simulation's ground truth — into a live,
cheap, per-trainer per-round signal, and makes that signal load-bearing:

- :mod:`repro.eval.divergence` — the fixed estimator protocol: KL / JS /
  Hellinger plus per-scalar moment deltas over shared fixed-bin
  histograms of reference-z-scored scalars (documented bias/variance
  tradeoffs; deterministic in the samples);
- :mod:`repro.eval.reservoir` — the bounded uniform reference sample
  (Algorithm R with a private seeded RNG), so streamed campaigns with no
  held-out file set still have ground truth to compare against;
- :mod:`repro.eval.probe` — :class:`QualityProbe`, the driver callback
  emitting ``eval`` events (``divergence`` payload), ``eval.*`` spans,
  and ``repro_eval_divergence{trainer,metric}`` gauges every round, and
  condensing the run into the ``eval_summary`` blob checkpoint manifests
  record;
- :mod:`repro.eval.judge` — the pluggable tournament judge seam:
  ``loss`` (the paper's policy, bit-identical to the pre-seam
  tournaments) vs ``divergence`` (rank on distributional fidelity), for
  the judged-LTFB ablation.

Downstream, :class:`~repro.telemetry.LiveAggregator` turns the probe's
events into ``quality_collapse`` alerts (EWMA z-scored, critical when
divergence blows up while losses still improve — the failure mode losses
cannot see), and :class:`~repro.serve.ModelRegistry` refuses to
hot-reload a checkpoint whose recorded eval summary regressed vs the
model currently serving (the serve-side quality gate).

Typical use::

    from repro.eval import QualityProbe

    probe = QualityProbe(metric="js")
    history = driver.run(callbacks=[probe, LiveAggregator()])
    winner, _ = driver.best_trainer()
    store.save_population(trainers, "round-007", winner=winner.name,
                          eval_summary=probe.summary(winner=winner.name))
"""

from repro.eval.divergence import (
    METRIC_NAMES,
    DivergenceResult,
    fixed_bin_edges,
    hellinger_distance,
    histogram_probs,
    js_divergence,
    kl_divergence,
    scalar_divergences,
)
from repro.eval.judge import (
    JUDGE_NAMES,
    DivergenceJudge,
    Judge,
    LossJudge,
    resolve_judge,
)
from repro.eval.probe import QualityProbe, summary_value
from repro.eval.reservoir import Reservoir

__all__ = [
    "METRIC_NAMES",
    "DivergenceResult",
    "fixed_bin_edges",
    "histogram_probs",
    "kl_divergence",
    "js_divergence",
    "hellinger_distance",
    "scalar_divergences",
    "Reservoir",
    "QualityProbe",
    "summary_value",
    "JUDGE_NAMES",
    "Judge",
    "LossJudge",
    "DivergenceJudge",
    "resolve_judge",
]
