"""Bounded uniform reservoir over streamed sample rows (Algorithm R).

The estimators in :mod:`repro.eval.divergence` need a ground-truth
sample, but PR 8's streaming ingestion means there is no fixed held-out
file set — samples arrive for as long as the campaign runs.  The
reservoir bounds the memory of the reference: offer every row as it
streams past and the reservoir keeps a uniform random subset of
everything *seen so far*, in O(capacity) memory.

Determinism: the reservoir owns its own seeded
:class:`numpy.random.Generator` and never touches trainer or pairing RNG
streams — attaching a :class:`~repro.eval.probe.QualityProbe` cannot
perturb training.  Given the same seed and the same offer sequence, the
kept sample is bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Reservoir"]


class Reservoir:
    """Uniform bounded sample of the rows offered so far.

    Rows are 1-D arrays of a fixed width (the first offer fixes it);
    :meth:`sample` returns them stacked ``(k, width)`` in slot order.
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self.seen = 0
        self._rng = np.random.default_rng(seed)
        self._rows: list[np.ndarray] = []

    def __len__(self) -> int:
        return len(self._rows)

    def offer(self, rows: np.ndarray) -> None:
        """Offer ``(n, width)`` rows (or one 1-D row) to the reservoir."""
        rows = np.asarray(rows)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError(f"rows must be (n, width), got shape {rows.shape}")
        for row in rows:
            self.seen += 1
            if len(self._rows) < self.capacity:
                self._rows.append(np.array(row, copy=True))
            else:
                # Algorithm R: the i-th offer replaces a random slot with
                # probability capacity/i, keeping the kept set uniform.
                slot = int(self._rng.integers(0, self.seen))
                if slot < self.capacity:
                    self._rows[slot] = np.array(row, copy=True)

    def sample(self) -> np.ndarray:
        """The kept rows, stacked ``(len(self), width)``."""
        if not self._rows:
            raise ValueError("reservoir is empty")
        return np.stack(self._rows)
