"""The live quality probe: per-trainer, per-round divergence telemetry.

:class:`QualityProbe` is a driver :class:`~repro.telemetry.Callback`
that, at every round end, runs each trainer's generator over a bounded
ground-truth reference (params paired with simulated scalars, kept in a
:class:`~repro.eval.reservoir.Reservoir`) and scores the predicted
scalar distribution with the fixed estimator protocol of
:mod:`repro.eval.divergence`.  The signal fans out three ways:

- an ``eval`` telemetry event per round carrying a ``divergence``
  payload (per-trainer metric dicts) — the live plane's
  ``quality_collapse`` detector and the trace-report quality section
  read this;
- ``eval.probe`` / ``eval.trainer`` spans when the run is traced;
- ``repro_eval_divergence{trainer,metric}`` gauges when a
  :class:`~repro.telemetry.metrics.MetricsRegistry` is attached.

:meth:`summary` condenses the trajectory into the JSON blob the
checkpoint manifest records (``eval_summary``) — the serve-side quality
gate compares candidate checkpoints on it.

Determinism: the probe owns its reservoir's seeded RNG and its forward
passes are pure, so attaching it perturbs neither training nor pairing
streams; given the same run it produces the same numbers.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from typing import Mapping

import numpy as np

from repro.eval.divergence import scalar_divergences
from repro.eval.reservoir import Reservoir
from repro.telemetry.callbacks import Callback
from repro.telemetry.events import EVAL

__all__ = ["QualityProbe"]


class QualityProbe(Callback):
    """Samples every trainer's generator each round and emits divergence.

    Parameters
    ----------
    capacity:
        Reservoir bound on the ground-truth reference (params + scalars
        rows).  The estimator's variance shrinks with it; 512 rows keep a
        probe round in the low milliseconds at paper scale.
    metric:
        Which estimator metric ranks trainers in :meth:`summary` (and is
        what the serve gate compares): ``"js"`` by default — symmetric
        and bounded, so collapse saturates instead of exploding.
    bins / span / eps:
        The estimator protocol knobs (see :mod:`repro.eval.divergence`).
    seed:
        Seed of the reservoir's private RNG.
    every:
        Probe every N rounds (1 = every round).
    registry:
        Optional metrics registry for the
        ``repro_eval_divergence{trainer,metric}`` gauges.
    """

    #: Metric keys exported to gauges and trajectories.
    EXPORTED = ("kl", "js", "hellinger", "mean_delta", "std_delta")

    def __init__(
        self,
        *,
        capacity: int = 512,
        metric: str = "js",
        bins: int = 32,
        span: float = 4.0,
        eps: float = 1e-6,
        seed: int = 0,
        every: int = 1,
        registry=None,
    ) -> None:
        if metric not in self.EXPORTED:
            raise ValueError(
                f"metric must be one of {self.EXPORTED}, got {metric!r}"
            )
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.metric = metric
        self.bins = int(bins)
        self.span = float(span)
        self.eps = float(eps)
        self.every = int(every)
        self._reservoir = Reservoir(capacity, seed=seed)
        self._param_width: int | None = None
        self.registry = registry
        #: Per-trainer divergence trajectory:
        #: ``{trainer: [(round, {metric: value}), ...]}``.
        self.trajectory: dict[str, list[tuple[int, dict[str, float]]]] = {}
        self.rounds_probed = 0
        self._driver = None

    # -- reference management -------------------------------------------------

    def observe(self, params: np.ndarray, scalars: np.ndarray) -> None:
        """Offer paired ground-truth rows to the bounded reference (e.g.
        from a streamed ingest batch)."""
        params = np.asarray(params)
        scalars = np.asarray(scalars)
        if params.shape[0] != scalars.shape[0]:
            raise ValueError(
                f"params/scalars row mismatch: {params.shape[0]} vs "
                f"{scalars.shape[0]}"
            )
        if self._param_width is None:
            self._param_width = int(params.shape[1])
        self._reservoir.offer(np.hstack([params, scalars]))

    def _reference(self) -> tuple[np.ndarray, np.ndarray] | None:
        if len(self._reservoir) == 0 or self._param_width is None:
            return None
        rows = self._reservoir.sample()
        return rows[:, : self._param_width], rows[:, self._param_width:]

    # -- lifecycle ------------------------------------------------------------

    def on_run_begin(self, driver) -> None:
        self._driver = driver
        if len(self._reservoir) == 0:
            batch = driver.eval_batch
            if batch is not None and "params" in batch and "scalars" in batch:
                self.observe(batch["params"], batch["scalars"])
            else:
                # No global validation batch: fall back to the union of the
                # local tournament holdouts (still simulated ground truth).
                for trainer in driver.trainers:
                    tb = trainer.tournament_batch
                    if "params" in tb and "scalars" in tb:
                        self.observe(tb["params"], tb["scalars"])

    def on_round_end(self, event) -> None:
        driver = self._driver
        if driver is None:
            return
        round_index = int(event.payload.get("round", self.rounds_probed))
        if round_index % self.every != 0:
            return
        reference = self._reference()
        if reference is None:
            return
        params, scalars = reference
        tracer = driver.telemetry.tracer
        probe_span = (
            tracer.span("eval.probe", cat="eval", track="driver",
                        round=round_index)
            if tracer is not None else nullcontext()
        )
        t0 = time.perf_counter()
        divergence: dict[str, dict[str, float]] = {}
        with probe_span:
            for trainer in driver.trainers:
                trainer_span = (
                    tracer.span("eval.trainer", cat="eval", track="driver",
                                round=round_index, trainer=trainer.name)
                    if tracer is not None else nullcontext()
                )
                with trainer_span:
                    scalars_hat, _ = trainer.surrogate.predict_outputs(params)
                    result = scalar_divergences(
                        scalars, scalars_hat,
                        bins=self.bins, span=self.span, eps=self.eps,
                    )
                metrics = {k: result.value(k) for k in self.EXPORTED}
                divergence[trainer.name] = metrics
                self.trajectory.setdefault(trainer.name, []).append(
                    (round_index, metrics)
                )
                if self.registry is not None:
                    for key, value in metrics.items():
                        self.registry.gauge(
                            "repro_eval_divergence",
                            "per-trainer divergence of generated scalars "
                            "vs ground truth (quality probe)",
                            labels={"trainer": trainer.name, "metric": key},
                        ).set(value)
        self.rounds_probed += 1
        driver.telemetry.emit(
            EVAL,
            round=round_index,
            divergence=divergence,
            metric=self.metric,
            elapsed_s=time.perf_counter() - t0,
        )

    # -- the manifest payload -------------------------------------------------

    def summary(self, winner: str | None = None) -> dict | None:
        """The eval summary the checkpoint manifest records.

        ``{"metric", "bins", "span", "round", "trainers": {name: {...}},
        "winner", "winner_value"}`` — last probed values per trainer;
        ``winner_value`` (the gate's comparison key) is the winner's
        ranking metric when a winner is named, else the population best.
        Returns ``None`` when the probe never ran.
        """
        if not self.trajectory:
            return None
        trainers: dict[str, dict] = {}
        last_round = -1
        for name, rows in self.trajectory.items():
            round_index, metrics = rows[-1]
            trainers[name] = {"round": round_index, **metrics}
            last_round = max(last_round, round_index)
        if winner is not None and winner in trainers:
            winner_value = trainers[winner][self.metric]
        else:
            winner_value = min(t[self.metric] for t in trainers.values())
        return {
            "metric": self.metric,
            "bins": self.bins,
            "span": self.span,
            "round": last_round,
            "trainers": trainers,
            "winner": winner,
            "winner_value": float(winner_value),
        }


def summary_value(summary: Mapping | None) -> float | None:
    """The gate's comparison key out of a recorded eval summary: the
    stamped ``winner_value``, falling back to the named winner's ranking
    metric, then the population best.  ``None`` when the summary is
    absent or carries no usable value (the gate passes open on those).
    """
    if summary is None:
        return None
    value = summary.get("winner_value")
    if value is not None:
        return float(value)
    metric = summary.get("metric", "js")
    trainers = summary.get("trainers") or {}
    winner = summary.get("winner")
    if winner in trainers and metric in trainers[winner]:
        return float(trainers[winner][metric])
    values = [t[metric] for t in trainers.values() if metric in t]
    return min(values) if values else None


__all__.append("summary_value")
