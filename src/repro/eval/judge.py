"""The pluggable tournament judge: what "better" means in LTFB.

The paper's tournaments judge on the local tournament holdout's loss
(``Trainer.tournament_score``).  That is one policy, not the mechanic —
the mechanic (pair, exchange, score both, adopt the winner) lives in
:func:`repro.core.topology.run_pairwise_tournament` and is judge-
agnostic.  This module supplies the seam:

- :class:`LossJudge` — the paper's policy, **bit-identical** to the
  pre-seam behaviour: it delegates to the exact trainer methods in the
  exact call order the tournament always used (own score first, then
  the candidate's), so loss-judged Histories do not change by a bit.
- :class:`DivergenceJudge` — ranks on distributional fidelity instead:
  the generator's output distribution over the tournament holdout's
  params vs the holdout's ground-truth scalars, scored with one metric
  of :func:`~repro.eval.divergence.scalar_divergences` (JS by default).
  This enables the divergence-judged-vs-loss-judged LTFB ablation the
  paper could not run.

Both judges are deterministic: the loss path is the existing scoring
path, and the divergence path is a pure forward pass plus the fixed
estimator protocol — neither consumes any RNG stream.

Drivers resolve their ``judge=`` argument through :func:`resolve_judge`
(the :func:`~repro.core.topology.resolve_topology` idiom): ``None`` and
``"loss"`` give the paper's judge, ``"divergence"`` the distributional
one, and a :class:`Judge` instance passes through for custom policies.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Mapping

import numpy as np

from repro.eval.divergence import scalar_divergences

__all__ = [
    "Judge",
    "LossJudge",
    "DivergenceJudge",
    "resolve_judge",
    "JUDGE_NAMES",
]


class Judge(ABC):
    """Scores trainers for tournament adoption; **lower is better** (the
    invariant every tournament mechanic in :mod:`repro.core.topology`
    relies on: ``adopt = partner_score < own_score``)."""

    #: Registry key / telemetry label.
    name = "?"

    @abstractmethod
    def score(self, trainer) -> float:
        """Score the trainer's *current* model."""

    @abstractmethod
    def score_candidate(self, trainer, weights: Mapping, scope) -> float:
        """Score foreign ``weights`` from the trainer's seat, leaving the
        trainer's own model untouched."""


class LossJudge(Judge):
    """The paper's judge: the local tournament holdout's configured loss
    metric, delegated to the trainer's own scoring methods so the call
    order (and therefore every History byte) matches the pre-seam code."""

    name = "loss"

    def score(self, trainer) -> float:
        return trainer.tournament_score()

    def score_candidate(self, trainer, weights: Mapping, scope) -> float:
        return trainer.score_candidate(weights, scope)


class DivergenceJudge(Judge):
    """Judge on distributional fidelity over the tournament holdout.

    The candidate generator predicts scalars for the holdout's params;
    the score is one divergence metric between those predictions and the
    holdout's ground-truth scalars (lower = closer = better, preserving
    the adoption invariant).  Candidate scoring swaps the foreign weights
    in, predicts, and restores — the trainer's own model is untouched.
    """

    def __init__(
        self,
        metric: str = "js",
        *,
        bins: int = 32,
        span: float = 4.0,
        eps: float = 1e-6,
    ) -> None:
        self.metric = metric
        self.bins = int(bins)
        self.span = float(span)
        self.eps = float(eps)
        # Fail fast on a bad metric name, not mid-tournament.
        scalar_divergences(
            np.zeros((2, 1)), np.zeros((2, 1)), bins=self.bins, span=self.span
        ).value(metric)

    name = "divergence"

    def score(self, trainer) -> float:
        batch = trainer.tournament_batch
        scalars_hat, _ = trainer.surrogate.predict_outputs(batch["params"])
        return scalar_divergences(
            batch["scalars"], scalars_hat,
            bins=self.bins, span=self.span, eps=self.eps,
        ).value(self.metric)

    def score_candidate(self, trainer, weights: Mapping, scope) -> float:
        with trainer.swapped_weights(weights, scope):
            return self.score(trainer)


#: Built-in judge registry keys.
JUDGE_NAMES: tuple[str, ...] = ("loss", "divergence")

_REGISTRY = {
    "loss": LossJudge,
    "divergence": DivergenceJudge,
}


def resolve_judge(spec) -> Judge:
    """Coerce a judge spec — ``None`` (default), a registry name, or a
    :class:`Judge` instance — into a judge."""
    if spec is None:
        return LossJudge()
    if isinstance(spec, Judge):
        return spec
    if isinstance(spec, str):
        cls = _REGISTRY.get(spec)
        if cls is None:
            raise ValueError(
                f"unknown judge {spec!r} (expected one of {JUDGE_NAMES})"
            )
        return cls()
    raise TypeError(f"judge must be None, a name, or a Judge, got {spec!r}")
