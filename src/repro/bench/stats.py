"""Robust summary statistics for benchmark trial samples.

Benchmark trials on shared machines are contaminated by scheduler noise,
cache state, and GC pauses, so the harness characterizes each metric with
order statistics instead of the mean: the *median* is the headline value,
the *IQR* (interquartile range) is the noise scale the regression gate is
calibrated against, and the *CV* (coefficient of variation) flags trials
too noisy to trust at all.  The mean/min/max ride along for context.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["summarize_samples"]


def summarize_samples(samples: Sequence[float]) -> dict:
    """Summary statistics of one metric's trial samples.

    Returns ``n``, ``median``, ``q25``/``q75``, ``iqr`` (``q75 - q25``),
    ``mean``, ``min``/``max``, and ``cv`` (sample standard deviation over
    mean; 0 for a single trial or a zero mean).

    >>> s = summarize_samples([1.0, 2.0, 3.0, 4.0])
    >>> s["median"], s["iqr"]
    (2.5, 1.5)
    """
    x = np.asarray(list(samples), dtype=float)
    if x.ndim != 1 or x.size == 0:
        raise ValueError("samples must be a non-empty 1-D sequence")
    if not np.all(np.isfinite(x)):
        raise ValueError("samples must be finite")
    q25, q50, q75 = np.quantile(x, [0.25, 0.5, 0.75])
    mean = float(x.mean())
    std = float(x.std(ddof=1)) if x.size > 1 else 0.0
    return {
        "n": int(x.size),
        "median": float(q50),
        "q25": float(q25),
        "q75": float(q75),
        "iqr": float(q75 - q25),
        "mean": mean,
        "min": float(x.min()),
        "max": float(x.max()),
        "cv": (std / abs(mean)) if mean else 0.0,
    }
