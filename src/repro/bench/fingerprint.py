"""Machine fingerprinting for benchmark provenance.

A benchmark number is meaningless without knowing what produced it: the
``compare`` gate warns when baseline and candidate fingerprints differ,
and the trajectory report prints the fingerprint of every ``BENCH_*``
document it folds in.  Two halves:

- *host*: the physical machine the harness ran on — platform string,
  Python/NumPy versions, CPU count and the scheduler affinity actually
  granted (CI containers often get fewer cores than the host has).
- *simulated machine*: the identity of the
  :class:`~repro.cluster.machine.MachineSpec` the performance-model
  scenarios price against (the Lassen-like default), so recalibrating the
  simulated cluster reads as a fingerprint change, not silent drift.
"""

from __future__ import annotations

import os
import platform
import sys

import numpy as np

from repro.cluster.machine import lassen

__all__ = ["machine_fingerprint", "fingerprints_differ"]


def machine_fingerprint() -> dict:
    """The provenance record stamped into every benchmark document."""
    try:
        affinity = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-linux
        affinity = os.cpu_count() or 1
    spec = lassen()
    return {
        "host": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "cpu_count": os.cpu_count() or 1,
            "cpu_affinity": affinity,
        },
        "simulated_machine": {
            "name": spec.name,
            "num_nodes": spec.num_nodes,
            "gpus_per_node": spec.node.gpus_per_node,
            "gpu": spec.gpu.name,
        },
    }


def fingerprints_differ(a: dict, b: dict) -> list[str]:
    """Human-readable notes for every fingerprint field that differs.

    Host wall-clock-irrelevant fields (nothing here is) are not filtered:
    any difference is worth a note next to a perf verdict.
    """
    notes: list[str] = []
    for section in ("host", "simulated_machine"):
        sa, sb = a.get(section, {}), b.get(section, {})
        for key in sorted(set(sa) | set(sb)):
            if sa.get(key) != sb.get(key):
                notes.append(
                    f"{section}.{key}: {sa.get(key)!r} -> {sb.get(key)!r}"
                )
    return notes
