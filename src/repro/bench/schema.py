"""The versioned on-disk schema of benchmark documents.

``BENCH_<n>.json`` files are the repo's performance trajectory: one
document per committed benchmark run, validated on write *and* on read so
a malformed document fails at the tool boundary instead of producing a
nonsense verdict.  Validation is hand-rolled (the toolchain carries no
JSON-Schema dependency) but the shape below is the contract:

.. code-block:: text

    {
      "schema": "repro.bench/v1",
      "version": 1,
      "mode": "quick" | "full",
      "created_unix": <float>,         # wall-clock stamp of the run
      "machine": {"host": {...}, "simulated_machine": {...}},
      "config": {"warmup": <int>, "repeats": <int>, "seed": <int>},
      "results": [
        {
          "scenario": <str>, "metric": <str>,
          "unit": "s" | "samples/s" | ...,
          "direction": "lower" | "higher",   # which way is better
          "n": <int>, "median": <float>, "iqr": <float>, "cv": <float>,
          "q25": ..., "q75": ..., "mean": ..., "min": ..., "max": ...,
          "samples": [<float>, ...]          # the raw trials
        }, ...
      ]
    }

Compatibility policy: adding optional fields keeps ``version`` at 1;
renaming/removing fields or changing semantics bumps it, and ``compare``
refuses to gate across versions.
"""

from __future__ import annotations

import json

__all__ = [
    "SCHEMA_NAME",
    "SCHEMA_VERSION",
    "validate_bench_doc",
    "load_bench_doc",
    "write_bench_doc",
]

SCHEMA_NAME = "repro.bench/v1"
SCHEMA_VERSION = 1

_RESULT_FLOATS = ("median", "iqr", "cv", "q25", "q75", "mean", "min", "max")


def _fail(where: str, msg: str) -> None:
    raise ValueError(f"invalid bench document ({where}): {msg}")


def validate_bench_doc(doc: dict) -> dict:
    """Validate a benchmark document against the v1 schema.

    Returns the document (for call chaining); raises ``ValueError`` with
    the offending location on any violation.
    """
    if not isinstance(doc, dict):
        _fail("root", f"expected an object, got {type(doc).__name__}")
    if doc.get("schema") != SCHEMA_NAME:
        _fail("schema", f"expected {SCHEMA_NAME!r}, got {doc.get('schema')!r}")
    if doc.get("version") != SCHEMA_VERSION:
        _fail("version", f"expected {SCHEMA_VERSION}, got {doc.get('version')!r}")
    if doc.get("mode") not in ("quick", "full"):
        _fail("mode", f"expected 'quick' or 'full', got {doc.get('mode')!r}")
    if not isinstance(doc.get("created_unix"), (int, float)):
        _fail("created_unix", "expected a number")
    machine = doc.get("machine")
    if not isinstance(machine, dict) or not isinstance(
        machine.get("host"), dict
    ):
        _fail("machine", "expected an object with a 'host' section")
    config = doc.get("config")
    if not isinstance(config, dict):
        _fail("config", "expected an object")
    for key in ("warmup", "repeats"):
        if not isinstance(config.get(key), int) or config[key] < 0:
            _fail(f"config.{key}", "expected a non-negative integer")
    results = doc.get("results")
    if not isinstance(results, list) or not results:
        _fail("results", "expected a non-empty list")
    seen: set[tuple[str, str]] = set()
    for i, row in enumerate(results):
        where = f"results[{i}]"
        if not isinstance(row, dict):
            _fail(where, "expected an object")
        for key in ("scenario", "metric", "unit"):
            if not isinstance(row.get(key), str) or not row[key]:
                _fail(f"{where}.{key}", "expected a non-empty string")
        if row.get("direction") not in ("lower", "higher"):
            _fail(f"{where}.direction", "expected 'lower' or 'higher'")
        key = (row["scenario"], row["metric"])
        if key in seen:
            _fail(where, f"duplicate scenario/metric {key}")
        seen.add(key)
        samples = row.get("samples")
        if not isinstance(samples, list) or not samples:
            _fail(f"{where}.samples", "expected a non-empty list")
        if not all(isinstance(s, (int, float)) for s in samples):
            _fail(f"{where}.samples", "expected numbers")
        if row.get("n") != len(samples):
            _fail(f"{where}.n", "does not match len(samples)")
        for field in _RESULT_FLOATS:
            if not isinstance(row.get(field), (int, float)):
                _fail(f"{where}.{field}", "expected a number")
    return doc


def load_bench_doc(path) -> dict:
    """Read and validate one ``BENCH_*.json`` document."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
    try:
        return validate_bench_doc(doc)
    except ValueError as exc:
        raise ValueError(f"{path}: {exc}") from None


def write_bench_doc(doc: dict, path) -> None:
    """Validate and write one benchmark document (sorted keys, stable
    formatting, trailing newline — diff-friendly for committed baselines)."""
    validate_bench_doc(doc)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
