"""Noise-aware regression verdicts between two benchmark documents.

The gate's job is to flag real slowdowns without crying wolf on machine
noise, so the decision combines a relative threshold with the baseline's
own measured spread: metric ``m`` regresses iff its median *worsened* —
grew for ``direction: lower`` metrics, shrank for ``direction: higher``
— by more than

    ``max(threshold * |baseline median|, iqr_k * baseline IQR)``

i.e. a change must be both relatively large *and* outside the noise band
the baseline itself exhibited.  Improvements beyond the same margin are
labelled, metrics present on only one side are non-fatal notes (scenario
sets evolve), and differing machine fingerprints are surfaced next to
the verdicts because a host change explains away most "regressions".
"""

from __future__ import annotations

from repro.bench.fingerprint import fingerprints_differ
from repro.bench.schema import validate_bench_doc

__all__ = [
    "DEFAULT_THRESHOLD",
    "DEFAULT_IQR_K",
    "compare_docs",
    "render_comparison",
]

DEFAULT_THRESHOLD = 0.10
DEFAULT_IQR_K = 3.0


def _verdict(base: dict, cand: dict, threshold: float, iqr_k: float) -> dict:
    sign = 1.0 if base["direction"] == "lower" else -1.0
    worsening = sign * (cand["median"] - base["median"])
    margin = max(threshold * abs(base["median"]), iqr_k * base["iqr"])
    if worsening > margin:
        status = "regression"
    elif -worsening > margin:
        status = "improved"
    else:
        status = "ok"
    delta = (
        (cand["median"] - base["median"]) / abs(base["median"])
        if base["median"]
        else 0.0
    )
    return {
        "scenario": base["scenario"],
        "metric": base["metric"],
        "unit": base["unit"],
        "direction": base["direction"],
        "status": status,
        "baseline_median": base["median"],
        "candidate_median": cand["median"],
        "delta_fraction": delta,
        "margin": margin,
    }


def compare_docs(
    baseline: dict,
    candidate: dict,
    threshold: float = DEFAULT_THRESHOLD,
    iqr_k: float = DEFAULT_IQR_K,
) -> dict:
    """Compare two validated documents metric-by-metric.

    Returns ``{"verdicts": [...], "notes": [...], "regressions": n}``;
    a nonzero ``regressions`` count is the CI-failure condition.
    """
    validate_bench_doc(baseline)
    validate_bench_doc(candidate)
    if threshold < 0 or iqr_k < 0:
        raise ValueError("threshold and iqr_k must be >= 0")
    base_by_key = {(r["scenario"], r["metric"]): r for r in baseline["results"]}
    cand_by_key = {(r["scenario"], r["metric"]): r for r in candidate["results"]}
    verdicts: list[dict] = []
    notes: list[str] = []
    for key in sorted(base_by_key):
        if key not in cand_by_key:
            notes.append(f"{key[0]}/{key[1]}: in baseline only (not gated)")
            continue
        base, cand = base_by_key[key], cand_by_key[key]
        if base["direction"] != cand["direction"]:
            raise ValueError(
                f"{key[0]}/{key[1]}: direction changed "
                f"({base['direction']} -> {cand['direction']}); "
                f"re-baseline instead of comparing"
            )
        verdicts.append(_verdict(base, cand, threshold, iqr_k))
    for key in sorted(set(cand_by_key) - set(base_by_key)):
        notes.append(f"{key[0]}/{key[1]}: new metric (no baseline, not gated)")
    notes.extend(
        f"fingerprint changed: {line}"
        for line in fingerprints_differ(
            baseline.get("machine", {}), candidate.get("machine", {})
        )
    )
    return {
        "verdicts": verdicts,
        "notes": notes,
        "regressions": sum(v["status"] == "regression" for v in verdicts),
    }


def render_comparison(comparison: dict) -> str:
    """Plain-text rendering of a :func:`compare_docs` result."""
    out: list[str] = []
    width = max(
        (len(f"{v['scenario']}/{v['metric']}") for v in comparison["verdicts"]),
        default=0,
    )
    for v in comparison["verdicts"]:
        name = f"{v['scenario']}/{v['metric']}".ljust(width)
        tag = {"ok": "ok        ", "improved": "improved  ", "regression": "REGRESSION"}[
            v["status"]
        ]
        out.append(
            f"  [{tag}] {name}  {v['baseline_median']:.4g} -> "
            f"{v['candidate_median']:.4g} {v['unit']} "
            f"({v['delta_fraction']:+.1%}, margin ±{v['margin']:.4g})"
        )
    for note in comparison["notes"]:
        out.append(f"  note: {note}")
    n = comparison["regressions"]
    out.append(
        f"verdict: {n} regression(s) across {len(comparison['verdicts'])} "
        f"gated metric(s)"
    )
    return "\n".join(out)
